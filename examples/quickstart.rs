//! Quickstart: decompose a sparse matrix and multiply with it, three ways.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Walks the full pipeline of the paper on a small web-like graph:
//! build the adjacency matrix, run LA-Decompose, inspect the decomposition,
//! multiply `Y = A·X` sequentially through the decomposition (Eq. 1), and
//! finally run the distributed arrow algorithm on the simulated machine —
//! verifying everything against a direct SpMM.
//!
//! **Serving.** The one-shot calls below pay planning and decomposition
//! on every invocation. When the same matrix is multiplied repeatedly —
//! the paper's own workload shape — use the `arrow_matrix::engine`
//! serving engine instead: it caches decompositions by content
//! fingerprint (with disk spill, so restarts skip LA-Decompose), picks
//! the cheapest distributed algorithm per matrix with an α-β cost-model
//! planner, and coalesces concurrent queries into multi-RHS batches.
//! `examples/serving.rs` demonstrates the resulting throughput — better
//! than 2× (typically ~10×) for batch-64 over one-run-per-query on the
//! same stream — and `arrow-matrix-cli serve` exposes the same loop from
//! the command line.

use arrow_matrix::core::stats::DecompositionStats;
use arrow_matrix::core::{la_decompose, DecomposeConfig, RandomForestLa};
use arrow_matrix::graph::generators::datasets;
use arrow_matrix::sparse::{spmm, CsrMatrix, DenseMatrix};
use arrow_matrix::spmm::{ArrowSpmm, DistSpmm};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    // 1. A web-crawl-like power-law graph and its adjacency matrix.
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let graph = datasets::webbase_like(5_000, &mut rng);
    let a: CsrMatrix<f64> = graph.to_adjacency();
    println!(
        "graph: n = {}, m = {}, max degree = {}",
        graph.n(),
        graph.m(),
        graph.max_degree()
    );

    // 2. LA-Decompose with the paper's random spanning forest heuristic.
    let b = 256;
    let decomposition = la_decompose(
        &a,
        &DecomposeConfig::with_width(b),
        &mut RandomForestLa::new(1),
    )
    .expect("decomposition succeeds");
    let stats = DecompositionStats::of(&decomposition);
    println!(
        "decomposition: order = {}, arrow width = {}, per-level nnz = {:?}",
        stats.order,
        b,
        stats.levels.iter().map(|l| l.nnz).collect::<Vec<_>>()
    );
    assert_eq!(
        decomposition.validate(&a).unwrap(),
        0.0,
        "Σ P·B·Pᵀ must equal A"
    );

    // 3. Sequential multiply through the decomposition (Eq. 1).
    let x = DenseMatrix::from_fn(a.rows(), 16, |r, c| ((r + c) % 10) as f64 / 10.0);
    let via_decomposition = decomposition.multiply(&x).unwrap();
    let direct = spmm::spmm(&a, &x).unwrap();
    println!(
        "sequential Eq. 1 multiply: max |Δ| vs direct SpMM = {:.2e}",
        via_decomposition.max_abs_diff(&direct).unwrap()
    );

    // 4. The distributed algorithm on the simulated α-β machine.
    let alg = ArrowSpmm::new(&decomposition).expect("plan the distribution");
    println!("distributed arrow SpMM uses {} ranks", alg.ranks());
    let run = alg.run(&x, 3).expect("distributed run");
    let reference = arrow_matrix::spmm::reference::iterated_spmm(&a, &x, 3).unwrap();
    println!(
        "3 distributed iterations: max |Δ| vs serial = {:.2e}",
        run.y.max_abs_diff(&reference).unwrap()
    );
    println!(
        "per iteration: simulated time = {:.3} ms, max per-rank volume = {:.1} KiB",
        run.sim_time_per_iter() * 1e3,
        run.volume_per_iter() / 1024.0
    );
}
