//! Communication volume study: why the arrow decomposition wins.
//!
//! ```text
//! cargo run --release --example comm_volume_study
//! ```
//!
//! Reproduces the paper's headline number in miniature: on star-heavy
//! (MAWI-like) graphs the arrow decomposition moves a small multiple of
//! `n·k/p` bytes per rank, while the 1.5D baseline moves `Θ(n·k/c)` and
//! HP-1D concentrates nearly all of `X` on the hub's rank. The study
//! sweeps the rank count and prints the max per-rank volume of each
//! algorithm (the α-β bandwidth cost of §6).

use arrow_matrix::graph::generators::datasets;
use arrow_matrix::sparse::{CsrMatrix, DenseMatrix};
use arrow_matrix::spmm::DistSpmm;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let n = 16_000u32;
    let k = 64u32;
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let graph = datasets::mawi_like(n, &mut rng);
    let a: CsrMatrix<f64> = graph.to_adjacency();
    let x = DenseMatrix::from_fn(n, k, |r, c| ((r ^ c) % 17) as f64);
    println!(
        "MAWI-like traffic graph: n = {n}, m = {}, Δ = {} ({}% of n), k = {k}\n",
        graph.m(),
        graph.max_degree(),
        100 * graph.max_degree() / n
    );
    println!(
        "{:>4} | {:>22} | {:>22} | {:>22}",
        "p", "arrow max vol/iter", "1.5D max vol/iter", "HP-1D max vol/iter"
    );
    for &p in &[8u32, 16, 32] {
        let b = (n / p).max(64);
        let (_, arrow) = amd_bench::arrow_for(&a, b).expect("arrow");
        let ra = arrow.run(&x, 2).expect("arrow run");
        let d15 = amd_bench::spmm_15d_for(&a, p).expect("1.5D");
        let r15 = d15.run(&x, 2).expect("1.5D run");
        let hp = amd_bench::hp1d_for(&graph, &a, p).expect("hp");
        let rhp = hp.run(&x, 2).expect("hp run");
        let fmt = |v: f64, ranks: u32| format!("{:>8.1} KiB ({ranks} rk)", v / 1024.0);
        println!(
            "{:>4} | {:>22} | {:>22} | {:>22}",
            p,
            fmt(ra.volume_per_iter(), arrow.ranks()),
            fmt(r15.volume_per_iter(), d15.ranks()),
            fmt(rhp.volume_per_iter(), hp.ranks()),
        );
    }
    println!(
        "\nreading: arrow volume shrinks with p (Θ(nk/p) per §6); 1.5D only shrinks \
         with c = √p; HP-1D is pinned by the hub part fetching almost all of X."
    );
}
