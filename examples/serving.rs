//! Serving-engine demonstration: batched vs unbatched query throughput.
//!
//! The paper's workflow decomposes once and amortizes over many SpMM
//! iterations; the serving engine extends the amortization across
//! *queries*. This example drives a synthetic stream of multiply queries
//! against one R-MAT matrix three ways — unbatched (one distributed run
//! per query), batch = 8, and batch = 64 — and reports throughput. The
//! per-run fixed costs (rank spin-up, per-message latency) dominate
//! single-column runs, so coalescing 64 compatible queries into one
//! 64-column run is far more than 2× faster.
//!
//! Run with `cargo run --release --example serving`.

use arrow_matrix::engine::{Engine, EngineConfig, MatrixId, MultiplyQuery};
use arrow_matrix::graph::generators::rmat;
use arrow_matrix::sparse::CsrMatrix;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Runs `stream` through `engine`, flushing after every `batch`
/// submissions (`batch = 1` uses the true unbatched single-run path).
/// Returns (seconds, answers in stream order).
fn drive(
    engine: &mut Engine,
    id: MatrixId,
    stream: &[Vec<f64>],
    iters: u32,
    batch: usize,
) -> (f64, Vec<Vec<f64>>) {
    let t0 = arrow_matrix::obs::Stopwatch::start();
    let mut answers = Vec::with_capacity(stream.len());
    if batch > 1 {
        for group in stream.chunks(batch) {
            for x in group {
                engine
                    .submit(MultiplyQuery {
                        matrix: id,
                        x: x.clone(),
                        iters,
                        sigma: None,
                    })
                    .expect("registered matrix accepts queries");
            }
            let responses = engine.flush().expect("flush succeeds");
            answers.extend(responses.into_iter().map(|r| r.y));
        }
    } else {
        for x in stream {
            let r = engine
                .run_single(MultiplyQuery {
                    matrix: id,
                    x: x.clone(),
                    iters,
                    sigma: None,
                })
                .expect("single runs succeed");
            answers.push(r.y);
        }
    }
    (t0.elapsed_seconds(), answers)
}

fn main() {
    // An R-MAT graph: the skewed-degree workload the decomposition targets.
    let mut rng = ChaCha8Rng::seed_from_u64(0x5e21);
    let g = rmat::rmat(10, 8, rmat::RmatParams::graph500(), &mut rng);
    let a: CsrMatrix<f64> = g.to_adjacency();
    let n = a.rows();
    println!("matrix: R-MAT scale 10 (n = {n}, nnz = {})", a.nnz());

    let queries = 64usize;
    let iters = 2u32;
    let stream: Vec<Vec<f64>> = (0..queries)
        .map(|q| {
            (0..n)
                .map(|r| (((q as u32 + 3 * r) % 13) as f64) / 13.0 - 0.5)
                .collect()
        })
        .collect();

    // One engine — one decomposition, one planner decision — serves
    // every policy; only the batching changes.
    let mut engine = Engine::new(EngineConfig {
        arrow_width: 64,
        ..EngineConfig::default()
    })
    .expect("engine builds");
    let id = engine.register(&a).expect("registration succeeds");
    println!(
        "planner bound: {} (decompositions so far: {})",
        engine.chosen_algorithm(id).expect("registered"),
        engine.cache_stats().decompositions
    );

    let mut throughputs = Vec::new();
    let mut reference: Option<Vec<Vec<f64>>> = None;
    for &batch in &[1usize, 8, 64] {
        let runs_before = engine.stats().runs;
        let (secs, answers) = drive(&mut engine, id, &stream, iters, batch);
        let qps = queries as f64 / secs;
        throughputs.push((batch, qps));
        println!(
            "batch={batch:<3} {:>8.1} ms total  {:>9.1} queries/s  ({} runs)",
            secs * 1e3,
            qps,
            engine.stats().runs - runs_before
        );
        // Batched answers must bit-match the unbatched ones.
        match &reference {
            None => reference = Some(answers),
            Some(want) => assert_eq!(want, &answers, "batched results diverged"),
        }
    }

    let (_, single_qps) = throughputs[0];
    let (_, batch64_qps) = throughputs[throughputs.len() - 1];
    let speedup = batch64_qps / single_qps;
    println!("speedup batch-64 vs unbatched: {speedup:.1}×");
    assert!(
        speedup >= 2.0,
        "batching should win by ≥2×, measured {speedup:.2}×"
    );
}
