//! GNN-style feature propagation — the workload motivating the paper
//! (§1: "training and inference of graph neural networks").
//!
//! ```text
//! cargo run --release --example gnn_propagation
//! ```
//!
//! Runs `X_{t+1} = σ(Â X_t)` (mean aggregation + ReLU) on a social-
//! network-like power-law graph, comparing the arrow decomposition against
//! the 1.5D baseline on the simulated machine: same results, different
//! communication bills.

use arrow_matrix::core::{la_decompose, DecomposeConfig, RandomForestLa};
use arrow_matrix::graph::generators::datasets;
use arrow_matrix::sparse::{CooMatrix, CsrMatrix, DenseMatrix};
use arrow_matrix::spmm::{A15dSpmm, ArrowSpmm, DistSpmm};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Row-normalised adjacency `Â = D⁻¹A` (mean neighbourhood aggregation).
fn mean_aggregation_matrix(a: &CsrMatrix<f64>) -> CsrMatrix<f64> {
    let mut coo = CooMatrix::new(a.rows(), a.cols());
    for r in 0..a.rows() {
        let deg = a.row_nnz(r).max(1) as f64;
        for (&c, &v) in a.row_indices(r).iter().zip(a.row_values(r)) {
            coo.push(r, c, v / deg).unwrap();
        }
    }
    coo.to_csr()
}

fn main() {
    let n = 8_000;
    let k = 64;
    let layers = 4;
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    let graph = datasets::gap_twitter_like(n, &mut rng);
    let a_hat = mean_aggregation_matrix(&graph.to_adjacency());
    println!(
        "social graph: n = {n}, m = {}, Δ = {} — propagating {k} features through \
         {layers} layers",
        graph.m(),
        graph.max_degree()
    );

    // Initial features.
    let x0 = DenseMatrix::from_fn(n, k, |r, c| (((r * 17 + c * 5) % 19) as f64) / 19.0 - 0.5);

    // Sequential ground truth with ReLU between layers.
    let d = la_decompose(
        &a_hat,
        &DecomposeConfig::with_width(512),
        &mut RandomForestLa::new(5),
    )
    .expect("decompose Â");
    let truth = d.iterate(&x0, layers, |v| v.max(0.0)).unwrap();

    // Distributed propagation with ReLU between layers (σ is element-wise
    // and applied on the output blocks in place, so it adds no traffic).
    let relu: fn(f64) -> f64 = |v| v.max(0.0);
    let arrow = ArrowSpmm::new(&d).expect("arrow plan");
    let arrow_run = arrow.run_sigma(&x0, layers, Some(relu)).expect("arrow run");
    let p = arrow.ranks();
    let baseline =
        A15dSpmm::new(&a_hat, p - (p % 4), 4.min(p)).or_else(|_| A15dSpmm::new(&a_hat, p, 1));
    println!("\nper-layer communication bills ({p} ranks):");
    println!(
        "  arrow : {:.3} ms simulated, {:.1} KiB max volume",
        arrow_run.sim_time_per_iter() * 1e3,
        arrow_run.volume_per_iter() / 1024.0
    );
    if let Ok(b15) = baseline {
        let r15 = b15.run(&x0, layers).expect("1.5D run");
        println!(
            "  1.5D  : {:.3} ms simulated, {:.1} KiB max volume ({})",
            r15.sim_time_per_iter() * 1e3,
            r15.volume_per_iter() / 1024.0,
            b15.name()
        );
    }

    // The distributed ReLU chain must match the sequential Eq. 1 chain.
    println!(
        "\ndistributed σ-chain check vs sequential Eq. 1: max |Δ| = {:.2e}",
        arrow_run.y.max_abs_diff(&truth).unwrap()
    );
    println!(
        "final feature Frobenius norm = {:.4}",
        truth.frobenius_norm()
    );
}
