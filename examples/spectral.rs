//! Spectral estimation by power iteration — the paper's second motivating
//! workload (§1: "computation of eigenvectors", Lanczos-style iterations).
//!
//! ```text
//! cargo run --release --example spectral
//! ```
//!
//! Estimates the dominant eigenvalue of a road-network-like adjacency
//! matrix by block power iteration, using the arrow decomposition for the
//! repeated SpMM. The decomposition is computed once and amortised over
//! the iterations — exactly the `T ≫ 1` regime of §2.

use arrow_matrix::core::{la_decompose, DecomposeConfig, RandomForestLa};
use arrow_matrix::graph::generators::datasets;
use arrow_matrix::sparse::{ops, spmm, CooMatrix, CsrMatrix, DenseMatrix};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let n = 20_000u32;
    let mut rng = ChaCha8Rng::seed_from_u64(2024);
    let graph = datasets::osm_like(n, &mut rng);
    let a: CsrMatrix<f64> = graph.to_adjacency();
    let delta = graph.max_degree();
    println!("road network: n = {n}, m = {}, Δ = {delta}", graph.m());

    // Road networks are (near-)bipartite: the adjacency spectrum is close
    // to symmetric and plain power iteration oscillates between ±λ₁. The
    // standard fix is a diagonal shift: iterate on B = A + Δ·I, whose
    // dominant eigenvalue is λ₁(A) + Δ. The shift also exercises the
    // decomposition's diagonal handling (diagonals always live in B₀'s
    // band).
    let shift: CsrMatrix<f64> = {
        let mut coo = CooMatrix::new(n, n);
        for v in 0..n {
            coo.push(v, v, delta as f64).unwrap();
        }
        coo.to_csr()
    };
    let b = ops::add(&a, &shift).unwrap();
    let d = la_decompose(
        &b,
        &DecomposeConfig::with_width(1024),
        &mut RandomForestLa::new(3),
    )
    .expect("decompose");
    println!(
        "decomposition order = {} (computed once, reused every iteration)",
        d.order()
    );

    // Block power iteration with 4 probe vectors.
    let k = 4;
    let mut x = DenseMatrix::from_fn(n, k, |_, _| rng.gen_range(-1.0..1.0));
    x.normalize_columns();
    let mut lambda = 0.0f64;
    for it in 1..=40 {
        let y = d.multiply(&x).expect("decomposition multiply");
        // Rayleigh quotient of the first probe column (‖x‖ = 1).
        lambda = (0..n).map(|r| x.get(r, 0) * y.get(r, 0)).sum::<f64>() - delta as f64;
        x = y;
        x.normalize_columns();
        if it % 10 == 0 {
            println!("iteration {it}: λ₁ ≈ {lambda:.6}");
        }
    }

    // Cross-check the final iterate against a direct SpMM.
    let direct = spmm::spmm(&b, &x).unwrap();
    let via = d.multiply(&x).unwrap();
    println!(
        "final check: max |Δ| between decomposition multiply and direct = {:.2e}",
        via.max_abs_diff(&direct).unwrap()
    );
    // The spectral radius of a graph lies between its average and maximum
    // degree.
    println!(
        "λ₁ ≈ {lambda:.4} (avg degree = {:.2}, Δ = {delta}) — within the degree bounds: {}",
        graph.avg_degree(),
        lambda >= graph.avg_degree() - 1e-6 && lambda <= delta as f64 + 1e-6
    );
}
