//! # arrow-matrix
//!
//! A Rust reproduction of *"Arrow Matrix Decomposition: A Novel Approach
//! for Communication-Efficient Sparse Matrix Multiplication"*
//! (Gianinazzi et al., PPoPP 2024).
//!
//! This facade crate re-exports the public API of the workspace:
//!
//! * [`sparse`] — CSR/COO/dense matrices, SpMM kernels, permutations,
//!   bandwidth and arrow-width measures.
//! * [`graph`] — graphs, traversals, spanning forests, separators, dataset
//!   generators, Zipf-degree analysis.
//! * [`linarr`] — linear arrangement algorithms (Separator-LA,
//!   smallest-first tree layout, random spanning forest LA, RCM).
//! * [`core`] — the arrow matrix decomposition itself (LA-Decompose with
//!   high-degree pruning, arrow matrices, decomposition statistics) and
//!   the **versioned persistence catalog** (`core::catalog`): one
//!   crash-safe on-disk directory of `fingerprint → version chain`
//!   manifests shared by every serving layer, with point-in-time
//!   restore, garbage collection, and legacy spill migration.
//! * [`comm`] — the message-passing machine with α-β cost accounting.
//! * [`exec`] — the persistent work-stealing executor: one shared
//!   thread pool for machine ranks (cached blocking rank slots),
//!   data-parallel kernel chunks (via the vendored `rayon` facade), and
//!   the refresh worker's decompose. Sized once per process
//!   (`--threads N` / `AMD_EXEC_THREADS` / `available_parallelism`);
//!   results never depend on the pool size.
//! * [`partition`] — partitioning baselines (HYPE-style neighborhood
//!   expansion).
//! * [`spmm`] — distributed SpMM algorithms (arrow, 1.5D/1D/2D
//!   A-stationary, HP-1D), each with a [`predict_volume`]
//!   hook deriving per-iteration cost from the planned distribution.
//! * [`engine`] — the batched SpMM **serving engine**: an LRU
//!   decomposition cache keyed by content fingerprint (with disk spill
//!   via `core::persist`, so warm restarts skip LA-Decompose), a request
//!   batcher coalescing concurrent multiply queries into multi-RHS runs,
//!   and a cost-model planner that binds the cheapest algorithm per
//!   matrix. See `examples/serving.rs` for a throughput demonstration
//!   and `arrow-matrix-cli serve` for the command-line front end.
//! * [`stream`] — the **streaming-update subsystem**: a served matrix
//!   becomes `A₀ + ΔA` (decomposed base + sparse delta), multiplies are
//!   answered through a per-iteration delta correction without
//!   re-decomposing. The multi-tenant `StreamHub` serves many mutating
//!   matrices behind one engine with per-tenant staleness budgets,
//!   **double-buffered background refresh** (a worker thread decomposes
//!   the merged snapshot while the old binding + overlay keeps serving),
//!   FIFO fairness under a shared refresh budget, delta-aware early
//!   rebinds, and a full **tenant lifecycle**: per-tenant flush, explicit
//!   `evict` (binding deregistered, catalog chain garbage-collected),
//!   and idle-eviction policy. `arrow-matrix-cli stream [--tenants N]
//!   [--async-refresh] [--catalog DIR]` drives a synthetic mutation
//!   stream end to end, with warm restarts across runs.
//! * [`chaos`] — the **fault-injection harness**: named, deterministic
//!   failpoints threaded through catalog I/O, the refresh worker, and
//!   the serving path (compiled to relaxed-atomic no-ops when
//!   disarmed), fault plans, recorded mutation/query traces, and
//!   adversarial delta generators. The [`scenario`] module replays
//!   those traces against a live [`stream::StreamHub`] under a fault
//!   plan and asserts crash-exact recovery: every answer bit-matches a
//!   fault-free reference, and restarting after any injected crash
//!   reloads the catalog with zero orphans. `arrow-matrix-cli chaos`
//!   runs the built-in scenario suite.
//!
//! See `examples/quickstart.rs` for an end-to-end tour.
//!
//! [`predict_volume`]: spmm::DistSpmm::predict_volume
//!
//! ```
//! use arrow_matrix::core::{la_decompose, DecomposeConfig, RandomForestLa};
//! use arrow_matrix::graph::generators::basic;
//! use arrow_matrix::sparse::{CsrMatrix, DenseMatrix, spmm};
//! use arrow_matrix::spmm::{ArrowSpmm, DistSpmm};
//!
//! // A star graph: high bandwidth under every ordering, arrow-width 1.
//! let a: CsrMatrix<f64> = basic::star(100).to_adjacency();
//! let d = la_decompose(&a, &DecomposeConfig::with_width(16),
//!                      &mut RandomForestLa::new(1)).unwrap();
//! assert_eq!(d.validate(&a).unwrap(), 0.0);
//!
//! // Multiply distributed and compare against a direct SpMM.
//! let x = DenseMatrix::from_fn(100, 4, |r, c| (r + c) as f64);
//! let run = ArrowSpmm::new(&d).unwrap().run(&x, 2).unwrap();
//! let mut direct = x.clone();
//! for _ in 0..2 { direct = spmm::spmm(&a, &direct).unwrap(); }
//! assert!(run.y.max_abs_diff(&direct).unwrap() < 1e-9);
//! ```

pub use amd_chaos as chaos;
pub use amd_comm as comm;
pub use amd_engine as engine;
pub use amd_exec as exec;
pub use amd_graph as graph;
pub use amd_linarr as linarr;
pub use amd_obs as obs;
pub use amd_partition as partition;
pub use amd_sparse as sparse;
pub use amd_spmm as spmm;
pub use amd_stream as stream;
pub use arrow_core as core;

pub mod scenario;

pub use amd_sparse::{CooMatrix, CsrMatrix, DenseMatrix, Permutation};
