//! Chaos scenario harness: replay a recorded mutation/query trace
//! against a live [`StreamHub`] under a [`FaultPlan`], and assert the
//! two recovery invariants end to end:
//!
//! 1. **Serving is bit-exact under faults.** Every query answer is
//!    checked against a serial reference multiply on a truth mirror of
//!    the tenant's matrix; traces and operands are integer-valued, so
//!    the comparison is `max |Δ| == 0.0` exactly — a worker death, a
//!    retried multiply, or a crashed catalog write must not perturb a
//!    single bit.
//! 2. **Restart after any injected crash recovers with zero orphans.**
//!    Crash scenarios abandon the catalog mid-write exactly where the
//!    failpoint fired, then reopen the directory and assert that every
//!    stale temp file was swept, every orphaned payload was adopted,
//!    and every manifest record resolves to a payload on disk.
//!
//! [`builtin_scenarios`] is the suite `arrow-matrix-cli chaos` runs
//! (worker kills, retry exhaustion, a crash at every catalog
//! failpoint, a torn payload write, transient multiply errors, and the
//! fault-free adversarial workloads); [`run`] executes one scenario
//! and never panics — failures come back as a failed
//! [`ScenarioReport`].
//!
//! [`StreamHub`]: amd_stream::StreamHub
//! [`FaultPlan`]: amd_chaos::FaultPlan

use amd_chaos::failpoint;
use amd_chaos::{generators, FaultPlan, ScenarioTrace, TraceOp};
use amd_engine::EngineConfig;
use amd_sparse::{ops, CooMatrix, CsrMatrix, DenseMatrix, SparseResult};
use amd_spmm::reference::iterated_spmm;
use amd_stream::{HubConfig, StalenessBudget, StreamHub, Update};
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

/// What a scenario must demonstrate beyond bit-exact serving.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expectation {
    /// At least one worker death, respawned without a sync fallback.
    WorkerKill,
    /// Retries exhaust: the hub takes the counted sync-refresh
    /// fallback at least once.
    SyncFallback,
    /// The injected crash left debris (stale tmp and/or orphaned
    /// payload) and reopening healed all of it.
    CrashRecovery,
    /// The torn payload is rejected by the checksum footer on reload.
    TornPayload,
    /// At least one transient multiply error retried in place.
    TransientMultiply,
    /// No faults: the adversarial workload itself must verify, with at
    /// least one refresh actually committed.
    FaultFree,
    /// Bit-exact serving only — the criterion for replaying an
    /// arbitrary recorded trace that may not refresh at all.
    Exact,
}

/// One runnable scenario: a trace, a fault plan, and what passing
/// means.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Name used for reporting and the scratch catalog directory.
    pub name: String,
    /// The mutation/query stream to replay.
    pub trace: ScenarioTrace,
    /// Faults armed for the duration of the replay.
    pub plan: FaultPlan,
    /// Attach a write-through catalog (scratch directory, cleared
    /// before the run).
    pub with_catalog: bool,
    /// After the run, simulate a restart: reopen the catalog directory
    /// cold and assert the recovery invariants.
    pub crash_reopen: bool,
    /// The scenario-specific pass criterion.
    pub expect: Expectation,
}

/// The outcome of one scenario run — every counter the pass criteria
/// (and the `BENCH_scenarios.json` artifact) need.
#[derive(Debug, Clone, Default)]
pub struct ScenarioReport {
    /// Scenario name.
    pub name: String,
    /// All invariants held.
    pub passed: bool,
    /// Human-readable outcome (first failure, or a success summary).
    pub detail: String,
    /// Query answers checked against the serial reference.
    pub verified: u64,
    /// Largest absolute serving error over all verified answers; must
    /// be exactly `0.0` (integer-valued traces).
    pub max_abs_err: f64,
    /// [`HubStats::worker_restarts`](amd_stream::hub::HubStats) after the run.
    pub worker_restarts: u64,
    /// [`HubStats::refresh_retries`](amd_stream::hub::HubStats) after the run.
    pub refresh_retries: u64,
    /// [`HubStats::sync_fallbacks`](amd_stream::hub::HubStats) after the run.
    pub sync_fallbacks: u64,
    /// Background refreshes committed during the run.
    pub refreshes_completed: u64,
    /// Transient multiply errors absorbed by the engine's retry loop.
    pub multiply_retries: u64,
    /// Catalog write-throughs that failed (the crash injections land
    /// here — serving absorbs them).
    pub spill_failures: u64,
    /// Catalog payloads that failed to load on the post-restart probe
    /// (the torn-write detection counter).
    pub load_failures: u64,
    /// Orphaned payloads adopted by the post-crash reopen.
    pub recovered_records: u64,
    /// Stale `*.tmp` files swept by the post-crash reopen.
    pub stale_tmp_swept: u64,
    /// Per-site failpoint activity: `(site, hits, fired)`.
    pub fired: Vec<(String, u64, u64)>,
    /// Median per-query serving latency (wall-clock around
    /// `run_single`), milliseconds. `0.0` when no queries ran.
    pub latency_p50_ms: f64,
    /// 99th-percentile per-query serving latency, milliseconds.
    pub latency_p99_ms: f64,
    /// 99.9th-percentile per-query serving latency, milliseconds —
    /// the tail a fault injection (retry, restart, sync fallback)
    /// shows up in even when the median stays flat.
    pub latency_p999_ms: f64,
}

impl ScenarioReport {
    fn fired_total(&self) -> u64 {
        self.fired.iter().map(|(_, _, fired)| fired).sum()
    }
}

/// The built-in suite, seeded deterministically: same `seed`, same
/// traces, same injection points, same counters.
pub fn builtin_scenarios(seed: u64) -> Vec<Scenario> {
    // The crash trace performs exactly 3 catalog puts (1 at admit, 1
    // per committed refresh round), so `Nth(3)` targets the *final*
    // put: nothing writes afterwards, which is what makes the
    // injection crash-exact — a real crash leaves no later put to
    // paper over the debris.
    let crash_trace = || generators::region_merging(64, 1, 2, 4, seed);
    let crash = |name: &str, site: &str| Scenario {
        name: name.to_string(),
        trace: crash_trace(),
        plan: FaultPlan::crash_at(seed, site, 3),
        with_catalog: true,
        crash_reopen: true,
        expect: Expectation::CrashRecovery,
    };
    vec![
        Scenario {
            name: "worker-kill".to_string(),
            trace: generators::region_merging(96, 2, 4, 6, seed),
            plan: FaultPlan::worker_kill(seed),
            with_catalog: false,
            crash_reopen: false,
            expect: Expectation::WorkerKill,
        },
        Scenario {
            name: "sync-fallback".to_string(),
            trace: generators::region_merging(64, 1, 2, 4, seed.wrapping_add(1)),
            plan: FaultPlan::worker_kill_always(seed),
            with_catalog: false,
            crash_reopen: false,
            expect: Expectation::SyncFallback,
        },
        crash(
            "crash-window-payload-fsync",
            failpoint::CATALOG_PAYLOAD_BEFORE_FSYNC,
        ),
        crash(
            "crash-window-payload-rename",
            failpoint::CATALOG_PAYLOAD_AFTER_RENAME,
        ),
        crash(
            "crash-window-manifest-rewrite",
            failpoint::CATALOG_MANIFEST_BEFORE_REWRITE,
        ),
        crash(
            "crash-window-manifest-fsync",
            failpoint::CATALOG_MANIFEST_BEFORE_FSYNC,
        ),
        Scenario {
            name: "torn-payload".to_string(),
            trace: crash_trace(),
            plan: FaultPlan::torn_payload(seed, 0.5),
            with_catalog: true,
            crash_reopen: true,
            expect: Expectation::TornPayload,
        },
        Scenario {
            name: "multiply-transient".to_string(),
            trace: generators::region_merging(64, 1, 2, 4, seed.wrapping_add(3)),
            plan: FaultPlan::transient_multiply(seed, 2),
            with_catalog: false,
            crash_reopen: false,
            expect: Expectation::TransientMultiply,
        },
        Scenario {
            name: "adversarial-region".to_string(),
            trace: generators::region_merging(96, 3, 4, 8, seed.wrapping_add(4)),
            plan: FaultPlan::new(seed),
            with_catalog: false,
            crash_reopen: false,
            expect: Expectation::FaultFree,
        },
        Scenario {
            name: "oscillating".to_string(),
            trace: generators::oscillating(96, 2, 6, seed.wrapping_add(5)),
            plan: FaultPlan::new(seed),
            with_catalog: true,
            crash_reopen: false,
            expect: Expectation::FaultFree,
        },
        Scenario {
            name: "zipf-burst".to_string(),
            trace: generators::zipf_bursts(96, 3, 12, 1.2, 8, seed.wrapping_add(6)),
            plan: FaultPlan::new(seed),
            with_catalog: false,
            crash_reopen: false,
            expect: Expectation::FaultFree,
        },
        Scenario {
            name: "tenant-skew".to_string(),
            trace: generators::zipf_tenant_skew(64, 16, 4, 6, 1.3, seed.wrapping_add(7)),
            plan: FaultPlan::new(seed),
            with_catalog: false,
            crash_reopen: false,
            expect: Expectation::FaultFree,
        },
    ]
}

/// Runs every built-in scenario under `seed`, in order.
pub fn run_all(seed: u64) -> Vec<ScenarioReport> {
    builtin_scenarios(seed).iter().map(run).collect()
}

/// Runs one scenario. Never panics and never propagates hub errors: a
/// failure of any invariant (or any unexpected error) comes back as a
/// failed report with the cause in `detail`.
pub fn run(scenario: &Scenario) -> ScenarioReport {
    // Worker-kill scenarios panic threads on purpose; keep the default
    // panic hook's backtrace spam out of the suite's output.
    failpoint::quiet_injected_panics();
    let mut report = ScenarioReport {
        name: scenario.name.clone(),
        ..ScenarioReport::default()
    };
    let dir = scenario.with_catalog.then(|| scratch_dir(&scenario.name));
    if let Some(d) = &dir {
        let _ = fs::remove_dir_all(d);
    }
    let result = replay(scenario, dir.clone(), &mut report);
    match result {
        Ok(()) => evaluate(scenario, &mut report),
        Err(e) => {
            report.passed = false;
            report.detail = format!("scenario errored: {e}");
        }
    }
    if let Some(d) = &dir {
        let _ = fs::remove_dir_all(d);
    }
    report
}

/// The replay itself: arm the plan, drive the hub through the trace,
/// verify every query bit-exactly, then (for crash scenarios) reopen
/// the abandoned catalog and record what recovery found.
fn replay(
    scenario: &Scenario,
    dir: Option<PathBuf>,
    report: &mut ScenarioReport,
) -> SparseResult<()> {
    let n = scenario.trace.n as u32;
    let base = base_matrix(n)?;
    let guard = scenario.plan.arm();
    let mut hub = StreamHub::new(HubConfig {
        engine: EngineConfig {
            arrow_width: 16,
            spill_dir: dir.clone(),
            cache_capacity: 64,
            ..EngineConfig::default()
        },
        // Refreshes are driven exclusively by the trace's explicit
        // `Refresh`/`Settle` ops so injection points are deterministic.
        budget: StalenessBudget::nnz_fraction(1e9),
        auto_refresh: false,
        async_refresh: true,
        ..HubConfig::default()
    })?;
    let ids: Vec<_> = (0..scenario.trace.tenants)
        .map(|_| hub.admit(base.clone()))
        .collect::<SparseResult<_>>()?;
    let mut truth = vec![base.clone(); scenario.trace.tenants];
    let mut latencies_ms: Vec<f64> = Vec::new();
    for op in &scenario.trace.ops {
        match *op {
            TraceOp::Add {
                tenant,
                row,
                col,
                value,
            } => {
                mirror(&mut truth[tenant], row, col, value, true)?;
                hub.update(
                    ids[tenant],
                    Update::Add {
                        row,
                        col,
                        delta: value,
                    },
                )?;
            }
            TraceOp::Set {
                tenant,
                row,
                col,
                value,
            } => {
                mirror(&mut truth[tenant], row, col, value, false)?;
                hub.update(ids[tenant], Update::Set { row, col, value })?;
            }
            TraceOp::Query {
                tenant,
                salt,
                iters,
            } => {
                let x = operand(n, salt);
                let sw = amd_obs::Stopwatch::start();
                let resp = hub.run_single(ids[tenant], x.clone(), iters as u32, None)?;
                latencies_ms.push(sw.elapsed_seconds() * 1e3);
                let xm = DenseMatrix::from_vec(n, 1, x)?;
                let want = iterated_spmm(&truth[tenant], &xm, iters as u32)?;
                let got = DenseMatrix::from_vec(n, 1, resp.y)?;
                report.max_abs_err = report.max_abs_err.max(got.max_abs_diff(&want)?);
                report.verified += 1;
            }
            TraceOp::Refresh { tenant } => {
                hub.refresh(ids[tenant])?;
            }
            TraceOp::Settle => {
                hub.wait_refreshes()?;
            }
        }
    }
    hub.wait_refreshes()?;
    report.latency_p50_ms = percentile_ms(&mut latencies_ms, 50.0);
    report.latency_p99_ms = percentile_ms(&mut latencies_ms, 99.0);
    report.latency_p999_ms = percentile_ms(&mut latencies_ms, 99.9);
    let hstats = hub.stats();
    report.worker_restarts = hstats.worker_restarts;
    report.refresh_retries = hstats.refresh_retries;
    report.sync_fallbacks = hstats.sync_fallbacks;
    report.refreshes_completed = hstats.refreshes_completed;
    report.multiply_retries = hub.engine_stats().multiply_retries;
    report.spill_failures = hub.cache_stats().spill_failures;
    report.fired = failpoint::fired_counts();
    // Tear down IN THIS ORDER: the hub first (its drop joins worker
    // threads that may still probe failpoints), then the guard.
    drop(hub);
    drop(guard);
    if scenario.crash_reopen {
        if let Some(d) = &dir {
            reopen_and_probe(d, report)?;
        }
    }
    Ok(())
}

/// Simulated restart: reopen the catalog directory cold, record what
/// recovery did, re-load every surviving record (the torn-write
/// probe), and assert the on-disk invariants (no stale tmp files, no
/// unreferenced payloads, no dangling records).
fn reopen_and_probe(dir: &Path, report: &mut ScenarioReport) -> SparseResult<()> {
    let mut catalog = crate::core::Catalog::open(dir)?;
    report.recovered_records = catalog.stats().recovered_records;
    report.stale_tmp_swept = catalog.stats().stale_tmp_swept;
    for record in catalog.records().to_vec() {
        // A payload that fails its checksum is dropped here (counted
        // in load_failures) so the next decompose re-puts over it.
        let _ = catalog.get(record.fingerprint, &record.config, record.seed)?;
    }
    report.load_failures = catalog.stats().load_failures;
    let mut stale_tmp = 0u64;
    let mut orphans = 0u64;
    let referenced: Vec<String> = catalog
        .records()
        .iter()
        .map(|r| r.payload.clone())
        .collect();
    for entry in fs::read_dir(dir)
        .map_err(|e| amd_sparse::SparseError::InvalidCsr(format!("scratch dir vanished: {e}")))?
    {
        let Ok(entry) = entry else { continue };
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.ends_with(".tmp") {
            stale_tmp += 1;
        } else if name.ends_with(".amd") && !referenced.contains(&name) {
            orphans += 1;
        }
    }
    let mut dangling = 0u64;
    for record in catalog.records() {
        if !catalog.payload_path(record).is_file() {
            dangling += 1;
        }
    }
    if stale_tmp > 0 || orphans > 0 || dangling > 0 {
        report.detail = format!(
            "recovery left debris: {stale_tmp} stale tmp, {orphans} orphaned payloads, \
             {dangling} dangling records"
        );
    }
    Ok(())
}

/// Applies the scenario's pass criterion to the collected counters.
fn evaluate(scenario: &Scenario, report: &mut ScenarioReport) {
    if !report.detail.is_empty() {
        report.passed = false;
        return;
    }
    if let Some(failure) = first_failure(scenario, report) {
        report.detail = failure;
        return;
    }
    report.passed = true;
    let mut summary = format!("{} answers bit-exact", report.verified);
    if report.worker_restarts > 0 {
        let _ = write!(
            summary,
            ", {} worker restart(s), {} retry(ies), {} sync fallback(s)",
            report.worker_restarts, report.refresh_retries, report.sync_fallbacks
        );
    }
    if report.multiply_retries > 0 {
        let _ = write!(summary, ", {} multiply retry(ies)", report.multiply_retries);
    }
    if report.recovered_records + report.stale_tmp_swept > 0 {
        let _ = write!(
            summary,
            ", recovery adopted {} orphan(s) and swept {} tmp file(s)",
            report.recovered_records, report.stale_tmp_swept
        );
    }
    if report.load_failures > 0 {
        let _ = write!(
            summary,
            ", {} torn payload(s) rejected",
            report.load_failures
        );
    }
    report.detail = summary;
}

/// The first violated invariant, if any (checked in severity order).
fn first_failure(scenario: &Scenario, report: &ScenarioReport) -> Option<String> {
    if report.verified == 0 {
        return Some("no answers were verified".to_string());
    }
    if report.max_abs_err != 0.0 {
        return Some(format!(
            "serving diverged from the reference: max |Δ| = {:.3e}",
            report.max_abs_err
        ));
    }
    match scenario.expect {
        Expectation::WorkerKill => {
            if report.worker_restarts == 0 {
                return Some("no worker death was observed".to_string());
            }
            if report.sync_fallbacks != 0 {
                return Some("unexpected sync fallback".to_string());
            }
        }
        Expectation::SyncFallback => {
            if report.sync_fallbacks == 0 {
                return Some("retries never exhausted into a sync fallback".to_string());
            }
        }
        Expectation::CrashRecovery => {
            if report.fired_total() == 0 {
                return Some("the crash failpoint never fired".to_string());
            }
            if report.recovered_records + report.stale_tmp_swept == 0 {
                return Some("the crash left no debris for recovery to heal".to_string());
            }
        }
        Expectation::TornPayload => {
            if report.fired_total() == 0 {
                return Some("the torn-write failpoint never fired".to_string());
            }
            if report.load_failures == 0 {
                return Some("the torn payload was not rejected on reload".to_string());
            }
        }
        Expectation::TransientMultiply => {
            if report.multiply_retries == 0 {
                return Some("no transient multiply was retried".to_string());
            }
        }
        Expectation::FaultFree => {
            if report.refreshes_completed == 0 {
                return Some("no background refresh committed".to_string());
            }
        }
        Expectation::Exact => {}
    }
    None
}

/// The `BENCH_scenarios.json` artifact (schema `amd-scenarios/1`).
pub fn reports_to_json(seed: u64, reports: &[ScenarioReport]) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"amd-scenarios/1\",");
    let _ = writeln!(out, "  \"seed\": {seed},");
    let passed = reports.iter().filter(|r| r.passed).count();
    let _ = writeln!(out, "  \"passed\": {passed},");
    let _ = writeln!(out, "  \"failed\": {},", reports.len() - passed);
    let _ = writeln!(out, "  \"scenarios\": [");
    for (i, r) in reports.iter().enumerate() {
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"name\": \"{}\",", r.name);
        let _ = writeln!(out, "      \"passed\": {},", r.passed);
        let _ = writeln!(out, "      \"verified\": {},", r.verified);
        let _ = writeln!(out, "      \"max_abs_err\": {:?},", r.max_abs_err);
        let _ = writeln!(out, "      \"worker_restarts\": {},", r.worker_restarts);
        let _ = writeln!(out, "      \"refresh_retries\": {},", r.refresh_retries);
        let _ = writeln!(out, "      \"sync_fallbacks\": {},", r.sync_fallbacks);
        let _ = writeln!(
            out,
            "      \"refreshes_completed\": {},",
            r.refreshes_completed
        );
        let _ = writeln!(out, "      \"multiply_retries\": {},", r.multiply_retries);
        let _ = writeln!(out, "      \"spill_failures\": {},", r.spill_failures);
        let _ = writeln!(out, "      \"load_failures\": {},", r.load_failures);
        let _ = writeln!(out, "      \"recovered_records\": {},", r.recovered_records);
        let _ = writeln!(out, "      \"stale_tmp_swept\": {},", r.stale_tmp_swept);
        let _ = writeln!(out, "      \"latency_p50_ms\": {:.4},", r.latency_p50_ms);
        let _ = writeln!(out, "      \"latency_p99_ms\": {:.4},", r.latency_p99_ms);
        let _ = writeln!(out, "      \"latency_p999_ms\": {:.4},", r.latency_p999_ms);
        let _ = writeln!(out, "      \"fired\": [");
        for (j, (site, hits, fired)) in r.fired.iter().enumerate() {
            let _ = writeln!(
                out,
                "        {{\"site\": \"{site}\", \"hits\": {hits}, \"fired\": {fired}}}{}",
                if j + 1 < r.fired.len() { "," } else { "" }
            );
        }
        let _ = writeln!(out, "      ],");
        let _ = writeln!(out, "      \"detail\": \"{}\"", r.detail.replace('"', "'"));
        let _ = writeln!(
            out,
            "    }}{}",
            if i + 1 < reports.len() { "," } else { "" }
        );
    }
    let _ = writeln!(out, "  ]");
    out.push('}');
    out.push('\n');
    out
}

/// Nearest-rank percentile over per-query latencies, sorting in place.
/// `0.0` for an empty sample (a trace with no queries fails the
/// `verified == 0` invariant anyway).
fn percentile_ms(samples: &mut [f64], pct: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(f64::total_cmp);
    let rank = ((pct / 100.0) * samples.len() as f64).ceil() as usize;
    samples[rank.clamp(1, samples.len()) - 1]
}

/// Deterministic integer-valued base: a symmetric ring with a heavy
/// diagonal. Every value (and every trace update) is a small integer,
/// so corrected serving must match the reference *exactly*.
fn base_matrix(n: u32) -> SparseResult<CsrMatrix<f64>> {
    let mut coo = CooMatrix::new(n, n);
    for i in 0..n {
        coo.push(i, i, 2.0)?;
        coo.push(i, (i + 1) % n, 1.0)?;
        coo.push((i + 1) % n, i, 1.0)?;
    }
    Ok(coo.to_csr())
}

/// The deterministic dense operand a trace `Query` op encodes by salt.
fn operand(n: u32, salt: u64) -> Vec<f64> {
    (0..n)
        .map(|r| (((salt as u32).wrapping_add(3 * r) % 11) as f64) - 5.0)
        .collect()
}

/// Mirrors one update onto a truth matrix through a one-entry delta.
fn mirror(
    truth: &mut CsrMatrix<f64>,
    row: u32,
    col: u32,
    value: f64,
    additive: bool,
) -> SparseResult<()> {
    let old = truth.get(row, col);
    let new = if additive { old + value } else { value };
    let mut patch = CooMatrix::new(truth.rows(), truth.cols());
    patch.push(row, col, new - old)?;
    *truth = ops::apply_delta(truth, &patch.to_csr())?;
    Ok(())
}

/// Per-process, per-scenario scratch directory for catalog runs.
fn scratch_dir(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("amd-chaos-{}-{}", std::process::id(), name))
}
