//! `arrow-matrix-cli` — command-line front end for the library.
//!
//! ```text
//! arrow-matrix-cli generate <dataset> <n> <out.mtx> [seed]
//! arrow-matrix-cli info <matrix.mtx>
//! arrow-matrix-cli decompose <matrix.mtx> <b> <out.amd> [seed]
//! arrow-matrix-cli multiply <matrix.mtx> <decomp.amd> [k] [iters]
//! ```
//!
//! Mirrors the paper's artifact workflow: generate (or download) a
//! SuiteSparse-format matrix, decompose it once, persist the
//! decomposition, and run distributed multiplies against it.

use arrow_matrix::core::stats::DecompositionStats;
use arrow_matrix::core::{la_decompose, persist, DecomposeConfig, RandomForestLa};
use arrow_matrix::graph::degree::DegreeStats;
use arrow_matrix::graph::generators::datasets::DatasetKind;
use arrow_matrix::graph::Graph;
use arrow_matrix::sparse::io::{read_matrix_market, write_matrix_market};
use arrow_matrix::sparse::{bandwidth, CsrMatrix, DenseMatrix};
use arrow_matrix::spmm::{ArrowSpmm, DistSpmm};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("generate") => cmd_generate(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some("decompose") => cmd_decompose(&args[1..]),
        Some("multiply") => cmd_multiply(&args[1..]),
        _ => {
            eprintln!(
                "usage:\n  arrow-matrix-cli generate <dataset> <n> <out.mtx> [seed]\n  \
                 arrow-matrix-cli info <matrix.mtx>\n  \
                 arrow-matrix-cli decompose <matrix.mtx> <b> <out.amd> [seed]\n  \
                 arrow-matrix-cli multiply <matrix.mtx> <decomp.amd> [k] [iters]\n\
                 datasets: mawi genbank webbase osm gap-twitter sk-2005"
            );
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn kind_by_name(name: &str) -> Result<DatasetKind, String> {
    match name.to_lowercase().as_str() {
        "mawi" => Ok(DatasetKind::Mawi),
        "genbank" => Ok(DatasetKind::GenBank),
        "webbase" => Ok(DatasetKind::WebBase),
        "osm" | "osm-europe" => Ok(DatasetKind::OsmEurope),
        "gap-twitter" | "twitter" => Ok(DatasetKind::GapTwitter),
        "sk-2005" | "sk2005" => Ok(DatasetKind::Sk2005),
        other => Err(format!("unknown dataset '{other}'")),
    }
}

fn load_matrix(path: &str) -> Result<CsrMatrix<f64>, String> {
    let file = File::open(path).map_err(|e| format!("open {path}: {e}"))?;
    let coo = read_matrix_market(BufReader::new(file)).map_err(|e| e.to_string())?;
    Ok(coo.to_csr())
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let [kind, n, out, rest @ ..] = args else {
        return Err("generate needs <dataset> <n> <out.mtx> [seed]".into());
    };
    let kind = kind_by_name(kind)?;
    let n: u32 = n.parse().map_err(|e| format!("bad n: {e}"))?;
    let seed: u64 = rest.first().map_or(Ok(42), |s| s.parse()).map_err(|e| format!("bad seed: {e}"))?;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let g = kind.generate(n, &mut rng);
    let a: CsrMatrix<f64> = g.to_adjacency();
    let file = File::create(out).map_err(|e| format!("create {out}: {e}"))?;
    write_matrix_market(&a, BufWriter::new(file)).map_err(|e| e.to_string())?;
    let s = DegreeStats::of(&g);
    println!(
        "wrote {out}: {} ({} vertices, {} edges, nnz/n = {:.2}, Δ = {})",
        kind.name(),
        s.n,
        s.m,
        s.avg_degree,
        s.max_degree
    );
    Ok(())
}

fn cmd_info(args: &[String]) -> Result<(), String> {
    let [path] = args else {
        return Err("info needs <matrix.mtx>".into());
    };
    let a = load_matrix(path)?;
    println!("matrix : {} x {}, nnz = {}", a.rows(), a.cols(), a.nnz());
    if a.rows() == a.cols() {
        let g = Graph::from_matrix_structure(&a);
        let s = DegreeStats::of(&g);
        println!(
            "graph  : m = {}, avg degree = {:.2}, Δ = {} ({:.2}% of n), isolated = {}",
            s.m,
            s.avg_degree,
            s.max_degree,
            100.0 * s.max_degree_fraction(),
            s.isolated
        );
        println!(
            "bounds : natural-order bandwidth = {}, §3 bandwidth lower bound = {}",
            bandwidth(&a),
            arrow_matrix::graph::bounds::bandwidth_lower_bound(&g)
        );
    }
    Ok(())
}

fn cmd_decompose(args: &[String]) -> Result<(), String> {
    let [input, b, out, rest @ ..] = args else {
        return Err("decompose needs <matrix.mtx> <b> <out.amd> [seed]".into());
    };
    let a = load_matrix(input)?;
    let b: u32 = b.parse().map_err(|e| format!("bad b: {e}"))?;
    let seed: u64 = rest.first().map_or(Ok(42), |s| s.parse()).map_err(|e| format!("bad seed: {e}"))?;
    let t0 = std::time::Instant::now();
    let d = la_decompose(&a, &DecomposeConfig::with_width(b), &mut RandomForestLa::new(seed))
        .map_err(|e| e.to_string())?;
    let elapsed = t0.elapsed();
    let err = d.validate(&a).map_err(|e| e.to_string())?;
    if err != 0.0 {
        return Err(format!("reconstruction error {err} — refusing to save"));
    }
    let stats = DecompositionStats::of(&d);
    let file = File::create(out).map_err(|e| format!("create {out}: {e}"))?;
    persist::save(&d, BufWriter::new(file)).map_err(|e| e.to_string())?;
    println!(
        "decomposed {input} in {:.2?}: order = {}, b = {b}, per-level nnz = {:?}",
        elapsed,
        stats.order,
        stats.levels.iter().map(|l| l.nnz).collect::<Vec<_>>()
    );
    println!("saved {out} (validated: exact reconstruction)");
    Ok(())
}

fn cmd_multiply(args: &[String]) -> Result<(), String> {
    let [input, damd, rest @ ..] = args else {
        return Err("multiply needs <matrix.mtx> <decomp.amd> [k] [iters]".into());
    };
    let a = load_matrix(input)?;
    let file = File::open(damd).map_err(|e| format!("open {damd}: {e}"))?;
    let d = persist::load(BufReader::new(file)).map_err(|e| e.to_string())?;
    if d.n() != a.rows() {
        return Err(format!("decomposition is for n = {}, matrix has n = {}", d.n(), a.rows()));
    }
    let k: u32 = rest.first().map_or(Ok(32), |s| s.parse()).map_err(|e| format!("bad k: {e}"))?;
    let iters: u32 =
        rest.get(1).map_or(Ok(5), |s| s.parse()).map_err(|e| format!("bad iters: {e}"))?;
    let alg = ArrowSpmm::new(&d).map_err(|e| e.to_string())?;
    let x = DenseMatrix::from_fn(a.rows(), k, |r, c| (((r * 31 + c * 7) % 17) as f64) / 17.0);
    println!("running {} on {} ranks, k = {k}, {iters} iterations…", alg.name(), alg.ranks());
    let run = alg.run(&x, iters).map_err(|e| e.to_string())?;
    let reference = arrow_matrix::spmm::reference::iterated_spmm(&a, &x, iters)
        .map_err(|e| e.to_string())?;
    let err = run.y.max_abs_diff(&reference).map_err(|e| e.to_string())?;
    println!(
        "verified: max |Δ| vs serial reference = {err:.2e}\n\
         per iteration: simulated time = {:.3} ms, max per-rank volume = {:.1} KiB, \
         wall = {:.1} ms total",
        run.sim_time_per_iter() * 1e3,
        run.volume_per_iter() / 1024.0,
        run.stats.wall_seconds * 1e3,
    );
    Ok(())
}
