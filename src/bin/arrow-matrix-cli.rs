//! `arrow-matrix-cli` — command-line front end for the library.
//!
//! ```text
//! arrow-matrix-cli generate <dataset> <n> <out.mtx> [seed]
//! arrow-matrix-cli info <matrix.mtx>
//! arrow-matrix-cli decompose <matrix.mtx> <b> <out.amd> [seed] [--metrics-json PATH]
//! arrow-matrix-cli multiply <matrix.mtx> <decomp.amd> [k] [iters] [--dtype f32|f64]
//!                           [--metrics-json PATH]
//! arrow-matrix-cli serve <matrix.mtx> <b> [queries] [batch] [iters] [--catalog DIR]
//!                        [--dtype f32|f64]
//!                        [--metrics-json PATH] [--timeseries PATH] [--trace-json PATH]
//! arrow-matrix-cli stream <matrix.mtx> <b> [updates] [queries] [budget-frac] [seed]
//!                         [--tenants N] [--async-refresh] [--catalog DIR]
//!                         [--dtype f32|f64]
//!                         [--metrics-json PATH] [--timeseries PATH] [--trace-json PATH]
//! arrow-matrix-cli stats <metrics.json>
//! arrow-matrix-cli report <metrics.json>
//! arrow-matrix-cli top <timeseries.jsonl>
//! arrow-matrix-cli catalog ls <dir>
//! arrow-matrix-cli catalog gc <dir> <retain-last-k>
//! arrow-matrix-cli catalog restore <dir> <fingerprint-hex> <version> <out.amd>
//! arrow-matrix-cli chaos [all|<scenario>] [--seed N] [--out PATH]
//! arrow-matrix-cli chaos record <scenario> <out.trace> [--seed N]
//! arrow-matrix-cli chaos replay <in.trace> [--seed N]
//! ```
//!
//! Mirrors the paper's artifact workflow: generate (or download) a
//! SuiteSparse-format matrix, decompose it once, persist the
//! decomposition, and run distributed multiplies against it. `serve`
//! goes one step further: it stands up the `amd-engine` serving engine —
//! decomposition cache, cost-model planner, request batcher — drives a
//! synthetic query stream through it, and reports batched vs unbatched
//! throughput. `stream` exercises the `amd-stream` subsystem: it
//! interleaves a synthetic mutation stream (edge inserts, removals, and
//! re-weightings) with multiply queries, serving every answer from the
//! warm decomposition plus a delta correction, and lets the staleness
//! budget trigger compacting refreshes — each answer is verified against
//! a serial reference of the mutated matrix. With `--tenants N` the
//! stream drives `N` mutating tenants through one `StreamHub`, and
//! `--async-refresh` moves compactions onto the hub's background worker
//! (double-buffered: the old binding plus delta overlay keeps serving
//! while the merged snapshot decomposes off-thread).
//!
//! Persistence goes through the versioned **catalog** (`arrow_core::
//! catalog`): `serve`/`stream` take `--catalog DIR` to write every
//! decomposition through to disk — a restarted server reloads instead
//! of re-decomposing — and the `catalog` subcommand inspects (`ls`),
//! prunes (`gc`), and point-in-time-restores (`restore`) the chains.
//!
//! Telemetry: `serve`/`stream` take `--metrics-json PATH` to dump the
//! engine's metrics registry (counters, gauges, and latency
//! histograms) as JSON — rewritten periodically while the run is in
//! flight and once more on exit — and `stats` pretty-prints such a
//! snapshot back. `decompose`/`multiply` accept the same flag for
//! their one-shot runs. Three more observability surfaces close the
//! loop on the planner's cost model:
//!
//! * `report <metrics.json>` folds the engine's per-algorithm cost
//!   attribution (`engine.algo.<slug>.*`) into a calibration table —
//!   predicted vs accounted communication volume, mean/max prediction
//!   error, and the rank-agreement rate of the planner's choices.
//! * `--timeseries PATH` appends one `amd-metrics-ts/1` JSONL line per
//!   checkpoint (windowed QPS, refresh rates, windowed multiply
//!   latency quantiles); `top <timeseries.jsonl>` renders the latest
//!   window as a terminal dashboard.
//! * `--trace-json PATH` exports the tracer ring as a Chrome Trace
//!   Event Format file, loadable in Perfetto / `chrome://tracing`
//!   (spans nest under their parents; tenants get their own lanes).
//!
//! Serving precision: `multiply`, `serve`, and `stream` take `--dtype
//! f32|f64` (default `f64`). `f32` halves the communication volume by
//! narrowing matrix values and operand entries to single precision
//! (products accumulate in `f64`); answers stay exact on integer-valued
//! data and within the documented error bound
//! (`arrow_core::f32_multiply_error_bound`) otherwise. The `report`
//! calibration table echoes the serving dtype and the decomposition's
//! active-prefix fraction when present in the metrics snapshot.

use arrow_matrix::comm::CostModel;
use arrow_matrix::core::catalog::RetainPolicy;
use arrow_matrix::core::stats::DecompositionStats;
use arrow_matrix::core::{la_decompose, Catalog, DecomposeConfig, RandomForestLa};
use arrow_matrix::engine::{AttributionMetrics, RunAttribution};
use arrow_matrix::engine::{Engine, EngineConfig, MultiplyQuery};
use arrow_matrix::graph::degree::DegreeStats;
use arrow_matrix::graph::generators::datasets::DatasetKind;
use arrow_matrix::graph::Graph;
use arrow_matrix::obs::{
    chrome_trace_json, parse_json, parse_ts_line, JsonValue, Stopwatch, Telemetry,
    TimeSeriesRecorder, TsPoint,
};
use arrow_matrix::sparse::io::{read_matrix_market, write_matrix_market};
use arrow_matrix::sparse::{bandwidth, CooMatrix, CsrMatrix, DenseMatrix, Dtype};
use arrow_matrix::spmm::{ArrowSpmm, DistSpmm};
use arrow_matrix::stream::{HubConfig, StalenessBudget, StreamHub, TenantId, Update};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // Global flag, accepted by every subcommand: strip `--threads N`
    // and size the shared execution pool before anything touches it.
    if let Some(i) = args.iter().position(|a| a == "--threads") {
        let parsed = args
            .get(i + 1)
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0);
        let Some(n) = parsed else {
            eprintln!("error: --threads needs a positive integer");
            return ExitCode::from(2);
        };
        arrow_matrix::exec::configure_global_threads(n);
        args.drain(i..=i + 1);
    }
    let result = match args.first().map(String::as_str) {
        Some("generate") => cmd_generate(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some("decompose") => cmd_decompose(&args[1..]),
        Some("multiply") => cmd_multiply(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("stream") => cmd_stream(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("report") => cmd_report(&args[1..]),
        Some("top") => cmd_top(&args[1..]),
        Some("catalog") => cmd_catalog(&args[1..]),
        Some("chaos") => cmd_chaos(&args[1..]),
        _ => {
            eprintln!(
                "usage:\n  arrow-matrix-cli generate <dataset> <n> <out.mtx> [seed]\n  \
                 arrow-matrix-cli info <matrix.mtx>\n  \
                 arrow-matrix-cli decompose <matrix.mtx> <b> <out.amd> [seed] [--metrics-json PATH]\n  \
                 arrow-matrix-cli multiply <matrix.mtx> <decomp.amd> [k] [iters] [--dtype f32|f64]\n  \
                 \u{20}                         [--metrics-json PATH]\n  \
                 arrow-matrix-cli serve <matrix.mtx> <b> [queries] [batch] [iters] [--catalog DIR]\n  \
                 \u{20}                      [--dtype f32|f64]\n  \
                 \u{20}                      [--metrics-json PATH] [--timeseries PATH] [--trace-json PATH]\n  \
                 arrow-matrix-cli stream <matrix.mtx> <b> [updates] [queries] [budget-frac] [seed]\n  \
                 \u{20}                       [--tenants N] [--async-refresh] [--catalog DIR]\n  \
                 \u{20}                       [--dtype f32|f64]\n  \
                 \u{20}                       [--metrics-json PATH] [--timeseries PATH] [--trace-json PATH]\n  \
                 arrow-matrix-cli stats <metrics.json>\n  \
                 arrow-matrix-cli report <metrics.json>\n  \
                 arrow-matrix-cli top <timeseries.jsonl>\n  \
                 arrow-matrix-cli catalog ls <dir>\n  \
                 arrow-matrix-cli catalog gc <dir> <retain-last-k>\n  \
                 arrow-matrix-cli catalog restore <dir> <fingerprint-hex> <version> <out.amd>\n  \
                 arrow-matrix-cli chaos [all|<scenario>] [--seed N] [--out PATH]\n  \
                 arrow-matrix-cli chaos record <scenario> <out.trace> [--seed N]\n  \
                 arrow-matrix-cli chaos replay <in.trace> [--seed N]\n\
                 global: [--threads N] sizes the shared execution pool (default: all cores)\n\
                 datasets: mawi genbank webbase osm gap-twitter sk-2005"
            );
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn kind_by_name(name: &str) -> Result<DatasetKind, String> {
    match name.to_lowercase().as_str() {
        "mawi" => Ok(DatasetKind::Mawi),
        "genbank" => Ok(DatasetKind::GenBank),
        "webbase" => Ok(DatasetKind::WebBase),
        "osm" | "osm-europe" => Ok(DatasetKind::OsmEurope),
        "gap-twitter" | "twitter" => Ok(DatasetKind::GapTwitter),
        "sk-2005" | "sk2005" => Ok(DatasetKind::Sk2005),
        other => Err(format!("unknown dataset '{other}'")),
    }
}

fn load_matrix(path: &str) -> Result<CsrMatrix<f64>, String> {
    let file = File::open(path).map_err(|e| format!("open {path}: {e}"))?;
    let coo = read_matrix_market(BufReader::new(file)).map_err(|e| e.to_string())?;
    Ok(coo.to_csr())
}

/// Dumps the registry behind `telemetry` as metrics JSON. Called at
/// periodic checkpoints while `serve`/`stream` run and once more on
/// exit, so the file always holds a consistent (if slightly stale)
/// snapshot.
fn write_metrics_json(path: &str, telemetry: &Telemetry) -> Result<(), String> {
    std::fs::write(path, telemetry.registry.snapshot().to_json())
        .map_err(|e| format!("write {path}: {e}"))
}

/// Exports the tracer ring as a Chrome Trace Event Format file
/// (Perfetto / `chrome://tracing`). Written once, at exit, so the file
/// holds the final ring contents.
fn write_trace_json(path: &str, telemetry: &Telemetry) -> Result<(), String> {
    std::fs::write(path, chrome_trace_json(&telemetry.tracer.snapshot()))
        .map_err(|e| format!("write {path}: {e}"))
}

/// The `--timeseries PATH` sink: appends one `amd-metrics-ts/1` line
/// per checkpoint to a JSONL log created fresh at startup. `top` and
/// the smoke tests read it back with `parse_ts_line`.
struct TsLog {
    recorder: TimeSeriesRecorder,
    file: File,
}

impl TsLog {
    fn create(path: &str, telemetry: &Telemetry) -> Result<Self, String> {
        let file = File::create(path).map_err(|e| format!("create {path}: {e}"))?;
        Ok(Self {
            recorder: TimeSeriesRecorder::new(&telemetry.registry),
            file,
        })
    }

    fn sample(&mut self) -> Result<(), String> {
        use std::io::Write as _;
        let line = self.recorder.sample();
        writeln!(self.file, "{line}").map_err(|e| format!("append timeseries: {e}"))
    }
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let [path] = args else {
        return Err("stats needs <metrics.json>".into());
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let doc = parse_json(&text).map_err(|e| format!("parse {path}: {e}"))?;
    let Some(members) = doc.members() else {
        return Err(format!("{path}: metrics snapshot must be a JSON object"));
    };
    // Duration histograms record nanoseconds (the `.seconds` naming
    // convention); everything else prints raw.
    let ms = |nanos: u64| nanos as f64 / 1e6;
    for (name, value) in members {
        match value {
            JsonValue::Num(_) => {
                let v = value
                    .as_u64()
                    .map(|u| u.to_string())
                    .unwrap_or_else(|| format!("{}", value.as_f64().unwrap_or(f64::NAN)));
                println!("{name:<44} {v}");
            }
            JsonValue::Obj(_) => {
                let field = |k: &str| value.get(k).and_then(JsonValue::as_u64).unwrap_or(0);
                if name.ends_with(".seconds") {
                    println!(
                        "{name:<44} count = {}, p50 = {:.3} ms, p90 = {:.3} ms, \
                         p99 = {:.3} ms, p999 = {:.3} ms, max = {:.3} ms",
                        field("count"),
                        ms(field("p50")),
                        ms(field("p90")),
                        ms(field("p99")),
                        ms(field("p999")),
                        ms(field("max")),
                    );
                } else {
                    println!(
                        "{name:<44} count = {}, p50 = {}, p90 = {}, p99 = {}, \
                         p999 = {}, max = {}",
                        field("count"),
                        field("p50"),
                        field("p90"),
                        field("p99"),
                        field("p999"),
                        field("max"),
                    );
                }
            }
            JsonValue::Str(s) => println!("{name:<44} {s}"),
            other => println!("{name:<44} {other:?}"),
        }
    }
    Ok(())
}

/// Folds the engine's cost-attribution counters
/// (`engine.algo.<slug>.*`, written by `serve`/`stream`/`multiply`
/// with `--metrics-json`) into a per-algorithm calibration table:
/// predicted vs accounted communication volume, mean/max volume
/// prediction error, and the rank-agreement rate of the planner's
/// choices.
fn cmd_report(args: &[String]) -> Result<(), String> {
    let [path] = args else {
        return Err("report needs <metrics.json>".into());
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let doc = parse_json(&text).map_err(|e| format!("parse {path}: {e}"))?;
    let Some(members) = doc.members() else {
        return Err(format!("{path}: metrics snapshot must be a JSON object"));
    };
    let mut slugs: Vec<&str> = members
        .iter()
        .filter_map(|(name, _)| {
            name.strip_prefix("engine.algo.")
                .and_then(|rest| rest.strip_suffix(".runs"))
        })
        .collect();
    slugs.sort_unstable();
    if slugs.is_empty() {
        return Err(format!(
            "{path}: no cost-attribution data (engine.algo.* counters absent — \
             was the run made with an instrumented engine?)"
        ));
    }
    let num = |key: &str| doc.get(key).and_then(JsonValue::as_u64).unwrap_or(0);
    let hist = |key: &str, field: &str| {
        doc.get(key)
            .and_then(|h| h.get(field))
            .and_then(JsonValue::as_u64)
            .unwrap_or(0)
    };
    let mib = |bytes: u64| bytes as f64 / (1024.0 * 1024.0);
    println!(
        "{:<8} {:>6} {:>14} {:>14} {:>10} {:>9} {:>9} {:>15} {:>11} {:>9}",
        "algo",
        "runs",
        "predicted MiB",
        "accounted MiB",
        "mean err",
        "max err",
        "checks",
        "rank-agreement",
        "wall ms/run",
        "meas β"
    );
    for slug in &slugs {
        let name = |leaf: &str| format!("engine.algo.{slug}.{leaf}");
        let runs = num(&name("runs"));
        let err_count = hist(&name("error_permille"), "count");
        let mean_err = if err_count > 0 {
            hist(&name("error_permille"), "sum") as f64 / err_count as f64 / 10.0
        } else {
            0.0
        };
        let max_err = hist(&name("error_permille"), "max") as f64 / 10.0;
        let checks = num(&name("rank_checks"));
        let agreement = if checks > 0 {
            let ok = checks.saturating_sub(num(&name("mispredictions")));
            format!("{:.1}%", 100.0 * ok as f64 / checks as f64)
        } else {
            "n/a".to_string()
        };
        // Calibration: measured wall per run, and the effective
        // measured per-byte cost (wall seconds over accounted bytes)
        // that a host-calibrated cost model would use as β.
        let wall_nanos = num(&name("wall_nanos"));
        let wall_ms_per_run = if runs > 0 {
            wall_nanos as f64 / runs as f64 / 1e6
        } else {
            0.0
        };
        let accounted = num(&name("accounted_bytes"));
        let measured_beta = if wall_nanos > 0 && accounted > 0 {
            format!("{:.1e}", wall_nanos as f64 / 1e9 / accounted as f64)
        } else {
            "n/a".to_string()
        };
        println!(
            "{:<8} {:>6} {:>14.3} {:>14.3} {:>9.1}% {:>8.1}% {:>9} {:>15} {:>11.3} {:>9}",
            slug,
            runs,
            mib(num(&name("predicted_bytes"))),
            mib(num(&name("accounted_bytes"))),
            mean_err,
            max_err,
            checks,
            agreement,
            wall_ms_per_run,
            measured_beta
        );
    }
    let predicted = num("engine.plan.predicted_bytes");
    let accounted = num("engine.plan.accounted_bytes");
    let checks = num("engine.plan.rank_checks");
    let mispredictions = num("engine.plan.mispredictions");
    println!(
        "total   : predicted = {:.3} MiB, accounted = {:.3} MiB ({})",
        mib(predicted),
        mib(accounted),
        if accounted > 0 {
            format!(
                "predicted/accounted = {:.3}",
                predicted as f64 / accounted as f64
            )
        } else {
            "no accounted volume".to_string()
        }
    );
    println!(
        "ranking : {checks} check(s), {mispredictions} misprediction(s){}",
        if checks > 0 {
            format!(
                " — the planner's choice held up in {:.1}% of checked runs",
                100.0 * checks.saturating_sub(mispredictions) as f64 / checks as f64
            )
        } else {
            String::new()
        }
    );
    // Calibration summary: the model's configured β against the
    // measured effective per-byte cost over all runs.
    let total_wall_nanos: u64 = slugs
        .iter()
        .map(|slug| num(&format!("engine.algo.{slug}.wall_nanos")))
        .sum();
    if total_wall_nanos > 0 && accounted > 0 {
        let measured_beta = total_wall_nanos as f64 / 1e9 / accounted as f64;
        let model = doc
            .get("engine.cost.beta_femtos")
            .and_then(JsonValue::as_u64)
            .map(|f| {
                let model_beta = f as f64 / 1e15;
                if model_beta > 0.0 {
                    format!(
                        ", model β = {:.1e} s/B (measured/model = {:.2})",
                        model_beta,
                        measured_beta / model_beta
                    )
                } else {
                    String::new()
                }
            })
            .unwrap_or_default();
        println!(
            "calib   : measured wall = {:.3} ms over {:.3} MiB accounted → effective β = {:.1e} s/B{}",
            total_wall_nanos as f64 / 1e6,
            mib(accounted),
            measured_beta,
            model
        );
    }
    if let Some(bytes) = doc.get("engine.dtype_bytes").and_then(JsonValue::as_u64) {
        let dtype = if bytes == 4 { "f32" } else { "f64" };
        let prefix = doc
            .get("engine.active_prefix_permille")
            .and_then(JsonValue::as_u64)
            .map(|p| format!(", active prefix = {:.1}% of positions", p as f64 / 10.0))
            .unwrap_or_default();
        println!("serving : dtype = {dtype} ({bytes} B/value){prefix}");
        if bytes == 4 {
            println!(
                "          (the simulator ships f64 wires, so accounted volume reads \
                 ~2x the f32 prediction)"
            );
        }
    }
    Ok(())
}

/// Renders the tail of a `--timeseries` JSONL log as a one-shot
/// terminal dashboard: the latest window's rates and multiply
/// latency, plus cumulative splice/cache efficiency and the busiest
/// tenants.
fn cmd_top(args: &[String]) -> Result<(), String> {
    let [path] = args else {
        return Err("top needs <timeseries.jsonl>".into());
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let points: Vec<TsPoint> = text
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(parse_ts_line)
        .collect::<Result<_, _>>()
        .map_err(|e| format!("{path}: {e}"))?;
    let Some(last) = points.last() else {
        return Err(format!("{path}: no time-series lines"));
    };
    println!(
        "arrow-matrix top — sample {} of {}, t = {:.1} s, window = {:.1} s",
        last.seq + 1,
        points.len(),
        last.t_seconds,
        last.window_seconds
    );
    println!(
        "rates   : {:>8.1} queries/s, {:>6.1} runs/s, {:>6.1} updates/s, {:>5.2} refreshes/s",
        last.qps, last.runs_per_s, last.updates_per_s, last.refreshes_per_s
    );
    println!(
        "multiply: {:>8} in window, p50 = {:.3} ms, p99 = {:.3} ms",
        last.multiply_window_count, last.multiply_p50_ms, last.multiply_p99_ms
    );
    let c = |name: &str| last.counter(name);
    let pct = |part: u64, whole: u64| {
        if whole == 0 {
            "n/a".to_string()
        } else {
            format!("{:.1}%", 100.0 * part as f64 / whole as f64)
        }
    };
    let incremental = c("hub.splice.incremental_refreshes");
    let fallback = c("hub.splice.fallback_refreshes");
    println!(
        "splice  : {} incremental / {} cold — incremental ratio {}",
        incremental,
        fallback,
        pct(incremental, incremental + fallback)
    );
    let hits = c("cache.hits");
    let misses = c("cache.misses");
    println!(
        "cache   : {} hit(s) / {} miss(es) — hit rate {}",
        hits,
        misses,
        pct(hits, hits + misses)
    );
    let checks = c("engine.plan.rank_checks");
    println!(
        "planner : {} rank check(s), {} misprediction(s) — agreement {}",
        checks,
        c("engine.plan.mispredictions"),
        pct(
            checks.saturating_sub(c("engine.plan.mispredictions")),
            checks
        )
    );
    // Busiest tenants by cumulative queries + updates.
    let mut tenants: Vec<(u64, u64, u64)> = Vec::new(); // (id, queries, updates)
    for (name, value) in &last.counters {
        let Some(rest) = name.strip_prefix("hub.tenant.") else {
            continue;
        };
        let Some((id, leaf)) = rest.split_once('.') else {
            continue;
        };
        let Ok(id) = id.parse::<u64>() else { continue };
        let entry = match tenants.iter_mut().find(|t| t.0 == id) {
            Some(entry) => entry,
            None => {
                tenants.push((id, 0, 0));
                tenants.last_mut().expect("just pushed")
            }
        };
        match leaf {
            "queries" => entry.1 += *value,
            "updates" => entry.2 += *value,
            _ => {}
        }
    }
    tenants.sort_by_key(|&(id, q, u)| (std::cmp::Reverse(q + u), id));
    if !tenants.is_empty() {
        println!(
            "tenants : top {} of {}",
            tenants.len().min(5),
            tenants.len()
        );
        for &(id, queries, updates) in tenants.iter().take(5) {
            println!("  tenant {id:<4} {queries:>8} queries, {updates:>8} updates");
        }
    }
    Ok(())
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let [kind, n, out, rest @ ..] = args else {
        return Err("generate needs <dataset> <n> <out.mtx> [seed]".into());
    };
    let kind = kind_by_name(kind)?;
    let n: u32 = n.parse().map_err(|e| format!("bad n: {e}"))?;
    let seed: u64 = rest
        .first()
        .map_or(Ok(42), |s| s.parse())
        .map_err(|e| format!("bad seed: {e}"))?;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let g = kind.generate(n, &mut rng);
    let a: CsrMatrix<f64> = g.to_adjacency();
    let file = File::create(out).map_err(|e| format!("create {out}: {e}"))?;
    write_matrix_market(&a, BufWriter::new(file)).map_err(|e| e.to_string())?;
    let s = DegreeStats::of(&g);
    println!(
        "wrote {out}: {} ({} vertices, {} edges, nnz/n = {:.2}, Δ = {})",
        kind.name(),
        s.n,
        s.m,
        s.avg_degree,
        s.max_degree
    );
    Ok(())
}

fn cmd_info(args: &[String]) -> Result<(), String> {
    let [path] = args else {
        return Err("info needs <matrix.mtx>".into());
    };
    let a = load_matrix(path)?;
    println!("matrix : {} x {}, nnz = {}", a.rows(), a.cols(), a.nnz());
    if a.rows() == a.cols() {
        let g = Graph::from_matrix_structure(&a);
        let s = DegreeStats::of(&g);
        println!(
            "graph  : m = {}, avg degree = {:.2}, Δ = {} ({:.2}% of n), isolated = {}",
            s.m,
            s.avg_degree,
            s.max_degree,
            100.0 * s.max_degree_fraction(),
            s.isolated
        );
        println!(
            "bounds : natural-order bandwidth = {}, §3 bandwidth lower bound = {}",
            bandwidth(&a),
            arrow_matrix::graph::bounds::bandwidth_lower_bound(&g)
        );
    }
    Ok(())
}

fn cmd_decompose(args: &[String]) -> Result<(), String> {
    let (positional, metrics_json, dtype) = split_metrics_flag(args)?;
    if dtype.is_some() {
        return Err(
            "decompose does not take --dtype (serving precision is chosen at \
                    multiply/serve/stream time)"
                .into(),
        );
    }
    let [input, b, out, rest @ ..] = positional.as_slice() else {
        return Err(
            "decompose needs <matrix.mtx> <b> <out.amd> [seed] [--metrics-json PATH]".into(),
        );
    };
    let a = load_matrix(input)?;
    let b: u32 = b.parse().map_err(|e| format!("bad b: {e}"))?;
    let seed: u64 = rest
        .first()
        .map_or(Ok(42), |s| s.parse())
        .map_err(|e| format!("bad seed: {e}"))?;
    let t0 = Stopwatch::start();
    let d = la_decompose(
        &a,
        &DecomposeConfig::with_width(b),
        &mut RandomForestLa::new(seed),
    )
    .map_err(|e| e.to_string())?;
    let elapsed = t0.elapsed_seconds();
    let err = d.validate(&a).map_err(|e| e.to_string())?;
    if err != 0.0 {
        return Err(format!("reconstruction error {err} — refusing to save"));
    }
    let stats = DecompositionStats::of(&d);
    // One-shot files go through the catalog's file helpers (versioned
    // header), so a later `Catalog::import_legacy_dir` re-identifies
    // them without reconstruction.
    Catalog::save_file(out, &d, a.fingerprint(), 0).map_err(|e| e.to_string())?;
    println!(
        "decomposed {input} in {:.1} ms: order = {}, b = {b}, \
         compaction factor = {:.2}, second-level nonzero rows = {:.2}% of n, \
         active prefix = {:.1}% of positions",
        elapsed * 1e3,
        stats.order,
        stats.compaction_factor,
        stats.second_level_row_fraction * 100.0,
        stats.active_prefix_fraction * 100.0,
    );
    for l in &stats.levels {
        println!(
            "  level {}: nnz = {}, nonzero rows = {}, active n = {} ({:.1}% of n), \
             arrow tiles = {}",
            l.level,
            l.nnz,
            l.nonzero_rows,
            l.active_n,
            l.active_fraction * 100.0,
            l.nonzero_tiles
        );
    }
    println!("saved {out} (validated: exact reconstruction)");
    if let Some(path) = &metrics_json {
        let telemetry = Telemetry::new();
        telemetry
            .registry
            .histogram("decompose.seconds")
            .record_seconds(elapsed);
        telemetry.registry.gauge("matrix.n").set(a.rows() as u64);
        telemetry.registry.gauge("matrix.nnz").set(a.nnz() as u64);
        telemetry
            .registry
            .gauge("decompose.levels")
            .set(stats.levels.len() as u64);
        write_metrics_json(path, &telemetry)?;
        println!("metrics : wrote {path}");
    }
    Ok(())
}

/// Parses trailing/interleaved `--metrics-json PATH` and
/// `--dtype f32|f64` flags out of a positional argument list (the
/// flags `decompose`/`multiply` accept — `decompose` rejects a dtype
/// itself, decompositions are precision-agnostic).
#[allow(clippy::type_complexity)]
fn split_metrics_flag(
    args: &[String],
) -> Result<(Vec<&String>, Option<String>, Option<Dtype>), String> {
    let mut positional = Vec::new();
    let mut metrics_json = None;
    let mut dtype = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--metrics-json" => {
                let v = it.next().ok_or("--metrics-json needs a path")?;
                metrics_json = Some(v.clone());
            }
            "--dtype" => {
                let v = it.next().ok_or("--dtype needs f32 or f64")?;
                dtype = Some(parse_dtype(v)?);
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown flag {other}"));
            }
            _ => positional.push(arg),
        }
    }
    Ok((positional, metrics_json, dtype))
}

/// Parses a `--dtype` value.
fn parse_dtype(s: &str) -> Result<Dtype, String> {
    Dtype::parse(s).ok_or_else(|| format!("bad --dtype: {s} (expected f32 or f64)"))
}

fn cmd_multiply(args: &[String]) -> Result<(), String> {
    let (positional, metrics_json, dtype) = split_metrics_flag(args)?;
    let dtype = dtype.unwrap_or_default();
    let [input, damd, rest @ ..] = positional.as_slice() else {
        return Err("multiply needs <matrix.mtx> <decomp.amd> [k] [iters] \
                    [--dtype f32|f64] [--metrics-json PATH]"
            .into());
    };
    let a = load_matrix(input)?;
    let (d, _) = Catalog::load_file(damd).map_err(|e| e.to_string())?;
    if d.n() != a.rows() {
        return Err(format!(
            "decomposition is for n = {}, matrix has n = {}",
            d.n(),
            a.rows()
        ));
    }
    let k: u32 = rest
        .first()
        .map_or(Ok(32), |s| s.parse())
        .map_err(|e| format!("bad k: {e}"))?;
    let iters: u32 = rest
        .get(1)
        .map_or(Ok(5), |s| s.parse())
        .map_err(|e| format!("bad iters: {e}"))?;
    let alg = ArrowSpmm::new(&d)
        .map_err(|e| e.to_string())?
        .with_dtype(dtype);
    let x = DenseMatrix::from_fn(a.rows(), k, |r, c| (((r * 31 + c * 7) % 17) as f64) / 17.0);
    println!(
        "running {} on {} ranks, k = {k}, {iters} iterations, dtype = {dtype}…",
        alg.name(),
        alg.ranks()
    );
    let sw = Stopwatch::start();
    let run = alg.run(&x, iters).map_err(|e| e.to_string())?;
    let wall = sw.elapsed_seconds();
    let reference =
        arrow_matrix::spmm::reference::iterated_spmm(&a, &x, iters).map_err(|e| e.to_string())?;
    let err = run.y.max_abs_diff(&reference).map_err(|e| e.to_string())?;
    println!(
        "verified: max |Δ| vs serial reference = {err:.2e}\n\
         per iteration: simulated time = {:.3} ms, max per-rank volume = {:.1} KiB, \
         wall = {:.1} ms total",
        run.sim_time_per_iter() * 1e3,
        run.volume_per_iter() / 1024.0,
        run.stats.wall_seconds * 1e3,
    );
    if let Some(path) = &metrics_json {
        // One-shot cost attribution: the same calibration counters the
        // engine writes, so `report` works on a direct multiply too.
        // There is no planner ranking here (single algorithm), so the
        // rank-agreement check stays unchecked.
        let telemetry = Telemetry::new();
        telemetry
            .registry
            .histogram("multiply.seconds")
            .record_seconds(wall);
        let mut attribution = AttributionMetrics::new(&telemetry.registry);
        let name = alg.name();
        let cost = attribution.record(
            &RunAttribution {
                algo: &name,
                predictions: &[],
                estimate: alg.predict_volume(k),
                corrected: false,
                iters,
                cost: CostModel::default(),
                target_ranks: alg.ranks(),
            },
            &run.stats,
        );
        println!(
            "cost    : predicted {:.1} KiB/iter vs accounted {:.1} KiB/iter per rank",
            cost.predicted_rank_bytes / 1024.0,
            cost.accounted_rank_bytes / 1024.0
        );
        write_metrics_json(path, &telemetry)?;
        println!("metrics : wrote {path}");
    }
    Ok(())
}

fn cmd_stream(args: &[String]) -> Result<(), String> {
    // Flags first (`--tenants N`, `--async-refresh`, `--catalog DIR`),
    // positionals after.
    let mut tenants_flag = 1usize;
    let mut async_refresh = false;
    let mut catalog_dir: Option<std::path::PathBuf> = None;
    let mut metrics_json: Option<String> = None;
    let mut timeseries: Option<String> = None;
    let mut trace_json: Option<String> = None;
    let mut dtype = Dtype::default();
    let mut positional: Vec<&String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--tenants" => {
                let v = it.next().ok_or("--tenants needs a value")?;
                tenants_flag = v.parse().map_err(|e| format!("bad --tenants: {e}"))?;
                if tenants_flag == 0 {
                    return Err("bad --tenants: must be at least 1".into());
                }
            }
            "--async-refresh" => async_refresh = true,
            "--catalog" => {
                let v = it.next().ok_or("--catalog needs a directory")?;
                catalog_dir = Some(std::path::PathBuf::from(v));
            }
            "--dtype" => {
                let v = it.next().ok_or("--dtype needs f32 or f64")?;
                dtype = parse_dtype(v)?;
            }
            "--metrics-json" => {
                let v = it.next().ok_or("--metrics-json needs a path")?;
                metrics_json = Some(v.clone());
            }
            "--timeseries" => {
                let v = it.next().ok_or("--timeseries needs a path")?;
                timeseries = Some(v.clone());
            }
            "--trace-json" => {
                let v = it.next().ok_or("--trace-json needs a path")?;
                trace_json = Some(v.clone());
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown flag {other}"));
            }
            _ => positional.push(arg),
        }
    }
    let [input, b, rest @ ..] = positional.as_slice() else {
        return Err(
            "stream needs <matrix.mtx> <b> [updates] [queries] [budget-frac] [seed] \
             [--tenants N] [--async-refresh] [--dtype f32|f64] [--catalog DIR] \
             [--metrics-json PATH] [--timeseries PATH] [--trace-json PATH]"
                .into(),
        );
    };
    let a = load_matrix(input)?;
    if a.rows() != a.cols() {
        return Err(format!(
            "stream needs a square matrix, got {}×{}",
            a.rows(),
            a.cols()
        ));
    }
    let b: u32 = b.parse().map_err(|e| format!("bad b: {e}"))?;
    let updates: usize = rest
        .first()
        .map_or(Ok(64), |s| s.parse())
        .map_err(|e| format!("bad updates: {e}"))?;
    let queries: usize = rest
        .get(1)
        .map_or(Ok(16), |s| s.parse())
        .map_err(|e| format!("bad queries: {e}"))?;
    let budget_frac: f64 = rest
        .get(2)
        .map_or(Ok(0.05), |s| s.parse())
        .map_err(|e| format!("bad budget-frac: {e}"))?;
    if budget_frac.is_nan() || budget_frac <= 0.0 {
        return Err(format!("bad budget-frac: {budget_frac} (must be > 0)"));
    }
    let seed: u64 = rest
        .get(3)
        .map_or(Ok(42), |s| s.parse())
        .map_err(|e| format!("bad seed: {e}"))?;

    let n = a.rows();
    let base_nnz = a.nnz();
    let t0 = Stopwatch::start();
    let mut hub = StreamHub::new(HubConfig {
        engine: EngineConfig {
            arrow_width: b,
            spill_dir: catalog_dir,
            dtype,
            ..EngineConfig::default()
        },
        budget: StalenessBudget::nnz_fraction(budget_frac),
        async_refresh,
        ..HubConfig::default()
    })
    .map_err(|e| e.to_string())?;
    let mut ts_log = timeseries
        .as_deref()
        .map(|path| TsLog::create(path, hub.telemetry()))
        .transpose()?;
    let ids: Vec<TenantId> = (0..tenants_flag)
        .map(|_| hub.admit(a.clone()))
        .collect::<Result<_, _>>()
        .map_err(|e| e.to_string())?;
    let mut truth: Vec<CsrMatrix<f64>> = vec![a.clone(); tenants_flag];
    println!(
        "registered {input} × {tenants_flag} tenant(s) in {:.1} ms (n = {n}, nnz = {base_nnz}, \
         staleness budget = {:.1}% of base nnz, refresh = {})",
        t0.elapsed_seconds() * 1e3,
        budget_frac * 100.0,
        if async_refresh {
            "background"
        } else {
            "synchronous"
        }
    );
    println!(
        "planner : bound {}",
        hub.chosen_algorithm(ids[0]).map_err(|e| e.to_string())?
    );

    // The corrected path is bit-exact vs the rebuilt reference only when
    // every reduction is exact; the synthetic updates and operands are
    // integer-valued, so that holds iff the input matrix is too — at
    // either dtype (small-integer products round-trip f32). Float-
    // weighted matrices verify to rounding instead: f64 accumulation
    // noise, or the f32 product error when serving at half bandwidth.
    let exact = a.values().iter().all(|v| v.fract() == 0.0);

    // Deterministic synthetic mutation stream: rotate over inserts,
    // re-weightings, and removals, round-robin across tenants. Mutations
    // draw from a slowly sliding *window* of the vertex space — real
    // update streams are localized, and locality is what lets a refresh
    // re-decompose incrementally instead of falling back cold (watch the
    // `splice :` line). Only the subsystem calls (update / submit /
    // flush) are timed — truth mirroring and reference verification
    // stay outside the clock.
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let window = (n / 50).clamp(8.min(n), n);
    let mut max_abs_err = 0.0f64;
    let mut max_abs_ref = 0.0f64;
    let mut verified = 0usize;
    let expected = queries * tenants_flag;
    let mut stream_secs = 0.0f64;
    for step in 0..updates.max(queries) {
        // Periodic checkpoints: a tailing `stats`/`top` sees the run
        // progress without waiting for the final snapshot.
        if step % 32 == 0 {
            if let Some(path) = &metrics_json {
                write_metrics_json(path, hub.telemetry())?;
            }
            if let Some(log) = &mut ts_log {
                log.sample()?;
            }
        }
        if step < updates {
            use rand::Rng;
            let tenant_idx = step % tenants_flag;
            let start = ((step as u64 / 64) * (window as u64 / 2) % n as u64) as u32;
            let u = (start + rng.gen_range(0..window)) % n;
            let v = (start + rng.gen_range(0..window)) % n;
            let update = match step % 3 {
                0 => Update::Add {
                    row: u,
                    col: v,
                    delta: 1.0 + (step % 4) as f64,
                },
                1 => Update::Set {
                    row: u,
                    col: v,
                    value: (step % 5) as f64,
                },
                _ => Update::Set {
                    row: u,
                    col: v,
                    value: 0.0,
                },
            };
            for part in update.sym_pair() {
                let (r, c) = part.position();
                // Mirror onto the tenant's truth matrix through a
                // one-entry delta.
                let old_value = truth[tenant_idx].get(r, c);
                let new_value = match part {
                    Update::Add { delta, .. } => old_value + delta,
                    Update::Set { value, .. } => value,
                };
                let mut patch = CooMatrix::new(n, n);
                patch
                    .push(r, c, new_value - old_value)
                    .map_err(|e| e.to_string())?;
                truth[tenant_idx] =
                    arrow_matrix::sparse::ops::apply_delta(&truth[tenant_idx], &patch.to_csr())
                        .map_err(|e| e.to_string())?;
                let t0 = Stopwatch::start();
                hub.update(ids[tenant_idx], part)
                    .map_err(|e| e.to_string())?;
                stream_secs += t0.elapsed_seconds();
                if r == c {
                    break; // diagonal: the pair addresses one entry
                }
            }
        }
        if step < queries {
            let x: Vec<f64> = (0..n)
                .map(|r| (((step as u32 + 3 * r) % 11) as f64) - 5.0)
                .collect();
            let t0 = Stopwatch::start();
            // One query per tenant per query step; the flush answers the
            // whole hub (same-tenant queries coalesce into shared runs)
            // in submission order, i.e. tenant j answers at index j.
            for &id in &ids {
                hub.submit(id, x.clone(), 2, None)
                    .map_err(|e| e.to_string())?;
            }
            let responses = hub.flush().map_err(|e| e.to_string())?;
            stream_secs += t0.elapsed_seconds();
            for (j, resp) in responses.iter().enumerate() {
                let xm =
                    DenseMatrix::from_fn(n, 1, |r, _| (((step as u32 + 3 * r) % 11) as f64) - 5.0);
                let want = arrow_matrix::spmm::reference::iterated_spmm(&truth[j], &xm, 2)
                    .map_err(|e| e.to_string())?;
                let got = DenseMatrix::from_vec(n, 1, resp.y.clone()).map_err(|e| e.to_string())?;
                max_abs_err = max_abs_err.max(got.max_abs_diff(&want).map_err(|e| e.to_string())?);
                max_abs_ref = want.data().iter().fold(max_abs_ref, |m, v| m.max(v.abs()));
                verified += 1;
            }
        }
    }
    // Settle in-flight background rebuilds before the final report.
    let t0 = Stopwatch::start();
    hub.wait_refreshes().map_err(|e| e.to_string())?;
    stream_secs += t0.elapsed_seconds();
    let tolerance = if exact {
        0.0
    } else if dtype == Dtype::F32 {
        // f32 product error compounds over iterations; scale to the
        // reference magnitude.
        1e-5 * max_abs_ref.max(1.0)
    } else {
        1e-9
    };
    if max_abs_err > tolerance {
        return Err(format!(
            "corrected serving diverged from the rebuilt reference: \
             max |Δ| = {max_abs_err:.3e} (tolerance {tolerance:.0e})"
        ));
    }
    let engine = hub.engine_stats();
    let cache = hub.cache_stats();
    let hstats = hub.stats();
    println!(
        "stream  : {updates} updates + {expected} queries × 2 iters in {:.1} ms ({:.0} events/s)",
        stream_secs * 1e3,
        (updates + expected) as f64 / stream_secs
    );
    println!(
        "serving : runs = {}, corrected runs = {}, verified {verified}/{expected} answers {}",
        engine.runs,
        engine.corrected_runs,
        if exact {
            "exactly".to_string()
        } else {
            format!("within {tolerance:.0e}")
        }
    );
    let versions: Vec<u64> = ids
        .iter()
        .map(|&id| hub.version(id).map_err(|e| e.to_string()))
        .collect::<Result<_, _>>()?;
    let pending: usize = ids.iter().map(|&id| hub.delta_nnz(id).unwrap_or(0)).sum();
    println!(
        "refresh : refreshes = {} ({} suppressed mid-flight), versions = {versions:?}, \
         pending delta nnz = {pending}",
        hstats.refreshes_completed, hstats.suppressed_triggers
    );
    println!(
        "splice  : incremental = {}, cold fallbacks = {}, reused vertices = {:.1}%",
        hstats.splice.incremental_refreshes,
        hstats.splice.fallback_refreshes,
        hstats.splice.reused_vertex_fraction() * 100.0
    );
    println!(
        "cache   : decompositions = {}, admitted from workers = {}, disk loads = {}",
        cache.decompositions, cache.admitted, cache.disk_loads
    );
    println!(
        "planner : now bound {} (dtype = {dtype})",
        hub.chosen_algorithm(ids[0]).map_err(|e| e.to_string())?
    );
    if let Some(path) = &metrics_json {
        write_metrics_json(path, hub.telemetry())?;
        println!("metrics : wrote {path}");
    }
    if let Some(log) = &mut ts_log {
        log.sample()?;
        println!("timeseries : wrote {}", timeseries.as_deref().unwrap_or(""));
    }
    if let Some(path) = &trace_json {
        write_trace_json(path, hub.telemetry())?;
        println!("trace   : wrote {path} (Chrome Trace Event Format)");
    }
    Ok(())
}

fn cmd_catalog(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("ls") => {
            let [_, dir] = args else {
                return Err("catalog ls needs <dir>".into());
            };
            let catalog = Catalog::open(dir.as_str()).map_err(|e| e.to_string())?;
            let stats = catalog.stats();
            if stats.recovered_records > 0 {
                println!(
                    "recovered {} record(s) from payload headers (manifest was stale or lost)",
                    stats.recovered_records
                );
            }
            println!("catalog {dir}: {} version(s)", catalog.len());
            for r in catalog.records() {
                let size = std::fs::metadata(catalog.payload_path(r))
                    .map(|m| m.len())
                    .unwrap_or(0);
                println!(
                    "  {:032x} v{} parent={:032x} created={} b={} seed={} {:>9} B  {}",
                    r.fingerprint,
                    r.version,
                    r.parent,
                    r.created_at,
                    r.config.arrow_width,
                    r.seed,
                    size,
                    r.payload
                );
            }
            // Chain shape: roots start lineages, everything else extends
            // one (parent edges within the catalog).
            let fps: std::collections::HashSet<u128> =
                catalog.records().iter().map(|r| r.fingerprint).collect();
            let roots = catalog
                .records()
                .iter()
                .filter(|r| r.parent == 0 || !fps.contains(&r.parent))
                .count();
            println!(
                "totals : {} version(s) in {} chain(s), payload bytes = {}",
                catalog.len(),
                roots,
                catalog.payload_bytes()
            );
            println!(
                "io     : puts = {}, loads = {}, load failures = {}, gc-removed = {}, \
                 imported = {}, recovered = {}",
                stats.puts,
                stats.loads,
                stats.load_failures,
                stats.removed,
                stats.imported,
                stats.recovered_records
            );
            Ok(())
        }
        Some("gc") => {
            let [_, dir, keep] = args else {
                return Err("catalog gc needs <dir> <retain-last-k>".into());
            };
            let keep: usize = keep
                .parse()
                .map_err(|e| format!("bad retain-last-k: {e}"))?;
            let mut catalog = Catalog::open(dir.as_str()).map_err(|e| e.to_string())?;
            let report = catalog
                .gc(&RetainPolicy::last(keep))
                .map_err(|e| e.to_string())?;
            println!(
                "gc {dir}: removed {} version(s), kept {} (newest {keep} per lineage), \
                 remaining payload bytes = {}",
                report.removed,
                report.kept,
                catalog.payload_bytes()
            );
            Ok(())
        }
        Some("restore") => {
            let [_, dir, fp, version, out] = args else {
                return Err(
                    "catalog restore needs <dir> <fingerprint-hex> <version> <out.amd>".into(),
                );
            };
            let fp = u128::from_str_radix(fp.trim_start_matches("0x"), 16)
                .map_err(|e| format!("bad fingerprint: {e}"))?;
            let version: u64 = version.parse().map_err(|e| format!("bad version: {e}"))?;
            let mut catalog = Catalog::open(dir.as_str()).map_err(|e| e.to_string())?;
            let Some((d, record)) = catalog
                .restore_head_at(fp, version)
                .map_err(|e| e.to_string())?
            else {
                return Err(format!(
                    "no version {version} reachable from {fp:032x} in {dir}"
                ));
            };
            Catalog::save_file(out, &d, record.fingerprint, record.version)
                .map_err(|e| e.to_string())?;
            println!(
                "restored {:032x} v{} (b = {}, created = {}) -> {out}",
                record.fingerprint, record.version, record.config.arrow_width, record.created_at
            );
            Ok(())
        }
        _ => Err("catalog needs ls|gc|restore".into()),
    }
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let mut catalog_dir: Option<std::path::PathBuf> = None;
    let mut metrics_json: Option<String> = None;
    let mut timeseries: Option<String> = None;
    let mut trace_json: Option<String> = None;
    let mut dtype = Dtype::default();
    let mut positional: Vec<&String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--catalog" => {
                let v = it.next().ok_or("--catalog needs a directory")?;
                catalog_dir = Some(std::path::PathBuf::from(v));
            }
            "--dtype" => {
                let v = it.next().ok_or("--dtype needs f32 or f64")?;
                dtype = parse_dtype(v)?;
            }
            "--metrics-json" => {
                let v = it.next().ok_or("--metrics-json needs a path")?;
                metrics_json = Some(v.clone());
            }
            "--timeseries" => {
                let v = it.next().ok_or("--timeseries needs a path")?;
                timeseries = Some(v.clone());
            }
            "--trace-json" => {
                let v = it.next().ok_or("--trace-json needs a path")?;
                trace_json = Some(v.clone());
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown flag {other}"));
            }
            _ => positional.push(arg),
        }
    }
    let [input, b, rest @ ..] = positional.as_slice() else {
        return Err(
            "serve needs <matrix.mtx> <b> [queries] [batch] [iters] [--dtype f32|f64] \
             [--catalog DIR] [--metrics-json PATH] [--timeseries PATH] [--trace-json PATH]"
                .into(),
        );
    };
    let a = load_matrix(input)?;
    if a.rows() != a.cols() {
        return Err(format!(
            "serve needs a square matrix, got {}×{}",
            a.rows(),
            a.cols()
        ));
    }
    let b: u32 = b.parse().map_err(|e| format!("bad b: {e}"))?;
    let queries: usize = rest
        .first()
        .map_or(Ok(64), |s| s.parse())
        .map_err(|e| format!("bad queries: {e}"))?;
    let batch: usize = rest
        .get(1)
        .map_or(Ok(64), |s| s.parse())
        .map_err(|e| format!("bad batch: {e}"))?;
    let iters: u32 = rest
        .get(2)
        .map_or(Ok(2), |s| s.parse())
        .map_err(|e| format!("bad iters: {e}"))?;

    let mut engine = Engine::new(EngineConfig {
        arrow_width: b,
        max_batch: batch.max(1),
        spill_dir: catalog_dir,
        dtype,
        ..EngineConfig::default()
    })
    .map_err(|e| e.to_string())?;

    let mut ts_log = timeseries
        .as_deref()
        .map(|path| TsLog::create(path, engine.telemetry()))
        .transpose()?;

    let n = a.rows();
    let t0 = Stopwatch::start();
    let id = engine.register(&a).map_err(|e| e.to_string())?;
    println!(
        "registered {input} in {:.1} ms (n = {n}, nnz = {})",
        t0.elapsed_seconds() * 1e3,
        a.nnz()
    );
    if let Some(path) = &metrics_json {
        // First checkpoint: registration (decompose or disk load) done.
        write_metrics_json(path, engine.telemetry())?;
    }
    if let Some(log) = &mut ts_log {
        log.sample()?;
    }
    let cache = engine.cache_stats();
    println!(
        "cache   : decompositions = {}, disk loads = {}, spills = {}",
        cache.decompositions, cache.disk_loads, cache.spills
    );
    println!(
        "planner : bound {} (dtype = {dtype})",
        engine.chosen_algorithm(id).expect("just registered")
    );
    for p in engine.plan_report(id).expect("just registered") {
        println!(
            "  {:<22} p = {:<5} predicted {:>9.3} µs/iter ({:.1} KiB, {:.0} msgs)",
            p.name,
            p.ranks,
            p.seconds * 1e6,
            p.estimate.max_rank_bytes / 1024.0,
            p.estimate.max_rank_messages
        );
    }

    // Synthetic query stream, deterministic per query index.
    let stream: Vec<Vec<f64>> = (0..queries)
        .map(|q| {
            (0..n)
                .map(|r| (((q as u32 + 3 * r) % 13) as f64) / 13.0 - 0.5)
                .collect()
        })
        .collect();

    // Unbatched baseline: every query pays a full run.
    let t0 = Stopwatch::start();
    for x in &stream {
        engine
            .run_single(MultiplyQuery {
                matrix: id,
                x: x.clone(),
                iters,
                sigma: None,
            })
            .map_err(|e| e.to_string())?;
    }
    let single = t0.elapsed_seconds();
    if let Some(path) = &metrics_json {
        // Second checkpoint: the unbatched half of the run.
        write_metrics_json(path, engine.telemetry())?;
    }
    if let Some(log) = &mut ts_log {
        log.sample()?;
    }

    // Batched: the same stream through the coalescing queue.
    let t0 = Stopwatch::start();
    for x in &stream {
        engine
            .submit(MultiplyQuery {
                matrix: id,
                x: x.clone(),
                iters,
                sigma: None,
            })
            .map_err(|e| e.to_string())?;
    }
    let responses = engine.flush().map_err(|e| e.to_string())?;
    let batched = t0.elapsed_seconds();
    assert_eq!(responses.len(), queries);

    println!(
        "serving : {queries} queries × {iters} iterations\n\
         unbatched: {:>8.1} ms total, {:>8.1} queries/s\n\
         batch={batch:<3}: {:>8.1} ms total, {:>8.1} queries/s ({:.1}× speedup)",
        single * 1e3,
        queries as f64 / single,
        batched * 1e3,
        queries as f64 / batched,
        single / batched
    );
    if let Some(path) = &metrics_json {
        write_metrics_json(path, engine.telemetry())?;
        println!("metrics : wrote {path}");
    }
    if let Some(log) = &mut ts_log {
        log.sample()?;
        println!("timeseries : wrote {}", timeseries.as_deref().unwrap_or(""));
    }
    if let Some(path) = &trace_json {
        write_trace_json(path, engine.telemetry())?;
        println!("trace   : wrote {path} (Chrome Trace Event Format)");
    }
    Ok(())
}

/// `chaos [all|<scenario>] [--seed N] [--out PATH]` — run the built-in
/// fault-injection scenario suite (or one scenario) and optionally
/// write the `amd-scenarios/1` JSON artifact. `chaos record` saves a
/// scenario's trace in the `amd-trace/1` text format; `chaos replay`
/// re-runs a saved trace fault-free and verifies it bit-exactly.
/// Exits nonzero when any scenario fails an invariant.
fn cmd_chaos(args: &[String]) -> Result<(), String> {
    use arrow_matrix::chaos::{FaultPlan, ScenarioTrace};
    use arrow_matrix::scenario::{self, Expectation, Scenario, ScenarioReport};

    let mut seed = 7u64;
    let mut out: Option<String> = None;
    let mut positional: Vec<&String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                seed = v.parse().map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--out" => {
                let v = it.next().ok_or("--out needs a path")?;
                out = Some(v.clone());
            }
            other if other.starts_with("--") => return Err(format!("unknown flag {other}")),
            _ => positional.push(arg),
        }
    }
    fn print_report(r: &ScenarioReport) {
        println!(
            "{} {:32} {}",
            if r.passed { "PASS" } else { "FAIL" },
            r.name,
            r.detail
        );
    }
    match positional.first().map(|s| s.as_str()) {
        Some("record") => {
            let [_, name, path] = positional.as_slice() else {
                return Err("chaos record <scenario> <out.trace> [--seed N]".into());
            };
            let scenarios = scenario::builtin_scenarios(seed);
            let s = scenarios.iter().find(|s| &s.name == *name).ok_or_else(|| {
                format!(
                    "unknown scenario {name}; known: {}",
                    scenarios
                        .iter()
                        .map(|s| s.name.as_str())
                        .collect::<Vec<_>>()
                        .join(" ")
                )
            })?;
            s.trace
                .save(std::path::Path::new(path.as_str()))
                .map_err(|e| format!("write {path}: {e}"))?;
            println!(
                "recorded {} ops of scenario `{}` to {path}",
                s.trace.ops.len(),
                s.name
            );
            Ok(())
        }
        Some("replay") => {
            let [_, path] = positional.as_slice() else {
                return Err("chaos replay <in.trace> [--seed N]".into());
            };
            let trace = ScenarioTrace::load(std::path::Path::new(path.as_str()))?;
            println!(
                "replaying {} ops over {} tenant(s) (n = {})",
                trace.ops.len(),
                trace.tenants,
                trace.n
            );
            let report = scenario::run(&Scenario {
                name: "replay".to_string(),
                trace,
                plan: FaultPlan::new(seed),
                with_catalog: false,
                crash_reopen: false,
                expect: Expectation::Exact,
            });
            print_report(&report);
            if report.passed {
                Ok(())
            } else {
                Err("replay failed verification".into())
            }
        }
        name => {
            let scenarios = scenario::builtin_scenarios(seed);
            let selected: Vec<Scenario> = match name {
                None | Some("all") => scenarios,
                Some(n) => {
                    let known: Vec<String> = scenarios.iter().map(|s| s.name.clone()).collect();
                    let picked: Vec<Scenario> =
                        scenarios.into_iter().filter(|s| s.name == n).collect();
                    if picked.is_empty() {
                        return Err(format!(
                            "unknown scenario {n}; known: all {}",
                            known.join(" ")
                        ));
                    }
                    picked
                }
            };
            println!(
                "chaos   : running {} scenario(s), seed = {seed}",
                selected.len()
            );
            let mut reports = Vec::new();
            for s in &selected {
                let report = scenario::run(s);
                print_report(&report);
                reports.push(report);
            }
            if let Some(path) = &out {
                std::fs::write(path, scenario::reports_to_json(seed, &reports))
                    .map_err(|e| format!("write {path}: {e}"))?;
                println!("wrote {path}");
            }
            let failed = reports.iter().filter(|r| !r.passed).count();
            if failed > 0 {
                Err(format!("{failed}/{} scenarios failed", reports.len()))
            } else {
                println!("chaos   : all {} scenario(s) passed", reports.len());
                Ok(())
            }
        }
    }
}
