//! E-STREAM — streaming updates: update-apply latency and the corrected
//! multiply's overhead as a function of delta density.
//!
//! Two questions the staleness budget needs answered empirically:
//!
//! 1. how fast do updates absorb (pure accumulation, no refresh)?
//! 2. what does the corrected multiply pay per iteration relative to the
//!    delta-free base path, as the pending delta grows?
//!
//! The second is the budget's trade-off curve: once the per-query
//! correction overhead times the expected queries-per-refresh exceeds
//! one LA-Decompose, compacting is cheaper than correcting.

use amd_bench::{Table, BENCH_SEED};
use amd_sparse::{CsrMatrix, DenseMatrix};
use amd_stream::{DynamicConfig, DynamicMatrix, StalenessBudget, Update};
use arrow_core::DecomposeConfig;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

const K: u32 = 8;
const ITERS: u32 = 2;
/// Delta densities to sweep: nnz(ΔA) / nnz(A₀).
const DENSITIES: [f64; 4] = [0.0, 0.01, 0.05, 0.10];

fn base_matrix() -> CsrMatrix<f64> {
    let mut rng = ChaCha8Rng::seed_from_u64(BENCH_SEED);
    amd_graph::generators::rmat::rmat(
        10,
        8,
        amd_graph::generators::rmat::RmatParams::graph500(),
        &mut rng,
    )
    .to_adjacency()
}

fn dynamic(a: &CsrMatrix<f64>) -> DynamicMatrix {
    DynamicMatrix::new(
        a.clone(),
        DynamicConfig {
            decompose: DecomposeConfig::with_width(64),
            budget: StalenessBudget::default(), // never refresh mid-bench
            ..DynamicConfig::default()
        },
    )
    .expect("base decomposes")
}

/// Structural updates until `nnz(ΔA)` reaches `target` distinct entries.
fn fill_delta(dm: &mut DynamicMatrix, target: usize, rng: &mut ChaCha8Rng) {
    let n = dm.n();
    while dm.delta_nnz() < target {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        dm.apply(Update::Add {
            row: u,
            col: v,
            delta: 1.0,
        })
        .expect("in bounds");
    }
}

fn bench_update_apply(c: &mut Criterion) {
    let a = base_matrix();
    let n = a.rows();
    let mut group = c.benchmark_group("stream_update_apply");
    group.sample_size(10);

    // Structural inserts: delta accumulation (the general path).
    let mut dm = dynamic(&a);
    let mut rng = ChaCha8Rng::seed_from_u64(BENCH_SEED ^ 1);
    const BATCH: u64 = 1024;
    group.throughput(Throughput::Elements(BATCH));
    let mut structural_secs = f64::INFINITY;
    group.bench_function("structural_insert", |b| {
        b.iter(|| {
            let t0 = amd_obs::Stopwatch::start();
            for _ in 0..BATCH {
                let u = rng.gen_range(0..n);
                let v = rng.gen_range(0..n);
                dm.apply(Update::Add {
                    row: u,
                    col: v,
                    delta: 1.0,
                })
                .expect("in bounds");
            }
            structural_secs = structural_secs.min(t0.elapsed_seconds());
        })
    });

    // Value-only updates on existing edges: the in-place patch path.
    let mut dm = dynamic(&a);
    let edges: Vec<(u32, u32)> = a.iter().map(|(r, c, _)| (r, c)).collect();
    let mut idx = 0usize;
    let mut patch_secs = f64::INFINITY;
    group.bench_function("in_place_patch", |b| {
        b.iter(|| {
            let t0 = amd_obs::Stopwatch::start();
            for _ in 0..BATCH {
                let (r, c) = edges[idx % edges.len()];
                idx += 1;
                dm.apply(Update::Add {
                    row: r,
                    col: c,
                    delta: 1.0,
                })
                .expect("in bounds");
            }
            patch_secs = patch_secs.min(t0.elapsed_seconds());
        })
    });
    group.finish();

    let mut table = Table::new(vec!["update kind", "updates/s", "delta growth"]);
    table.row(vec![
        "structural insert".to_string(),
        format!("{:.0}", BATCH as f64 / structural_secs),
        "joins ΔA".to_string(),
    ]);
    table.row(vec![
        "in-place patch".to_string(),
        format!("{:.0}", BATCH as f64 / patch_secs),
        "none (decomposition patched)".to_string(),
    ]);
    table.print(&format!(
        "E-STREAM — update-apply latency (R-MAT scale 10, n = {n}, batches of {BATCH})"
    ));
}

fn bench_corrected_multiply(c: &mut Criterion) {
    let a = base_matrix();
    let n = a.rows();
    let base_nnz = a.nnz();
    let x = DenseMatrix::from_fn(n, K, |r, col| (((r * 7 + col * 3) % 11) as f64) - 5.0);

    let mut group = c.benchmark_group("stream_corrected_multiply");
    group.sample_size(10);
    let mut rows = Vec::new();
    for &density in &DENSITIES {
        let target = (density * base_nnz as f64).round() as usize;
        let mut dm = dynamic(&a);
        let mut rng = ChaCha8Rng::seed_from_u64(BENCH_SEED ^ 2);
        fill_delta(&mut dm, target, &mut rng);
        assert_eq!(dm.delta_nnz(), target);
        let mut secs = f64::INFINITY;
        group.bench_with_input(
            BenchmarkId::new("density", format!("{density}")),
            &density,
            |b, _| {
                b.iter(|| {
                    let t0 = amd_obs::Stopwatch::start();
                    let y = dm.multiply(&x, ITERS, None).expect("multiply succeeds");
                    secs = secs.min(t0.elapsed_seconds());
                    y
                })
            },
        );
        rows.push((density, target, secs));
    }
    group.finish();

    let mut table = Table::new(vec![
        "delta density",
        "delta nnz",
        "ms/multiply",
        "overhead vs delta-free",
    ]);
    let base_secs = rows[0].2;
    for (density, nnz, secs) in rows {
        table.row(vec![
            format!("{:.0}%", density * 100.0),
            nnz.to_string(),
            format!("{:.3}", secs * 1e3),
            format!("{:.2}x", secs / base_secs),
        ]);
    }
    table.print(&format!(
        "E-STREAM — corrected multiply overhead vs delta density \
         (R-MAT scale 10, nnz(A₀) = {base_nnz}, k = {K}, {ITERS} iters)"
    ));
}

criterion_group!(stream_updates, bench_update_apply, bench_corrected_multiply);
criterion_main!(stream_updates);
