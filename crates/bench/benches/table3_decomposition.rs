//! E7 — **§7.2 "Decomposition Results"** of the paper (presented here as a
//! table):
//!
//! * order of the decomposition stays at 1–4 across datasets and widths,
//! * the second matrix holds 0.1%–13% of the rows,
//! * the arrow decomposition uses 15×–100× fewer nonzero blocks than a
//!   direct 1.5D tiling at the same block size (fewer as `b` shrinks).

use amd_bench::{bench_graph, BenchScale, Table, BENCH_SEED};
use amd_graph::generators::datasets::DatasetKind;
use amd_sparse::CsrMatrix;
use arrow_core::stats::{direct_tiling_nonzero_blocks, DecompositionStats};
use arrow_core::{la_decompose, DecomposeConfig, RandomForestLa};

fn main() {
    let scale = BenchScale::from_env();
    let n = scale.base_n();
    // Scaled analogue of the paper's b ∈ {0.5e6 … 5e6} on 50M–226M rows:
    // widths at ~1/100 and ~1/10 of n.
    let widths = [n / 100, n / 30, n / 10];
    let mut table = Table::new(vec![
        "dataset",
        "b",
        "order",
        "2nd-level rows %",
        "compaction x",
        "arrow blocks",
        "1.5D blocks",
        "ratio",
    ]);
    for kind in DatasetKind::ALL {
        let g = bench_graph(kind, n);
        let a: CsrMatrix<f64> = g.to_adjacency();
        for &b in &widths {
            let b = b.max(16);
            let d = la_decompose(
                &a,
                &DecomposeConfig::with_width(b),
                &mut RandomForestLa::new(BENCH_SEED),
            )
            .expect("decomposition succeeds");
            debug_assert_eq!(d.validate(&a).unwrap(), 0.0);
            let s = DecompositionStats::of(&d);
            let direct = direct_tiling_nonzero_blocks(&a, b);
            let arrow = s.total_nonzero_tiles();
            table.row(vec![
                kind.name().to_string(),
                format!("{b}"),
                format!("{}", s.order),
                format!("{:.2}", 100.0 * s.second_level_row_fraction),
                if s.compaction_factor.is_finite() {
                    format!("{:.1}", s.compaction_factor)
                } else {
                    "inf".to_string()
                },
                format!("{arrow}"),
                format!("{direct}"),
                format!("{:.1}x", direct as f64 / arrow.max(1) as f64),
            ]);
        }
    }
    table.print(&format!("§7.2 decomposition quality (n = {n})"));
    println!(
        "\npaper: order ≤ 4; second matrix 0.1%–13% of rows; 15–20x fewer blocks at \
         large b, >100x at small b (largest effects on the starriest graphs)"
    );
}
