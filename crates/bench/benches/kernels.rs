//! K1–K5 — criterion microbenchmarks of the computational kernels.
//!
//! These cover the building blocks whose constants determine the end-to-
//! end numbers: local SpMM (serial vs rayon), LA-Decompose construction,
//! random spanning forests, the smallest-first layout, and the binomial
//! broadcast of the comm substrate.

use amd_bench::{bench_graph, BENCH_SEED};
use amd_comm::{Group, Machine};
use amd_graph::generators::datasets::DatasetKind;
use amd_graph::mst::random_spanning_forest;
use amd_linarr::tree_layout::{root_tree, smallest_first_order};
use amd_sparse::{spmm, CsrMatrix, DenseMatrix};
use arrow_core::{la_decompose, DecomposeConfig, RandomForestLa};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_local_spmm(c: &mut Criterion) {
    let mut group = c.benchmark_group("local_spmm");
    let g = bench_graph(DatasetKind::WebBase, 10_000);
    let a: CsrMatrix<f64> = g.to_adjacency();
    for k in [32u32, 128] {
        let x = DenseMatrix::from_fn(a.cols(), k, |r, cc| ((r + cc) % 13) as f64);
        group.throughput(Throughput::Elements((a.nnz() as u64) * k as u64));
        group.bench_with_input(BenchmarkId::new("serial", k), &k, |bch, _| {
            bch.iter(|| spmm::spmm(&a, &x).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("rayon", k), &k, |bch, _| {
            bch.iter(|| spmm::spmm_parallel(&a, &x).unwrap())
        });
    }
    group.finish();
}

fn bench_decomposition(c: &mut Criterion) {
    let mut group = c.benchmark_group("la_decompose");
    group.sample_size(10);
    for kind in [DatasetKind::GenBank, DatasetKind::Mawi] {
        let g = bench_graph(kind, 20_000);
        let a: CsrMatrix<f64> = g.to_adjacency();
        group.bench_function(kind.name(), |bch| {
            bch.iter(|| {
                la_decompose(
                    &a,
                    &DecomposeConfig::with_width(512),
                    &mut RandomForestLa::new(BENCH_SEED),
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_spanning_forest(c: &mut Criterion) {
    let g = bench_graph(DatasetKind::WebBase, 20_000);
    c.bench_function("random_spanning_forest_20k", |bch| {
        bch.iter(|| {
            let mut rng = ChaCha8Rng::seed_from_u64(BENCH_SEED);
            random_spanning_forest(&g, &mut rng)
        })
    });
}

fn bench_tree_layout(c: &mut Criterion) {
    let g = bench_graph(DatasetKind::GenBank, 20_000);
    let mut rng = ChaCha8Rng::seed_from_u64(BENCH_SEED);
    let forest = random_spanning_forest(&g, &mut rng);
    c.bench_function("smallest_first_order_20k", |bch| {
        bch.iter(|| smallest_first_order(&forest))
    });
    let tree = amd_graph::generators::random::random_tree(20_000, &mut rng);
    c.bench_function("root_tree_20k", |bch| bch.iter(|| root_tree(&tree, 0)));
}

fn bench_broadcast(c: &mut Criterion) {
    let mut group = c.benchmark_group("comm_broadcast");
    group.sample_size(10);
    for p in [8u32, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |bch, &p| {
            bch.iter(|| {
                Machine::new(p).run(|ctx| {
                    let g = Group::world(ctx);
                    let data = if g.my_idx() == 0 {
                        Some(vec![1.0f64; 4096])
                    } else {
                        None
                    };
                    g.broadcast(ctx, 0, data).len()
                })
            })
        });
    }
    group.finish();
}

criterion_group!(
    kernels,
    bench_local_spmm,
    bench_decomposition,
    bench_spanning_forest,
    bench_tree_layout,
    bench_broadcast
);
criterion_main!(kernels);
