//! K1–K8 — criterion microbenchmarks of the computational kernels.
//!
//! These cover the building blocks whose constants determine the end-to-
//! end numbers: local SpMM (serial vs rayon), LA-Decompose construction,
//! random spanning forests, the smallest-first layout, and the binomial
//! broadcast of the comm substrate — plus the serving-path kernels: the
//! fused active-prefix level multiply vs the naive three-pass reference,
//! `f32` vs `f64` compiled serving, and a splice-depth sweep showing the
//! fusion's advantage grow as incremental refreshes stack shallow
//! levels. The serving-kernel sweeps are written to `BENCH_kernels.json`
//! at the workspace root so future changes can diff them machine-
//! readably.

use amd_bench::{bench_graph, BENCH_SEED};
use amd_comm::{Group, Machine};
use amd_graph::generators::datasets::DatasetKind;
use amd_graph::mst::random_spanning_forest;
use amd_linarr::tree_layout::{root_tree, smallest_first_order};
use amd_sparse::{ops, spmm, CooMatrix, CsrMatrix, DeltaBuilder, DenseMatrix};
use arrow_core::incremental::{decompose_snapshot_incremental, IncrementalPolicy};
use arrow_core::{
    decompose_snapshot, la_decompose, ArrowDecomposition, DecomposeConfig, RandomForestLa,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::io::Write;

fn bench_local_spmm(c: &mut Criterion) {
    let mut group = c.benchmark_group("local_spmm");
    let g = bench_graph(DatasetKind::WebBase, 10_000);
    let a: CsrMatrix<f64> = g.to_adjacency();
    for k in [32u32, 128] {
        let x = DenseMatrix::from_fn(a.cols(), k, |r, cc| ((r + cc) % 13) as f64);
        group.throughput(Throughput::Elements((a.nnz() as u64) * k as u64));
        group.bench_with_input(BenchmarkId::new("serial", k), &k, |bch, _| {
            bch.iter(|| spmm::spmm(&a, &x).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("rayon", k), &k, |bch, _| {
            bch.iter(|| spmm::spmm_parallel(&a, &x).unwrap())
        });
    }
    group.finish();
}

fn bench_decomposition(c: &mut Criterion) {
    let mut group = c.benchmark_group("la_decompose");
    group.sample_size(10);
    for kind in [DatasetKind::GenBank, DatasetKind::Mawi] {
        let g = bench_graph(kind, 20_000);
        let a: CsrMatrix<f64> = g.to_adjacency();
        group.bench_function(kind.name(), |bch| {
            bch.iter(|| {
                la_decompose(
                    &a,
                    &DecomposeConfig::with_width(512),
                    &mut RandomForestLa::new(BENCH_SEED),
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_spanning_forest(c: &mut Criterion) {
    let g = bench_graph(DatasetKind::WebBase, 20_000);
    c.bench_function("random_spanning_forest_20k", |bch| {
        bch.iter(|| {
            let mut rng = ChaCha8Rng::seed_from_u64(BENCH_SEED);
            random_spanning_forest(&g, &mut rng)
        })
    });
}

fn bench_tree_layout(c: &mut Criterion) {
    let g = bench_graph(DatasetKind::GenBank, 20_000);
    let mut rng = ChaCha8Rng::seed_from_u64(BENCH_SEED);
    let forest = random_spanning_forest(&g, &mut rng);
    c.bench_function("smallest_first_order_20k", |bch| {
        bch.iter(|| smallest_first_order(&forest))
    });
    let tree = amd_graph::generators::random::random_tree(20_000, &mut rng);
    c.bench_function("root_tree_20k", |bch| bch.iter(|| root_tree(&tree, 0)));
}

fn bench_broadcast(c: &mut Criterion) {
    let mut group = c.benchmark_group("comm_broadcast");
    group.sample_size(10);
    for p in [8u32, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |bch, &p| {
            bch.iter(|| {
                Machine::new(p).run(|ctx| {
                    let g = Group::world(ctx);
                    let data = if g.my_idx() == 0 {
                        Some(vec![1.0f64; 4096])
                    } else {
                        None
                    };
                    g.broadcast(ctx, 0, data).len()
                })
            })
        });
    }
    group.finish();
}

/// Ring plus short chords: banded, several levels.
fn banded(n: u32) -> CsrMatrix<f64> {
    let mut coo = CooMatrix::new(n, n);
    for v in 0..n {
        coo.push_sym(v, (v + 1) % n, 1.0).unwrap();
        coo.push_sym(v, (v + 4) % n, 1.0).unwrap();
    }
    coo.to_csr()
}

/// Splices `rounds` localized deltas onto `d`, deepening the level stack
/// with small-active-prefix levels. Returns the spliced decomposition and
/// the merged matrix.
fn splice_rounds(
    base: &CsrMatrix<f64>,
    d: &ArrowDecomposition,
    cfg: &DecomposeConfig,
    rounds: u32,
) -> (ArrowDecomposition, CsrMatrix<f64>) {
    let n = base.rows();
    let policy = IncrementalPolicy {
        max_affected_fraction: 1.0,
        max_order: 256,
        ..Default::default()
    };
    let mut cur = base.clone();
    let mut dec = d.clone();
    for round in 0..rounds {
        let start = 1000 + round * 50;
        let mut delta = DeltaBuilder::<f64>::new(n, n);
        for i in 0..12u32 {
            let u = (start + 3 * i) % n;
            delta.add_sym(u, (u + 2) % n, 1.0).unwrap();
        }
        let merged = ops::apply_delta(&cur, &delta.to_csr()).expect("delta applies");
        let (next, outcome) = decompose_snapshot_incremental(
            &merged,
            cfg,
            BENCH_SEED,
            Some(&dec),
            Some(&delta.touched_vertices()),
            &policy,
        )
        .expect("refresh decomposes");
        assert!(
            outcome.incremental,
            "splice fell back: {:?}",
            outcome.fallback
        );
        cur = merged;
        dec = next;
    }
    (dec, cur)
}

struct FusedCase {
    n: u32,
    k: u32,
    splice_rounds: u32,
    levels: u32,
    active_prefix: f64,
    naive_ms: f64,
    fused_ms: f64,
}

struct DtypeCase {
    n: u32,
    k: u32,
    f64_ms: f64,
    f32_ms: f64,
}

/// K6/K8 — fused active-prefix multiply vs the naive three-pass
/// reference, over RHS widths and splice depths. The spliced levels have
/// tiny active prefixes, so the naive path's full-`n` permute passes
/// dominate and the fused advantage grows with depth.
fn bench_fused_vs_naive(c: &mut Criterion, cases: &mut Vec<FusedCase>) {
    let mut group = c.benchmark_group("fused_vs_naive");
    group.sample_size(10);
    let n = 20_000u32;
    let base = banded(n);
    let cfg = DecomposeConfig::with_width(64);
    let cold = decompose_snapshot(&base, &cfg, BENCH_SEED).expect("decomposes");
    for rounds in [0u32, 4, 8] {
        let (d, _) = splice_rounds(&base, &cold, &cfg, rounds);
        for k in [8u32, 64] {
            let x = DenseMatrix::from_fn(n, k, |r, cc| (((r + cc) % 9) as f64) - 4.0);
            let label = format!("n={n}/splices={rounds}");
            let mut naive_secs = f64::INFINITY;
            group.bench_with_input(BenchmarkId::new(format!("naive/{label}"), k), &k, |b, _| {
                b.iter(|| {
                    let t = amd_obs::Stopwatch::start();
                    let y = d.multiply_unfused(&x).unwrap();
                    naive_secs = naive_secs.min(t.elapsed_seconds());
                    y
                })
            });
            let mut fused_secs = f64::INFINITY;
            group.bench_with_input(BenchmarkId::new(format!("fused/{label}"), k), &k, |b, _| {
                b.iter(|| {
                    let t = amd_obs::Stopwatch::start();
                    let y = d.multiply(&x).unwrap();
                    fused_secs = fused_secs.min(t.elapsed_seconds());
                    y
                })
            });
            cases.push(FusedCase {
                n,
                k,
                splice_rounds: rounds,
                levels: d.order() as u32,
                active_prefix: d.active_prefix_fraction(),
                naive_ms: naive_secs * 1e3,
                fused_ms: fused_secs * 1e3,
            });
        }
    }
    group.finish();
}

/// K7 — compiled `f32` vs `f64` serving multiply (same fused kernel,
/// half the bytes per value).
fn bench_dtype(c: &mut Criterion, cases: &mut Vec<DtypeCase>) {
    let mut group = c.benchmark_group("dtype");
    group.sample_size(10);
    let n = 20_000u32;
    let base = banded(n);
    let d = decompose_snapshot(&base, &DecomposeConfig::with_width(64), BENCH_SEED)
        .expect("decomposes");
    let c64 = d.compile::<f64>();
    let c32 = d.compile::<f32>();
    for k in [8u32, 64] {
        let x64 = DenseMatrix::from_fn(n, k, |r, cc| (((r + cc) % 9) as f64) - 4.0);
        let x32 = DenseMatrix::from_fn(n, k, |r, cc| (((r + cc) % 9) as f32) - 4.0);
        let mut f64_secs = f64::INFINITY;
        group.bench_with_input(BenchmarkId::new("f64", k), &k, |b, _| {
            b.iter(|| {
                let t = amd_obs::Stopwatch::start();
                let y = c64.multiply(&x64).unwrap();
                f64_secs = f64_secs.min(t.elapsed_seconds());
                y
            })
        });
        let mut f32_secs = f64::INFINITY;
        group.bench_with_input(BenchmarkId::new("f32", k), &k, |b, _| {
            b.iter(|| {
                let t = amd_obs::Stopwatch::start();
                let y = c32.multiply(&x32).unwrap();
                f32_secs = f32_secs.min(t.elapsed_seconds());
                y
            })
        });
        cases.push(DtypeCase {
            n,
            k,
            f64_ms: f64_secs * 1e3,
            f32_ms: f32_secs * 1e3,
        });
    }
    group.finish();
}

fn bench_serving_kernels(c: &mut Criterion) {
    let mut fused = Vec::new();
    let mut dtype = Vec::new();
    bench_fused_vs_naive(c, &mut fused);
    bench_dtype(c, &mut dtype);
    write_json(&fused, &dtype);
}

/// Machine-readable summary for the perf trajectory of future PRs.
/// Hand-formatted (no serde in the offline workspace).
fn write_json(fused: &[FusedCase], dtype: &[DtypeCase]) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
    let mut body = String::new();
    body.push_str("{\n  \"bench\": \"kernels\",\n  \"fused_vs_naive\": [\n");
    for (i, c) in fused.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"n\": {}, \"k\": {}, \"splice_rounds\": {}, \"levels\": {}, \
             \"active_prefix\": {:.4}, \"naive_ms\": {:.3}, \"fused_ms\": {:.3}, \
             \"speedup\": {:.2}}}{}\n",
            c.n,
            c.k,
            c.splice_rounds,
            c.levels,
            c.active_prefix,
            c.naive_ms,
            c.fused_ms,
            c.naive_ms / c.fused_ms,
            if i + 1 < fused.len() { "," } else { "" }
        ));
    }
    body.push_str("  ],\n  \"dtype\": [\n");
    for (i, c) in dtype.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"n\": {}, \"k\": {}, \"f64_ms\": {:.3}, \"f32_ms\": {:.3}, \
             \"speedup\": {:.2}}}{}\n",
            c.n,
            c.k,
            c.f64_ms,
            c.f32_ms,
            c.f64_ms / c.f32_ms,
            if i + 1 < dtype.len() { "," } else { "" }
        ));
    }
    body.push_str("  ]\n}\n");
    match std::fs::File::create(path).and_then(|mut f| f.write_all(body.as_bytes())) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

criterion_group!(
    kernels,
    bench_local_spmm,
    bench_decomposition,
    bench_spanning_forest,
    bench_tree_layout,
    bench_broadcast,
    bench_serving_kernels
);
criterion_main!(kernels);
