//! E3 — **Figure 1** of the paper: "Non-zero structure of the first matrix
//! B0 in an arrow matrix decomposition".
//!
//! Decomposes five dataset stand-ins and renders the per-block nnz density
//! of B0's three tile families as text heat strips (the paper's color
//! plots). The signatures to look for, per §7.2:
//!
//! * MAWI — mass concentrated in the pruned arm (top/left),
//! * GenBank / OSM — mass in the diagonal band,
//! * WebBase / GAP-twitter — mixed arm + band.

use amd_bench::{bench_graph, BenchScale, BENCH_SEED};
use amd_graph::generators::datasets::DatasetKind;
use amd_sparse::CsrMatrix;
use arrow_core::stats::StructureProfile;
use arrow_core::{la_decompose, DecomposeConfig, RandomForestLa};

/// Renders counts as a heat strip with log-scaled shades.
fn strip(counts: &[usize]) -> String {
    const SHADES: [char; 6] = ['.', ':', '-', '=', '#', '@'];
    let max = counts.iter().copied().max().unwrap_or(0).max(1) as f64;
    counts
        .iter()
        .map(|&c| {
            if c == 0 {
                ' '
            } else {
                let t = ((c as f64).ln() / max.ln().max(1e-9)).clamp(0.0, 1.0);
                SHADES[((t * (SHADES.len() - 1) as f64).round()) as usize]
            }
        })
        .collect()
}

fn main() {
    let scale = BenchScale::from_env();
    let n = scale.base_n();
    let b = (n / 24).max(64);
    println!("=== Figure 1: nonzero structure of B0 (b = {b}, shades log-scaled) ===");
    for kind in [
        DatasetKind::GenBank,
        DatasetKind::Mawi,
        DatasetKind::WebBase,
        DatasetKind::OsmEurope,
        DatasetKind::GapTwitter,
    ] {
        let g = bench_graph(kind, n);
        let a: CsrMatrix<f64> = g.to_adjacency();
        let d = la_decompose(
            &a,
            &DecomposeConfig::with_width(b),
            &mut RandomForestLa::new(BENCH_SEED),
        )
        .expect("decomposition succeeds at bench scale");
        let p = StructureProfile::of_first_level(&d).expect("order >= 1");
        let arm_total: usize = p.row_arm.iter().sum::<usize>() + p.col_arm.iter().sum::<usize>();
        let band_total: usize = p.diagonal.iter().sum();
        println!("\n--- {} (n={n}, order={}) ---", kind.name(), d.order());
        println!("row arm  B(0,j): [{}]", strip(&p.row_arm));
        println!("col arm  B(i,0): [{}]", strip(&p.col_arm));
        println!("diagonal B(i,i): [{}]", strip(&p.diagonal));
        println!(
            "arm nnz = {arm_total} ({:.1}%), band nnz = {band_total} ({:.1}%)",
            100.0 * arm_total as f64 / (arm_total + band_total).max(1) as f64,
            100.0 * band_total as f64 / (arm_total + band_total).max(1) as f64,
        );
    }
    println!(
        "\npaper signatures: MAWI arm-dominated; GenBank/OSM band-dominated; \
         WebBase/GAP-twitter mixed"
    );
}
