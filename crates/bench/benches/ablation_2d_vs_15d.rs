//! E11 — ablation for the **§3 "2D A-stationary"** discussion.
//!
//! The paper argues (citing Selvitopi et al. and Tripathy et al.) that 2D
//! decompositions scale *less* favourably than 1.5D for tall-skinny
//! feature matrices: 2D saves `√p`× storage but pays `Θ(√p)` more latency
//! and `Θ(log p)` more bandwidth. This bench measures all three algorithms
//! on the same workload so the trade-off is visible, and shows the arrow
//! decomposition dominating both.

use amd_bench::runner::arrow_with_ranks;
use amd_bench::{bench_graph, BenchScale, Table};
use amd_graph::generators::datasets::DatasetKind;
use amd_sparse::{CsrMatrix, DenseMatrix};
use amd_spmm::{A15dSpmm, A2dSpmm, DistSpmm};

fn main() {
    let scale = BenchScale::from_env();
    let n = scale.base_n() / 2;
    let iters = 2;
    let g = bench_graph(DatasetKind::WebBase, n);
    let a: CsrMatrix<f64> = g.to_adjacency();
    let mut table = Table::new(vec![
        "k",
        "p",
        "algorithm",
        "sim time/iter (ms)",
        "max vol/iter (KiB)",
        "max msgs/rank",
    ]);
    for &k in &[32u32, 128] {
        let x = DenseMatrix::from_fn(n, k, |r, c| ((r + c) % 7) as f64 - 3.0);
        for &p in &[16u32, 64] {
            let q = (p as f64).sqrt() as u32;
            let mut emit = |name: String, run: &amd_spmm::SpmmRun| {
                table.row(vec![
                    format!("{k}"),
                    format!("{p}"),
                    name,
                    format!("{:.3}", run.sim_time_per_iter() * 1e3),
                    format!("{:.1}", run.volume_per_iter() / 1024.0),
                    format!("{}", run.stats.max_messages() / iters as u64),
                ]);
            };
            let a15 = A15dSpmm::new(&a, p, q).expect("1.5D");
            let r15 = a15.run(&x, iters).expect("1.5D run");
            emit(a15.name(), &r15);
            let a2d = A2dSpmm::new(&a, p).expect("2D");
            let r2d = a2d.run(&x, iters).expect("2D run");
            emit(a2d.name(), &r2d);
            if let Ok((_, arrow)) = arrow_with_ranks(&a, p) {
                let ra = arrow.run(&x, iters).expect("arrow run");
                emit(arrow.name(), &ra);
            }
        }
    }
    table.print(&format!(
        "§3 ablation: 2D vs 1.5D vs arrow (WebBase-like, n = {n})"
    ));
    println!(
        "\nexpected: 2D sends more, smaller messages (higher latency, log-factor \
         bandwidth) than 1.5D with c = √p; arrow beats both on volume"
    );
}
