//! Refresh latency: cold LA-Decompose vs delta-localized incremental
//! re-decomposition, swept over delta locality (fraction of vertices
//! touched) and matrix size.
//!
//! This is the perf trajectory of the streaming hot path: a refresh
//! blocks (sync) or occupies a worker slot (async) for exactly this
//! long, so the staleness budget a serving layer can afford is a direct
//! function of these numbers. Besides the plain-text table, the sweep is
//! written to `BENCH_refresh.json` at the workspace root so future
//! changes can diff refresh latency machine-readably.

use amd_bench::Table;
use amd_sparse::{ops, CooMatrix, CsrMatrix, DeltaBuilder};
use arrow_core::incremental::{decompose_snapshot_incremental, IncrementalPolicy};
use arrow_core::{decompose_snapshot, DecomposeConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::io::Write;

const SEED: u64 = 21;
const ARROW_WIDTH: u32 = 64;
const SIZES: [u32; 2] = [10_000, 50_000];
/// Fraction of the vertices touched by the delta (window-confined).
const LOCALITIES: [f64; 3] = [0.001, 0.01, 0.10];

/// Ring plus short chords: banded, several levels, localized structure.
fn banded(n: u32) -> CsrMatrix<f64> {
    let mut coo = CooMatrix::new(n, n);
    for v in 0..n {
        coo.push_sym(v, (v + 1) % n, 1.0).unwrap();
        coo.push_sym(v, (v + 4) % n, 1.0).unwrap();
    }
    coo.to_csr()
}

/// Chord inserts confined to a window of ~`locality · n` vertices.
fn window_delta(n: u32, locality: f64) -> DeltaBuilder<f64> {
    let window = ((locality * n as f64) as u32).max(4);
    let start = n / 3;
    let mut delta = DeltaBuilder::new(n, n);
    let mut v = start;
    while v + 2 < start + window {
        delta.add_sym(v, v + 2, 1.0).unwrap();
        v += 3;
    }
    delta
}

struct Case {
    n: u32,
    locality: f64,
    touched: usize,
    affected: u32,
    incremental_used: bool,
    cold_secs: f64,
    incr_secs: f64,
}

fn bench_refresh_latency(c: &mut Criterion) {
    let cfg = DecomposeConfig::with_width(ARROW_WIDTH);
    let policy = IncrementalPolicy::default();
    let mut group = c.benchmark_group("refresh_latency");
    group.sample_size(3);
    let mut cases: Vec<Case> = Vec::new();

    for &n in &SIZES {
        let base = banded(n);
        let prior = decompose_snapshot(&base, &cfg, SEED).expect("base decomposes");
        for &locality in &LOCALITIES {
            let delta = window_delta(n, locality);
            let touched = delta.touched_vertices();
            let merged = ops::apply_delta(&base, &delta.to_csr()).expect("delta applies");

            let mut cold_secs = f64::INFINITY;
            group.bench_with_input(
                BenchmarkId::new(format!("cold/n={n}"), locality),
                &locality,
                |b, _| {
                    b.iter(|| {
                        let t0 = amd_obs::Stopwatch::start();
                        let d = decompose_snapshot(&merged, &cfg, SEED).expect("decomposes");
                        cold_secs = cold_secs.min(t0.elapsed_seconds());
                        d
                    })
                },
            );

            let mut incr_secs = f64::INFINITY;
            let mut outcome = None;
            group.bench_with_input(
                BenchmarkId::new(format!("incremental/n={n}"), locality),
                &locality,
                |b, _| {
                    b.iter(|| {
                        let t0 = amd_obs::Stopwatch::start();
                        let (d, o) = decompose_snapshot_incremental(
                            &merged,
                            &cfg,
                            SEED,
                            Some(&prior),
                            Some(&touched),
                            &policy,
                        )
                        .expect("refresh decomposes");
                        incr_secs = incr_secs.min(t0.elapsed_seconds());
                        outcome = Some(o);
                        d
                    })
                },
            );
            let outcome = outcome.expect("bench ran at least once");
            cases.push(Case {
                n,
                locality,
                touched: touched.len(),
                affected: outcome.affected_vertices,
                incremental_used: outcome.incremental,
                cold_secs,
                incr_secs,
            });
        }
    }
    group.finish();

    let mut table = Table::new(vec![
        "n",
        "locality",
        "touched",
        "affected",
        "path",
        "cold ms",
        "incremental ms",
        "speedup",
    ]);
    for c in &cases {
        table.row(vec![
            c.n.to_string(),
            format!("{:.1}%", c.locality * 100.0),
            c.touched.to_string(),
            c.affected.to_string(),
            if c.incremental_used {
                "splice".to_string()
            } else {
                "fallback".to_string()
            },
            format!("{:.2}", c.cold_secs * 1e3),
            format!("{:.2}", c.incr_secs * 1e3),
            format!("{:.1}x", c.cold_secs / c.incr_secs),
        ]);
    }
    table.print(&format!(
        "Refresh latency — cold vs incremental decompose (b = {ARROW_WIDTH})"
    ));

    write_json(&cases);
}

/// Machine-readable summary for the perf trajectory of future PRs.
/// Hand-formatted (no serde in the offline workspace).
fn write_json(cases: &[Case]) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_refresh.json");
    let mut body = String::new();
    body.push_str("{\n  \"bench\": \"refresh_latency\",\n");
    body.push_str(&format!("  \"arrow_width\": {ARROW_WIDTH},\n"));
    body.push_str("  \"cases\": [\n");
    for (i, c) in cases.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"n\": {}, \"locality\": {}, \"touched\": {}, \"affected\": {}, \
             \"incremental_used\": {}, \"cold_ms\": {:.3}, \"incremental_ms\": {:.3}, \
             \"speedup\": {:.2}}}{}\n",
            c.n,
            c.locality,
            c.touched,
            c.affected,
            c.incremental_used,
            c.cold_secs * 1e3,
            c.incr_secs * 1e3,
            c.cold_secs / c.incr_secs,
            if i + 1 < cases.len() { "," } else { "" }
        ));
    }
    body.push_str("  ]\n}\n");
    match std::fs::File::create(path).and_then(|mut f| f.write_all(body.as_bytes())) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

criterion_group!(refresh_latency, bench_refresh_latency);
criterion_main!(refresh_latency);
