//! E-TENANCY — multi-tenant streaming throughput under refresh pressure.
//!
//! The question the hub's double-buffering answers empirically: what
//! does a mixed update+query stream sustain, aggregated across tenants,
//! when staleness refreshes run (a) synchronously inside the stream and
//! (b) on the background worker? Swept at 1 / 4 / 16 tenants so the
//! shared-engine overheads (batcher, per-tenant overlays, fairness
//! queue) are visible, with a budget tight enough that refreshes
//! actually happen during the measured window.

use amd_bench::{Table, BENCH_SEED};
use amd_sparse::CsrMatrix;
use amd_stream::{HubConfig, StalenessBudget, StreamHub, TenantId, Update};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Tenant counts swept.
const TENANTS: [usize; 3] = [1, 4, 16];
/// Update/query events per tenant per measured pass.
const EVENTS_PER_TENANT: usize = 48;
/// Queries interleaved every this many updates.
const QUERY_EVERY: usize = 8;
const ITERS: u32 = 2;

fn base_matrix() -> CsrMatrix<f64> {
    let mut rng = ChaCha8Rng::seed_from_u64(BENCH_SEED);
    amd_graph::generators::rmat::rmat(
        8,
        8,
        amd_graph::generators::rmat::RmatParams::graph500(),
        &mut rng,
    )
    .to_adjacency()
}

fn hub_for(a: &CsrMatrix<f64>, tenants: usize, async_refresh: bool) -> (StreamHub, Vec<TenantId>) {
    let mut hub = StreamHub::new(HubConfig {
        engine: amd_engine::EngineConfig {
            arrow_width: 32,
            target_ranks: 8,
            ..amd_engine::EngineConfig::default()
        },
        // Tight enough that the measured window contains refreshes.
        budget: StalenessBudget::nnz_fraction(0.02),
        async_refresh,
        ..HubConfig::default()
    })
    .expect("hub stands up");
    let ids = (0..tenants)
        .map(|_| hub.admit(a.clone()).expect("admission succeeds"))
        .collect();
    (hub, ids)
}

/// One measured pass: round-robin updates with interleaved query+flush
/// over every tenant; returns events driven.
fn drive(hub: &mut StreamHub, ids: &[TenantId], n: u32, rng: &mut ChaCha8Rng) -> usize {
    let mut events = 0;
    for step in 0..EVENTS_PER_TENANT {
        for &id in ids {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            hub.update(
                id,
                Update::Add {
                    row: u,
                    col: v,
                    delta: 1.0,
                },
            )
            .expect("update in bounds");
            events += 1;
        }
        if step % QUERY_EVERY == 0 {
            for &id in ids {
                let x: Vec<f64> = (0..n)
                    .map(|r| (((step as u32 + r) % 7) as f64) - 3.0)
                    .collect();
                hub.submit(id, x, ITERS, None).expect("submit succeeds");
                events += 1;
            }
            hub.flush().expect("flush succeeds");
        }
    }
    hub.wait_refreshes().expect("refreshes settle");
    events
}

fn bench_tenancy(c: &mut Criterion) {
    let a = base_matrix();
    let n = a.rows();
    let mut group = c.benchmark_group("stream_tenancy");
    group.sample_size(10);

    let mut rows = Vec::new();
    for &tenants in &TENANTS {
        for async_refresh in [false, true] {
            let label = if async_refresh { "async" } else { "sync" };
            let (mut hub, ids) = hub_for(&a, tenants, async_refresh);
            let mut rng = ChaCha8Rng::seed_from_u64(BENCH_SEED ^ tenants as u64);
            let events = (EVENTS_PER_TENANT + EVENTS_PER_TENANT.div_ceil(QUERY_EVERY)) * tenants;
            group.throughput(Throughput::Elements(events as u64));
            let mut secs = f64::INFINITY;
            group.bench_with_input(BenchmarkId::new(label, tenants), &tenants, |b, _| {
                b.iter(|| {
                    let t0 = amd_obs::Stopwatch::start();
                    let driven = drive(&mut hub, &ids, n, &mut rng);
                    secs = secs.min(t0.elapsed_seconds());
                    driven
                })
            });
            let refreshes = hub.stats().refreshes_completed;
            rows.push((tenants, label, events as f64 / secs, refreshes));
        }
    }
    group.finish();

    let mut table = Table::new(vec!["tenants", "refresh", "events/s", "refreshes"]);
    for (tenants, label, rate, refreshes) in rows {
        table.row(vec![
            tenants.to_string(),
            label.to_string(),
            format!("{rate:.0}"),
            refreshes.to_string(),
        ]);
    }
    table.print(&format!(
        "E-TENANCY — aggregate update+query throughput (R-MAT scale 8, n = {n}, \
         budget 2% of base nnz, {EVENTS_PER_TENANT} updates/tenant/pass)"
    ));
}

criterion_group!(stream_tenancy, bench_tenancy);
criterion_main!(stream_tenancy);
