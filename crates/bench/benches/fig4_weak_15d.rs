//! E4 — **Figure 4** of the paper: "Weak scaling of the 1D/1.5D baseline
//! for varying replication factors c on the MAWI datasets".
//!
//! The MAWI-like series grows with a fixed vertices-per-rank ratio; for
//! each feature count k ∈ {32, 64, 128} and replication factor
//! c ∈ {1, 2, 4, 8} we report the simulated per-iteration runtime.
//! The paper's claims to reproduce: larger c is faster, and runtime grows
//! markedly with the dataset size (the baseline does *not* weak-scale —
//! Figure 6 contrasts this with the arrow decomposition).

use amd_bench::{bench_graph, BenchScale, Table};
use amd_graph::generators::datasets::DatasetKind;
use amd_sparse::{CsrMatrix, DenseMatrix};
use amd_spmm::{A15dSpmm, DistSpmm};

fn main() {
    let scale = BenchScale::from_env();
    let base = scale.base_n() / 2;
    // Weak-scaling series: n and p grow together (n/p fixed).
    let series: Vec<(u32, u32)> = [(1u32, 8u32), (2, 16), (4, 32)]
        .iter()
        .map(|&(f, p)| (base * f, p))
        .collect();
    let ks: &[u32] = if scale == BenchScale::Small {
        &[32]
    } else {
        &[32, 64, 128]
    };
    let iters = 2;

    let mut table = Table::new(vec![
        "k",
        "c",
        "n",
        "p",
        "sim time/iter (ms)",
        "max volume/iter (MiB)",
    ]);
    for &k in ks {
        for &c in &[1u32, 2, 4, 8] {
            for &(n, p) in &series {
                if p % c != 0 {
                    continue;
                }
                let g = bench_graph(DatasetKind::Mawi, n);
                let a: CsrMatrix<f64> = g.to_adjacency();
                let alg = A15dSpmm::new(&a, p, c).expect("valid grid");
                let x = DenseMatrix::from_fn(n, k, |r, cc| ((r + cc) % 7) as f64);
                let run = alg.run(&x, iters).expect("run succeeds");
                table.row(vec![
                    format!("{k}"),
                    format!("{c}"),
                    format!("{n}"),
                    format!("{p}"),
                    format!("{:.3}", run.sim_time_per_iter() * 1e3),
                    format!("{:.3}", run.volume_per_iter() / (1024.0 * 1024.0)),
                ]);
            }
        }
    }
    table.print("Figure 4: 1D/1.5D weak scaling on MAWI-like series");
    println!(
        "\npaper claims: runtime decreases with larger c; the baseline slows down \
         ~3x from the smallest to the largest dataset (no weak scaling)"
    );
}
