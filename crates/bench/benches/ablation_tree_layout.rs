//! E9 — ablation for **§5.4 vs §5.2 vs §3**: tree layout strategies.
//!
//! On trees we compare the smallest-first order (Lemma 3), Separator-LA
//! with exact centroids (Lemma 2), reverse Cuthill-McKee (the bandwidth
//! baseline), and a random order. Reported: arrangement cost, bandwidth,
//! and the Lemma 3 in-band edge fraction at `x = 2`.

use amd_bench::{BenchScale, Table, BENCH_SEED};
use amd_graph::generators::{basic, random};
use amd_graph::separator::CentroidSeparator;
use amd_graph::Graph;
use amd_linarr::arrangement::{edges_within, ArrangementQuality};
use amd_linarr::tree_layout::{root_tree, smallest_first_order};
use amd_linarr::{reverse_cuthill_mckee, separator_la};
use amd_sparse::Permutation;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let scale = BenchScale::from_env();
    let n = (scale.base_n() / 2).max(2048);
    let mut rng = ChaCha8Rng::seed_from_u64(BENCH_SEED);
    let graphs: Vec<(&str, Graph)> = vec![
        ("random tree", random::random_tree(n, &mut rng)),
        ("binary tree", basic::complete_ary_tree(2, n)),
        ("preferential tree", random::preferential_tree(n, &mut rng)),
        ("path", basic::path(n)),
    ];
    let mut table = Table::new(vec![
        "graph",
        "layout",
        "cost",
        "avg edge len",
        "bandwidth",
        "in-band frac (x=2)",
    ]);
    for (name, g) in &graphs {
        let delta = g.max_degree();
        let layouts: Vec<(&str, Permutation)> = vec![
            (
                "smallest-first",
                Permutation::from_order(smallest_first_order(&root_tree(g, 0))).unwrap(),
            ),
            ("separator-la", separator_la(g, &CentroidSeparator)),
            ("rcm", reverse_cuthill_mckee(g)),
            ("random", {
                let mut order: Vec<u32> = (0..g.n()).collect();
                order.shuffle(&mut rng);
                Permutation::from_order(order).unwrap()
            }),
        ];
        for (lname, pi) in &layouts {
            let q = ArrangementQuality::of(g, pi);
            let within = edges_within(g, pi, 2 * delta);
            table.row(vec![
                name.to_string(),
                lname.to_string(),
                format!("{}", q.cost),
                format!("{:.2}", q.avg_length),
                format!("{}", q.bandwidth),
                format!("{:.3}", within as f64 / g.m().max(1) as f64),
            ]);
        }
    }
    table.print(&format!("Tree layout ablation (n = {n})"));
    println!(
        "\nexpected: smallest-first cost ≈ separator-la / log n on trees (Lemma 3 vs \
         Lemma 2); random order cost Θ(n) per edge; Lemma 3 guarantees in-band \
         fraction ≥ 1/2 at x = 2 for smallest-first"
    );
}
