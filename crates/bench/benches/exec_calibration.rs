//! Execution-pool calibration: pooled vs spawn-per-run machine
//! execution on a small-query churn workload, plus a measured-β fit of
//! the α-β cost model from real wall times.
//!
//! Two parts, both written to `BENCH_exec.json` at the workspace root:
//!
//! 1. **Churn sweep** — many tiny `Machine::run` calls (a nearest-
//!    neighbour ring exchange) across rank counts × payload sizes,
//!    pooled rank slots vs spawn-per-run threads, min-of-rounds on
//!    both sides. The pooled path must beat spawn-per-run by ≥ 2× on
//!    the small-payload sweep — the whole point of the shared pool.
//! 2. **Calibration rows** — each SpMM algorithm runs a query-size
//!    sweep; predicted per-run volume vs measured wall time is fitted
//!    per algorithm (slope β, correlation r) and pooled into one
//!    measured β that [`CostModel::with_measured_beta`] would deploy.

use amd_bench::runner::arrow_with_ranks;
use amd_bench::{hp1d_for, spmm_15d_for, Table, BENCH_SEED};
use amd_comm::{fit_beta, CostModel, Machine};
use amd_exec::ExecPool;
use amd_graph::generators::rmat;
use amd_obs::Stopwatch;
use amd_sparse::{CsrMatrix, DenseMatrix};
use amd_spmm::{A2dSpmm, DistSpmm};
use criterion::{criterion_group, criterion_main, Criterion};
use std::io::Write;

/// `Machine::run` calls per churn measurement — the "millions of small
/// queries" pattern at bench scale.
const CHURN_RUNS: usize = 30;
/// Paired min-of-rounds per churn cell.
const ROUNDS: usize = 7;
/// Required pooled-vs-spawn advantage on the small-payload sweep.
const MIN_SPEEDUP: f64 = 2.0;
/// Multiply iterations per calibration run.
const CAL_ITERS: u32 = 2;

/// One churn measurement: `CHURN_RUNS` ring-exchange runs; returns
/// elapsed seconds.
fn churn(machine: &Machine, p: u32, payload: usize) -> f64 {
    let t0 = Stopwatch::start();
    for _ in 0..CHURN_RUNS {
        let report = machine.run(|ctx| {
            let r = ctx.rank();
            let right = (r + 1) % p;
            let left = (r + p - 1) % p;
            ctx.send(right, 0, vec![r as f64; payload]);
            let v: Vec<f64> = ctx.recv(left, 0);
            v[0]
        });
        assert_eq!(report.results.len(), p as usize);
    }
    t0.elapsed_seconds()
}

struct ChurnCell {
    p: u32,
    payload: usize,
    pooled_ms: f64,
    spawn_ms: f64,
}

impl ChurnCell {
    fn speedup(&self) -> f64 {
        self.spawn_ms / self.pooled_ms
    }
}

fn churn_sweep(pool: &ExecPool) -> Vec<ChurnCell> {
    let mut cells = Vec::new();
    for &p in &[2u32, 4, 8, 16] {
        for &payload in &[64usize, 2048] {
            let pooled = Machine::new(p).with_exec(pool.clone());
            let spawn = Machine::new(p).spawn_per_run();
            // Warm the slot cache so the pooled side measures steady
            // state, the deployment regime.
            churn(&pooled, p, payload);
            let mut pooled_secs = f64::INFINITY;
            let mut spawn_secs = f64::INFINITY;
            for _ in 0..ROUNDS {
                pooled_secs = pooled_secs.min(churn(&pooled, p, payload));
                spawn_secs = spawn_secs.min(churn(&spawn, p, payload));
            }
            cells.push(ChurnCell {
                p,
                payload,
                pooled_ms: pooled_secs * 1e3,
                spawn_ms: spawn_secs * 1e3,
            });
        }
    }
    cells
}

struct CalibrationRow {
    algo: String,
    samples: Vec<(f64, f64)>,
    fitted_beta: f64,
    r: f64,
}

/// Runs `alg` over a query-size sweep; returns `(predicted per-run
/// bytes, measured wall seconds)` samples (min-of-3 walls).
fn calibrate(alg: &dyn DistSpmm, n: u32) -> Vec<(f64, f64)> {
    let mut samples = Vec::new();
    for &k in &[1u32, 4, 16, 32] {
        let x = DenseMatrix::from_fn(n, k, |r, c| (((r * 3 + c) % 5) as f64) - 2.0);
        let predicted = alg.predict_volume(k).max_rank_bytes * f64::from(CAL_ITERS);
        let mut wall = f64::INFINITY;
        for _ in 0..3 {
            let run = alg.run(&x, CAL_ITERS).expect("calibration run");
            wall = wall.min(run.stats.wall_seconds);
        }
        samples.push((predicted, wall));
    }
    samples
}

fn calibration_rows(a: &CsrMatrix<f64>) -> Vec<CalibrationRow> {
    let n = a.rows();
    let g = amd_graph::Graph::from_matrix_structure(a);
    let p = 16u32;
    let mut algs: Vec<Box<dyn DistSpmm>> = Vec::new();
    let (_, arrow) = arrow_with_ranks(a, p).expect("arrow setup");
    algs.push(Box::new(arrow));
    algs.push(Box::new(spmm_15d_for(a, p).expect("1.5D setup")));
    algs.push(Box::new(A2dSpmm::new(a, p).expect("2D setup")));
    algs.push(Box::new(hp1d_for(&g, a, p).expect("HP-1D setup")));
    algs.iter()
        .map(|alg| {
            let samples = calibrate(alg.as_ref(), n);
            let fit = fit_beta(&samples);
            CalibrationRow {
                algo: alg.name(),
                fitted_beta: fit.map(|f| f.beta).unwrap_or(0.0),
                r: fit.map(|f| f.r).unwrap_or(0.0),
                samples,
            }
        })
        .collect()
}

fn bench_exec_calibration(c: &mut Criterion) {
    let pool = amd_exec::global();

    // Keep criterion in the loop for the harness's timing output on the
    // hot cell, then take the decisive paired measurement by hand.
    let mut group = c.benchmark_group("exec_calibration");
    group.sample_size(10);
    let hot = Machine::new(8).with_exec(pool.clone());
    group.bench_function("pooled_churn_p8", |b| b.iter(|| churn(&hot, 8, 64)));
    group.finish();

    let cells = churn_sweep(&pool);
    let mut table = Table::new(vec![
        "p",
        "payload f64s",
        "pooled ms",
        "spawn ms",
        "speedup",
    ]);
    for cell in &cells {
        table.row(vec![
            format!("{}", cell.p),
            format!("{}", cell.payload),
            format!("{:.3}", cell.pooled_ms),
            format!("{:.3}", cell.spawn_ms),
            format!("{:.2}x", cell.speedup()),
        ]);
    }
    table.print(&format!(
        "EXEC — pooled vs spawn-per-run, {CHURN_RUNS} runs/cell, min of {ROUNDS} rounds"
    ));

    // The small-query churn regime is where thread spawn dominates:
    // gate on the best small-payload cell so a scheduler hiccup in one
    // cell cannot flake the whole bench.
    let best_small = cells
        .iter()
        .filter(|c| c.payload == 64)
        .map(ChurnCell::speedup)
        .fold(0.0f64, f64::max);

    let a: CsrMatrix<f64> = {
        use rand::SeedableRng as _;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(BENCH_SEED);
        rmat::rmat(9, 8, rmat::RmatParams::graph500(), &mut rng).to_adjacency()
    };
    let rows = calibration_rows(&a);
    let mut cal = Table::new(vec!["algorithm", "samples", "fitted β (s/B)", "corr r"]);
    for row in &rows {
        cal.row(vec![
            row.algo.clone(),
            format!("{}", row.samples.len()),
            format!("{:.2e}", row.fitted_beta),
            format!("{:.3}", row.r),
        ]);
    }
    let all: Vec<(f64, f64)> = rows
        .iter()
        .flat_map(|r| r.samples.iter().copied())
        .collect();
    let pooled_fit = fit_beta(&all);
    let measured_beta = pooled_fit.map(|f| f.beta).filter(|&b| b > 0.0);
    let calibrated = match measured_beta {
        Some(beta) => CostModel::default().with_measured_beta(beta),
        None => CostModel::default(),
    };
    cal.print(&format!(
        "EXEC — predicted-volume vs measured-wall calibration (pooled β = {:.2e} s/B, model default {:.2e})",
        calibrated.beta,
        CostModel::default().beta
    ));

    write_json(
        &cells,
        best_small,
        &rows,
        &calibrated,
        pooled_fit.map(|f| f.r).unwrap_or(0.0),
    );

    assert!(
        best_small >= MIN_SPEEDUP,
        "pooled machine must beat spawn-per-run by ≥ {MIN_SPEEDUP}x on small-query churn \
         (best observed {best_small:.2}x)"
    );
}

/// Machine-readable summary for the perf trajectory of future PRs.
/// Hand-formatted (no serde in the offline workspace).
fn write_json(
    cells: &[ChurnCell],
    best_small: f64,
    rows: &[CalibrationRow],
    calibrated: &CostModel,
    pooled_r: f64,
) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_exec.json");
    let mut churn_json = String::new();
    for (i, cell) in cells.iter().enumerate() {
        if i > 0 {
            churn_json.push_str(",\n");
        }
        churn_json.push_str(&format!(
            "    {{\"p\": {}, \"payload_f64s\": {}, \"pooled_ms\": {:.4}, \
             \"spawn_ms\": {:.4}, \"speedup\": {:.3}}}",
            cell.p,
            cell.payload,
            cell.pooled_ms,
            cell.spawn_ms,
            cell.speedup()
        ));
    }
    let mut cal_json = String::new();
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            cal_json.push_str(",\n");
        }
        cal_json.push_str(&format!(
            "    {{\"algo\": \"{}\", \"samples\": {}, \"fitted_beta\": {:.6e}, \"r\": {:.4}}}",
            row.algo,
            row.samples.len(),
            row.fitted_beta,
            row.r
        ));
    }
    let body = format!(
        "{{\n  \"bench\": \"exec_calibration\",\n  \"churn_runs_per_cell\": {CHURN_RUNS},\n  \
         \"rounds\": {ROUNDS},\n  \"best_small_query_speedup\": {best_small:.3},\n  \
         \"min_speedup_bound\": {MIN_SPEEDUP},\n  \"churn\": [\n{churn_json}\n  ],\n  \
         \"calibration\": [\n{cal_json}\n  ],\n  \
         \"measured_beta\": {:.6e},\n  \"model_beta\": {:.6e},\n  \"pooled_r\": {pooled_r:.4}\n}}\n",
        calibrated.beta,
        CostModel::default().beta
    );
    match std::fs::File::create(path).and_then(|mut f| f.write_all(body.as_bytes())) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

criterion_group!(exec_calibration, bench_exec_calibration);
criterion_main!(exec_calibration);
