//! E5 — **Figure 5** of the paper: "Strong scaling results for varying
//! feature sizes" — the headline comparison.
//!
//! For each dataset stand-in, feature count k ∈ {32, 128} and rank budget
//! p, we run Arrow (b chosen so the decomposition fills ≈ p ranks), the
//! 1.5D baseline with c = ⌊√p⌋, and HP-1D (HYPE partition). Reported per
//! iteration: simulated runtime and max per-rank volume.
//!
//! Shapes to reproduce (paper §7.3):
//! * Arrow beats 1.5D nearly everywhere (1.7×–14×), most on MAWI,
//! * HP-1D collapses on the star-heavy MAWI graphs (up to 58× slower),
//!   is competitive on bounded-degree graphs (GenBank, OSM),
//! * larger k ⇒ larger arrow advantage,
//! * Arrow's 3–5× communication volume reduction vs 1.5D at scale.

use amd_bench::runner::arrow_with_ranks;
use amd_bench::{bench_graph, hp1d_for, spmm_15d_for, BenchScale, Table};
use amd_graph::generators::datasets::DatasetKind;
use amd_sparse::{CsrMatrix, DenseMatrix};
use amd_spmm::DistSpmm;

fn main() {
    let scale = BenchScale::from_env();
    let n = scale.base_n();
    let ps: &[u32] = if scale == BenchScale::Small {
        &[8, 16]
    } else {
        &[8, 16, 32]
    };
    let ks: &[u32] = if scale == BenchScale::Small {
        &[32]
    } else {
        &[32, 128]
    };
    let iters = 2;

    let mut table = Table::new(vec![
        "dataset",
        "k",
        "p",
        "algorithm",
        "ranks",
        "sim time/iter (ms)",
        "max vol/iter (MiB)",
        "vs arrow",
    ]);
    for kind in DatasetKind::ALL {
        let g = bench_graph(kind, n);
        let a: CsrMatrix<f64> = g.to_adjacency();
        for &k in ks {
            let x = DenseMatrix::from_fn(n, k, |r, c| (((r * 3 + c) % 5) as f64) - 2.0);
            for &p in ps {
                let (_, arrow) = match arrow_with_ranks(&a, p) {
                    Ok(v) => v,
                    Err(e) => {
                        eprintln!("skip {} p={p}: {e}", kind.name());
                        continue;
                    }
                };
                let arrow_run = arrow.run(&x, iters).expect("arrow run");
                let arrow_time = arrow_run.sim_time_per_iter();
                let mut emit = |name: String, ranks: u32, time: f64, vol: f64| {
                    table.row(vec![
                        kind.name().to_string(),
                        format!("{k}"),
                        format!("{p}"),
                        name,
                        format!("{ranks}"),
                        format!("{:.3}", time * 1e3),
                        format!("{:.3}", vol / (1024.0 * 1024.0)),
                        format!("{:.2}x", time / arrow_time),
                    ]);
                };
                emit(
                    arrow.name(),
                    arrow.ranks(),
                    arrow_time,
                    arrow_run.volume_per_iter(),
                );
                let d15 = spmm_15d_for(&a, p).expect("1.5D setup");
                let r15 = d15.run(&x, iters).expect("1.5D run");
                emit(
                    d15.name(),
                    d15.ranks(),
                    r15.sim_time_per_iter(),
                    r15.volume_per_iter(),
                );
                let hp = hp1d_for(&g, &a, p).expect("HP-1D setup");
                let rhp = hp.run(&x, iters).expect("HP-1D run");
                emit(
                    hp.name(),
                    hp.ranks(),
                    rhp.sim_time_per_iter(),
                    rhp.volume_per_iter(),
                );
            }
        }
    }
    table.print(&format!("Figure 5: strong scaling comparison (n = {n})"));
    println!(
        "\npaper shapes: arrow fastest almost everywhere (1.7x-14x vs 1.5D); HP-1D \
         collapses on MAWI (up to 58x); advantage grows with k and with p"
    );
}
