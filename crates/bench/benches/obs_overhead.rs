//! Telemetry overhead: the same serving workload through an engine
//! with live telemetry (counters, histograms, tracer) vs one with
//! `Telemetry::disabled()` (every handle a no-op).
//!
//! The instrumentation budget of the `amd-obs` layer is a relaxed
//! atomic add per counter hit and a leading-zeros bucket index per
//! histogram record, all far off the multiply hot loop — the measured
//! regression must stay under 3%. The sweep is written to
//! `BENCH_obs.json` at the workspace root and the bound is asserted
//! here, so a future PR that drags telemetry into the inner loop fails
//! this bench instead of shipping the slowdown.

use amd_bench::{Table, BENCH_SEED};
use amd_engine::{Engine, EngineConfig, MatrixId, MultiplyQuery};
use amd_graph::generators::rmat;
use amd_obs::{Stopwatch, Telemetry};
use amd_sparse::CsrMatrix;
use criterion::{criterion_group, criterion_main, Criterion};
use std::io::Write;

const QUERIES: usize = 48;
const ITERS: u32 = 2;
const BATCH: usize = 8;
/// Measured instrumented-vs-uninstrumented regression bound.
const MAX_OVERHEAD: f64 = 0.03;
/// Paired measurement rounds (min-of-rounds on both sides). The
/// per-pass wall time jitters by double-digit percent (the distributed
/// multiply spawns rank threads every run), so both minima need many
/// rounds to converge onto their true floors before the ratio means
/// anything.
const ROUNDS: usize = 60;

fn rmat_matrix() -> CsrMatrix<f64> {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(BENCH_SEED);
    use rand::SeedableRng as _;
    rmat::rmat(10, 8, rmat::RmatParams::graph500(), &mut rng).to_adjacency()
}

fn queries(n: u32) -> Vec<Vec<f64>> {
    (0..QUERIES)
        .map(|q| {
            (0..n)
                .map(|r| (((q as u32 + 3 * r) % 13) as f64) / 13.0 - 0.5)
                .collect()
        })
        .collect()
}

fn engine_with(telemetry: Telemetry, a: &CsrMatrix<f64>) -> (Engine, MatrixId) {
    let mut engine = Engine::with_telemetry(
        EngineConfig {
            arrow_width: 64,
            max_batch: BATCH,
            ..EngineConfig::default()
        },
        telemetry,
    )
    .expect("engine stands up");
    let id = engine.register(a).expect("register succeeds");
    (engine, id)
}

/// One full pass of the query stream through the batcher; returns
/// elapsed seconds.
fn serve(engine: &mut Engine, id: MatrixId, stream: &[Vec<f64>]) -> f64 {
    let t0 = Stopwatch::start();
    for group in stream.chunks(BATCH) {
        for x in group {
            engine
                .submit(MultiplyQuery {
                    matrix: id,
                    x: x.clone(),
                    iters: ITERS,
                    sigma: None,
                })
                .expect("submit succeeds");
        }
        engine.flush().expect("flush succeeds");
    }
    t0.elapsed_seconds()
}

fn bench_obs_overhead(c: &mut Criterion) {
    let a = rmat_matrix();
    let stream = queries(a.rows());
    let (mut instrumented, instr_id) = engine_with(Telemetry::new(), &a);
    let (mut bare, bare_id) = engine_with(Telemetry::disabled(), &a);

    // Warm both paths (decompose cached, planner bound, allocators hot).
    serve(&mut instrumented, instr_id, &stream);
    serve(&mut bare, bare_id, &stream);

    let mut group = c.benchmark_group("obs_overhead");
    group.sample_size(10);
    let mut instr_secs = f64::INFINITY;
    let mut bare_secs = f64::INFINITY;
    group.bench_function("telemetry_enabled", |b| {
        b.iter(|| {
            let s = serve(&mut instrumented, instr_id, &stream);
            instr_secs = instr_secs.min(s);
            s
        })
    });
    group.bench_function("telemetry_disabled", |b| {
        b.iter(|| {
            let s = serve(&mut bare, bare_id, &stream);
            bare_secs = bare_secs.min(s);
            s
        })
    });
    group.finish();

    // Paired interleaved rounds: min-of-rounds on both sides squeezes
    // out scheduler noise before the ratio is taken.
    for _ in 0..ROUNDS {
        instr_secs = instr_secs.min(serve(&mut instrumented, instr_id, &stream));
        bare_secs = bare_secs.min(serve(&mut bare, bare_id, &stream));
    }
    let overhead = instr_secs / bare_secs - 1.0;

    let snapshot = instrumented.telemetry().registry.snapshot();
    let runs = snapshot.counter("engine.runs").unwrap_or(0);
    let multiply = snapshot
        .histogram("multiply.seconds")
        .map(|h| h.count)
        .unwrap_or(0);

    let mut table = Table::new(vec!["path", "best ms", "runs", "multiply samples"]);
    table.row(vec![
        "telemetry enabled".to_string(),
        format!("{:.2}", instr_secs * 1e3),
        runs.to_string(),
        multiply.to_string(),
    ]);
    table.row(vec![
        "telemetry disabled".to_string(),
        format!("{:.2}", bare_secs * 1e3),
        "-".to_string(),
        "-".to_string(),
    ]);
    table.print(&format!(
        "OBS — instrumentation overhead {:.2}% (bound {:.0}%), {QUERIES} queries × {ITERS} iters, batch {BATCH}",
        overhead * 100.0,
        MAX_OVERHEAD * 100.0
    ));

    write_json(instr_secs, bare_secs, overhead);
    assert!(
        multiply >= runs && runs > 0,
        "instrumented engine must have recorded its runs (runs = {runs}, samples = {multiply})"
    );
    assert!(
        overhead < MAX_OVERHEAD,
        "telemetry overhead {:.2}% exceeds the {:.0}% budget \
         (instrumented {:.3} ms vs bare {:.3} ms)",
        overhead * 100.0,
        MAX_OVERHEAD * 100.0,
        instr_secs * 1e3,
        bare_secs * 1e3
    );
}

/// Machine-readable summary for the perf trajectory of future PRs.
/// Hand-formatted (no serde in the offline workspace).
fn write_json(instr_secs: f64, bare_secs: f64, overhead: f64) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_obs.json");
    let body = format!(
        "{{\n  \"bench\": \"obs_overhead\",\n  \"queries\": {QUERIES},\n  \
         \"iters\": {ITERS},\n  \"batch\": {BATCH},\n  \
         \"instrumented_ms\": {:.3},\n  \"uninstrumented_ms\": {:.3},\n  \
         \"overhead_fraction\": {:.4},\n  \"bound_fraction\": {MAX_OVERHEAD}\n}}\n",
        instr_secs * 1e3,
        bare_secs * 1e3,
        overhead
    );
    match std::fs::File::create(path).and_then(|mut f| f.write_all(body.as_bytes())) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

criterion_group!(obs_overhead, bench_obs_overhead);
criterion_main!(obs_overhead);
