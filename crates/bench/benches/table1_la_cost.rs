//! E1 — **Table 1** of the paper: "Bounds on the cost of a linear
//! arrangement".
//!
//! For each graph family in the table we build instances, run the
//! arrangement algorithm the paper's bound refers to (Separator-LA for
//! the separator families, smallest-first for trees), and report the
//! measured cost `λ_π(G)` next to the asymptotic bound evaluated with
//! unit constant. The measured/bound ratio staying ≤ O(1) across sizes
//! is the reproduction of the table.

use amd_bench::{BenchScale, Table, BENCH_SEED};
use amd_graph::generators::{basic, random, structured};
use amd_graph::separator::BfsLevelSeparator;
use amd_graph::Graph;
use amd_linarr::tree_layout::{root_tree, smallest_first_order};
use amd_linarr::{la_cost, separator_la};
use amd_sparse::Permutation;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

struct FamilyRow {
    family: &'static str,
    bound_label: &'static str,
    graph: Graph,
    /// Evaluates the paper's bound with unit constant.
    bound: Box<dyn Fn(&Graph) -> f64>,
    /// Computes the arrangement the bound refers to.
    arrange: Box<dyn Fn(&Graph) -> Permutation>,
}

fn tree_arrangement(g: &Graph) -> Permutation {
    Permutation::from_order(smallest_first_order(&root_tree(g, 0)))
        .expect("tree layout covers every vertex")
}

fn main() {
    let scale = BenchScale::from_env();
    let n = (scale.base_n() / 4).max(1024);
    let mut rng = ChaCha8Rng::seed_from_u64(BENCH_SEED);

    let log2 = |x: f64| x.log2().max(1.0);
    let rows: Vec<FamilyRow> = vec![
        FamilyRow {
            family: "Tree (random)",
            bound_label: "n*Delta",
            graph: random::random_tree(n, &mut rng),
            bound: Box::new(|g| g.n() as f64 * g.max_degree() as f64),
            arrange: Box::new(tree_arrangement),
        },
        FamilyRow {
            family: "Tree (binary)",
            bound_label: "n*Delta",
            graph: basic::complete_ary_tree(2, n),
            bound: Box::new(|g| g.n() as f64 * g.max_degree() as f64),
            arrange: Box::new(tree_arrangement),
        },
        FamilyRow {
            family: "Caterpillar",
            bound_label: "n*Delta",
            graph: structured::caterpillar(n / 4, 3),
            bound: Box::new(|g| g.n() as f64 * g.max_degree() as f64),
            arrange: Box::new(tree_arrangement),
        },
        FamilyRow {
            // Paper's Table 1 states O(n log n) via the specialised
            // algorithm of Eikel et al.; our Separator-LA realises the
            // Lemma 2 guarantee O(n·Δ·s·log n) with s ≤ 3 for SP graphs.
            family: "Series-parallel",
            bound_label: "n*Delta*log n (Lemma 2)",
            graph: structured::series_parallel(n, &mut rng),
            bound: Box::new(move |g| g.n() as f64 * g.max_degree() as f64 * log2(g.n() as f64)),
            arrange: Box::new(|g| separator_la(g, &BfsLevelSeparator)),
        },
        FamilyRow {
            // Same note: the Δ-free O(n·τ·log n) needs tree-decomposition
            // separators; Lemma 2 with s = τ+1 is what Separator-LA gives.
            family: "Treewidth 3 (3-tree)",
            bound_label: "n*Delta*(tau+1)*log n (Lemma 2)",
            graph: structured::k_tree(n, 3, &mut rng),
            bound: Box::new(move |g| {
                g.n() as f64 * g.max_degree() as f64 * 4.0 * log2(g.n() as f64)
            }),
            arrange: Box::new(|g| separator_la(g, &BfsLevelSeparator)),
        },
        FamilyRow {
            family: "Planar (grid)",
            bound_label: "n*Delta*sqrt(n)",
            graph: {
                let side = (n as f64).sqrt() as u32;
                basic::grid_2d(side, side)
            },
            bound: Box::new(|g| g.n() as f64 * g.max_degree() as f64 * (g.n() as f64).sqrt()),
            arrange: Box::new(|g| separator_la(g, &BfsLevelSeparator)),
        },
    ];

    let mut table = Table::new(vec![
        "family [bound]",
        "n",
        "m",
        "Delta",
        "measured cost",
        "bound",
        "ratio",
    ]);
    for row in &rows {
        let pi = (row.arrange)(&row.graph);
        let cost = la_cost(&row.graph, &pi);
        let bound = (row.bound)(&row.graph);
        table.row(vec![
            format!("{} [{}]", row.family, row.bound_label),
            format!("{}", row.graph.n()),
            format!("{}", row.graph.m()),
            format!("{}", row.graph.max_degree()),
            format!("{cost}"),
            format!("{bound:.0}"),
            format!("{:.3}", cost as f64 / bound),
        ]);
    }
    table.print("Table 1: linear arrangement cost vs paper bound (unit constants)");
    println!(
        "\nreproduction criterion: ratio stays O(1) (bounds hold up to constants). \
         For series-parallel and bounded-treewidth graphs the paper cites Δ-free \
         bounds via specialised MLA algorithms [Eikel et al., Böttcher et al.]; \
         Separator-LA realises the Lemma 2 form shown here."
    );
}
