//! E2 — **Table 2** of the paper: "Summary of the datasets' density
//! properties".
//!
//! Generates every dataset stand-in at bench scale and reports the columns
//! of the paper's table (`n`, `nnz(A)/n`, `Δ`) next to the published
//! target signature, confirming the synthetic graphs preserve the density
//! profile the experiments depend on.

use amd_bench::{bench_graph, BenchScale, Table};
use amd_graph::degree::DegreeStats;
use amd_graph::generators::datasets::DatasetKind;

fn main() {
    let scale = BenchScale::from_env();
    let n = scale.base_n();
    let mut table = Table::new(vec![
        "dataset",
        "n",
        "nnz/n",
        "target nnz/n",
        "max degree",
        "Δ/n",
        "target Δ/n",
        "isolated",
    ]);
    for kind in DatasetKind::ALL {
        let g = bench_graph(kind, n);
        let s = DegreeStats::of(&g);
        let target_frac = kind.target_max_degree_fraction();
        table.row(vec![
            kind.name().to_string(),
            format!("{}", s.n),
            format!("{:.2}", s.avg_degree),
            format!("{:.2}", kind.target_avg_degree()),
            format!("{}", s.max_degree),
            format!("{:.4}", s.max_degree_fraction()),
            if target_frac > 0.0 {
                format!("{target_frac:.4}")
            } else {
                "O(1)".to_string()
            },
            format!("{}", s.isolated),
        ]);
    }
    table.print(&format!(
        "Table 2: dataset density properties (scale n = {n})"
    ));
    println!(
        "\npaper reference: MAWI nnz/n=2.1 Δ≈0.93n; GenBank nnz/n=2.1 Δ≤35; \
         WebBase nnz/n=8.63 Δ≈0.7%n; OSM nnz/n=2.12 Δ≤13; \
         GAP-twitter nnz/n=23.85 Δ≈1.25%n; sk-2005 nnz/n=38.5 Δ≈17%n"
    );
}
