//! E6 — **Figure 6** of the paper: "Weak scaling on the MAWI datasets".
//!
//! The arrow width is held constant (fixed computational load per rank)
//! while the dataset and rank count grow together, for
//! k ∈ {32, 64, 128}. Shapes to reproduce:
//!
//! * Arrow's per-iteration runtime grows only marginally (paper:
//!   2.4%–6.2% from 19M to 226M rows),
//! * the 1.5D baseline slows by ~3× over the same growth,
//! * HP-1D grows near-linearly in the number of rows.

use amd_bench::runner::arrow_for;
use amd_bench::{bench_graph, hp1d_for, spmm_15d_for, BenchScale, Table};
use amd_graph::generators::datasets::DatasetKind;
use amd_sparse::{CsrMatrix, DenseMatrix};
use amd_spmm::DistSpmm;

fn main() {
    let scale = BenchScale::from_env();
    let base = scale.base_n() / 2;
    let series: Vec<(u32, u32)> = [(1u32, 8u32), (2, 16), (4, 32)]
        .iter()
        .map(|&(f, p)| (base * f, p))
        .collect();
    let ks: &[u32] = if scale == BenchScale::Small {
        &[32]
    } else {
        &[32, 64, 128]
    };
    // Constant arrow width across the series = constant per-rank load.
    let b = (base / 8).max(64);
    let iters = 2;

    let mut table = Table::new(vec![
        "k",
        "n",
        "p(base)",
        "algorithm",
        "ranks",
        "sim time/iter (ms)",
        "growth vs smallest",
    ]);
    for &k in ks {
        let mut baselines: Vec<(String, f64)> = Vec::new();
        for &(n, p) in &series {
            let g = bench_graph(DatasetKind::Mawi, n);
            let a: CsrMatrix<f64> = g.to_adjacency();
            let x = DenseMatrix::from_fn(n, k, |r, c| ((r + 2 * c) % 9) as f64 - 4.0);
            let mut runs: Vec<(String, u32, f64)> = Vec::new();
            let (_, arrow) = arrow_for(&a, b).expect("arrow setup");
            let ra = arrow.run(&x, iters).expect("arrow run");
            runs.push(("Arrow".to_string(), arrow.ranks(), ra.sim_time_per_iter()));
            let d15 = spmm_15d_for(&a, p).expect("1.5D setup");
            let r15 = d15.run(&x, iters).expect("1.5D run");
            runs.push(("1.5D".to_string(), d15.ranks(), r15.sim_time_per_iter()));
            let hp = hp1d_for(&g, &a, p).expect("HP setup");
            let rhp = hp.run(&x, iters).expect("HP run");
            runs.push(("HP-1D".to_string(), hp.ranks(), rhp.sim_time_per_iter()));
            for (name, ranks, time) in runs {
                let key = format!("{name}-{k}");
                let baseline = baselines
                    .iter()
                    .find(|(k2, _)| *k2 == key)
                    .map(|&(_, t)| t)
                    .unwrap_or_else(|| {
                        baselines.push((key.clone(), time));
                        time
                    });
                table.row(vec![
                    format!("{k}"),
                    format!("{n}"),
                    format!("{p}"),
                    name,
                    format!("{ranks}"),
                    format!("{:.3}", time * 1e3),
                    format!("{:+.1}%", 100.0 * (time / baseline - 1.0)),
                ]);
            }
        }
    }
    table.print(&format!(
        "Figure 6: weak scaling on MAWI-like series (b = {b})"
    ));
    println!(
        "\npaper shapes: Arrow grows only 2.4-6.2% across the series; 1.5D slows ~3x; \
         HP-1D grows near-linearly with n"
    );
}
