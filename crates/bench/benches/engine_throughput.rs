//! E-ENGINE — serving-engine throughput: queries/sec vs batch size.
//!
//! Drives the same synthetic query stream through one engine at batch
//! sizes 1, 8, and 64 against an R-MAT dataset, reporting both criterion
//! timings and the runner-style summary table the other bench targets
//! print. Batch 1 goes through the unbatched single-run path; larger
//! sizes coalesce into multi-RHS runs.

use amd_bench::{Table, BENCH_SEED};
use amd_engine::{Engine, EngineConfig, MatrixId, MultiplyQuery};
use amd_graph::generators::rmat;
use amd_sparse::CsrMatrix;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const QUERIES: usize = 64;
const ITERS: u32 = 2;

fn rmat_matrix() -> CsrMatrix<f64> {
    let mut rng = ChaCha8Rng::seed_from_u64(BENCH_SEED);
    rmat::rmat(10, 8, rmat::RmatParams::graph500(), &mut rng).to_adjacency()
}

fn stream(n: u32) -> Vec<Vec<f64>> {
    (0..QUERIES)
        .map(|q| {
            (0..n)
                .map(|r| (((q as u32 + 3 * r) % 13) as f64) / 13.0 - 0.5)
                .collect()
        })
        .collect()
}

/// Serves the whole stream at one batch size, returning elapsed seconds.
fn serve(engine: &mut Engine, id: MatrixId, stream: &[Vec<f64>], batch: usize) -> f64 {
    let t0 = amd_obs::Stopwatch::start();
    if batch > 1 {
        for group in stream.chunks(batch) {
            for x in group {
                engine
                    .submit(MultiplyQuery {
                        matrix: id,
                        x: x.clone(),
                        iters: ITERS,
                        sigma: None,
                    })
                    .expect("submit succeeds");
            }
            engine.flush().expect("flush succeeds");
        }
    } else {
        for x in stream {
            engine
                .run_single(MultiplyQuery {
                    matrix: id,
                    x: x.clone(),
                    iters: ITERS,
                    sigma: None,
                })
                .expect("single run succeeds");
        }
    }
    t0.elapsed_seconds()
}

fn bench_engine_throughput(c: &mut Criterion) {
    let a = rmat_matrix();
    let queries = stream(a.rows());
    let mut engine = Engine::new(EngineConfig {
        arrow_width: 64,
        ..EngineConfig::default()
    })
    .unwrap();
    let id = engine.register(&a).unwrap();

    let mut group = c.benchmark_group("engine_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(QUERIES as u64));
    let mut rows = Vec::new();
    for &batch in &[1usize, 8, 64] {
        let mut secs = f64::INFINITY;
        group.bench_with_input(BenchmarkId::new("batch", batch), &batch, |b, &batch| {
            b.iter(|| {
                let s = serve(&mut engine, id, &queries, batch);
                secs = secs.min(s);
                s
            })
        });
        rows.push((batch, QUERIES as f64 / secs));
    }
    group.finish();

    let mut table = Table::new(vec![
        "batch",
        "queries/s",
        "speedup vs batch=1",
        "bound algorithm",
    ]);
    let base = rows[0].1;
    for (batch, qps) in rows {
        table.row(vec![
            batch.to_string(),
            format!("{qps:.0}"),
            format!("{:.1}x", qps / base),
            engine.chosen_algorithm(id).expect("registered").to_string(),
        ]);
    }
    table.print(&format!(
        "E-ENGINE — serving throughput vs batch size (R-MAT scale 10, {QUERIES} queries, {ITERS} iters)"
    ));
}

criterion_group!(engine_throughput, bench_engine_throughput);
criterion_main!(engine_throughput);
