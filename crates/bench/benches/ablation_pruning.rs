//! E8 — ablation for **§5.6 / Corollary 2**: high-degree pruning in
//! power-law graphs.
//!
//! For Zipf-degree trees and the skewed dataset stand-ins we decompose
//! with and without step 1 of LA-Decompose (pruning) and compare the
//! decomposition order and compaction. We also check Theorem 1's survival
//! bound against the empirical degree tail and report the Corollary 2
//! width recommendation `b ≈ n^{1/α}`.

use amd_bench::{bench_graph, BenchScale, Table, BENCH_SEED};
use amd_graph::generators::datasets::DatasetKind;
use amd_graph::generators::random::tree_with_degree_targets;
use amd_graph::zipf::{survival_bound, TruncatedZipf};
use amd_graph::Graph;
use amd_sparse::CsrMatrix;
use arrow_core::pruning::{count_above, recommended_width};
use arrow_core::stats::DecompositionStats;
use arrow_core::{la_decompose, DecomposeConfig, RandomForestLa};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn decompose_stats(a: &CsrMatrix<f64>, b: u32, prune: bool) -> DecompositionStats {
    let d = la_decompose(
        a,
        &DecomposeConfig {
            arrow_width: b,
            prune,
            max_levels: 64,
        },
        &mut RandomForestLa::new(BENCH_SEED),
    )
    .expect("decomposition succeeds");
    DecompositionStats::of(&d)
}

fn main() {
    let scale = BenchScale::from_env();
    let n = scale.base_n();

    // Part 1: Theorem 1's bound against empirical Zipf tails.
    let mut t1 = Table::new(vec![
        "alpha",
        "threshold x",
        "empirical n*S(x)",
        "Thm1 bound",
    ]);
    let mut rng = ChaCha8Rng::seed_from_u64(BENCH_SEED);
    for &alpha in &[1.5f64, 2.0, 2.5] {
        let z = TruncatedZipf::new(n as u64, alpha);
        let degrees: Vec<u32> = (0..n).map(|_| z.sample(&mut rng) as u32).collect();
        for &x in &[16u32, 64, 256] {
            t1.row(vec![
                format!("{alpha}"),
                format!("{x}"),
                format!("{}", count_above(&degrees, x)),
                format!("{:.1}", n as f64 * survival_bound(x as f64, alpha)),
            ]);
        }
    }
    t1.print("Theorem 1: survival bound vs empirical Zipf degree tail");

    // Part 2: pruning ablation on Zipf-degree trees (Corollary 2 setting).
    let mut t2 = Table::new(vec![
        "graph",
        "alpha",
        "b",
        "order (prune)",
        "order (no prune)",
        "2nd rows % (prune)",
        "2nd rows % (no prune)",
    ]);
    for &alpha in &[1.5f64, 2.0] {
        let z = TruncatedZipf::new(n as u64, alpha);
        let mut degrees: Vec<u32> = (0..n).map(|_| z.sample(&mut rng) as u32).collect();
        // Tree degree sum constraint is handled by the greedy builder.
        degrees.sort_unstable_by(|a, b| b.cmp(a));
        let g = tree_with_degree_targets(&degrees);
        let a: CsrMatrix<f64> = g.to_adjacency();
        let b = (recommended_width(n as u64, alpha) as u32).max(16);
        let with = decompose_stats(&a, b, true);
        let without = decompose_stats(&a, b, false);
        t2.row(vec![
            "zipf-tree".to_string(),
            format!("{alpha}"),
            format!("{b}"),
            format!("{}", with.order),
            format!("{}", without.order),
            format!("{:.2}", 100.0 * with.second_level_row_fraction),
            format!("{:.2}", 100.0 * without.second_level_row_fraction),
        ]);
    }
    // Part 3: the skewed dataset stand-ins.
    for kind in [
        DatasetKind::Mawi,
        DatasetKind::GapTwitter,
        DatasetKind::Sk2005,
    ] {
        let g: Graph = bench_graph(kind, n / 2);
        let a: CsrMatrix<f64> = g.to_adjacency();
        let b = (n / 40).max(64);
        let with = decompose_stats(&a, b, true);
        let without = decompose_stats(&a, b, false);
        t2.row(vec![
            kind.name().to_string(),
            "-".to_string(),
            format!("{b}"),
            format!("{}", with.order),
            format!("{}", without.order),
            format!("{:.2}", 100.0 * with.second_level_row_fraction),
            format!("{:.2}", 100.0 * without.second_level_row_fraction),
        ]);
    }
    t2.print("Corollary 2 ablation: pruning on/off");
    println!(
        "\nexpected: pruning keeps order/residual small on skewed graphs; without \
         pruning the hub edges spread across more levels or inflate the 2nd level"
    );
}
