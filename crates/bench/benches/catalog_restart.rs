//! Catalog restart latency: cold start (every tenant pays LA-Decompose)
//! vs warm restart (every decomposition reloads from the persistence
//! catalog) at 1, 4, and 16 tenants.
//!
//! This is the serving stack's recovery story: a hub that crashes or
//! redeploys over a populated catalog must come back without repeating
//! the expensive arrangement work. Besides the plain-text table, the
//! sweep is written to `BENCH_catalog.json` at the workspace root so
//! future changes can diff restart latency machine-readably.

use amd_bench::Table;
use amd_engine::EngineConfig;
use amd_sparse::CsrMatrix;
use amd_stream::{HubConfig, StreamHub};
use arrow_core::catalog::Catalog;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::io::Write;
use std::path::Path;

const SEED: u64 = 33;
const ARROW_WIDTH: u32 = 64;
const N: u32 = 4000;
const TENANTS: [usize; 3] = [1, 4, 16];

/// Distinct content per tenant (deduplicated content would let the
/// in-memory cache hide the cost being measured).
fn tenant_matrix(i: usize) -> CsrMatrix<f64> {
    use amd_sparse::CooMatrix;
    let mut coo = CooMatrix::new(N, N);
    for v in 0..N {
        coo.push_sym(v, (v + 1) % N, 1.0).unwrap();
        coo.push_sym(v, (v + 3 + i as u32) % N, 1.0).unwrap();
    }
    coo.to_csr()
}

fn hub_config(dir: &Path) -> HubConfig {
    HubConfig {
        engine: EngineConfig {
            arrow_width: ARROW_WIDTH,
            decompose_seed: SEED,
            cache_capacity: 32,
            spill_dir: Some(dir.to_path_buf()),
            ..EngineConfig::default()
        },
        async_refresh: false,
        ..HubConfig::default()
    }
}

struct Case {
    tenants: usize,
    cold_secs: f64,
    warm_secs: f64,
    warm_decompositions: u64,
    warm_reloads: u64,
}

fn admit_all(dir: &Path, tenants: usize) -> StreamHub {
    let mut hub = StreamHub::new(hub_config(dir)).expect("hub stands up");
    for i in 0..tenants {
        hub.admit(tenant_matrix(i)).expect("tenant admits");
    }
    hub
}

fn bench_catalog_restart(c: &mut Criterion) {
    let mut group = c.benchmark_group("catalog_restart");
    group.sample_size(3);
    let mut cases = Vec::new();

    for &tenants in &TENANTS {
        let dir = std::env::temp_dir().join(format!(
            "amd-bench-catalog-{}-{tenants}",
            std::process::id()
        ));

        // Cold start: empty catalog, every admission decomposes.
        let mut cold_secs = f64::INFINITY;
        group.bench_with_input(
            BenchmarkId::new("cold", tenants),
            &tenants,
            |b, &tenants| {
                b.iter(|| {
                    let _ = std::fs::remove_dir_all(&dir);
                    let t0 = amd_obs::Stopwatch::start();
                    let hub = admit_all(&dir, tenants);
                    cold_secs = cold_secs.min(t0.elapsed_seconds());
                    hub
                })
            },
        );

        // Populate once, then measure restarts over the warm catalog.
        let _ = std::fs::remove_dir_all(&dir);
        drop(admit_all(&dir, tenants));
        let mut warm_secs = f64::INFINITY;
        let mut warm_stats = None;
        group.bench_with_input(
            BenchmarkId::new("warm", tenants),
            &tenants,
            |b, &tenants| {
                b.iter(|| {
                    let t0 = amd_obs::Stopwatch::start();
                    let hub = admit_all(&dir, tenants);
                    warm_secs = warm_secs.min(t0.elapsed_seconds());
                    warm_stats = Some(hub.cache_stats().clone());
                    hub
                })
            },
        );
        let stats = warm_stats.expect("bench ran at least once");
        assert_eq!(
            stats.decompositions, 0,
            "a warm restart must not run LA-Decompose"
        );
        cases.push(Case {
            tenants,
            cold_secs,
            warm_secs,
            warm_decompositions: stats.decompositions,
            warm_reloads: stats.disk_loads,
        });

        // Leave the directory clean for the next run.
        let catalog = Catalog::open(&dir).expect("catalog reopens");
        drop(catalog);
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();

    let mut table = Table::new(vec![
        "tenants",
        "cold ms",
        "warm ms",
        "speedup",
        "warm decomposes",
        "warm reloads",
    ]);
    for case in &cases {
        table.row(vec![
            case.tenants.to_string(),
            format!("{:.2}", case.cold_secs * 1e3),
            format!("{:.2}", case.warm_secs * 1e3),
            format!("{:.1}x", case.cold_secs / case.warm_secs),
            case.warm_decompositions.to_string(),
            case.warm_reloads.to_string(),
        ]);
    }
    table.print(&format!(
        "Catalog restart — cold start vs warm restart (n = {N}, b = {ARROW_WIDTH})"
    ));

    write_json(&cases);
}

/// Machine-readable summary for the perf trajectory of future PRs.
/// Hand-formatted (no serde in the offline workspace).
fn write_json(cases: &[Case]) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_catalog.json");
    let mut body = String::new();
    body.push_str("{\n  \"bench\": \"catalog_restart\",\n");
    body.push_str(&format!(
        "  \"n\": {N},\n  \"arrow_width\": {ARROW_WIDTH},\n"
    ));
    body.push_str("  \"cases\": [\n");
    for (i, c) in cases.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"tenants\": {}, \"cold_ms\": {:.3}, \"warm_ms\": {:.3}, \
             \"speedup\": {:.2}, \"warm_decompositions\": {}, \"warm_reloads\": {}}}{}\n",
            c.tenants,
            c.cold_secs * 1e3,
            c.warm_secs * 1e3,
            c.cold_secs / c.warm_secs,
            c.warm_decompositions,
            c.warm_reloads,
            if i + 1 < cases.len() { "," } else { "" }
        ));
    }
    body.push_str("  ]\n}\n");
    match std::fs::File::create(path).and_then(|mut f| f.write_all(body.as_bytes())) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

criterion_group!(catalog_restart, bench_catalog_restart);
criterion_main!(catalog_restart);
