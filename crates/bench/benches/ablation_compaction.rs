//! E10 — ablation for **Lemma 1 / §4**: compaction versus arrow width.
//!
//! Lemma 1: LA-Decompose is `x`-compacting for
//! `x = b·m / max_i λ(G'_i)` — so the compaction factor grows linearly in
//! `b` once `b` exceeds the arrangement's average edge length. We sweep
//! `b` per dataset and report order, per-level nnz decay, and the
//! empirical compaction factor.

use amd_bench::{bench_graph, BenchScale, Table, BENCH_SEED};
use amd_graph::generators::datasets::DatasetKind;
use amd_sparse::CsrMatrix;
use arrow_core::stats::DecompositionStats;
use arrow_core::{la_decompose, DecomposeConfig, RandomForestLa};

fn main() {
    let scale = BenchScale::from_env();
    let n = scale.base_n();
    let mut table = Table::new(vec![
        "dataset",
        "b",
        "order",
        "level nnz",
        "compaction x",
        "x-compacting (x=2)",
    ]);
    for kind in [
        DatasetKind::GenBank,
        DatasetKind::OsmEurope,
        DatasetKind::WebBase,
    ] {
        let g = bench_graph(kind, n);
        let a: CsrMatrix<f64> = g.to_adjacency();
        for shift in [7u32, 6, 5, 4, 3] {
            let b = (n >> shift).max(16);
            let d = la_decompose(
                &a,
                &DecomposeConfig::with_width(b),
                &mut RandomForestLa::new(BENCH_SEED),
            )
            .expect("decomposition succeeds");
            let s = DecompositionStats::of(&d);
            let level_nnz: Vec<String> = s.levels.iter().map(|l| format!("{}", l.nnz)).collect();
            table.row(vec![
                kind.name().to_string(),
                format!("{b}"),
                format!("{}", s.order),
                level_nnz.join(" > "),
                if s.compaction_factor.is_finite() {
                    format!("{:.1}", s.compaction_factor)
                } else {
                    "inf".to_string()
                },
                format!("{}", s.is_x_compacting(2.0)),
            ]);
        }
    }
    table.print(&format!("Lemma 1 compaction vs arrow width (n = {n})"));
    println!("\nexpected: compaction factor grows with b; order shrinks accordingly");
}
