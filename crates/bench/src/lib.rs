//! Shared harness utilities for the paper-reproduction benchmarks.
//!
//! Each bench target in `benches/` regenerates one table or figure of the
//! paper (see DESIGN.md §3 for the experiment index). This library
//! provides the common pieces: the dataset registry at bench scale,
//! algorithm constructors, and plain-text table output.

pub mod datasets;
pub mod runner;
pub mod table;

pub use datasets::{bench_graph, BenchScale};
pub use runner::{arrow_for, best_c, hp1d_for, spmm_15d_for};
pub use table::Table;

/// Fixed seed so every bench is reproducible run-to-run.
pub const BENCH_SEED: u64 = 0x5eed_2024;
