//! Dataset registry at bench scale.

use crate::BENCH_SEED;
use amd_graph::generators::datasets::DatasetKind;
use amd_graph::Graph;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// How large the synthetic stand-ins are generated.
///
/// The paper runs 50M–226M rows; we default to tens of thousands so the
/// whole suite regenerates in minutes while preserving every relative
/// claim (see DESIGN.md "Scale note"). Override with the
/// `AMD_BENCH_SCALE` environment variable (`small`, `default`, `large`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchScale {
    /// Quick smoke scale (n ≈ 4k), for CI.
    Small,
    /// Standard bench scale (n ≈ 30k).
    Default,
    /// Larger runs (n ≈ 120k) when time permits.
    Large,
}

impl BenchScale {
    /// Reads the scale from `AMD_BENCH_SCALE` (defaults to `Default`).
    pub fn from_env() -> Self {
        match std::env::var("AMD_BENCH_SCALE").as_deref() {
            Ok("small") => BenchScale::Small,
            Ok("large") => BenchScale::Large,
            _ => BenchScale::Default,
        }
    }

    /// Base vertex count for the scale.
    pub fn base_n(self) -> u32 {
        match self {
            BenchScale::Small => 4_000,
            BenchScale::Default => 30_000,
            BenchScale::Large => 120_000,
        }
    }
}

/// Generates a dataset stand-in deterministically at the requested size.
pub fn bench_graph(kind: DatasetKind, n: u32) -> Graph {
    // Per-kind stream so adding datasets never perturbs existing ones.
    let salt = kind
        .name()
        .bytes()
        .fold(0xdead_beefu64, |acc, b| acc.rotate_left(7) ^ b as u64);
    let mut rng = ChaCha8Rng::seed_from_u64(BENCH_SEED ^ salt);
    kind.generate(n, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_ordered() {
        assert!(BenchScale::Small.base_n() < BenchScale::Default.base_n());
        assert!(BenchScale::Default.base_n() < BenchScale::Large.base_n());
    }

    #[test]
    fn graphs_deterministic() {
        let a = bench_graph(DatasetKind::GenBank, 2000);
        let b = bench_graph(DatasetKind::GenBank, 2000);
        assert_eq!(a, b);
    }

    #[test]
    fn kinds_get_distinct_streams() {
        let a = bench_graph(DatasetKind::Mawi, 2000);
        let b = bench_graph(DatasetKind::WebBase, 2000);
        assert_ne!(a, b);
    }
}
