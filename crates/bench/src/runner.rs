//! Algorithm constructors used across the bench targets.

use crate::BENCH_SEED;
use amd_graph::Graph;
use amd_partition::{hype_partition, HypeConfig};
use amd_sparse::{CsrMatrix, SparseResult};
use amd_spmm::{A15dSpmm, ArrowSpmm, DistSpmm, Hp1dSpmm};
use arrow_core::{la_decompose, ArrowDecomposition, DecomposeConfig, RandomForestLa};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Decomposes `a` at width `b` with the paper's random-forest strategy and
/// plans the distributed arrow algorithm.
pub fn arrow_for(a: &CsrMatrix<f64>, b: u32) -> SparseResult<(ArrowDecomposition, ArrowSpmm)> {
    let d = la_decompose(
        a,
        &DecomposeConfig::with_width(b),
        &mut RandomForestLa::new(BENCH_SEED),
    )?;
    let alg = ArrowSpmm::new(&d)?;
    Ok((d, alg))
}

/// Picks an arrow width so that the planned algorithm uses roughly
/// `target_p` ranks: widths shrink until the rank count reaches the
/// target (mirrors the paper choosing `b` per dataset and "leaving a few
/// ranks unused").
pub fn arrow_with_ranks(
    a: &CsrMatrix<f64>,
    target_p: u32,
) -> SparseResult<(ArrowDecomposition, ArrowSpmm)> {
    // Initial guess: level 0 alone needs about active_n / b = p blocks.
    let mut b = (a.rows().div_ceil(target_p)).max(2);
    for _ in 0..8 {
        let (d, alg) = arrow_for(a, b)?;
        let p = alg.ranks();
        if p >= target_p || b <= 2 {
            return Ok((d, alg));
        }
        // Too few ranks (compaction shrank the levels): narrow the width.
        let shrink = (target_p as f64 / p as f64).min(4.0);
        b = ((b as f64 / shrink) as u32).max(2);
    }
    arrow_for(a, b)
}

pub use amd_spmm::best_c;

/// Builds the 1.5D baseline with the paper's replication choice.
pub fn spmm_15d_for(a: &CsrMatrix<f64>, p: u32) -> SparseResult<A15dSpmm> {
    A15dSpmm::new(a, p, best_c(p))
}

/// Builds the HP-1D baseline: HYPE partition into `p` parts, then the
/// overlapped 1D algorithm.
pub fn hp1d_for(g: &Graph, a: &CsrMatrix<f64>, p: u32) -> SparseResult<Hp1dSpmm> {
    let mut rng = ChaCha8Rng::seed_from_u64(BENCH_SEED ^ 0x4879_7065);
    let part = hype_partition(g, p, &HypeConfig::default(), &mut rng);
    Hp1dSpmm::new(a, &part)
}

#[cfg(test)]
mod tests {
    use super::*;
    use amd_graph::generators::basic;
    use amd_spmm::DistSpmm;

    #[test]
    fn best_c_divides() {
        for p in [1u32, 4, 6, 8, 12, 16, 36, 64] {
            let c = best_c(p);
            assert_eq!(p % c, 0);
            assert!(c as f64 <= (p as f64).sqrt() + 1e-9);
        }
        assert_eq!(best_c(16), 4);
        assert_eq!(best_c(8), 2);
        assert_eq!(best_c(7), 1);
    }

    #[test]
    fn constructors_produce_working_algorithms() {
        let g = basic::grid_2d(20, 20);
        let a: CsrMatrix<f64> = g.to_adjacency();
        let (_, arrow) = arrow_for(&a, 64).unwrap();
        assert!(arrow.ranks() >= 4);
        let d15 = spmm_15d_for(&a, 8).unwrap();
        assert_eq!(d15.ranks(), 8);
        let hp = hp1d_for(&g, &a, 4).unwrap();
        assert_eq!(hp.ranks(), 4);
    }

    #[test]
    fn rank_targeting_converges() {
        let g = basic::grid_2d(40, 40);
        let a: CsrMatrix<f64> = g.to_adjacency();
        let (_, alg) = arrow_with_ranks(&a, 16).unwrap();
        let p = alg.ranks();
        assert!(
            (8..=48).contains(&p),
            "rank targeting gave p = {p}, wanted ≈ 16"
        );
    }
}
