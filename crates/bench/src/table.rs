//! Plain-text table output for the bench reports.

/// A simple left-padded ASCII table accumulated row by row.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row; the cell count must match the header.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if no data row was added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], width: &[usize]| -> String {
            let parts: Vec<String> = cells
                .iter()
                .zip(width)
                .map(|(c, w)| format!("{c:>w$}", w = *w))
                .collect();
            format!("| {} |\n", parts.join(" | "))
        };
        out.push_str(&fmt_row(&self.header, &width));
        let sep: Vec<String> = width.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&format!("|-{}-|\n", sep.join("-|-")));
        for row in &self.rows {
            out.push_str(&fmt_row(row, &width));
        }
        out
    }

    /// Prints the table to stdout with a title banner.
    pub fn print(&self, title: &str) {
        println!("\n=== {title} ===");
        print!("{}", self.render());
    }
}

/// Formats a byte count with a binary-prefix unit.
pub fn fmt_bytes(bytes: f64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = bytes;
    let mut u = 0;
    while v >= 1024.0 && u + 1 < UNITS.len() {
        v /= 1024.0;
        u += 1;
    }
    format!("{v:.2} {}", UNITS[u])
}

/// Formats seconds with an adaptive unit.
pub fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else {
        format!("{:.3} us", s * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["x", "1"]);
        t.row(vec!["longer", "22"]);
        let r = t.render();
        assert!(r.contains("|   name | value |"));
        assert!(r.contains("| longer |    22 |"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_checked() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only one"]);
    }

    #[test]
    fn unit_formatting() {
        assert_eq!(fmt_bytes(512.0), "512.00 B");
        assert_eq!(fmt_bytes(2048.0), "2.00 KiB");
        assert!(fmt_bytes(3.0 * 1024.0 * 1024.0).contains("MiB"));
        assert_eq!(fmt_secs(2.5), "2.500 s");
        assert!(fmt_secs(0.002).contains("ms"));
        assert!(fmt_secs(2e-6).contains("us"));
    }
}
