//! Per-query cost attribution: the planner's cost model, measured.
//!
//! The planner ranks algorithms by *predicted* per-iteration
//! communication ([`Prediction`]); every run then produces the
//! machine's *accounted* [`MachineStats`] — which the engine used to
//! throw away. This module closes that loop. On every batched multiply
//! the engine records, into the shared registry:
//!
//! * `engine.plan.predicted_bytes` / `engine.plan.accounted_bytes` —
//!   cumulative predicted vs accounted max-per-rank volume (both at
//!   the served column count and iteration count, so the two counters
//!   are directly comparable),
//! * `engine.rank_volume.bytes` — a histogram of *per-rank* volumes,
//!   one sample per rank per run (the distribution behind the paper's
//!   §6 max-volume bound),
//! * `engine.plan.rank_checks` / `engine.plan.mispredictions` — how
//!   often the accounted volumes, substituted back into the cost
//!   model, would have ranked a different algorithm first,
//! * `engine.algo.<slug>.*` — the same quantities per algorithm
//!   family, plus an `error_permille` histogram of
//!   `|predicted − accounted| / accounted` and a `wall_nanos` counter
//!   of cumulative measured wall time (with `accounted_bytes` it
//!   yields an effective measured per-byte cost), the inputs of the
//!   CLI `report` calibration table.
//!
//! Each [`QueryResponse`](crate::QueryResponse) carries a [`QueryCost`]
//! so callers can attribute the run's cost to the query that paid it.
//!
//! **The rank-agreement check.** We cannot re-run the losing
//! candidates to account their volumes, but we can substitute the
//! winner's accounted envelope into its own prediction: scale the
//! winner's planned bytes by the observed accounted/predicted ratio,
//! swap in the accounted per-iteration message count, re-price under
//! the same α-β-γ model and oversubscription rule, and compare against
//! the runner-up's predicted seconds. If the re-priced winner loses,
//! the accounted volumes would have ranked a different algorithm
//! first — one misprediction. Corrected (delta-overlay) runs are
//! excluded: the planner never ranked the correction traffic.

use crate::planner::Prediction;
use amd_comm::{CostModel, MachineStats};
use amd_obs::{Counter, Histogram, Registry};
use amd_spmm::CommEstimate;
use std::collections::HashMap;

/// Registry slug of an algorithm label (`"Arrow b=32 l=2"` → `"arrow"`)
/// — the `<slug>` of the `engine.algo.<slug>.*` calibration namespace.
pub fn algo_slug(name: &str) -> &'static str {
    if name.starts_with("Arrow") {
        "arrow"
    } else if name.starts_with("1.5D") || name.starts_with("1D") {
        "a15d"
    } else if name.starts_with("2D") {
        "a2d"
    } else if name.starts_with("HP-1D") {
        "hp1d"
    } else {
        "other"
    }
}

/// The attributed cost of one run, shared by every query in its batch
/// (divide by [`QueryResponse::batch_size`](crate::QueryResponse) for
/// a per-query share). Volumes are per-iteration maxima over ranks, at
/// the column count the run actually served.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryCost {
    /// Planner label of the bound algorithm.
    pub algo: String,
    /// Whether the run went through the delta-corrected path.
    pub corrected: bool,
    /// Multiply iterations of the run.
    pub iters: u32,
    /// Predicted per-iteration max per-rank bytes.
    pub predicted_rank_bytes: f64,
    /// Accounted per-iteration max per-rank bytes.
    pub accounted_rank_bytes: f64,
    /// Simulated makespan of the whole run in seconds.
    pub sim_seconds: f64,
    /// Whether the accounted volumes confirmed the planner's ranking;
    /// `None` when unchecked (corrected runs, single-candidate plans).
    pub rank_agreement: Option<bool>,
}

struct AlgoMetrics {
    runs: Counter,
    predicted_bytes: Counter,
    accounted_bytes: Counter,
    rank_checks: Counter,
    mispredictions: Counter,
    error_permille: Histogram,
    /// Cumulative measured wall time of this family's runs, in
    /// nanoseconds — with `accounted_bytes` it yields an *effective*
    /// measured per-byte cost the `report` calibration table compares
    /// against the model's β.
    wall_nanos: Counter,
}

impl AlgoMetrics {
    fn new(registry: &Registry, slug: &str) -> Self {
        let name = |leaf: &str| format!("engine.algo.{slug}.{leaf}");
        Self {
            runs: registry.counter(&name("runs")),
            predicted_bytes: registry.counter(&name("predicted_bytes")),
            accounted_bytes: registry.counter(&name("accounted_bytes")),
            rank_checks: registry.counter(&name("rank_checks")),
            mispredictions: registry.counter(&name("mispredictions")),
            error_permille: registry.histogram(&name("error_permille")),
            wall_nanos: registry.counter(&name("wall_nanos")),
        }
    }
}

/// Registry handles of the attribution layer (see the [module
/// docs](self)). One instance lives in the engine; the CLI `multiply`
/// subcommand owns one directly for its single-algorithm run.
pub struct AttributionMetrics {
    registry: Registry,
    predicted_bytes: Counter,
    accounted_bytes: Counter,
    rank_checks: Counter,
    mispredictions: Counter,
    rank_volume: Histogram,
    per_algo: HashMap<&'static str, AlgoMetrics>,
}

/// One run's inputs to [`AttributionMetrics::record`].
pub struct RunAttribution<'a> {
    /// Planner label of the bound algorithm (family slug is derived
    /// from it).
    pub algo: &'a str,
    /// The planner's full ranking, cheapest first (empty when no plan
    /// exists, e.g. the CLI's direct multiply).
    pub predictions: &'a [Prediction],
    /// Predicted per-iteration envelope of **this run** — at the
    /// served column count, through the corrected path when an overlay
    /// was live — so predicted and accounted volumes are comparable.
    pub estimate: CommEstimate,
    /// Whether the run went through the delta-corrected path.
    pub corrected: bool,
    /// Multiply iterations of the run.
    pub iters: u32,
    /// The engine's cost model (re-pricing uses the same α-β-γ).
    pub cost: CostModel,
    /// The deployment's rank budget (oversubscription rule).
    pub target_ranks: u32,
}

impl AttributionMetrics {
    /// Handles in the `engine.plan.*` / `engine.rank_volume.*`
    /// namespaces of `registry`; the per-algorithm
    /// `engine.algo.<slug>.*` handles materialize on first use.
    pub fn new(registry: &Registry) -> Self {
        Self {
            registry: registry.clone(),
            predicted_bytes: registry.counter("engine.plan.predicted_bytes"),
            accounted_bytes: registry.counter("engine.plan.accounted_bytes"),
            rank_checks: registry.counter("engine.plan.rank_checks"),
            mispredictions: registry.counter("engine.plan.mispredictions"),
            rank_volume: registry.histogram("engine.rank_volume.bytes"),
            per_algo: HashMap::new(),
        }
    }

    /// Cumulative `engine.plan.rank_checks` — runs whose ranking was
    /// re-priced against the accounted envelope.
    pub fn rank_checks(&self) -> u64 {
        self.rank_checks.get()
    }

    /// Cumulative `engine.plan.mispredictions` — rank checks where the
    /// accounted volumes would have ranked a different algorithm first.
    pub fn mispredictions(&self) -> u64 {
        self.mispredictions.get()
    }

    /// Folds one run's accounted [`MachineStats`] against its
    /// prediction into the registry and returns the [`QueryCost`] the
    /// responses carry.
    pub fn record(&mut self, run: &RunAttribution<'_>, stats: &MachineStats) -> QueryCost {
        let iters = f64::from(run.iters.max(1));
        let accounted_total = stats.max_volume();
        let accounted_per_iter = accounted_total as f64 / iters;
        let predicted_per_iter = run.estimate.max_rank_bytes;
        self.predicted_bytes
            .add((predicted_per_iter * iters).round() as u64);
        self.accounted_bytes.add(accounted_total);
        for v in stats.rank_volumes() {
            self.rank_volume.record(v);
        }

        let slug = algo_slug(run.algo);
        let m = self
            .per_algo
            .entry(slug)
            .or_insert_with(|| AlgoMetrics::new(&self.registry, slug));
        m.runs.inc();
        m.predicted_bytes
            .add((predicted_per_iter * iters).round() as u64);
        m.accounted_bytes.add(accounted_total);
        m.wall_nanos
            .add((stats.wall_seconds * 1e9).round().max(0.0) as u64);
        // Relative volume prediction error, in permille of accounted.
        let error_permille = if accounted_per_iter > 0.0 {
            ((predicted_per_iter - accounted_per_iter).abs() / accounted_per_iter * 1000.0).round()
                as u64
        } else {
            (predicted_per_iter > 0.0) as u64 * 1000
        };
        m.error_permille.record(error_permille);

        let rank_agreement = if run.corrected {
            None
        } else {
            self.check_ranking(run, accounted_per_iter, stats)
        };
        if let Some(agrees) = rank_agreement {
            self.rank_checks.inc();
            let m = self.per_algo.get(slug).expect("just inserted");
            m.rank_checks.inc();
            if !agrees {
                self.mispredictions.inc();
                m.mispredictions.inc();
            }
        }
        QueryCost {
            algo: run.algo.to_string(),
            corrected: run.corrected,
            iters: run.iters,
            predicted_rank_bytes: predicted_per_iter,
            accounted_rank_bytes: accounted_per_iter,
            sim_seconds: stats.sim_time(),
            rank_agreement,
        }
    }

    /// Re-prices the winner with its accounted envelope substituted in
    /// (see the module docs) and compares against the runner-up.
    /// `None` when there is no ranking to check.
    fn check_ranking(
        &self,
        run: &RunAttribution<'_>,
        accounted_per_iter: f64,
        stats: &MachineStats,
    ) -> Option<bool> {
        let winner = run.predictions.first()?;
        let runner_up = run
            .predictions
            .iter()
            .skip(1)
            .map(|p| p.seconds)
            .fold(f64::INFINITY, f64::min);
        if !runner_up.is_finite() {
            return None;
        }
        // The ranking was priced at the planner's k_hint; this run
        // served a (possibly different) column count. Bytes scale with
        // columns, so carry the observed accounted/predicted ratio
        // over to the ranked estimate; the message count does not
        // scale with columns, so the accounted count substitutes
        // directly.
        let ratio = if run.estimate.max_rank_bytes > 0.0 {
            accounted_per_iter / run.estimate.max_rank_bytes
        } else if accounted_per_iter > 0.0 {
            f64::INFINITY
        } else {
            1.0
        };
        let adjusted = CommEstimate {
            max_rank_bytes: winner.estimate.max_rank_bytes * ratio,
            max_rank_messages: stats.max_messages() as f64 / f64::from(run.iters.max(1)),
            max_rank_flops: winner.estimate.max_rank_flops,
        };
        let oversubscription =
            (f64::from(winner.ranks) / f64::from(run.target_ranks.max(1))).max(1.0);
        let repriced = adjusted.predicted_seconds(&run.cost) * oversubscription;
        Some(repriced <= runner_up)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amd_comm::RankStats;

    fn machine(volumes: &[u64]) -> MachineStats {
        MachineStats {
            ranks: volumes
                .iter()
                .map(|&v| RankStats {
                    sent_bytes: v,
                    recv_bytes: 0,
                    sent_msgs: 2,
                    recv_msgs: 2,
                    sim_time: 1e-4,
                    compute_time: 5e-5,
                })
                .collect(),
            wall_seconds: 1e-3,
        }
    }

    fn prediction(name: &str, ranks: u32, bytes: f64, seconds: f64) -> Prediction {
        Prediction {
            name: name.to_string(),
            ranks,
            estimate: CommEstimate {
                max_rank_bytes: bytes,
                max_rank_messages: 4.0,
                max_rank_flops: 1e3,
            },
            seconds,
        }
    }

    #[test]
    fn slugs_cover_the_candidate_set() {
        assert_eq!(algo_slug("Arrow b=32 l=2"), "arrow");
        assert_eq!(algo_slug("1.5D p=16 c=4"), "a15d");
        assert_eq!(algo_slug("1D p=16"), "a15d");
        assert_eq!(algo_slug("2D p=16"), "a2d");
        assert_eq!(algo_slug("HP-1D p=16"), "hp1d");
        assert_eq!(algo_slug("mystery"), "other");
    }

    #[test]
    fn accurate_prediction_agrees_and_calibrates() {
        let r = Registry::new();
        let mut a = AttributionMetrics::new(&r);
        let predictions = [
            prediction("Arrow b=8 l=1", 4, 1000.0, 1e-5),
            prediction("2D p=16", 16, 50_000.0, 5e-4),
        ];
        let stats = machine(&[1000, 900]); // accounted max = predicted
        let cost = a.record(
            &RunAttribution {
                algo: "Arrow b=8 l=1",
                predictions: &predictions,
                estimate: predictions[0].estimate,
                corrected: false,
                iters: 2,
                cost: CostModel::default(),
                target_ranks: 16,
            },
            &stats,
        );
        assert_eq!(cost.rank_agreement, Some(true));
        assert_eq!(cost.accounted_rank_bytes, 500.0);
        let s = r.snapshot();
        assert_eq!(s.counter("engine.plan.predicted_bytes"), Some(2000));
        assert_eq!(s.counter("engine.plan.accounted_bytes"), Some(1000));
        assert_eq!(s.counter("engine.plan.rank_checks"), Some(1));
        assert_eq!(s.counter("engine.plan.mispredictions"), Some(0));
        assert_eq!(s.counter("engine.algo.arrow.runs"), Some(1));
        // wall_seconds = 1e-3 → 1_000_000 ns of measured wall time.
        assert_eq!(s.counter("engine.algo.arrow.wall_nanos"), Some(1_000_000));
        assert_eq!(s.histogram("engine.rank_volume.bytes").unwrap().count, 2);
        // accounted/iter = 500 vs predicted 1000 → 1000‰ error recorded.
        assert_eq!(
            s.histogram("engine.algo.arrow.error_permille").unwrap().max,
            1000
        );
    }

    #[test]
    fn gross_underprediction_counts_a_misprediction() {
        let r = Registry::new();
        let mut a = AttributionMetrics::new(&r);
        // Winner predicted 1 KiB/iter but the machine accounted 100×
        // the runner-up's volume: re-priced, the winner must lose.
        let predictions = [
            prediction("Arrow b=8 l=1", 4, 1000.0, 1e-6),
            prediction("2D p=16", 16, 10_000.0, 2e-6),
        ];
        let stats = machine(&[5_000_000]);
        let cost = a.record(
            &RunAttribution {
                algo: "Arrow b=8 l=1",
                predictions: &predictions,
                estimate: predictions[0].estimate,
                corrected: false,
                iters: 1,
                cost: CostModel::default(),
                target_ranks: 16,
            },
            &stats,
        );
        assert_eq!(cost.rank_agreement, Some(false));
        let s = r.snapshot();
        assert_eq!(s.counter("engine.plan.mispredictions"), Some(1));
        assert_eq!(s.counter("engine.algo.arrow.mispredictions"), Some(1));
    }

    #[test]
    fn corrected_runs_skip_the_rank_check() {
        let r = Registry::new();
        let mut a = AttributionMetrics::new(&r);
        let predictions = [
            prediction("Arrow b=8 l=1", 4, 1000.0, 1e-6),
            prediction("2D p=16", 16, 10_000.0, 2e-6),
        ];
        let cost = a.record(
            &RunAttribution {
                algo: "Arrow b=8 l=1",
                predictions: &predictions,
                estimate: predictions[0].estimate,
                corrected: true,
                iters: 1,
                cost: CostModel::default(),
                target_ranks: 16,
            },
            &machine(&[123_456_789]),
        );
        assert_eq!(cost.rank_agreement, None);
        let s = r.snapshot();
        assert_eq!(s.counter("engine.plan.rank_checks"), Some(0));
        assert_eq!(s.counter("engine.plan.mispredictions"), Some(0));
        // Calibration volume still accumulates.
        assert_eq!(s.counter("engine.plan.accounted_bytes"), Some(123_456_789));
    }

    #[test]
    fn single_candidate_plans_are_unchecked() {
        let r = Registry::new();
        let mut a = AttributionMetrics::new(&r);
        let predictions = [prediction("Arrow b=8 l=1", 4, 1000.0, 1e-6)];
        let cost = a.record(
            &RunAttribution {
                algo: "Arrow b=8 l=1",
                predictions: &predictions,
                estimate: predictions[0].estimate,
                corrected: false,
                iters: 1,
                cost: CostModel::default(),
                target_ranks: 16,
            },
            &machine(&[1000]),
        );
        assert_eq!(cost.rank_agreement, None);
        assert_eq!(r.snapshot().counter("engine.plan.rank_checks"), Some(0));
    }
}
