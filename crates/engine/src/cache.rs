//! The decomposition cache: an LRU over content fingerprints with
//! write-through disk persistence.
//!
//! LA-Decompose is the expensive, once-per-matrix step of the paper's
//! workflow (§5); everything after it is cheap per-iteration SpMM. The
//! cache makes that amortization explicit in a serving setting:
//!
//! * **memory hits** return the resident [`ArrowDecomposition`] without
//!   touching the arrangement pipeline,
//! * **disk hits** (after a restart, or after an LRU eviction) reload a
//!   previously persisted decomposition via [`arrow_core::persist`] —
//!   still no LA-Decompose,
//! * only true misses pay for a decomposition, and with a spill
//!   directory configured the result is written through immediately, so
//!   a warm restart never repeats the work.
//!
//! [`CacheStats::decompositions`] is the probe tests use to assert the
//! warm path performs zero LA-Decompose calls.

use amd_sparse::{CsrMatrix, SparseError, SparseResult};
use arrow_core::{la_decompose, persist, ArrowDecomposition, DecomposeConfig, RandomForestLa};
use std::collections::HashMap;
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Counters exposed by the cache (monotonic over its lifetime).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests answered from memory.
    pub hits: u64,
    /// Requests not answered from memory (disk loads included).
    pub misses: u64,
    /// Requests answered by reloading a persisted decomposition.
    pub disk_loads: u64,
    /// Spill files that failed to load (corrupt/truncated/mismatched);
    /// each falls back to a fresh decomposition that overwrites the file.
    pub load_failures: u64,
    /// LA-Decompose invocations (the expensive path).
    pub decompositions: u64,
    /// Decompositions computed elsewhere (e.g. on a background refresh
    /// worker) and handed to the cache via
    /// [`DecompositionCache::admit`].
    pub admitted: u64,
    /// Decompositions written through to the spill directory.
    pub spills: u64,
    /// Write-through attempts that failed (disk full, directory gone);
    /// the decomposition stays usable in memory.
    pub spill_failures: u64,
    /// Entries dropped from memory by the LRU policy.
    pub evictions: u64,
}

struct Entry {
    d: Arc<ArrowDecomposition>,
    last_used: u64,
}

/// LRU cache of arrow decompositions keyed by
/// [`cache_key`](Self::cache_key) — the [`CsrMatrix::fingerprint`]
/// folded with the decompose configuration and seed — with optional
/// disk spill.
pub struct DecompositionCache {
    capacity: usize,
    spill_dir: Option<PathBuf>,
    entries: HashMap<u128, Entry>,
    clock: u64,
    stats: CacheStats,
}

impl DecompositionCache {
    /// A cache holding at most `capacity` decompositions in memory.
    /// With `spill_dir` set, every decomposition is also persisted there
    /// (write-through), and lookups fall back to disk before
    /// decomposing; pass `None` for a memory-only cache.
    pub fn new(capacity: usize, spill_dir: Option<PathBuf>) -> SparseResult<Self> {
        assert!(capacity >= 1, "cache capacity must be at least 1");
        if let Some(dir) = &spill_dir {
            std::fs::create_dir_all(dir).map_err(|e| {
                SparseError::InvalidCsr(format!("create spill dir {}: {e}", dir.display()))
            })?;
        }
        Ok(Self {
            capacity,
            spill_dir,
            entries: HashMap::new(),
            clock: 0,
            stats: CacheStats::default(),
        })
    }

    /// Counter snapshot.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Number of decompositions resident in memory.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `true` if the given [`cache_key`](Self::cache_key) is resident in
    /// memory (does not touch recency or counters).
    pub fn contains(&self, key: u128) -> bool {
        self.entries.contains_key(&key)
    }

    fn spill_path(dir: &Path, key: u128) -> PathBuf {
        dir.join(format!("arrow-{key:032x}.amd"))
    }

    /// The cache identity of a request: the matrix content fingerprint
    /// folded with every input that shapes the decomposition — arrow
    /// width, pruning flag, level cap, and the arrangement seed. Two
    /// requests share an entry (or a spill file) only when they would
    /// produce the same decomposition.
    pub fn cache_key(fingerprint: u128, config: &DecomposeConfig, seed: u64) -> u128 {
        const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;
        let mut h = fingerprint;
        for byte in config
            .arrow_width
            .to_le_bytes()
            .into_iter()
            .chain([config.prune as u8])
            .chain(config.max_levels.to_le_bytes())
            .chain(seed.to_le_bytes())
        {
            h ^= byte as u128;
            h = h.wrapping_mul(PRIME);
        }
        h
    }

    /// The decomposition for `a`, from memory, disk, or (last resort) a
    /// fresh LA-Decompose with `config` and the random-forest strategy
    /// seeded by `seed`.
    pub fn get_or_decompose(
        &mut self,
        a: &CsrMatrix<f64>,
        config: &DecomposeConfig,
        seed: u64,
    ) -> SparseResult<Arc<ArrowDecomposition>> {
        self.get_or_decompose_keyed(a, a.fingerprint(), config, seed)
    }

    /// [`get_or_decompose`](Self::get_or_decompose) with the content
    /// fingerprint supplied by the caller (who typically already
    /// computed it for its own bookkeeping — hashing is `O(nnz)`, worth
    /// doing once).
    pub fn get_or_decompose_keyed(
        &mut self,
        a: &CsrMatrix<f64>,
        fingerprint: u128,
        config: &DecomposeConfig,
        seed: u64,
    ) -> SparseResult<Arc<ArrowDecomposition>> {
        let key = Self::cache_key(fingerprint, config, seed);
        self.clock += 1;
        if let Some(entry) = self.entries.get_mut(&key) {
            entry.last_used = self.clock;
            self.stats.hits += 1;
            return Ok(entry.d.clone());
        }
        self.stats.misses += 1;
        // Disk fallback: a previous run (or an evicted entry) may have
        // persisted this decomposition already. A file that fails to
        // load — corrupt, truncated, or holding the wrong matrix — must
        // never take registration down: it falls through to a fresh
        // decomposition, which overwrites it.
        if let Some(dir) = self.spill_dir.clone() {
            let path = Self::spill_path(&dir, key);
            if path.exists() {
                match Self::try_load(&path, a.rows()) {
                    Ok(d) => {
                        self.stats.disk_loads += 1;
                        self.insert(key, d.clone());
                        return Ok(d);
                    }
                    Err(_) => self.stats.load_failures += 1,
                }
            }
        }
        // True miss: decompose (the only expensive path) and write
        // through so restarts stay warm. Persistence is best-effort: a
        // full disk or vanished directory must not discard the freshly
        // computed decomposition — the cache degrades to memory-only and
        // counts the failure.
        self.stats.decompositions += 1;
        let d = Arc::new(la_decompose(a, config, &mut RandomForestLa::new(seed))?);
        if let Some(dir) = self.spill_dir.clone() {
            let path = Self::spill_path(&dir, key);
            match Self::try_save(&path, &d) {
                Ok(()) => self.stats.spills += 1,
                Err(_) => {
                    self.stats.spill_failures += 1;
                    // Don't leave a partial file behind to poison reloads.
                    let _ = std::fs::remove_file(&path);
                }
            }
        }
        self.insert(key, d.clone());
        Ok(d)
    }

    /// The resident decomposition for a content/config/seed identity,
    /// if any — no disk fallback, no decompose, no hit/miss accounting
    /// (recency is still bumped). This is the *prior* lookup of an
    /// incremental refresh: a miss just means the splice base is gone
    /// (evicted, or never computed here) and the refresh goes cold.
    pub fn peek(
        &mut self,
        fingerprint: u128,
        config: &DecomposeConfig,
        seed: u64,
    ) -> Option<Arc<ArrowDecomposition>> {
        let key = Self::cache_key(fingerprint, config, seed);
        self.clock += 1;
        let clock = self.clock;
        self.entries.get_mut(&key).map(|e| {
            e.last_used = clock;
            e.d.clone()
        })
    }

    /// Adopts a decomposition computed outside the cache (a background
    /// refresh worker decomposing a snapshot off-thread). If the key is
    /// already resident the existing entry wins — the caller's copy is
    /// discarded and the resident [`Arc`] returned, so pointer identity
    /// stays stable for concurrent holders. Otherwise the decomposition
    /// is inserted and written through to the spill directory exactly
    /// like a cache-computed one (best-effort, counted on failure).
    pub fn admit(
        &mut self,
        fingerprint: u128,
        config: &DecomposeConfig,
        seed: u64,
        d: Arc<ArrowDecomposition>,
    ) -> Arc<ArrowDecomposition> {
        let key = Self::cache_key(fingerprint, config, seed);
        self.clock += 1;
        if let Some(entry) = self.entries.get_mut(&key) {
            entry.last_used = self.clock;
            self.stats.hits += 1;
            return entry.d.clone();
        }
        self.stats.admitted += 1;
        if let Some(dir) = self.spill_dir.clone() {
            let path = Self::spill_path(&dir, key);
            match Self::try_save(&path, &d) {
                Ok(()) => self.stats.spills += 1,
                Err(_) => {
                    self.stats.spill_failures += 1;
                    let _ = std::fs::remove_file(&path);
                }
            }
        }
        self.insert(key, d.clone());
        d
    }

    fn try_save(path: &Path, d: &ArrowDecomposition) -> SparseResult<()> {
        let file = File::create(path)
            .map_err(|e| SparseError::InvalidCsr(format!("create {}: {e}", path.display())))?;
        persist::save(d, BufWriter::new(file))
    }

    fn try_load(path: &Path, n: u32) -> SparseResult<Arc<ArrowDecomposition>> {
        let file = File::open(path)
            .map_err(|e| SparseError::InvalidCsr(format!("open {}: {e}", path.display())))?;
        let d = Arc::new(persist::load(BufReader::new(file))?);
        if d.n() != n {
            return Err(SparseError::InvalidCsr(format!(
                "spill file {} holds n = {}, matrix has n = {n}",
                path.display(),
                d.n()
            )));
        }
        Ok(d)
    }

    fn insert(&mut self, key: u128, d: Arc<ArrowDecomposition>) {
        while self.entries.len() >= self.capacity {
            // Evict the least recently used entry. Decompositions are
            // write-through, so eviction never loses work when a spill
            // directory is configured.
            let lru = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(&fp, _)| fp)
                .expect("entries non-empty while over capacity");
            self.entries.remove(&lru);
            self.stats.evictions += 1;
        }
        self.entries.insert(
            key,
            Entry {
                d,
                last_used: self.clock,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amd_graph::generators::basic;

    fn matrix(n: u32) -> CsrMatrix<f64> {
        basic::cycle(n).to_adjacency()
    }

    fn cfg() -> DecomposeConfig {
        DecomposeConfig::with_width(8)
    }

    #[test]
    fn second_request_is_a_memory_hit() {
        let mut cache = DecompositionCache::new(2, None).unwrap();
        let a = matrix(40);
        let d1 = cache.get_or_decompose(&a, &cfg(), 1).unwrap();
        let d2 = cache.get_or_decompose(&a, &cfg(), 1).unwrap();
        assert!(Arc::ptr_eq(&d1, &d2));
        assert_eq!(cache.stats().decompositions, 1);
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn lru_evicts_oldest_and_capacity_holds() {
        let mut cache = DecompositionCache::new(2, None).unwrap();
        let (a, b, c) = (matrix(30), matrix(40), matrix(50));
        cache.get_or_decompose(&a, &cfg(), 1).unwrap();
        cache.get_or_decompose(&b, &cfg(), 1).unwrap();
        // Touch a so b becomes the LRU victim.
        cache.get_or_decompose(&a, &cfg(), 1).unwrap();
        cache.get_or_decompose(&c, &cfg(), 1).unwrap();
        assert_eq!(cache.len(), 2);
        let key = |m: &CsrMatrix<f64>| DecompositionCache::cache_key(m.fingerprint(), &cfg(), 1);
        assert!(cache.contains(key(&a)));
        assert!(!cache.contains(key(&b)));
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn different_configs_get_distinct_entries() {
        // Same matrix at two widths must produce two decompositions —
        // the cache identity covers the config, not just the content.
        let mut cache = DecompositionCache::new(4, None).unwrap();
        let a = matrix(40);
        let d8 = cache
            .get_or_decompose(&a, &DecomposeConfig::with_width(8), 1)
            .unwrap();
        let d16 = cache
            .get_or_decompose(&a, &DecomposeConfig::with_width(16), 1)
            .unwrap();
        assert_eq!(cache.stats().decompositions, 2);
        assert_eq!(d8.b(), 8);
        assert_eq!(d16.b(), 16);
        // A different seed is likewise its own entry.
        cache
            .get_or_decompose(&a, &DecomposeConfig::with_width(8), 2)
            .unwrap();
        assert_eq!(cache.stats().decompositions, 3);
    }

    #[test]
    fn disk_reload_skips_decompose() {
        let dir = std::env::temp_dir().join(format!("amd-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let a = matrix(60);
        {
            let mut cache = DecompositionCache::new(2, Some(dir.clone())).unwrap();
            cache.get_or_decompose(&a, &cfg(), 1).unwrap();
            assert_eq!(cache.stats().decompositions, 1);
            assert_eq!(cache.stats().spills, 1);
        }
        // Fresh cache, same directory: warm restart, zero LA-Decompose.
        let mut cache = DecompositionCache::new(2, Some(dir.clone())).unwrap();
        let d = cache.get_or_decompose(&a, &cfg(), 1).unwrap();
        assert_eq!(cache.stats().decompositions, 0);
        assert_eq!(cache.stats().disk_loads, 1);
        assert_eq!(d.validate(&a).unwrap(), 0.0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_spill_file_falls_back_to_decompose() {
        let dir = std::env::temp_dir().join(format!("amd-cache-corrupt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let a = matrix(50);
        {
            let mut cache = DecompositionCache::new(2, Some(dir.clone())).unwrap();
            cache.get_or_decompose(&a, &cfg(), 1).unwrap();
        }
        // Truncate the spill file: the warm path must survive it.
        let spill = DecompositionCache::spill_path(
            &dir,
            DecompositionCache::cache_key(a.fingerprint(), &cfg(), 1),
        );
        let bytes = std::fs::read(&spill).unwrap();
        std::fs::write(&spill, &bytes[..20]).unwrap();
        let mut cache = DecompositionCache::new(2, Some(dir.clone())).unwrap();
        let d = cache.get_or_decompose(&a, &cfg(), 1).unwrap();
        assert_eq!(cache.stats().load_failures, 1);
        assert_eq!(cache.stats().decompositions, 1, "fell back to decompose");
        assert_eq!(d.validate(&a).unwrap(), 0.0);
        // The bad file was overwritten: a third cache loads it cleanly.
        let mut cache = DecompositionCache::new(2, Some(dir.clone())).unwrap();
        cache.get_or_decompose(&a, &cfg(), 1).unwrap();
        assert_eq!(cache.stats().decompositions, 0);
        assert_eq!(cache.stats().disk_loads, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn eviction_then_rerequest_reloads_from_disk() {
        let dir = std::env::temp_dir().join(format!("amd-cache-evict-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cache = DecompositionCache::new(1, Some(dir.clone())).unwrap();
        let (a, b) = (matrix(30), matrix(44));
        cache.get_or_decompose(&a, &cfg(), 1).unwrap();
        cache.get_or_decompose(&b, &cfg(), 1).unwrap(); // evicts a
        cache.get_or_decompose(&a, &cfg(), 1).unwrap(); // disk, not decompose
        assert_eq!(cache.stats().decompositions, 2);
        assert_eq!(cache.stats().disk_loads, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
