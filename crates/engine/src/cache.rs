//! The decomposition cache: an LRU over content fingerprints with
//! write-through persistence into a versioned [`Catalog`].
//!
//! LA-Decompose is the expensive, once-per-matrix step of the paper's
//! workflow (§5); everything after it is cheap per-iteration SpMM. The
//! cache makes that amortization explicit in a serving setting:
//!
//! * **memory hits** return the resident [`ArrowDecomposition`] without
//!   touching the arrangement pipeline,
//! * **catalog hits** (after a restart, or after an LRU eviction)
//!   reload a previously persisted decomposition from the
//!   [`arrow_core::catalog`] — still no LA-Decompose,
//! * only true misses pay for a decomposition, and with a catalog
//!   directory configured the result is written through immediately as
//!   a catalog version, so a warm restart never repeats the work.
//!
//! Write-throughs carry **lineage**: a decomposition admitted by a
//! streaming refresh records the fingerprint it was refreshed from as
//! its parent version, so the catalog accumulates per-matrix version
//! chains (point-in-time restore, GC, tenant eviction) instead of loose
//! per-key files.
//!
//! [`CacheStats::decompositions`] is the probe tests use to assert the
//! warm path performs zero LA-Decompose calls.

use amd_obs::{Counter, Histogram, Registry, Stopwatch};
use amd_sparse::{CsrMatrix, SparseResult};
use arrow_core::catalog::Catalog;
use arrow_core::{la_decompose, ArrowDecomposition, DecomposeConfig, RandomForestLa};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

/// Counters exposed by the cache (monotonic over its lifetime).
///
/// This is a point-in-time view folded from the cache's registry
/// counters (`cache.*` in a metrics snapshot) — see
/// [`DecompositionCache::stats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests answered from memory.
    pub hits: u64,
    /// Requests not answered from memory (catalog loads included).
    pub misses: u64,
    /// Requests answered by reloading a catalogued decomposition.
    pub disk_loads: u64,
    /// Catalog payloads that failed to load (corrupt/truncated); each
    /// falls back to a fresh decomposition that re-puts the version.
    pub load_failures: u64,
    /// LA-Decompose invocations (the expensive path).
    pub decompositions: u64,
    /// Decompositions computed elsewhere (e.g. on a background refresh
    /// worker) and handed to the cache via
    /// [`DecompositionCache::admit`].
    pub admitted: u64,
    /// Decompositions written through to the catalog.
    pub spills: u64,
    /// Write-through attempts that failed (disk full, directory gone);
    /// the decomposition stays usable in memory.
    pub spill_failures: u64,
    /// Entries dropped from memory by the LRU policy.
    pub evictions: u64,
    /// Entries dropped from memory by [`DecompositionCache::release`]
    /// (a binding was deregistered; the catalog copy, if any, remains
    /// until garbage-collected).
    pub released: u64,
}

/// Registry handles behind [`CacheStats`] — the counters are the
/// single source of truth; the stats struct is a fold over them.
struct CacheMetrics {
    hits: Counter,
    misses: Counter,
    disk_loads: Counter,
    load_failures: Counter,
    decompositions: Counter,
    admitted: Counter,
    spills: Counter,
    spill_failures: Counter,
    evictions: Counter,
    released: Counter,
    decompose_seconds: Histogram,
}

impl CacheMetrics {
    fn new(registry: &Registry) -> Self {
        Self {
            hits: registry.counter("cache.hits"),
            misses: registry.counter("cache.misses"),
            disk_loads: registry.counter("cache.disk_loads"),
            load_failures: registry.counter("cache.load_failures"),
            decompositions: registry.counter("cache.decompositions"),
            admitted: registry.counter("cache.admitted"),
            spills: registry.counter("cache.spills"),
            spill_failures: registry.counter("cache.spill_failures"),
            evictions: registry.counter("cache.evictions"),
            released: registry.counter("cache.released"),
            decompose_seconds: registry.histogram("decompose.seconds"),
        }
    }
}

struct Entry {
    d: Arc<ArrowDecomposition>,
    last_used: u64,
}

/// LRU cache of arrow decompositions keyed by
/// [`cache_key`](Self::cache_key) — the [`CsrMatrix::fingerprint`]
/// folded with the decompose configuration and seed — with optional
/// write-through into an on-disk [`Catalog`].
pub struct DecompositionCache {
    capacity: usize,
    catalog: Option<Catalog>,
    entries: HashMap<u128, Entry>,
    clock: u64,
    metrics: CacheMetrics,
}

impl DecompositionCache {
    /// A cache holding at most `capacity` decompositions in memory.
    /// With `catalog_dir` set, every decomposition is also persisted
    /// there as a catalog version (write-through), and lookups fall
    /// back to the catalog before decomposing; pass `None` for a
    /// memory-only cache.
    pub fn new(capacity: usize, catalog_dir: Option<PathBuf>) -> SparseResult<Self> {
        Self::with_registry(capacity, catalog_dir, &Registry::new())
    }

    /// [`new`](Self::new), publishing the cache's counters (`cache.*`,
    /// `decompose.seconds`) and the catalog's (`catalog.*`) into the
    /// caller's metrics registry instead of a private one — the hookup
    /// used by [`Engine`](crate::Engine) so one snapshot covers the
    /// whole serving stack.
    pub fn with_registry(
        capacity: usize,
        catalog_dir: Option<PathBuf>,
        registry: &Registry,
    ) -> SparseResult<Self> {
        assert!(capacity >= 1, "cache capacity must be at least 1");
        let catalog = match catalog_dir {
            Some(dir) => Some(Catalog::open_with_registry(dir, registry)?),
            None => None,
        };
        Ok(Self {
            capacity,
            catalog,
            entries: HashMap::new(),
            clock: 0,
            metrics: CacheMetrics::new(registry),
        })
    }

    /// Counter snapshot, folded from the registry counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.metrics.hits.get(),
            misses: self.metrics.misses.get(),
            disk_loads: self.metrics.disk_loads.get(),
            load_failures: self.metrics.load_failures.get(),
            decompositions: self.metrics.decompositions.get(),
            admitted: self.metrics.admitted.get(),
            spills: self.metrics.spills.get(),
            spill_failures: self.metrics.spill_failures.get(),
            evictions: self.metrics.evictions.get(),
            released: self.metrics.released.get(),
        }
    }

    /// The write-through catalog, when one is configured.
    pub fn catalog(&self) -> Option<&Catalog> {
        self.catalog.as_ref()
    }

    /// Mutable access to the write-through catalog (GC, chain removal).
    pub fn catalog_mut(&mut self) -> Option<&mut Catalog> {
        self.catalog.as_mut()
    }

    /// One-shot migration of pre-catalog spill files sitting in the
    /// catalog directory itself (loose `arrow-<key>.amd` files written
    /// by earlier engines): imports them as catalog root versions under
    /// the given identity. No-op without a catalog.
    pub fn import_legacy(&mut self, config: &DecomposeConfig, seed: u64) -> SparseResult<usize> {
        match &mut self.catalog {
            Some(c) => {
                let root = c.root().to_path_buf();
                c.import_legacy_dir(root, config, seed)
            }
            None => Ok(0),
        }
    }

    /// Number of decompositions resident in memory.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `true` if the given [`cache_key`](Self::cache_key) is resident in
    /// memory (does not touch recency or counters).
    pub fn contains(&self, key: u128) -> bool {
        self.entries.contains_key(&key)
    }

    /// The cache identity of a request: the matrix content fingerprint
    /// folded with every input that shapes the decomposition — arrow
    /// width, pruning flag, level cap, and the arrangement seed. Two
    /// requests share an entry (or a catalog version) only when they
    /// would produce the same decomposition.
    pub fn cache_key(fingerprint: u128, config: &DecomposeConfig, seed: u64) -> u128 {
        const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;
        let mut h = fingerprint;
        for byte in config
            .arrow_width
            .to_le_bytes()
            .into_iter()
            .chain([config.prune as u8])
            .chain(config.max_levels.to_le_bytes())
            .chain(seed.to_le_bytes())
        {
            h ^= byte as u128;
            h = h.wrapping_mul(PRIME);
        }
        h
    }

    /// The decomposition for `a`, from memory, the catalog, or (last
    /// resort) a fresh LA-Decompose with `config` and the random-forest
    /// strategy seeded by `seed`.
    pub fn get_or_decompose(
        &mut self,
        a: &CsrMatrix<f64>,
        config: &DecomposeConfig,
        seed: u64,
    ) -> SparseResult<Arc<ArrowDecomposition>> {
        self.get_or_decompose_keyed(a, a.fingerprint(), config, seed)
    }

    /// [`get_or_decompose`](Self::get_or_decompose) with the content
    /// fingerprint supplied by the caller (who typically already
    /// computed it for its own bookkeeping — hashing is `O(nnz)`, worth
    /// doing once).
    pub fn get_or_decompose_keyed(
        &mut self,
        a: &CsrMatrix<f64>,
        fingerprint: u128,
        config: &DecomposeConfig,
        seed: u64,
    ) -> SparseResult<Arc<ArrowDecomposition>> {
        self.get_or_decompose_lineage(a, fingerprint, config, seed, 0, 0)
    }

    /// [`get_or_decompose_keyed`](Self::get_or_decompose_keyed) with
    /// catalog lineage: should a fresh decomposition be computed, its
    /// write-through records `version` and `parent` (the fingerprint it
    /// was refreshed from) instead of a root version — the synchronous
    /// refresh path of a serving engine.
    pub fn get_or_decompose_lineage(
        &mut self,
        a: &CsrMatrix<f64>,
        fingerprint: u128,
        config: &DecomposeConfig,
        seed: u64,
        version: u64,
        parent: u128,
    ) -> SparseResult<Arc<ArrowDecomposition>> {
        let key = Self::cache_key(fingerprint, config, seed);
        self.clock += 1;
        if let Some(entry) = self.entries.get_mut(&key) {
            entry.last_used = self.clock;
            self.metrics.hits.inc();
            return Ok(entry.d.clone());
        }
        self.metrics.misses.inc();
        // Catalog fallback: a previous run (or an evicted entry) may
        // have persisted this decomposition already. A payload that
        // fails to load — corrupt, truncated, or holding the wrong
        // matrix — must never take registration down: the catalog drops
        // the bad record, we fall through to a fresh decomposition, and
        // the re-put heals the chain.
        if let Some(catalog) = &mut self.catalog {
            let failures_before = catalog.stats().load_failures;
            match catalog.get(fingerprint, config, seed) {
                Ok(Some((d, _))) if d.n() == a.rows() => {
                    let d = Arc::new(d);
                    self.metrics.disk_loads.inc();
                    self.insert(key, d.clone());
                    return Ok(d);
                }
                Ok(Some(_)) => self.metrics.load_failures.inc(), // wrong shape
                Ok(None) => {
                    self.metrics
                        .load_failures
                        .add(catalog.stats().load_failures - failures_before);
                }
                Err(_) => self.metrics.load_failures.inc(),
            }
        }
        // True miss: decompose (the only expensive path) and write
        // through so restarts stay warm. Persistence is best-effort: a
        // full disk or vanished directory must not discard the freshly
        // computed decomposition — the cache degrades to memory-only and
        // counts the failure.
        self.metrics.decompositions.inc();
        let sw = Stopwatch::start();
        let d = Arc::new(la_decompose(a, config, &mut RandomForestLa::new(seed))?);
        self.metrics
            .decompose_seconds
            .record_seconds(sw.elapsed_seconds());
        self.write_through(&d, fingerprint, config, seed, version, parent);
        self.insert(key, d.clone());
        Ok(d)
    }

    /// The resident decomposition for a content/config/seed identity,
    /// if any — no disk fallback, no decompose, no hit/miss accounting
    /// (recency is still bumped). This is the *prior* lookup of an
    /// incremental refresh: a miss just means the splice base is gone
    /// (evicted, or never computed here) and the refresh goes cold.
    pub fn peek(
        &mut self,
        fingerprint: u128,
        config: &DecomposeConfig,
        seed: u64,
    ) -> Option<Arc<ArrowDecomposition>> {
        let key = Self::cache_key(fingerprint, config, seed);
        self.clock += 1;
        let clock = self.clock;
        self.entries.get_mut(&key).map(|e| {
            e.last_used = clock;
            e.d.clone()
        })
    }

    /// Adopts a decomposition computed outside the cache (a background
    /// refresh worker decomposing a snapshot off-thread). If the key is
    /// already resident the existing entry wins — the caller's copy is
    /// discarded and the resident [`Arc`] returned, so pointer identity
    /// stays stable for concurrent holders. Otherwise the decomposition
    /// is inserted and written through to the catalog exactly like a
    /// cache-computed one (best-effort, counted on failure), recording
    /// the given lineage: `version` is the revision counter and
    /// `parent` the fingerprint this decomposition was refreshed from
    /// (0 for a root) — an incremental refresh's spliced result thus
    /// persists as a child version of its prior.
    pub fn admit(
        &mut self,
        fingerprint: u128,
        config: &DecomposeConfig,
        seed: u64,
        d: Arc<ArrowDecomposition>,
        version: u64,
        parent: u128,
    ) -> Arc<ArrowDecomposition> {
        let key = Self::cache_key(fingerprint, config, seed);
        self.clock += 1;
        if let Some(entry) = self.entries.get_mut(&key) {
            entry.last_used = self.clock;
            self.metrics.hits.inc();
            return entry.d.clone();
        }
        self.metrics.admitted.inc();
        self.write_through(&d, fingerprint, config, seed, version, parent);
        self.insert(key, d.clone());
        d
    }

    /// Drops the resident entry for an identity, if present — the
    /// deregistration path: the binding that pinned this decomposition
    /// is gone, so the memory can go too. The catalog version (if any)
    /// survives until GC'd or its chain is removed. Returns whether an
    /// entry was dropped.
    pub fn release(&mut self, fingerprint: u128, config: &DecomposeConfig, seed: u64) -> bool {
        let key = Self::cache_key(fingerprint, config, seed);
        let dropped = self.entries.remove(&key).is_some();
        if dropped {
            self.metrics.released.inc();
        }
        dropped
    }

    fn write_through(
        &mut self,
        d: &ArrowDecomposition,
        fingerprint: u128,
        config: &DecomposeConfig,
        seed: u64,
        version: u64,
        parent: u128,
    ) {
        if let Some(catalog) = &mut self.catalog {
            match catalog.put(d, fingerprint, config, seed, version, parent) {
                Ok(_) => self.metrics.spills.inc(),
                Err(_) => self.metrics.spill_failures.inc(),
            }
        }
    }

    fn insert(&mut self, key: u128, d: Arc<ArrowDecomposition>) {
        while self.entries.len() >= self.capacity {
            // Evict the least recently used entry. Decompositions are
            // write-through, so eviction never loses work when a
            // catalog is configured.
            let lru = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(&fp, _)| fp)
                .expect("entries non-empty while over capacity");
            self.entries.remove(&lru);
            self.metrics.evictions.inc();
        }
        self.entries.insert(
            key,
            Entry {
                d,
                last_used: self.clock,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amd_graph::generators::basic;

    fn matrix(n: u32) -> CsrMatrix<f64> {
        basic::cycle(n).to_adjacency()
    }

    fn cfg() -> DecomposeConfig {
        DecomposeConfig::with_width(8)
    }

    #[test]
    fn second_request_is_a_memory_hit() {
        let mut cache = DecompositionCache::new(2, None).unwrap();
        let a = matrix(40);
        let d1 = cache.get_or_decompose(&a, &cfg(), 1).unwrap();
        let d2 = cache.get_or_decompose(&a, &cfg(), 1).unwrap();
        assert!(Arc::ptr_eq(&d1, &d2));
        assert_eq!(cache.stats().decompositions, 1);
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn lru_evicts_oldest_and_capacity_holds() {
        let mut cache = DecompositionCache::new(2, None).unwrap();
        let (a, b, c) = (matrix(30), matrix(40), matrix(50));
        cache.get_or_decompose(&a, &cfg(), 1).unwrap();
        cache.get_or_decompose(&b, &cfg(), 1).unwrap();
        // Touch a so b becomes the LRU victim.
        cache.get_or_decompose(&a, &cfg(), 1).unwrap();
        cache.get_or_decompose(&c, &cfg(), 1).unwrap();
        assert_eq!(cache.len(), 2);
        let key = |m: &CsrMatrix<f64>| DecompositionCache::cache_key(m.fingerprint(), &cfg(), 1);
        assert!(cache.contains(key(&a)));
        assert!(!cache.contains(key(&b)));
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn different_configs_get_distinct_entries() {
        // Same matrix at two widths must produce two decompositions —
        // the cache identity covers the config, not just the content.
        let mut cache = DecompositionCache::new(4, None).unwrap();
        let a = matrix(40);
        let d8 = cache
            .get_or_decompose(&a, &DecomposeConfig::with_width(8), 1)
            .unwrap();
        let d16 = cache
            .get_or_decompose(&a, &DecomposeConfig::with_width(16), 1)
            .unwrap();
        assert_eq!(cache.stats().decompositions, 2);
        assert_eq!(d8.b(), 8);
        assert_eq!(d16.b(), 16);
        // A different seed is likewise its own entry.
        cache
            .get_or_decompose(&a, &DecomposeConfig::with_width(8), 2)
            .unwrap();
        assert_eq!(cache.stats().decompositions, 3);
    }

    #[test]
    fn disk_reload_skips_decompose() {
        let dir = std::env::temp_dir().join(format!("amd-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let a = matrix(60);
        {
            let mut cache = DecompositionCache::new(2, Some(dir.clone())).unwrap();
            cache.get_or_decompose(&a, &cfg(), 1).unwrap();
            assert_eq!(cache.stats().decompositions, 1);
            assert_eq!(cache.stats().spills, 1);
            // The write-through is a catalog root version.
            let catalog = cache.catalog().unwrap();
            assert_eq!(catalog.len(), 1);
            let rec = catalog.record(a.fingerprint(), &cfg(), 1).unwrap();
            assert_eq!(rec.version, 0);
            assert_eq!(rec.parent, 0);
        }
        // Fresh cache, same directory: warm restart, zero LA-Decompose.
        let mut cache = DecompositionCache::new(2, Some(dir.clone())).unwrap();
        let d = cache.get_or_decompose(&a, &cfg(), 1).unwrap();
        assert_eq!(cache.stats().decompositions, 0);
        assert_eq!(cache.stats().disk_loads, 1);
        assert_eq!(d.validate(&a).unwrap(), 0.0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_catalog_payload_falls_back_to_decompose() {
        let dir = std::env::temp_dir().join(format!("amd-cache-corrupt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let a = matrix(50);
        let payload = {
            let mut cache = DecompositionCache::new(2, Some(dir.clone())).unwrap();
            cache.get_or_decompose(&a, &cfg(), 1).unwrap();
            let catalog = cache.catalog().unwrap();
            catalog.payload_path(catalog.record(a.fingerprint(), &cfg(), 1).unwrap())
        };
        // Truncate the payload: the warm path must survive it.
        let bytes = std::fs::read(&payload).unwrap();
        std::fs::write(&payload, &bytes[..20]).unwrap();
        let mut cache = DecompositionCache::new(2, Some(dir.clone())).unwrap();
        let d = cache.get_or_decompose(&a, &cfg(), 1).unwrap();
        assert_eq!(cache.stats().load_failures, 1);
        assert_eq!(cache.stats().decompositions, 1, "fell back to decompose");
        assert_eq!(d.validate(&a).unwrap(), 0.0);
        // The bad version was replaced: a third cache loads it cleanly.
        let mut cache = DecompositionCache::new(2, Some(dir.clone())).unwrap();
        cache.get_or_decompose(&a, &cfg(), 1).unwrap();
        assert_eq!(cache.stats().decompositions, 0);
        assert_eq!(cache.stats().disk_loads, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn eviction_then_rerequest_reloads_from_disk() {
        let dir = std::env::temp_dir().join(format!("amd-cache-evict-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cache = DecompositionCache::new(1, Some(dir.clone())).unwrap();
        let (a, b) = (matrix(30), matrix(44));
        cache.get_or_decompose(&a, &cfg(), 1).unwrap();
        cache.get_or_decompose(&b, &cfg(), 1).unwrap(); // evicts a
        cache.get_or_decompose(&a, &cfg(), 1).unwrap(); // disk, not decompose
        assert_eq!(cache.stats().decompositions, 2);
        assert_eq!(cache.stats().disk_loads, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn admit_records_lineage_in_the_catalog() {
        let dir = std::env::temp_dir().join(format!("amd-cache-lineage-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cache = DecompositionCache::new(4, Some(dir.clone())).unwrap();
        let a = matrix(30);
        let b = matrix(32);
        let da = cache.get_or_decompose(&a, &cfg(), 1).unwrap();
        // Simulate a refresh: b's decomposition admitted as version 1
        // with a as its parent.
        let db = Arc::new(arrow_core::decompose_snapshot(&b, &cfg(), 1).unwrap());
        cache.admit(b.fingerprint(), &cfg(), 1, db, 1, a.fingerprint());
        assert_eq!(cache.stats().admitted, 1);
        let catalog = cache.catalog().unwrap();
        let rec = catalog.record(b.fingerprint(), &cfg(), 1).unwrap();
        assert_eq!(rec.version, 1);
        assert_eq!(rec.parent, a.fingerprint());
        // Admitting a resident identity returns the resident Arc.
        let da2 = cache.admit(a.fingerprint(), &cfg(), 1, da.clone(), 7, 0);
        assert!(Arc::ptr_eq(&da, &da2));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn release_drops_memory_but_not_the_catalog() {
        let dir = std::env::temp_dir().join(format!("amd-cache-release-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cache = DecompositionCache::new(4, Some(dir.clone())).unwrap();
        let a = matrix(30);
        cache.get_or_decompose(&a, &cfg(), 1).unwrap();
        assert!(cache.release(a.fingerprint(), &cfg(), 1));
        assert!(!cache.release(a.fingerprint(), &cfg(), 1), "already gone");
        assert_eq!(cache.stats().released, 1);
        assert!(cache.is_empty());
        // The catalog copy still answers the next request.
        cache.get_or_decompose(&a, &cfg(), 1).unwrap();
        assert_eq!(cache.stats().disk_loads, 1);
        assert_eq!(cache.stats().decompositions, 1, "no second decompose");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
