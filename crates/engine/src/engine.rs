//! The serving engine: registration, query batching, and execution.
//!
//! A matrix is **registered** once: fingerprinted, decomposed through
//! the [`DecompositionCache`], planned
//! by the [`planner`](crate::planner), and bound to the winning
//! algorithm. **Queries** — single-column multiply requests against a
//! registered matrix — are then submitted to a queue; [`Engine::flush`]
//! coalesces all compatible pending queries (same matrix, iteration
//! count, and σ) into one multi-RHS [`DenseMatrix`] run.
//!
//! Batching is exact, not approximate: every distributed algorithm here
//! computes output columns independently (the per-column accumulation
//! order does not depend on the operand width), so a batched answer is
//! bit-identical to the per-query answer while paying the per-run fixed
//! costs — rank spin-up, per-message latency α, tile traversals — once
//! per batch instead of once per query.

use crate::attribution::{AttributionMetrics, QueryCost, RunAttribution};
use crate::cache::{CacheStats, DecompositionCache};
use crate::planner::{plan, Plan, PlannerConfig, Prediction};
use amd_chaos::failpoint;
use amd_comm::{CostModel, MachineExec};
use amd_obs::{Counter, Gauge, Histogram, SpanId, Stopwatch, Telemetry};
use amd_sparse::{CsrMatrix, DenseMatrix, Dtype, SparseError, SparseResult};
use amd_spmm::traits::Sigma;
use amd_spmm::{DeltaSpmm, DistSpmm, ServingCostGuard, DEFAULT_MAX_SLICE_SLOWDOWN};
use arrow_core::incremental::{
    decompose_snapshot_incremental, FallbackReason, IncrementalPolicy, RefreshOutcome,
};
use arrow_core::{ArrowDecomposition, DecomposeConfig};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::Arc;

/// Handle to a registered matrix: its content fingerprint folded with
/// the caller-supplied registration salt (zero for plain
/// [`Engine::register`], so the id *is* the fingerprint there). Distinct
/// salts keep bindings of identical content separate — a multi-tenant
/// holder can give every tenant its own binding (own overlay, own
/// version lineage) while the decomposition cache still shares the
/// expensive LA-Decompose by content.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MatrixId(pub u128);

/// Folds a registration salt into a content fingerprint (FNV-1a over the
/// salt bytes, seeded by the fingerprint). Salt zero is the identity.
fn salted_id(fingerprint: u128, salt: u128) -> u128 {
    if salt == 0 {
        return fingerprint;
    }
    const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;
    let mut h = fingerprint;
    for byte in salt.to_le_bytes() {
        h ^= byte as u128;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Handle to a submitted query; responses carry it back.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QueryId(pub u64);

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Arrow width used when decomposing registered matrices.
    pub arrow_width: u32,
    /// Seed for the decomposition's random-forest arrangement.
    pub decompose_seed: u64,
    /// Decompositions held in memory (LRU beyond this).
    pub cache_capacity: usize,
    /// Write-through spill directory; `None` disables persistence.
    pub spill_dir: Option<PathBuf>,
    /// Cost model for the planner.
    pub cost: CostModel,
    /// Rank budget for baseline candidates.
    pub target_ranks: u32,
    /// Largest number of queries coalesced into one run.
    pub max_batch: usize,
    /// When a refresh may splice the prior decomposition instead of
    /// re-running LA-Decompose from scratch (see
    /// [`arrow_core::incremental`]).
    pub incremental: IncrementalPolicy,
    /// Serving precision: every candidate algorithm is planned and run
    /// at this dtype. `f32` halves the bytes the cost model charges per
    /// value moved and runs local tile multiplies at emulated f32
    /// precision (f64 accumulation); `f64` is the exact default.
    pub dtype: Dtype,
    /// Tolerated slowdown of a spliced decomposition's predicted serving
    /// time over its binding's last cold baseline before
    /// [`refresh_localized`](Engine::refresh_localized) re-compacts
    /// (rebuilds cold) instead of serving the splice. See
    /// [`ServingCostGuard`].
    pub max_splice_slowdown: f64,
    /// Transient multiply errors (the `engine.multiply.transient` chaos
    /// failpoint — never real planner/kernel errors) retried in place
    /// before the error surfaces to the caller. Each retry counts into
    /// [`EngineStats::multiply_retries`].
    pub max_multiply_retries: u32,
    /// How bound algorithms' machines obtain rank threads. The default
    /// acquires cached slots from the process-global `amd-exec` pool;
    /// [`MachineExec::SpawnPerRun`] restores thread-per-run spawning
    /// (the determinism comparator). Results are bit-identical either
    /// way.
    pub exec: MachineExec,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            arrow_width: 64,
            decompose_seed: 42,
            cache_capacity: 8,
            spill_dir: None,
            cost: CostModel::default(),
            target_ranks: 16,
            max_batch: 64,
            incremental: IncrementalPolicy::default(),
            dtype: Dtype::default(),
            max_splice_slowdown: DEFAULT_MAX_SLICE_SLOWDOWN,
            max_multiply_retries: 2,
            exec: MachineExec::default(),
        }
    }
}

/// A single multiply request: `y = σ(A·…σ(A·x))`, `iters` times.
#[derive(Debug, Clone)]
pub struct MultiplyQuery {
    /// Which registered matrix to multiply by.
    pub matrix: MatrixId,
    /// The operand column (`n` entries).
    pub x: Vec<f64>,
    /// Number of multiply iterations.
    pub iters: u32,
    /// Optional element-wise activation between iterations.
    pub sigma: Option<Sigma>,
}

/// The answer to one query.
#[derive(Debug, Clone)]
pub struct QueryResponse {
    /// The query this answers.
    pub id: QueryId,
    /// Result column (`n` entries).
    pub y: Vec<f64>,
    /// How many queries shared the run that produced this answer.
    pub batch_size: usize,
    /// Attributed cost of the run that answered this query (shared by
    /// the whole batch — divide by `batch_size` for a per-query
    /// share). `None` when the engine's telemetry is disabled.
    pub cost: Option<QueryCost>,
}

/// Serving counters.
///
/// A point-in-time view folded from the engine's registry counters
/// (`engine.*` in a metrics snapshot) — see [`Engine::stats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Queries answered.
    pub queries: u64,
    /// Distributed runs launched.
    pub runs: u64,
    /// Largest batch coalesced so far.
    pub largest_batch: usize,
    /// Runs answered through the delta-corrected path (a non-empty
    /// overlay was pending on the queried matrix).
    pub corrected_runs: u64,
    /// Streaming refreshes absorbed: an updated matrix replaced its
    /// predecessor via [`Engine::refresh`].
    pub refreshes: u64,
    /// Bindings dropped via [`Engine::deregister`] (overlay and cache
    /// reference released with them).
    pub deregistered: u64,
    /// Rank-agreement checks where the accounted volumes, substituted
    /// back into the cost model, would have ranked a different
    /// algorithm first (see [`attribution`](crate::attribution)).
    pub mispredictions: u64,
    /// Localized refreshes where the splice guard predicted the spliced
    /// decomposition would serve slower than `max_splice_slowdown ×` the
    /// cold baseline, so the engine re-compacted (rebuilt cold) instead.
    pub recompactions: u64,
    /// Transient multiply errors absorbed by the in-place retry loop
    /// (injected by the `engine.multiply.transient` failpoint; a real
    /// serving run never errors transiently).
    pub multiply_retries: u64,
}

impl EngineConfig {
    /// Routes every bound algorithm's machine ranks through `exec`
    /// (replacing the default shared-pool mode).
    pub fn with_exec(mut self, exec: MachineExec) -> Self {
        self.exec = exec;
        self
    }
}

struct BoundMatrix {
    n: u32,
    /// Content fingerprint of the registered matrix (unsalted) — the
    /// key under which the cache holds this binding's decomposition.
    fingerprint: u128,
    algo: Box<dyn DistSpmm + Send + Sync>,
    chosen: String,
    predictions: Vec<Prediction>,
    /// Streaming revision of this binding (0 at registration, carried
    /// forward +1 by [`Engine::refresh`]).
    version: u64,
    /// Pending sparse correction `ΔA`; runs go through
    /// [`DeltaSpmm`] while this is non-empty.
    overlay: Option<CsrMatrix<f64>>,
    /// Registration salt of this binding (see [`MatrixId`]); a refresh
    /// keeps its successor under the same salt.
    salt: u128,
    /// Mean active-prefix fraction of the bound decomposition's levels
    /// (Σ activeᵢ / (levels · n)) — the share of permuted rows the fused
    /// kernel actually touches; carried into trace events.
    active_prefix: f64,
    /// Predicted per-iteration arrow serving seconds recorded at this
    /// binding's last *cold* decomposition — the splice guard's
    /// baseline, carried forward across spliced refreshes.
    splice_baseline: f64,
}

/// The immutable half of a refresh, produced by
/// [`Engine::prepare_refresh`]: everything a worker needs to decompose
/// the merged snapshot *off-thread* — while the engine keeps serving the
/// old binding — plus the identity needed to
/// [`commit`](Engine::commit_refresh) the swap afterwards. The ticket
/// borrows nothing, so it can move to another thread with the snapshot.
#[derive(Debug, Clone)]
pub struct RefreshTicket {
    /// The binding to replace.
    pub old: MatrixId,
    /// Content fingerprint of the merged snapshot.
    pub fingerprint: u128,
    /// Decomposition parameters the engine would use (arrow width etc.).
    pub config: DecomposeConfig,
    /// Arrangement seed the engine would use.
    pub seed: u64,
    /// The old binding's decomposition, when it was still resident in
    /// the cache at [`prepare_refresh_localized`](Engine::prepare_refresh_localized)
    /// time — the splice base of an incremental re-decomposition.
    pub prior: Option<Arc<ArrowDecomposition>>,
    /// Every vertex incident to a difference between the old binding's
    /// content and the merged snapshot; `None` when unknown (forces a
    /// cold decompose).
    pub touched: Option<Vec<u32>>,
    /// The engine's incremental-refresh policy, carried along so a
    /// worker thread decides incremental-vs-cold exactly as the engine
    /// would.
    pub incremental: IncrementalPolicy,
}

/// Registry handles behind [`EngineStats`] plus the engine's latency
/// histograms — the counters are the single source of truth; the stats
/// struct is a fold over them.
struct EngineMetrics {
    queries: Counter,
    runs: Counter,
    corrected_runs: Counter,
    refreshes: Counter,
    deregistered: Counter,
    recompactions: Counter,
    multiply_retries: Counter,
    largest_batch: Gauge,
    batch_size: Histogram,
    multiply_seconds: Histogram,
    refresh_seconds: Histogram,
    /// Serving precision in bytes per value (4 = f32, 8 = f64) — a
    /// config echo so a metrics snapshot identifies the serving mode.
    dtype_bytes: Gauge,
    /// Mean active-prefix fraction of the most recently planned
    /// binding, in permille (gauges are integers).
    active_prefix_permille: Gauge,
    /// The cost model's per-byte β in femtoseconds (β · 10¹⁵) — a
    /// config echo so `report` can compare the model against the
    /// measured effective per-byte cost.
    cost_beta_femtos: Gauge,
    /// Cost-attribution handles (`engine.plan.*`, `engine.algo.*`).
    attribution: AttributionMetrics,
}

impl EngineMetrics {
    fn new(telemetry: &Telemetry) -> Self {
        let registry = &telemetry.registry;
        Self {
            queries: registry.counter("engine.queries"),
            runs: registry.counter("engine.runs"),
            corrected_runs: registry.counter("engine.corrected_runs"),
            refreshes: registry.counter("engine.refreshes"),
            deregistered: registry.counter("engine.deregistered"),
            recompactions: registry.counter("engine.recompactions"),
            multiply_retries: registry.counter("engine.multiply_retries"),
            largest_batch: registry.gauge("engine.largest_batch"),
            batch_size: registry.histogram("engine.batch_size"),
            multiply_seconds: registry.histogram("multiply.seconds"),
            refresh_seconds: registry.histogram("refresh.seconds"),
            dtype_bytes: registry.gauge("engine.dtype_bytes"),
            active_prefix_permille: registry.gauge("engine.active_prefix_permille"),
            cost_beta_femtos: registry.gauge("engine.cost.beta_femtos"),
            attribution: AttributionMetrics::new(registry),
        }
    }
}

struct Pending {
    id: QueryId,
    query: MultiplyQuery,
}

/// A batched SpMM serving engine with a decomposition cache and a
/// cost-model planner. See the [module docs](self).
pub struct Engine {
    config: EngineConfig,
    cache: DecompositionCache,
    bound: HashMap<u128, BoundMatrix>,
    pending: Vec<Pending>,
    next_query: u64,
    telemetry: Telemetry,
    metrics: EngineMetrics,
}

impl Engine {
    /// Builds an engine; opens (creating if needed) the persistence
    /// catalog when a spill directory is configured, migrating any
    /// pre-catalog loose spill files it finds there. Telemetry is
    /// enabled with a fresh registry and tracer — use
    /// [`with_telemetry`](Self::with_telemetry) to share or disable it.
    pub fn new(config: EngineConfig) -> SparseResult<Self> {
        Self::with_telemetry(config, Telemetry::new())
    }

    /// [`new`](Self::new) observing into caller-supplied telemetry: the
    /// engine's counters and histograms (`engine.*`, `cache.*`,
    /// `catalog.*`, `decompose.seconds`, `multiply.seconds`,
    /// `refresh.seconds`) register there, and request-path trace events
    /// go to its tracer. Pass [`Telemetry::disabled`] for a zero-cost
    /// uninstrumented engine.
    pub fn with_telemetry(config: EngineConfig, telemetry: Telemetry) -> SparseResult<Self> {
        let mut cache = DecompositionCache::with_registry(
            config.cache_capacity,
            config.spill_dir.clone(),
            &telemetry.registry,
        )?;
        // One-shot legacy migration: spill dirs written before the
        // catalog existed keep their warm-restart value.
        cache.import_legacy(
            &DecomposeConfig::with_width(config.arrow_width),
            config.decompose_seed,
        )?;
        let metrics = EngineMetrics::new(&telemetry);
        Ok(Self {
            config,
            cache,
            bound: HashMap::new(),
            pending: Vec::new(),
            next_query: 0,
            telemetry,
            metrics,
        })
    }

    /// The engine's telemetry: metrics registry plus trace ring. Clone
    /// it (handles are `Arc`-shared) to snapshot metrics or read traces
    /// while the engine keeps serving.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Registers `a`: fingerprint, decompose (through the cache), plan,
    /// and bind the cheapest algorithm. Registering the same content
    /// twice is a no-op returning the same id.
    pub fn register(&mut self, a: &CsrMatrix<f64>) -> SparseResult<MatrixId> {
        self.register_versioned(a, 0, 0, None, 0, None)
    }

    /// [`register`](Self::register) under a caller-chosen salt: identical
    /// content registered under distinct salts gets distinct bindings
    /// (own overlay, own version lineage, own refresh history) while the
    /// decomposition cache still dedups the LA-Decompose by content. A
    /// multi-tenant holder passes its tenant id here. Salt zero is plain
    /// registration.
    pub fn register_salted(&mut self, a: &CsrMatrix<f64>, salt: u128) -> SparseResult<MatrixId> {
        self.register_versioned(a, 0, salt, None, 0, None)
    }

    /// `parent` is the content fingerprint this registration was
    /// refreshed from (0 for a cold registration) — recorded in the
    /// persistence catalog so version chains track delta lineage.
    /// `carried_baseline` is the splice guard's cold-serving baseline to
    /// carry forward from a refreshed predecessor; `None` treats this
    /// binding's own decomposition as cold and records its prediction.
    fn register_versioned(
        &mut self,
        a: &CsrMatrix<f64>,
        version: u64,
        salt: u128,
        precomputed: Option<Arc<ArrowDecomposition>>,
        parent: u128,
        carried_baseline: Option<f64>,
    ) -> SparseResult<MatrixId> {
        let fingerprint = a.fingerprint();
        let id = salted_id(fingerprint, salt);
        if self.bound.contains_key(&id) {
            return Ok(MatrixId(id));
        }
        if a.rows() != a.cols() {
            return Err(SparseError::ShapeMismatch {
                left: (a.rows(), a.cols()),
                right: (a.cols(), a.rows()),
            });
        }
        let decompose_config = DecomposeConfig::with_width(self.config.arrow_width);
        let cache_before = self.cache.stats();
        let d = match precomputed {
            // A worker already decomposed this snapshot off-thread; the
            // cache adopts it (write-through) instead of re-deriving it.
            Some(d) => {
                if d.n() != a.rows() || d.b() != self.config.arrow_width {
                    return Err(SparseError::InvalidCsr(format!(
                        "precomputed decomposition (n = {}, b = {}) does not fit \
                         matrix (n = {}) at width {}",
                        d.n(),
                        d.b(),
                        a.rows(),
                        self.config.arrow_width
                    )));
                }
                self.cache.admit(
                    fingerprint,
                    &decompose_config,
                    self.config.decompose_seed,
                    d,
                    version,
                    parent,
                )
            }
            None => self.cache.get_or_decompose_lineage(
                a,
                fingerprint,
                &decompose_config,
                self.config.decompose_seed,
                version,
                parent,
            )?,
        };
        let planner_config = PlannerConfig {
            cost: self.config.cost,
            target_ranks: self.config.target_ranks,
            k_hint: (self.config.max_batch as u32).clamp(1, 64),
            dtype: self.config.dtype,
            ..PlannerConfig::default()
        };
        let Plan {
            mut algo,
            chosen,
            predictions,
        } = plan(a, &d, &planner_config)?;
        algo.set_exec(self.config.exec.clone());
        let active_prefix = d.active_prefix_fraction();
        self.metrics
            .dtype_bytes
            .set(self.config.dtype.bytes() as u64);
        self.metrics
            .cost_beta_femtos
            .set((self.config.cost.beta * 1e15).round().max(0.0) as u64);
        self.metrics
            .active_prefix_permille
            .set((active_prefix * 1000.0).round() as u64);
        let splice_baseline = match carried_baseline {
            Some(b) => b,
            None => self.splice_guard().predicted_seconds(&d)?,
        };
        if self.telemetry.tracer.is_enabled() {
            let cache_after = self.cache.stats();
            let source = if cache_after.decompositions > cache_before.decompositions {
                "decompose"
            } else if cache_after.disk_loads > cache_before.disk_loads {
                "disk"
            } else if cache_after.admitted > cache_before.admitted {
                "admitted"
            } else {
                "hit"
            };
            self.telemetry.tracer.event(
                "plan",
                SpanId::NONE,
                None,
                format!(
                    "algo={} predicted_seconds={:.3e} cache={source} dtype={} \
                     active_prefix={:.3}",
                    chosen, predictions[0].seconds, self.config.dtype, active_prefix
                ),
            );
        }
        self.bound.insert(
            id,
            BoundMatrix {
                n: a.rows(),
                fingerprint,
                algo,
                chosen,
                predictions,
                version,
                overlay: None,
                salt,
                active_prefix,
                splice_baseline,
            },
        );
        Ok(MatrixId(id))
    }

    /// The engine's splice guard, configured from its cost model, batch
    /// width, and slowdown budget. Stateless per call — per-binding
    /// baselines live on [`BoundMatrix`].
    fn splice_guard(&self) -> ServingCostGuard {
        ServingCostGuard::new(
            self.config.cost,
            (self.config.max_batch as u32).clamp(1, 64),
            self.config.max_splice_slowdown,
        )
    }

    /// Replaces the binding of `old` with a re-decomposed, re-planned
    /// binding of `merged` (the compacted `A₀ + ΔA`), carrying the
    /// streaming version forward. This is the engine half of a staleness
    /// refresh: the decomposition goes through the cache (write-through
    /// under the merged matrix's new fingerprint), the planner re-ranks
    /// all four algorithms against the merged structure, and any pending
    /// overlay on the old binding is discarded along with it.
    ///
    /// Queries already queued against `old` are answered by the *new*
    /// binding at the next flush — their [`MatrixId`] is remapped, which
    /// is sound because a refresh changes the representation, not the
    /// served operator (`A₀ + ΔA` before, merged `A₀` after).
    ///
    /// Equivalent to [`prepare_refresh`](Self::prepare_refresh) followed
    /// immediately by [`commit_refresh`](Self::commit_refresh) with no
    /// precomputed decomposition — the synchronous path. A double-buffered
    /// holder splits the two around a background decompose instead.
    pub fn refresh(&mut self, old: MatrixId, merged: &CsrMatrix<f64>) -> SparseResult<MatrixId> {
        let ticket = self.prepare_refresh(old, merged)?;
        self.commit_refresh(&ticket, merged, None)
    }

    /// The read-only first half of a refresh: validates that `old` is
    /// bound and `merged` has its shape, and returns the
    /// [`RefreshTicket`] describing the decompose work. Does **not**
    /// mutate the engine — the old binding (and its delta overlay) keeps
    /// serving until [`commit_refresh`](Self::commit_refresh).
    pub fn prepare_refresh(
        &self,
        old: MatrixId,
        merged: &CsrMatrix<f64>,
    ) -> SparseResult<RefreshTicket> {
        let old_bound = self.bound.get(&old.0).ok_or_else(|| {
            SparseError::InvalidCsr(format!("matrix {:032x} is not registered", old.0))
        })?;
        if merged.rows() != old_bound.n || merged.cols() != old_bound.n {
            return Err(SparseError::ShapeMismatch {
                left: (old_bound.n, old_bound.n),
                right: (merged.rows(), merged.cols()),
            });
        }
        Ok(RefreshTicket {
            old,
            fingerprint: merged.fingerprint(),
            config: DecomposeConfig::with_width(self.config.arrow_width),
            seed: self.config.decompose_seed,
            prior: None,
            touched: None,
            incremental: self.config.incremental,
        })
    }

    /// [`prepare_refresh`](Self::prepare_refresh) with the localization
    /// inputs of an incremental re-decomposition: the ticket additionally
    /// carries the old binding's decomposition (when still resident in
    /// the cache) and the caller-supplied touched set, so whoever runs
    /// the decompose — a background worker or
    /// [`refresh_localized`](Self::refresh_localized) — can splice
    /// instead of rebuilding.
    ///
    /// `touched` must cover **every** vertex incident to a difference
    /// between the old binding's content and `merged`; an incomplete set
    /// makes the spliced decomposition serve the wrong operator. Holders
    /// that track their delta in a
    /// [`DeltaBuilder`](amd_sparse::DeltaBuilder) get it from
    /// `touched_vertices()`.
    pub fn prepare_refresh_localized(
        &mut self,
        old: MatrixId,
        merged: &CsrMatrix<f64>,
        touched: Vec<u32>,
    ) -> SparseResult<RefreshTicket> {
        let mut ticket = self.prepare_refresh(old, merged)?;
        if self.config.incremental.enabled {
            // Fast path: the merged content itself may already be
            // decomposed (an update stream returning a matrix to a
            // previously served state, or another tenant ahead of this
            // one). Its decomposition with an empty touched set is an
            // exact prior — the decompose step degenerates to a reuse.
            if let Some(d) = self.cache.peek(
                ticket.fingerprint,
                &ticket.config,
                self.config.decompose_seed,
            ) {
                ticket.prior = Some(d);
                ticket.touched = Some(Vec::new());
                return Ok(ticket);
            }
            let prior_fp = self
                .bound
                .get(&old.0)
                .map(|b| b.fingerprint)
                .expect("prepare_refresh validated the binding");
            ticket.prior = self
                .cache
                .peek(prior_fp, &ticket.config, self.config.decompose_seed);
        }
        ticket.touched = Some(touched);
        Ok(ticket)
    }

    /// The synchronous incremental refresh:
    /// [`prepare_refresh_localized`](Self::prepare_refresh_localized),
    /// decompose (splicing the prior where the policy permits, cold
    /// otherwise), then [`commit_refresh`](Self::commit_refresh).
    /// Returns the new binding and what the decompose actually did.
    ///
    /// **Splice guard**: after a spliced decompose, the predicted arrow
    /// serving cost of the spliced level structure is checked against
    /// the binding's last cold baseline. When it exceeds
    /// `max_splice_slowdown ×` the baseline — the splice stack has grown
    /// deep enough that serving it beats the point of splicing — the
    /// engine re-compacts: the splice is discarded, the snapshot is
    /// decomposed cold, and the outcome reports a non-incremental
    /// rebuild. Counted in [`EngineStats::recompactions`].
    pub fn refresh_localized(
        &mut self,
        old: MatrixId,
        merged: &CsrMatrix<f64>,
        touched: &[u32],
    ) -> SparseResult<(MatrixId, RefreshOutcome)> {
        let ticket = self.prepare_refresh_localized(old, merged, touched.to_vec())?;
        let (mut d, mut outcome) = decompose_snapshot_incremental(
            merged,
            &ticket.config,
            ticket.seed,
            ticket.prior.as_deref(),
            ticket.touched.as_deref(),
            &ticket.incremental,
        )?;
        if outcome.incremental {
            let mut guard = self.splice_guard();
            if let Some(b) = self.bound.get(&old.0).map(|b| b.splice_baseline) {
                guard = guard.with_baseline(b);
            }
            let verdict = guard.splice_verdict(&d)?;
            if verdict.recompact {
                let (cold, cold_outcome) = decompose_snapshot_incremental(
                    merged,
                    &ticket.config,
                    ticket.seed,
                    None,
                    None,
                    &ticket.incremental,
                )?;
                d = cold;
                outcome = cold_outcome;
                outcome.fallback = Some(FallbackReason::CostGuard);
                self.metrics.recompactions.inc();
                if self.telemetry.tracer.is_enabled() {
                    self.telemetry.tracer.event(
                        "splice_guard",
                        SpanId::NONE,
                        None,
                        format!(
                            "recompact=true predicted_seconds={:.3e} \
                             baseline_seconds={:.3e} max_slowdown={:.2}",
                            verdict.predicted_seconds,
                            verdict.baseline_seconds,
                            self.config.max_splice_slowdown
                        ),
                    );
                }
            }
        }
        // A cold rebuild (policy fallback or guard re-compaction) resets
        // the binding's splice baseline to its own prediction.
        let fresh_baseline = if outcome.incremental {
            None
        } else {
            Some(self.splice_guard().predicted_seconds(&d)?)
        };
        let id = self.commit_refresh(&ticket, merged, Some(Arc::new(d)))?;
        if let (Some(fresh), Some(bound)) = (fresh_baseline, self.bound.get_mut(&id.0)) {
            bound.splice_baseline = fresh;
        }
        Ok((id, outcome))
    }

    /// The second half of a refresh: swaps the binding of `ticket.old`
    /// to a fresh binding of `merged`, using `decomposition` when a
    /// worker already computed it from the snapshot (admitted into the
    /// cache, write-through) or decomposing through the cache otherwise.
    /// Pending queries are remapped and the version lineage carried
    /// forward exactly as in [`refresh`](Self::refresh); on error the old
    /// binding keeps serving.
    pub fn commit_refresh(
        &mut self,
        ticket: &RefreshTicket,
        merged: &CsrMatrix<f64>,
        decomposition: Option<Arc<ArrowDecomposition>>,
    ) -> SparseResult<MatrixId> {
        let sw = Stopwatch::start();
        let old = ticket.old;
        let old_bound = self.bound.remove(&old.0).ok_or_else(|| {
            SparseError::InvalidCsr(format!("matrix {:032x} is not registered", old.0))
        })?;
        if merged.rows() != old_bound.n || merged.cols() != old_bound.n {
            let n = old_bound.n;
            self.bound.insert(old.0, old_bound);
            return Err(SparseError::ShapeMismatch {
                left: (n, n),
                right: (merged.rows(), merged.cols()),
            });
        }
        let version = old_bound.version + 1;
        let salt = old_bound.salt;
        let parent = old_bound.fingerprint;
        // Carry the splice guard's cold baseline across the refresh when
        // the ticket carries a splice prior — a spliced successor is
        // judged against its lineage's last cold build, not against
        // itself. A priorless refresh decomposes cold, so the new
        // binding records its own baseline. (refresh_localized resets
        // the carried value after commit when the policy fell back to a
        // cold decompose anyway.)
        let carried = ticket.prior.is_some().then_some(old_bound.splice_baseline);
        let new_id =
            match self.register_versioned(merged, version, salt, decomposition, parent, carried) {
                Ok(id) => id,
                Err(e) => {
                    // Leave the engine serving the old binding on failure.
                    self.bound.insert(old.0, old_bound);
                    return Err(e);
                }
            };
        // The merged content may already be bound (an update stream that
        // returned the matrix to a previously served state): registration
        // then reuses the existing binding, whose version must still move
        // forward to cover this refresh's lineage.
        if let Some(bound) = self.bound.get_mut(&new_id.0) {
            bound.version = bound.version.max(version);
        }
        if new_id.0 != old.0 {
            for p in self.pending.iter_mut() {
                if p.query.matrix == old {
                    p.query.matrix = new_id;
                }
            }
        }
        self.metrics.refreshes.inc();
        self.metrics
            .refresh_seconds
            .record_seconds(sw.elapsed_seconds());
        Ok(new_id)
    }

    /// Drops the binding of `id`: its overlay goes with it, its cache
    /// reference is released (the resident decomposition is dropped
    /// unless another binding of the same content still pins it — the
    /// catalog version, if any, stays until garbage-collected), and the
    /// drop is counted in [`EngineStats::deregistered`].
    ///
    /// The **pending-query ownership check**: deregistration refuses
    /// while queries against `id` sit in the queue — answering them
    /// later would need the binding this call destroys. Flush (or the
    /// owner's per-tenant flush) first.
    pub fn deregister(&mut self, id: MatrixId) -> SparseResult<()> {
        let bound = self.bound.get(&id.0).ok_or_else(|| {
            SparseError::InvalidCsr(format!("matrix {:032x} is not registered", id.0))
        })?;
        let pending = self.pending_for(id);
        if pending > 0 {
            return Err(SparseError::InvalidCsr(format!(
                "matrix {:032x} still owns {pending} pending quer{}; flush before deregistering",
                id.0,
                if pending == 1 { "y" } else { "ies" }
            )));
        }
        let fingerprint = bound.fingerprint;
        self.bound.remove(&id.0);
        // Release the cached decomposition only when no other binding
        // (another tenant's salted registration of identical content)
        // still serves from it.
        let shared = self.bound.values().any(|b| b.fingerprint == fingerprint);
        if !shared {
            self.cache.release(
                fingerprint,
                &DecomposeConfig::with_width(self.config.arrow_width),
                self.config.decompose_seed,
            );
        }
        self.metrics.deregistered.inc();
        Ok(())
    }

    /// Queries queued against one binding.
    pub fn pending_for(&self, id: MatrixId) -> usize {
        self.pending.iter().filter(|p| p.query.matrix == id).count()
    }

    /// Content fingerprints of every live binding — the "still
    /// referenced" set a catalog sweep must not collect.
    pub fn bound_fingerprints(&self) -> Vec<u128> {
        self.bound.values().map(|b| b.fingerprint).collect()
    }

    /// Registration salt of a binding (the tenant id of a salted
    /// registration; 0 for plain ones).
    pub fn binding_salt(&self, id: MatrixId) -> Option<u128> {
        self.bound.get(&id.0).map(|b| b.salt)
    }

    /// Content fingerprint of a binding (the head of its catalog
    /// version chain).
    pub fn binding_fingerprint(&self, id: MatrixId) -> Option<u128> {
        self.bound.get(&id.0).map(|b| b.fingerprint)
    }

    /// The persistence catalog behind the decomposition cache, when the
    /// engine was configured with a spill directory (GC, chain removal,
    /// restore tooling).
    pub fn catalog(&self) -> Option<&arrow_core::Catalog> {
        self.cache.catalog()
    }

    /// Mutable access to the persistence catalog.
    pub fn catalog_mut(&mut self) -> Option<&mut arrow_core::Catalog> {
        self.cache.catalog_mut()
    }

    /// Sets (or replaces) the sparse correction `ΔA` pending on `id`.
    /// While the overlay is non-empty, every run against `id` goes
    /// through the delta-corrected path, serving `A₀ + ΔA` without
    /// re-decomposing. Pass an empty matrix to clear it (or use
    /// [`clear_delta`](Self::clear_delta)).
    pub fn set_delta(&mut self, id: MatrixId, delta: CsrMatrix<f64>) -> SparseResult<()> {
        let bound = self.bound.get_mut(&id.0).ok_or_else(|| {
            SparseError::InvalidCsr(format!("matrix {:032x} is not registered", id.0))
        })?;
        if delta.rows() != bound.n || delta.cols() != bound.n {
            return Err(SparseError::ShapeMismatch {
                left: (bound.n, bound.n),
                right: (delta.rows(), delta.cols()),
            });
        }
        bound.overlay = if delta.nnz() == 0 { None } else { Some(delta) };
        Ok(())
    }

    /// Drops any pending correction on `id` (no-op if there is none).
    pub fn clear_delta(&mut self, id: MatrixId) {
        if let Some(bound) = self.bound.get_mut(&id.0) {
            bound.overlay = None;
        }
    }

    /// Stored entries of the correction pending on `id` (0 if none).
    pub fn delta_nnz(&self, id: MatrixId) -> usize {
        self.bound
            .get(&id.0)
            .and_then(|b| b.overlay.as_ref())
            .map_or(0, CsrMatrix::nnz)
    }

    /// Streaming revision of `id`: 0 for a cold registration, incremented
    /// by every [`refresh`](Self::refresh) in the binding's lineage.
    pub fn matrix_version(&self, id: MatrixId) -> Option<u64> {
        self.bound.get(&id.0).map(|b| b.version)
    }

    /// The algorithm the planner bound for `id`.
    pub fn chosen_algorithm(&self, id: MatrixId) -> Option<&str> {
        self.bound.get(&id.0).map(|b| b.chosen.as_str())
    }

    /// The planner's full ranking for `id` (cheapest first).
    pub fn plan_report(&self, id: MatrixId) -> Option<&[Prediction]> {
        self.bound.get(&id.0).map(|b| b.predictions.as_slice())
    }

    /// Predicted per-iteration seconds of serving `id` through the
    /// delta-corrected path with the given pending `delta`, under the
    /// engine's cost model and oversubscription rule — i.e. what the
    /// *current* binding costs while the overlay is live, via
    /// [`DeltaSpmm::predict_volume`]. Compare against
    /// [`plan_report`](Self::plan_report)`[0].seconds` (what a rebind
    /// would restore) to decide whether a delta-heavy stream should
    /// rebind early instead of waiting for its staleness budget.
    pub fn predict_corrected_seconds(
        &self,
        id: MatrixId,
        delta: &CsrMatrix<f64>,
    ) -> SparseResult<f64> {
        let bound = self.bound.get(&id.0).ok_or_else(|| {
            SparseError::InvalidCsr(format!("matrix {:032x} is not registered", id.0))
        })?;
        let k = (self.config.max_batch as u32).clamp(1, 64);
        let corrected = DeltaSpmm::new(&*bound.algo, delta)?.with_cost(self.config.cost);
        let oversubscription =
            (bound.algo.ranks() as f64 / self.config.target_ranks.max(1) as f64).max(1.0);
        Ok(corrected
            .predict_volume(k)
            .predicted_seconds(&self.config.cost)
            * oversubscription)
    }

    /// Cache counters (the decompose-count probe lives here), folded
    /// from the registry.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Serving counters, folded from the registry.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            queries: self.metrics.queries.get(),
            runs: self.metrics.runs.get(),
            largest_batch: self.metrics.largest_batch.get() as usize,
            corrected_runs: self.metrics.corrected_runs.get(),
            refreshes: self.metrics.refreshes.get(),
            deregistered: self.metrics.deregistered.get(),
            mispredictions: self.metrics.attribution.mispredictions(),
            recompactions: self.metrics.recompactions.get(),
            multiply_retries: self.metrics.multiply_retries.get(),
        }
    }

    /// Queries waiting for the next [`flush`](Engine::flush).
    pub fn pending_queries(&self) -> usize {
        self.pending.len()
    }

    /// Enqueues a query; answers arrive from [`flush`](Engine::flush).
    pub fn submit(&mut self, query: MultiplyQuery) -> SparseResult<QueryId> {
        let bound = self.bound.get(&query.matrix.0).ok_or_else(|| {
            SparseError::InvalidCsr(format!("matrix {:032x} is not registered", query.matrix.0))
        })?;
        if query.x.len() != bound.n as usize {
            return Err(SparseError::ShapeMismatch {
                left: (bound.n, 1),
                right: (query.x.len() as u32, 1),
            });
        }
        let id = QueryId(self.next_query);
        self.next_query += 1;
        self.pending.push(Pending { id, query });
        Ok(id)
    }

    /// Answers every pending query. Compatible queries — same matrix,
    /// same `iters`, same σ — are coalesced into multi-RHS runs of up to
    /// `max_batch` columns; responses are returned in submission order.
    pub fn flush(&mut self) -> SparseResult<Vec<QueryResponse>> {
        let pending = std::mem::take(&mut self.pending);
        self.flush_set(pending)
    }

    /// Answers only the pending queries **owned** by `salt` — i.e.
    /// those addressing a binding registered under that salt — leaving
    /// everyone else's queries queued. This is the per-tenant flush: a
    /// multi-tenant holder salts bindings by tenant id, so one tenant
    /// can drain its own queue without forcing runs for the whole hub.
    /// Batching within the drained set is identical to [`flush`].
    ///
    /// [`flush`]: Self::flush
    pub fn flush_owned(&mut self, salt: u128) -> SparseResult<Vec<QueryResponse>> {
        let pending = std::mem::take(&mut self.pending);
        let (mine, others): (Vec<Pending>, Vec<Pending>) = pending.into_iter().partition(|p| {
            self.bound
                .get(&p.query.matrix.0)
                .map(|b| b.salt == salt)
                .unwrap_or(false)
        });
        self.pending = others;
        self.flush_set(mine)
    }

    fn flush_set(&mut self, pending: Vec<Pending>) -> SparseResult<Vec<QueryResponse>> {
        if pending.is_empty() {
            return Ok(Vec::new());
        }
        // Group by (matrix, iters, σ identity), preserving arrival order
        // within each group.
        let mut groups: Vec<((u128, u32, usize), Vec<Pending>)> = Vec::new();
        for p in pending {
            let key = (
                p.query.matrix.0,
                p.query.iters,
                p.query.sigma.map(|f| f as usize).unwrap_or(0),
            );
            match groups.iter_mut().find(|(k, _)| *k == key) {
                Some((_, members)) => members.push(p),
                None => groups.push((key, vec![p])),
            }
        }
        let mut responses = Vec::new();
        for (_, members) in groups {
            for chunk in members.chunks(self.config.max_batch.max(1)) {
                responses.extend(self.run_batch(chunk)?);
            }
        }
        responses.sort_by_key(|r| r.id.0);
        Ok(responses)
    }

    fn run_batch(&mut self, chunk: &[Pending]) -> SparseResult<Vec<QueryResponse>> {
        let first = &chunk[0].query;
        let bound = self.bound.get(&first.matrix.0).ok_or_else(|| {
            SparseError::InvalidCsr(format!(
                "matrix {:032x} was deregistered while queries were pending",
                first.matrix.0
            ))
        })?;
        let n = bound.n;
        let k = chunk.len() as u32;
        // Columns side by side: query j is column j.
        let x = DenseMatrix::from_fn(n, k, |r, c| chunk[c as usize].query.x[r as usize]);
        // Pending updates: serve A₀ + ΔA through the corrected path.
        let overlay_algo = match &bound.overlay {
            Some(delta) => Some(DeltaSpmm::new(&*bound.algo, delta)?.with_cost(self.config.cost)),
            None => None,
        };
        // Attribution prices this run's envelope at the *served* column
        // count (the planner ranked at its k hint), through the
        // corrected path when an overlay is live, outside the timed
        // section. Skipped entirely when telemetry is off so the
        // uninstrumented engine stays the zero-cost baseline.
        let estimate = self
            .telemetry
            .registry
            .is_enabled()
            .then(|| match &overlay_algo {
                Some(corrected) => corrected.predict_volume(k),
                None => bound.algo.predict_volume(k),
            });
        let sw = Stopwatch::start();
        // The multiply is pure (no state mutated until it returns), so a
        // transient failure — only ever the `engine.multiply.transient`
        // chaos failpoint — is safely retried in place.
        let mut attempts = 0u32;
        let run = loop {
            let result = match failpoint::check(failpoint::ENGINE_MULTIPLY_TRANSIENT) {
                Err(e) => Err(e),
                Ok(()) => match &overlay_algo {
                    Some(corrected) => corrected.run_sigma(&x, first.iters, first.sigma),
                    None => bound.algo.run_sigma(&x, first.iters, first.sigma),
                },
            };
            match result {
                Ok(run) => break run,
                Err(e)
                    if failpoint::is_injected(&e)
                        && attempts < self.config.max_multiply_retries =>
                {
                    attempts += 1;
                    self.metrics.multiply_retries.inc();
                }
                Err(e) => return Err(e),
            }
        };
        if overlay_algo.is_some() {
            self.metrics.corrected_runs.inc();
        }
        let multiply_seconds = sw.elapsed_seconds();
        self.metrics
            .multiply_seconds
            .record_seconds(multiply_seconds);
        self.metrics.runs.inc();
        self.metrics.queries.add(chunk.len() as u64);
        self.metrics.batch_size.record(chunk.len() as u64);
        self.metrics.largest_batch.record_max(chunk.len() as u64);
        let cost = estimate.map(|estimate| {
            self.metrics.attribution.record(
                &RunAttribution {
                    algo: &bound.chosen,
                    predictions: &bound.predictions,
                    estimate,
                    corrected: bound.overlay.is_some(),
                    iters: first.iters,
                    cost: self.config.cost,
                    target_ranks: self.config.target_ranks,
                },
                &run.stats,
            )
        });
        if self.telemetry.tracer.is_enabled() {
            // Predicted cost is per iteration per the planner contract.
            let predicted = bound
                .predictions
                .first()
                .map(|p| p.seconds * first.iters as f64)
                .unwrap_or(0.0);
            let mut detail = format!(
                "algo={} batch={} queries={}..={} iters={} corrected={} \
                 dtype={} active_prefix={:.3} predicted_seconds={:.3e} \
                 actual_seconds={:.3e}",
                bound.chosen,
                chunk.len(),
                chunk[0].id.0,
                chunk[chunk.len() - 1].id.0,
                first.iters,
                bound.overlay.is_some(),
                self.config.dtype,
                bound.active_prefix,
                predicted,
                multiply_seconds
            );
            if let Some(c) = &cost {
                let _ = write!(
                    detail,
                    " predicted_rank_bytes={:.0} accounted_rank_bytes={:.0}",
                    c.predicted_rank_bytes, c.accounted_rank_bytes
                );
            }
            self.telemetry
                .tracer
                .event("multiply", SpanId::NONE, None, detail);
        }
        Ok(chunk
            .iter()
            .enumerate()
            .map(|(j, p)| {
                let y = (0..n).map(|r| run.y.get(r, j as u32)).collect();
                QueryResponse {
                    id: p.id,
                    y,
                    batch_size: chunk.len(),
                    cost: cost.clone(),
                }
            })
            .collect())
    }

    /// Runs one query immediately, bypassing the batcher (the unbatched
    /// baseline the serving example compares against).
    pub fn run_single(&mut self, query: MultiplyQuery) -> SparseResult<QueryResponse> {
        self.submit(query)?;
        let pending = self.pending.pop().expect("just submitted");
        let mut responses = self.run_batch(&[pending])?;
        Ok(responses.pop().expect("one response per query"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amd_graph::generators::basic;

    fn engine() -> Engine {
        Engine::new(EngineConfig {
            target_ranks: 4,
            ..EngineConfig::default()
        })
        .unwrap()
    }

    fn ring(n: u32) -> CsrMatrix<f64> {
        basic::cycle(n).to_adjacency()
    }

    #[test]
    fn register_is_idempotent() {
        let mut e = engine();
        let a = ring(64);
        let id1 = e.register(&a).unwrap();
        let id2 = e.register(&a).unwrap();
        assert_eq!(id1, id2);
        assert_eq!(e.cache_stats().decompositions, 1);
        assert!(e.chosen_algorithm(id1).is_some());
        assert_eq!(e.plan_report(id1).unwrap().len(), 4);
    }

    #[test]
    fn unregistered_matrix_rejected() {
        let mut e = engine();
        let q = MultiplyQuery {
            matrix: MatrixId(7),
            x: vec![0.0; 4],
            iters: 1,
            sigma: None,
        };
        assert!(e.submit(q).is_err());
    }

    #[test]
    fn wrong_operand_length_rejected() {
        let mut e = engine();
        let id = e.register(&ring(32)).unwrap();
        let q = MultiplyQuery {
            matrix: id,
            x: vec![0.0; 31],
            iters: 1,
            sigma: None,
        };
        assert!(e.submit(q).is_err());
    }

    #[test]
    fn batched_answers_match_reference() {
        let mut e = engine();
        let a = ring(48);
        let id = e.register(&a).unwrap();
        let queries: Vec<Vec<f64>> = (0..6)
            .map(|q| (0..48).map(|r| ((q * 7 + r) % 5) as f64 - 2.0).collect())
            .collect();
        for x in &queries {
            e.submit(MultiplyQuery {
                matrix: id,
                x: x.clone(),
                iters: 2,
                sigma: None,
            })
            .unwrap();
        }
        let responses = e.flush().unwrap();
        assert_eq!(responses.len(), 6);
        assert_eq!(e.stats().runs, 1, "compatible queries must share one run");
        for (q, resp) in responses.iter().enumerate() {
            assert_eq!(resp.batch_size, 6);
            let x = DenseMatrix::from_vec(48, 1, queries[q].clone()).unwrap();
            let want = amd_spmm::reference::iterated_spmm(&a, &x, 2).unwrap();
            assert_eq!(resp.y, want.data(), "query {q} mismatch");
        }
    }

    #[test]
    fn incompatible_queries_split_runs() {
        let mut e = engine();
        let id = e.register(&ring(32)).unwrap();
        let x = vec![1.0; 32];
        e.submit(MultiplyQuery {
            matrix: id,
            x: x.clone(),
            iters: 1,
            sigma: None,
        })
        .unwrap();
        e.submit(MultiplyQuery {
            matrix: id,
            x: x.clone(),
            iters: 2,
            sigma: None,
        })
        .unwrap();
        e.submit(MultiplyQuery {
            matrix: id,
            x,
            iters: 1,
            sigma: Some(relu),
        })
        .unwrap();
        let responses = e.flush().unwrap();
        assert_eq!(responses.len(), 3);
        assert_eq!(e.stats().runs, 3);
    }

    #[test]
    fn max_batch_caps_run_width() {
        let mut e = Engine::new(EngineConfig {
            target_ranks: 4,
            max_batch: 2,
            ..EngineConfig::default()
        })
        .unwrap();
        let id = e.register(&ring(32)).unwrap();
        for _ in 0..5 {
            e.submit(MultiplyQuery {
                matrix: id,
                x: vec![1.0; 32],
                iters: 1,
                sigma: None,
            })
            .unwrap();
        }
        let responses = e.flush().unwrap();
        assert_eq!(responses.len(), 5);
        assert_eq!(e.stats().runs, 3); // 2 + 2 + 1
        assert_eq!(e.stats().largest_batch, 2);
    }

    fn relu(v: f64) -> f64 {
        v.max(0.0)
    }

    /// An integer-valued delta on the ring: adds two chords, drops an edge.
    fn ring_delta(n: u32) -> CsrMatrix<f64> {
        let mut coo = amd_sparse::CooMatrix::new(n, n);
        coo.push_sym(0, n / 2, 1.0).unwrap();
        coo.push_sym(3, n / 3, 2.0).unwrap();
        coo.push_sym(0, 1, -1.0).unwrap();
        coo.to_csr()
    }

    #[test]
    fn overlay_serves_merged_matrix_exactly() {
        let mut e = engine();
        let n = 36;
        let a = ring(n);
        let id = e.register(&a).unwrap();
        let delta = ring_delta(n);
        e.set_delta(id, delta.clone()).unwrap();
        assert_eq!(e.delta_nnz(id), delta.nnz());
        let x: Vec<f64> = (0..n).map(|r| ((r % 7) as f64) - 3.0).collect();
        let resp = e
            .run_single(MultiplyQuery {
                matrix: id,
                x: x.clone(),
                iters: 2,
                sigma: None,
            })
            .unwrap();
        // Integer data: the corrected answer equals the rebuilt-matrix
        // reference bit for bit.
        let merged = amd_sparse::ops::apply_delta(&a, &delta).unwrap();
        let xm = DenseMatrix::from_vec(n, 1, x).unwrap();
        let want = amd_spmm::reference::iterated_spmm(&merged, &xm, 2).unwrap();
        assert_eq!(resp.y, want.data());
        assert_eq!(e.stats().corrected_runs, 1);
        // Clearing the overlay restores the base path.
        e.clear_delta(id);
        assert_eq!(e.delta_nnz(id), 0);
    }

    #[test]
    fn empty_overlay_is_a_no_op() {
        let mut e = engine();
        let n = 32;
        let id = e.register(&ring(n)).unwrap();
        e.set_delta(id, CsrMatrix::zeros(n, n)).unwrap();
        assert_eq!(e.delta_nnz(id), 0);
        e.run_single(MultiplyQuery {
            matrix: id,
            x: vec![1.0; n as usize],
            iters: 1,
            sigma: None,
        })
        .unwrap();
        assert_eq!(e.stats().corrected_runs, 0);
    }

    #[test]
    fn overlay_shape_and_registration_validated() {
        let mut e = engine();
        let id = e.register(&ring(32)).unwrap();
        assert!(e.set_delta(id, CsrMatrix::zeros(16, 16)).is_err());
        assert!(e.set_delta(MatrixId(9), CsrMatrix::zeros(32, 32)).is_err());
        assert_eq!(e.matrix_version(MatrixId(9)), None);
    }

    #[test]
    fn refresh_rebinds_replans_and_bumps_version() {
        let mut e = engine();
        let n = 40;
        let a = ring(n);
        let id = e.register(&a).unwrap();
        assert_eq!(e.matrix_version(id), Some(0));
        let decomposes_before = e.cache_stats().decompositions;
        let delta = ring_delta(n);
        e.set_delta(id, delta.clone()).unwrap();
        let merged = amd_sparse::ops::apply_delta(&a, &delta).unwrap();
        let new_id = e.refresh(id, &merged).unwrap();
        assert_ne!(new_id, id, "merged content has a new fingerprint");
        assert_eq!(e.matrix_version(new_id), Some(1));
        assert_eq!(e.matrix_version(id), None, "old binding dropped");
        assert_eq!(e.stats().refreshes, 1);
        assert_eq!(
            e.cache_stats().decompositions,
            decomposes_before + 1,
            "refresh re-decomposes the merged matrix once"
        );
        // The new binding is freshly planned and serves without overlay.
        assert!(e.chosen_algorithm(new_id).is_some());
        assert_eq!(e.plan_report(new_id).unwrap().len(), 4);
        let x: Vec<f64> = (0..n).map(|r| (r % 5) as f64).collect();
        let resp = e
            .run_single(MultiplyQuery {
                matrix: new_id,
                x: x.clone(),
                iters: 1,
                sigma: None,
            })
            .unwrap();
        let xm = DenseMatrix::from_vec(n, 1, x).unwrap();
        let want = amd_spmm::reference::iterated_spmm(&merged, &xm, 1).unwrap();
        assert_eq!(resp.y, want.data());
        assert_eq!(e.stats().corrected_runs, 0, "no overlay after refresh");
    }

    #[test]
    fn refresh_remaps_pending_queries() {
        let mut e = engine();
        let n = 32;
        let a = ring(n);
        let id = e.register(&a).unwrap();
        e.submit(MultiplyQuery {
            matrix: id,
            x: vec![1.0; n as usize],
            iters: 1,
            sigma: None,
        })
        .unwrap();
        let delta = ring_delta(n);
        let merged = amd_sparse::ops::apply_delta(&a, &delta).unwrap();
        let new_id = e.refresh(id, &merged).unwrap();
        let responses = e.flush().unwrap();
        assert_eq!(responses.len(), 1);
        let xm = DenseMatrix::from_vec(n, 1, vec![1.0; n as usize]).unwrap();
        let want = amd_spmm::reference::iterated_spmm(&merged, &xm, 1).unwrap();
        assert_eq!(responses[0].y, want.data());
        assert_eq!(e.matrix_version(new_id), Some(1));
    }

    #[test]
    fn refresh_onto_existing_content_still_bumps_version() {
        // A stream that mutates B back into already-bound content A must
        // land on A's binding with the version moved forward, not reset.
        let mut e = engine();
        let n = 32;
        let a = ring(n);
        let delta = ring_delta(n);
        let b = amd_sparse::ops::apply_delta(&a, &delta).unwrap();
        let id_a = e.register(&a).unwrap();
        let id_b = e.register(&b).unwrap();
        assert_ne!(id_a, id_b);
        // Refreshing B with A's exact content collides with A's binding.
        let new_id = e.refresh(id_b, &a).unwrap();
        assert_eq!(new_id, id_a);
        assert_eq!(
            e.matrix_version(new_id),
            Some(1),
            "the refresh lineage must advance the shared binding"
        );
        assert_eq!(e.matrix_version(id_b), None, "B's binding is gone");
        assert_eq!(e.stats().refreshes, 1);
    }

    #[test]
    fn refresh_localized_splices_from_the_cached_prior() {
        let mut e = Engine::new(EngineConfig {
            arrow_width: 8,
            target_ranks: 4,
            ..EngineConfig::default()
        })
        .unwrap();
        let n = 128;
        let a = ring(n);
        let id = e.register(&a).unwrap();
        assert_eq!(e.cache_stats().decompositions, 1);
        // One localized chord.
        let mut coo = amd_sparse::CooMatrix::new(n, n);
        coo.push_sym(10, 13, 2.0).unwrap();
        let delta = coo.to_csr();
        let merged = amd_sparse::ops::apply_delta(&a, &delta).unwrap();
        let (new_id, outcome) = e.refresh_localized(id, &merged, &[10, 13]).unwrap();
        assert!(outcome.incremental, "fallback: {:?}", outcome.fallback);
        assert!(outcome.reused_fraction() > 0.5);
        assert_eq!(
            e.cache_stats().decompositions,
            1,
            "the refresh must not run a cold LA-Decompose"
        );
        assert_eq!(e.cache_stats().admitted, 1, "splice admitted write-through");
        assert_eq!(e.matrix_version(new_id), Some(1));
        // Served answers on the spliced binding are exact.
        let x: Vec<f64> = (0..n).map(|r| ((r % 7) as f64) - 3.0).collect();
        let resp = e
            .run_single(MultiplyQuery {
                matrix: new_id,
                x: x.clone(),
                iters: 2,
                sigma: None,
            })
            .unwrap();
        let xm = DenseMatrix::from_vec(n, 1, x).unwrap();
        let want = amd_spmm::reference::iterated_spmm(&merged, &xm, 2).unwrap();
        assert_eq!(resp.y, want.data());
    }

    #[test]
    fn refresh_localized_reuses_cached_merged_content() {
        // An update stream that returns a matrix to previously served
        // content must not decompose at all: the merged fingerprint hits
        // the cache and the refresh degenerates to a full reuse.
        let mut e = Engine::new(EngineConfig {
            arrow_width: 8,
            target_ranks: 4,
            ..EngineConfig::default()
        })
        .unwrap();
        let n = 64;
        let a = ring(n);
        let mut coo = amd_sparse::CooMatrix::new(n, n);
        coo.push_sym(5, 9, 1.0).unwrap();
        let b = amd_sparse::ops::apply_delta(&a, &coo.to_csr()).unwrap();
        let id_a = e.register(&a).unwrap();
        let id_b = e.register(&b).unwrap();
        assert_eq!(e.cache_stats().decompositions, 2);
        // Mutate B back into A's exact content.
        let (new_id, outcome) = e.refresh_localized(id_b, &a, &[5, 9]).unwrap();
        assert_eq!(new_id, id_a, "collides with A's binding");
        assert!(outcome.incremental);
        assert_eq!(outcome.affected_vertices, 0);
        assert_eq!(outcome.reused_fraction(), 1.0);
        assert_eq!(e.cache_stats().decompositions, 2, "no third decompose");
    }

    #[test]
    fn refresh_localized_falls_back_when_prior_is_evicted() {
        let mut e = Engine::new(EngineConfig {
            arrow_width: 8,
            target_ranks: 4,
            cache_capacity: 1,
            ..EngineConfig::default()
        })
        .unwrap();
        let n = 64;
        let a = ring(n);
        let id = e.register(&a).unwrap();
        // Evict a's decomposition from the one-slot cache.
        e.register(&basic::star(n).to_adjacency()).unwrap();
        let mut coo = amd_sparse::CooMatrix::new(n, n);
        coo.push_sym(3, 6, 1.0).unwrap();
        let merged = amd_sparse::ops::apply_delta(&a, &coo.to_csr()).unwrap();
        let (new_id, outcome) = e.refresh_localized(id, &merged, &[3, 6]).unwrap();
        assert!(!outcome.incremental);
        assert_eq!(
            outcome.fallback,
            Some(arrow_core::incremental::FallbackReason::NoPrior)
        );
        assert_eq!(e.matrix_version(new_id), Some(1), "fallback still commits");
    }

    #[test]
    fn refresh_validates_inputs() {
        let mut e = engine();
        let n = 32;
        let a = ring(n);
        let id = e.register(&a).unwrap();
        // Unknown id.
        assert!(e.refresh(MatrixId(5), &a).is_err());
        // Shape change is rejected and the old binding survives.
        assert!(e.refresh(id, &ring(16)).is_err());
        assert_eq!(e.matrix_version(id), Some(0));
        assert!(e.chosen_algorithm(id).is_some());
    }

    #[test]
    fn deregister_drops_binding_and_releases_cache() {
        let mut e = engine();
        let a = ring(40);
        let id = e.register(&a).unwrap();
        e.deregister(id).unwrap();
        assert_eq!(e.stats().deregistered, 1);
        assert_eq!(e.matrix_version(id), None, "binding gone");
        assert!(e.deregister(id).is_err(), "double deregister rejected");
        // The decomposition was released from memory: re-registering
        // without a catalog decomposes again.
        let id2 = e.register(&a).unwrap();
        assert_eq!(id2, id, "same content, same unsalted id");
        assert_eq!(e.cache_stats().decompositions, 2);
        assert_eq!(e.cache_stats().released, 1);
    }

    #[test]
    fn deregister_keeps_cache_entry_shared_by_another_salt() {
        let mut e = engine();
        let a = ring(36);
        let id1 = e.register_salted(&a, 1).unwrap();
        let id2 = e.register_salted(&a, 2).unwrap();
        assert_ne!(id1, id2);
        assert_eq!(e.cache_stats().decompositions, 1, "content shared");
        e.deregister(id1).unwrap();
        // Tenant 2 still serves; its decomposition must not have been
        // released.
        assert_eq!(e.cache_stats().released, 0);
        let resp = e
            .run_single(MultiplyQuery {
                matrix: id2,
                x: vec![1.0; 36],
                iters: 1,
                sigma: None,
            })
            .unwrap();
        assert_eq!(resp.y.len(), 36);
        // Now the last reference goes, and the memory with it.
        e.deregister(id2).unwrap();
        assert_eq!(e.cache_stats().released, 1);
    }

    #[test]
    fn deregister_refuses_while_queries_pend() {
        let mut e = engine();
        let id = e.register(&ring(32)).unwrap();
        e.submit(MultiplyQuery {
            matrix: id,
            x: vec![1.0; 32],
            iters: 1,
            sigma: None,
        })
        .unwrap();
        let err = e.deregister(id).unwrap_err();
        assert!(
            err.to_string().contains("pending"),
            "ownership check names the cause: {err}"
        );
        assert_eq!(e.pending_for(id), 1);
        e.flush().unwrap();
        e.deregister(id).unwrap();
    }

    #[test]
    fn flush_owned_drains_only_one_salt() {
        let mut e = engine();
        let n = 32;
        let a = ring(n);
        let id1 = e.register_salted(&a, 1).unwrap();
        let id2 = e.register_salted(&a, 2).unwrap();
        let x = vec![1.0; n as usize];
        let q1 = e
            .submit(MultiplyQuery {
                matrix: id1,
                x: x.clone(),
                iters: 1,
                sigma: None,
            })
            .unwrap();
        e.submit(MultiplyQuery {
            matrix: id2,
            x: x.clone(),
            iters: 1,
            sigma: None,
        })
        .unwrap();
        e.submit(MultiplyQuery {
            matrix: id1,
            x,
            iters: 1,
            sigma: None,
        })
        .unwrap();
        let mine = e.flush_owned(1).unwrap();
        assert_eq!(mine.len(), 2, "only salt-1 queries drained");
        assert!(mine.iter().any(|r| r.id == q1));
        assert_eq!(mine[0].batch_size, 2, "owned queries still batch");
        assert_eq!(e.pending_queries(), 1, "salt-2 query still queued");
        let rest = e.flush().unwrap();
        assert_eq!(rest.len(), 1);
    }

    #[test]
    fn sigma_batches_match_single_runs() {
        let mut e = engine();
        let a = ring(40);
        let id = e.register(&a).unwrap();
        let xs: Vec<Vec<f64>> = (0..4)
            .map(|q| (0..40).map(|r| ((q + r) % 7) as f64 - 3.0).collect())
            .collect();
        let singles: Vec<Vec<f64>> = xs
            .iter()
            .map(|x| {
                e.run_single(MultiplyQuery {
                    matrix: id,
                    x: x.clone(),
                    iters: 3,
                    sigma: Some(relu),
                })
                .unwrap()
                .y
            })
            .collect();
        for x in &xs {
            e.submit(MultiplyQuery {
                matrix: id,
                x: x.clone(),
                iters: 3,
                sigma: Some(relu),
            })
            .unwrap();
        }
        let batched = e.flush().unwrap();
        for (single, resp) in singles.iter().zip(&batched) {
            assert_eq!(
                single, &resp.y,
                "batched σ run must bit-match the single run"
            );
        }
    }

    #[test]
    fn responses_carry_attributed_costs() {
        let mut e = engine();
        // Large enough that the Arrow winner spans several ranks and
        // actually communicates (tiny graphs fit one rank: volume 0).
        let a = basic::star(256).to_adjacency();
        let id = e.register(&a).unwrap();
        for q in 0..6 {
            e.submit(MultiplyQuery {
                matrix: id,
                x: (0..256).map(|r| ((q + r) % 5) as f64).collect(),
                iters: 2,
                sigma: None,
            })
            .unwrap();
        }
        let responses = e.flush().unwrap();
        assert_eq!(responses.len(), 6);
        for r in &responses {
            let cost = r.cost.as_ref().expect("telemetry is enabled");
            assert_eq!(cost.algo, e.chosen_algorithm(id).unwrap());
            assert!(!cost.corrected);
            assert_eq!(cost.iters, 2);
            assert!(cost.accounted_rank_bytes > 0.0);
            assert!(cost.predicted_rank_bytes > 0.0);
            assert!(cost.sim_seconds > 0.0);
            // The planner ranked 4 candidates, so the check ran — and
            // on the star graph the accounted volumes confirm the
            // planner's (Arrow-first) ranking.
            assert_eq!(cost.rank_agreement, Some(true));
        }
        let snap = e.telemetry().registry.snapshot();
        assert_eq!(snap.counter("engine.plan.rank_checks"), Some(1));
        assert_eq!(snap.counter("engine.plan.mispredictions"), Some(0));
        assert!(snap.counter("engine.plan.predicted_bytes").unwrap_or(0) > 0);
        assert!(snap.counter("engine.plan.accounted_bytes").unwrap_or(0) > 0);
        assert_eq!(snap.counter("engine.algo.arrow.runs"), Some(1));
        assert!(
            snap.histogram("engine.rank_volume.bytes").unwrap().count > 0,
            "per-rank volumes sampled"
        );
        assert_eq!(e.stats().mispredictions, 0);
    }

    #[test]
    fn corrected_runs_attribute_without_a_rank_check() {
        let mut e = engine();
        let n = 256;
        let id = e.register(&ring(n)).unwrap();
        e.set_delta(id, ring_delta(n)).unwrap();
        let resp = e
            .run_single(MultiplyQuery {
                matrix: id,
                x: (0..n).map(|r| (r % 3) as f64).collect(),
                iters: 1,
                sigma: None,
            })
            .unwrap();
        let cost = resp.cost.expect("telemetry is enabled");
        assert!(cost.corrected);
        assert_eq!(
            cost.rank_agreement, None,
            "the planner never ranked the correction traffic"
        );
        let snap = e.telemetry().registry.snapshot();
        assert_eq!(snap.counter("engine.plan.rank_checks"), Some(0));
        assert!(snap.counter("engine.plan.accounted_bytes").unwrap_or(0) > 0);
    }

    #[test]
    fn disabled_telemetry_skips_attribution() {
        let mut e = Engine::with_telemetry(
            EngineConfig {
                target_ranks: 4,
                ..EngineConfig::default()
            },
            Telemetry::disabled(),
        )
        .unwrap();
        let id = e.register(&ring(32)).unwrap();
        let resp = e
            .run_single(MultiplyQuery {
                matrix: id,
                x: vec![1.0; 32],
                iters: 1,
                sigma: None,
            })
            .unwrap();
        assert_eq!(resp.cost, None, "no attribution without a registry");
    }

    #[test]
    fn f32_engine_serves_integer_data_exactly() {
        // Small-integer values and operands round-trip f32 without
        // rounding, so the half-bandwidth engine must answer bit-
        // identically to the exact one.
        let n = 96;
        let a = ring(n);
        let x: Vec<f64> = (0..n).map(|r| ((r % 9) as f64) - 4.0).collect();
        let mut answers = Vec::new();
        for dtype in [Dtype::F64, Dtype::F32] {
            let mut e = Engine::new(EngineConfig {
                target_ranks: 4,
                dtype,
                ..EngineConfig::default()
            })
            .unwrap();
            let id = e.register(&a).unwrap();
            let resp = e
                .run_single(MultiplyQuery {
                    matrix: id,
                    x: x.clone(),
                    iters: 2,
                    sigma: None,
                })
                .unwrap();
            answers.push(resp.y);
        }
        assert_eq!(answers[0], answers[1], "f32 must be exact on integers");
    }

    #[test]
    fn trace_events_carry_dtype_and_active_prefix() {
        let mut e = Engine::new(EngineConfig {
            target_ranks: 4,
            dtype: Dtype::F32,
            ..EngineConfig::default()
        })
        .unwrap();
        let id = e.register(&ring(48)).unwrap();
        e.run_single(MultiplyQuery {
            matrix: id,
            x: vec![1.0; 48],
            iters: 1,
            sigma: None,
        })
        .unwrap();
        let events = e.telemetry().tracer.snapshot();
        let plan = events
            .iter()
            .find(|ev| ev.name == "plan")
            .expect("plan event traced");
        assert!(plan.detail.contains("dtype=f32"), "{}", plan.detail);
        assert!(plan.detail.contains("active_prefix="), "{}", plan.detail);
        let mul = events
            .iter()
            .find(|ev| ev.name == "multiply")
            .expect("multiply event traced");
        assert!(mul.detail.contains("dtype=f32"), "{}", mul.detail);
        assert!(mul.detail.contains("active_prefix="), "{}", mul.detail);
    }

    #[test]
    fn splice_guard_recompacts_deep_splices() {
        // With a slowdown budget of exactly 1.0 every splice that deepens
        // the level stack must trip the guard: the engine rebuilds cold
        // and reports a non-incremental outcome.
        let mut e = Engine::new(EngineConfig {
            arrow_width: 8,
            target_ranks: 4,
            max_splice_slowdown: 1.0,
            incremental: IncrementalPolicy {
                max_affected_fraction: 1.0,
                max_order: 64,
                ..IncrementalPolicy::default()
            },
            ..EngineConfig::default()
        })
        .unwrap();
        let n = 128;
        let mut a = ring(n);
        let mut id = e.register(&a).unwrap();
        let mut recompacted = false;
        for round in 0..6u32 {
            let (u, v) = (round, round + n / 2);
            let mut coo = amd_sparse::CooMatrix::new(n, n);
            coo.push_sym(u, v, 1.0).unwrap();
            let merged = amd_sparse::ops::apply_delta(&a, &coo.to_csr()).unwrap();
            let (new_id, outcome) = e.refresh_localized(id, &merged, &[u, v]).unwrap();
            a = merged;
            id = new_id;
            if outcome.fallback == Some(FallbackReason::CostGuard) {
                assert!(!outcome.incremental);
                recompacted = true;
                break;
            }
        }
        assert!(recompacted, "deep splices never tripped a 1.0× budget");
        assert!(e.stats().recompactions > 0);
        let events = e.telemetry().tracer.snapshot();
        assert!(
            events.iter().any(|ev| ev.name == "splice_guard"),
            "guard decision traced"
        );
        // The recompacted binding still serves the right operator.
        let x: Vec<f64> = (0..n).map(|r| ((r % 5) as f64) - 2.0).collect();
        let resp = e
            .run_single(MultiplyQuery {
                matrix: id,
                x: x.clone(),
                iters: 1,
                sigma: None,
            })
            .unwrap();
        let xm = DenseMatrix::from_vec(n, 1, x).unwrap();
        let want = amd_spmm::reference::iterated_spmm(&a, &xm, 1).unwrap();
        assert_eq!(resp.y, want.data());
    }
}
