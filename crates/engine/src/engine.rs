//! The serving engine: registration, query batching, and execution.
//!
//! A matrix is **registered** once: fingerprinted, decomposed through
//! the [`DecompositionCache`](crate::cache::DecompositionCache), planned
//! by the [`planner`](crate::planner), and bound to the winning
//! algorithm. **Queries** — single-column multiply requests against a
//! registered matrix — are then submitted to a queue; [`Engine::flush`]
//! coalesces all compatible pending queries (same matrix, iteration
//! count, and σ) into one multi-RHS [`DenseMatrix`] run.
//!
//! Batching is exact, not approximate: every distributed algorithm here
//! computes output columns independently (the per-column accumulation
//! order does not depend on the operand width), so a batched answer is
//! bit-identical to the per-query answer while paying the per-run fixed
//! costs — rank spin-up, per-message latency α, tile traversals — once
//! per batch instead of once per query.

use crate::cache::{CacheStats, DecompositionCache};
use crate::planner::{plan, Plan, PlannerConfig, Prediction};
use amd_comm::CostModel;
use amd_sparse::{CsrMatrix, DenseMatrix, SparseError, SparseResult};
use amd_spmm::traits::Sigma;
use amd_spmm::DistSpmm;
use arrow_core::DecomposeConfig;
use std::collections::HashMap;
use std::path::PathBuf;

/// Handle to a registered matrix (its content fingerprint).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MatrixId(pub u128);

/// Handle to a submitted query; responses carry it back.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QueryId(pub u64);

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Arrow width used when decomposing registered matrices.
    pub arrow_width: u32,
    /// Seed for the decomposition's random-forest arrangement.
    pub decompose_seed: u64,
    /// Decompositions held in memory (LRU beyond this).
    pub cache_capacity: usize,
    /// Write-through spill directory; `None` disables persistence.
    pub spill_dir: Option<PathBuf>,
    /// Cost model for the planner.
    pub cost: CostModel,
    /// Rank budget for baseline candidates.
    pub target_ranks: u32,
    /// Largest number of queries coalesced into one run.
    pub max_batch: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            arrow_width: 64,
            decompose_seed: 42,
            cache_capacity: 8,
            spill_dir: None,
            cost: CostModel::default(),
            target_ranks: 16,
            max_batch: 64,
        }
    }
}

/// A single multiply request: `y = σ(A·…σ(A·x))`, `iters` times.
#[derive(Debug, Clone)]
pub struct MultiplyQuery {
    /// Which registered matrix to multiply by.
    pub matrix: MatrixId,
    /// The operand column (`n` entries).
    pub x: Vec<f64>,
    /// Number of multiply iterations.
    pub iters: u32,
    /// Optional element-wise activation between iterations.
    pub sigma: Option<Sigma>,
}

/// The answer to one query.
#[derive(Debug, Clone)]
pub struct QueryResponse {
    /// The query this answers.
    pub id: QueryId,
    /// Result column (`n` entries).
    pub y: Vec<f64>,
    /// How many queries shared the run that produced this answer.
    pub batch_size: usize,
}

/// Serving counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Queries answered.
    pub queries: u64,
    /// Distributed runs launched.
    pub runs: u64,
    /// Largest batch coalesced so far.
    pub largest_batch: usize,
}

struct BoundMatrix {
    n: u32,
    algo: Box<dyn DistSpmm + Send + Sync>,
    chosen: String,
    predictions: Vec<Prediction>,
}

struct Pending {
    id: QueryId,
    query: MultiplyQuery,
}

/// A batched SpMM serving engine with a decomposition cache and a
/// cost-model planner. See the [module docs](self).
pub struct Engine {
    config: EngineConfig,
    cache: DecompositionCache,
    bound: HashMap<u128, BoundMatrix>,
    pending: Vec<Pending>,
    next_query: u64,
    stats: EngineStats,
}

impl Engine {
    /// Builds an engine; creates the spill directory if configured.
    pub fn new(config: EngineConfig) -> SparseResult<Self> {
        let cache = DecompositionCache::new(config.cache_capacity, config.spill_dir.clone())?;
        Ok(Self {
            config,
            cache,
            bound: HashMap::new(),
            pending: Vec::new(),
            next_query: 0,
            stats: EngineStats::default(),
        })
    }

    /// Registers `a`: fingerprint, decompose (through the cache), plan,
    /// and bind the cheapest algorithm. Registering the same content
    /// twice is a no-op returning the same id.
    pub fn register(&mut self, a: &CsrMatrix<f64>) -> SparseResult<MatrixId> {
        let fingerprint = a.fingerprint();
        if self.bound.contains_key(&fingerprint) {
            return Ok(MatrixId(fingerprint));
        }
        if a.rows() != a.cols() {
            return Err(SparseError::ShapeMismatch {
                left: (a.rows(), a.cols()),
                right: (a.cols(), a.rows()),
            });
        }
        let d = self.cache.get_or_decompose_keyed(
            a,
            fingerprint,
            &DecomposeConfig::with_width(self.config.arrow_width),
            self.config.decompose_seed,
        )?;
        let planner_config = PlannerConfig {
            cost: self.config.cost,
            target_ranks: self.config.target_ranks,
            k_hint: (self.config.max_batch as u32).clamp(1, 64),
            ..PlannerConfig::default()
        };
        let Plan {
            algo,
            chosen,
            predictions,
        } = plan(a, &d, &planner_config)?;
        self.bound.insert(
            fingerprint,
            BoundMatrix {
                n: a.rows(),
                algo,
                chosen,
                predictions,
            },
        );
        Ok(MatrixId(fingerprint))
    }

    /// The algorithm the planner bound for `id`.
    pub fn chosen_algorithm(&self, id: MatrixId) -> Option<&str> {
        self.bound.get(&id.0).map(|b| b.chosen.as_str())
    }

    /// The planner's full ranking for `id` (cheapest first).
    pub fn plan_report(&self, id: MatrixId) -> Option<&[Prediction]> {
        self.bound.get(&id.0).map(|b| b.predictions.as_slice())
    }

    /// Cache counters (the decompose-count probe lives here).
    pub fn cache_stats(&self) -> &CacheStats {
        self.cache.stats()
    }

    /// Serving counters.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Queries waiting for the next [`flush`](Engine::flush).
    pub fn pending_queries(&self) -> usize {
        self.pending.len()
    }

    /// Enqueues a query; answers arrive from [`flush`](Engine::flush).
    pub fn submit(&mut self, query: MultiplyQuery) -> SparseResult<QueryId> {
        let bound = self.bound.get(&query.matrix.0).ok_or_else(|| {
            SparseError::InvalidCsr(format!("matrix {:032x} is not registered", query.matrix.0))
        })?;
        if query.x.len() != bound.n as usize {
            return Err(SparseError::ShapeMismatch {
                left: (bound.n, 1),
                right: (query.x.len() as u32, 1),
            });
        }
        let id = QueryId(self.next_query);
        self.next_query += 1;
        self.pending.push(Pending { id, query });
        Ok(id)
    }

    /// Answers every pending query. Compatible queries — same matrix,
    /// same `iters`, same σ — are coalesced into multi-RHS runs of up to
    /// `max_batch` columns; responses are returned in submission order.
    pub fn flush(&mut self) -> SparseResult<Vec<QueryResponse>> {
        let pending = std::mem::take(&mut self.pending);
        if pending.is_empty() {
            return Ok(Vec::new());
        }
        // Group by (matrix, iters, σ identity), preserving arrival order
        // within each group.
        let mut groups: Vec<((u128, u32, usize), Vec<Pending>)> = Vec::new();
        for p in pending {
            let key = (
                p.query.matrix.0,
                p.query.iters,
                p.query.sigma.map(|f| f as usize).unwrap_or(0),
            );
            match groups.iter_mut().find(|(k, _)| *k == key) {
                Some((_, members)) => members.push(p),
                None => groups.push((key, vec![p])),
            }
        }
        let mut responses = Vec::new();
        for (_, members) in groups {
            for chunk in members.chunks(self.config.max_batch.max(1)) {
                responses.extend(self.run_batch(chunk)?);
            }
        }
        responses.sort_by_key(|r| r.id.0);
        Ok(responses)
    }

    fn run_batch(&mut self, chunk: &[Pending]) -> SparseResult<Vec<QueryResponse>> {
        let first = &chunk[0].query;
        let bound = self
            .bound
            .get(&first.matrix.0)
            .expect("submit validated registration");
        let n = bound.n;
        let k = chunk.len() as u32;
        // Columns side by side: query j is column j.
        let x = DenseMatrix::from_fn(n, k, |r, c| chunk[c as usize].query.x[r as usize]);
        let run = bound.algo.run_sigma(&x, first.iters, first.sigma)?;
        self.stats.runs += 1;
        self.stats.queries += chunk.len() as u64;
        self.stats.largest_batch = self.stats.largest_batch.max(chunk.len());
        Ok(chunk
            .iter()
            .enumerate()
            .map(|(j, p)| {
                let y = (0..n).map(|r| run.y.get(r, j as u32)).collect();
                QueryResponse {
                    id: p.id,
                    y,
                    batch_size: chunk.len(),
                }
            })
            .collect())
    }

    /// Runs one query immediately, bypassing the batcher (the unbatched
    /// baseline the serving example compares against).
    pub fn run_single(&mut self, query: MultiplyQuery) -> SparseResult<QueryResponse> {
        self.submit(query)?;
        let pending = self.pending.pop().expect("just submitted");
        let mut responses = self.run_batch(&[pending])?;
        Ok(responses.pop().expect("one response per query"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amd_graph::generators::basic;

    fn engine() -> Engine {
        Engine::new(EngineConfig {
            target_ranks: 4,
            ..EngineConfig::default()
        })
        .unwrap()
    }

    fn ring(n: u32) -> CsrMatrix<f64> {
        basic::cycle(n).to_adjacency()
    }

    #[test]
    fn register_is_idempotent() {
        let mut e = engine();
        let a = ring(64);
        let id1 = e.register(&a).unwrap();
        let id2 = e.register(&a).unwrap();
        assert_eq!(id1, id2);
        assert_eq!(e.cache_stats().decompositions, 1);
        assert!(e.chosen_algorithm(id1).is_some());
        assert_eq!(e.plan_report(id1).unwrap().len(), 4);
    }

    #[test]
    fn unregistered_matrix_rejected() {
        let mut e = engine();
        let q = MultiplyQuery {
            matrix: MatrixId(7),
            x: vec![0.0; 4],
            iters: 1,
            sigma: None,
        };
        assert!(e.submit(q).is_err());
    }

    #[test]
    fn wrong_operand_length_rejected() {
        let mut e = engine();
        let id = e.register(&ring(32)).unwrap();
        let q = MultiplyQuery {
            matrix: id,
            x: vec![0.0; 31],
            iters: 1,
            sigma: None,
        };
        assert!(e.submit(q).is_err());
    }

    #[test]
    fn batched_answers_match_reference() {
        let mut e = engine();
        let a = ring(48);
        let id = e.register(&a).unwrap();
        let queries: Vec<Vec<f64>> = (0..6)
            .map(|q| (0..48).map(|r| ((q * 7 + r) % 5) as f64 - 2.0).collect())
            .collect();
        for x in &queries {
            e.submit(MultiplyQuery {
                matrix: id,
                x: x.clone(),
                iters: 2,
                sigma: None,
            })
            .unwrap();
        }
        let responses = e.flush().unwrap();
        assert_eq!(responses.len(), 6);
        assert_eq!(e.stats().runs, 1, "compatible queries must share one run");
        for (q, resp) in responses.iter().enumerate() {
            assert_eq!(resp.batch_size, 6);
            let x = DenseMatrix::from_vec(48, 1, queries[q].clone()).unwrap();
            let want = amd_spmm::reference::iterated_spmm(&a, &x, 2).unwrap();
            assert_eq!(resp.y, want.data(), "query {q} mismatch");
        }
    }

    #[test]
    fn incompatible_queries_split_runs() {
        let mut e = engine();
        let id = e.register(&ring(32)).unwrap();
        let x = vec![1.0; 32];
        e.submit(MultiplyQuery {
            matrix: id,
            x: x.clone(),
            iters: 1,
            sigma: None,
        })
        .unwrap();
        e.submit(MultiplyQuery {
            matrix: id,
            x: x.clone(),
            iters: 2,
            sigma: None,
        })
        .unwrap();
        e.submit(MultiplyQuery {
            matrix: id,
            x,
            iters: 1,
            sigma: Some(relu),
        })
        .unwrap();
        let responses = e.flush().unwrap();
        assert_eq!(responses.len(), 3);
        assert_eq!(e.stats().runs, 3);
    }

    #[test]
    fn max_batch_caps_run_width() {
        let mut e = Engine::new(EngineConfig {
            target_ranks: 4,
            max_batch: 2,
            ..EngineConfig::default()
        })
        .unwrap();
        let id = e.register(&ring(32)).unwrap();
        for _ in 0..5 {
            e.submit(MultiplyQuery {
                matrix: id,
                x: vec![1.0; 32],
                iters: 1,
                sigma: None,
            })
            .unwrap();
        }
        let responses = e.flush().unwrap();
        assert_eq!(responses.len(), 5);
        assert_eq!(e.stats().runs, 3); // 2 + 2 + 1
        assert_eq!(e.stats().largest_batch, 2);
    }

    fn relu(v: f64) -> f64 {
        v.max(0.0)
    }

    #[test]
    fn sigma_batches_match_single_runs() {
        let mut e = engine();
        let a = ring(40);
        let id = e.register(&a).unwrap();
        let xs: Vec<Vec<f64>> = (0..4)
            .map(|q| (0..40).map(|r| ((q + r) % 7) as f64 - 3.0).collect())
            .collect();
        let singles: Vec<Vec<f64>> = xs
            .iter()
            .map(|x| {
                e.run_single(MultiplyQuery {
                    matrix: id,
                    x: x.clone(),
                    iters: 3,
                    sigma: Some(relu),
                })
                .unwrap()
                .y
            })
            .collect();
        for x in &xs {
            e.submit(MultiplyQuery {
                matrix: id,
                x: x.clone(),
                iters: 3,
                sigma: Some(relu),
            })
            .unwrap();
        }
        let batched = e.flush().unwrap();
        for (single, resp) in singles.iter().zip(&batched) {
            assert_eq!(
                single, &resp.y,
                "batched σ run must bit-match the single run"
            );
        }
    }
}
