//! The cost-model planner: predict per-iteration cost for every
//! candidate algorithm and bind the winner.
//!
//! Candidates are the four distributed algorithms of `amd_spmm`. Each is
//! *constructed* (planning its distribution — cheap relative to running)
//! and asked for its [`CommEstimate`]; the
//! planner converts estimates to seconds under a [`CostModel`] and picks
//! the minimum. This mirrors the paper's §6 comparison — arrow wins
//! precisely when the decomposition is narrow (low arrow width, strong
//! compaction), while structure-oblivious baselines win on matrices the
//! arrow decomposition handles poorly (e.g. wide dense bands that spill
//! across many levels).

use amd_comm::CostModel;
use amd_graph::Graph;
use amd_partition::{hype_partition, HypeConfig};
use amd_sparse::{CsrMatrix, Dtype, SparseResult};
use amd_spmm::{best_c, A15dSpmm, A2dSpmm, ArrowSpmm, CommEstimate, DistSpmm, Hp1dSpmm};
use arrow_core::ArrowDecomposition;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Planner knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlannerConfig {
    /// Cost model converting volume/latency/flops to seconds.
    pub cost: CostModel,
    /// Rank budget for the structure-oblivious baselines (the arrow
    /// algorithm's rank count is fixed by the decomposition).
    pub target_ranks: u32,
    /// RHS column count the prediction is evaluated at (the engine plans
    /// for its typical batch width).
    pub k_hint: u32,
    /// Seed for the HYPE partition of the HP-1D candidate.
    pub partition_seed: u64,
    /// Serving precision every candidate is constructed with: `f32`
    /// halves the bytes each candidate's estimate charges per value
    /// moved, and the bound winner runs its local multiplies at that
    /// precision.
    pub dtype: Dtype,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        Self {
            cost: CostModel::default(),
            target_ranks: 16,
            k_hint: 8,
            partition_seed: 0x9a27,
            dtype: Dtype::default(),
        }
    }
}

/// One candidate's predicted cost.
#[derive(Debug, Clone)]
pub struct Prediction {
    /// Algorithm label (`DistSpmm::name`).
    pub name: String,
    /// Rank count of the candidate's plan.
    pub ranks: u32,
    /// The per-iteration estimate.
    pub estimate: CommEstimate,
    /// `estimate` under the planner's cost model, scaled by the
    /// oversubscription factor `max(1, ranks / target_ranks)`: a plan
    /// wanting more ranks than the deployment has must time-share them,
    /// so its per-iteration cost inflates proportionally. (The arrow
    /// plan's rank count is fixed by the decomposition — `Σᵢ ⌈active_nᵢ
    /// / b⌉` — and explodes when a matrix decomposes badly, e.g. a wide
    /// dense band at a small width; this is exactly the signal that
    /// should push the planner to a structure-oblivious baseline.)
    pub seconds: f64,
}

/// The planner's decision: the winning algorithm plus the full ranking
/// (sorted ascending by predicted seconds) for reporting.
pub struct Plan {
    /// The algorithm bound for this matrix.
    pub algo: Box<dyn DistSpmm + Send + Sync>,
    /// Name of the winner (= `predictions[0].name`).
    pub chosen: String,
    /// All candidates, cheapest first.
    pub predictions: Vec<Prediction>,
}

/// Plans the serving algorithm for `a` given its decomposition.
///
/// All four candidates are constructed and ranked; ties break toward the
/// earlier candidate in the order arrow, 1.5D, 2D, HP-1D.
pub fn plan(
    a: &CsrMatrix<f64>,
    d: &ArrowDecomposition,
    config: &PlannerConfig,
) -> SparseResult<Plan> {
    let k = config.k_hint.max(1);
    let p = config.target_ranks.max(1);
    let mut candidates: Vec<(Box<dyn DistSpmm + Send + Sync>, CommEstimate)> = Vec::new();

    let arrow = ArrowSpmm::new(d)?
        .with_cost(config.cost)
        .with_dtype(config.dtype);
    let est = arrow.predict_volume(k);
    candidates.push((Box::new(arrow), est));

    let a15 = A15dSpmm::new(a, p, best_c(p))?
        .with_cost(config.cost)
        .with_dtype(config.dtype);
    let est = a15.predict_volume(k);
    candidates.push((Box::new(a15), est));

    let q = (p as f64).sqrt().round().max(1.0) as u32;
    let a2 = A2dSpmm::new(a, q * q)?
        .with_cost(config.cost)
        .with_dtype(config.dtype);
    let est = a2.predict_volume(k);
    candidates.push((Box::new(a2), est));

    let g = Graph::from_matrix_structure(a);
    let mut rng = ChaCha8Rng::seed_from_u64(config.partition_seed);
    let part = hype_partition(&g, p, &HypeConfig::default(), &mut rng);
    let hp = Hp1dSpmm::new(a, &part)?
        .with_cost(config.cost)
        .with_dtype(config.dtype);
    let est = hp.predict_volume(k);
    candidates.push((Box::new(hp), est));

    // Stable sort keeps the candidate order on ties.
    let mut indexed: Vec<(usize, f64)> = candidates
        .iter()
        .enumerate()
        .map(|(i, (algo, est))| {
            let oversubscription = (algo.ranks() as f64 / p as f64).max(1.0);
            (i, est.predicted_seconds(&config.cost) * oversubscription)
        })
        .collect();
    indexed.sort_by(|x, y| x.1.total_cmp(&y.1));

    let predictions: Vec<Prediction> = indexed
        .iter()
        .map(|&(i, seconds)| {
            let (algo, estimate) = &candidates[i];
            Prediction {
                name: algo.name(),
                ranks: algo.ranks(),
                estimate: *estimate,
                seconds,
            }
        })
        .collect();
    let winner_idx = indexed[0].0;
    // Take the winner out without cloning trait objects.
    let algo = candidates.swap_remove(winner_idx).0;
    let chosen = predictions[0].name.clone();
    Ok(Plan {
        algo,
        chosen,
        predictions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use amd_graph::generators::{basic, rmat};
    use amd_sparse::CooMatrix;
    use arrow_core::{la_decompose, DecomposeConfig, RandomForestLa};

    fn decompose(a: &CsrMatrix<f64>, b: u32) -> ArrowDecomposition {
        la_decompose(
            a,
            &DecomposeConfig::with_width(b),
            &mut RandomForestLa::new(3),
        )
        .unwrap()
    }

    /// Symmetric dense band: all entries with `0 < |i − j| ≤ w`.
    fn band(n: u32, w: u32) -> CsrMatrix<f64> {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            for j in (i + 1)..=(i + w).min(n - 1) {
                coo.push_sym(i, j, 1.0).unwrap();
            }
        }
        coo.to_csr()
    }

    #[test]
    fn star_graph_selects_arrow() {
        // A star has arrow width 1: the decomposition is a single narrow
        // level, while every baseline must still move dense X tiles.
        let a: CsrMatrix<f64> = basic::star(600).to_adjacency();
        let d = decompose(&a, 32);
        let plan = plan(&a, &d, &PlannerConfig::default()).unwrap();
        assert!(
            plan.chosen.starts_with("Arrow"),
            "expected Arrow on a star, planner chose {} ({:?})",
            plan.chosen,
            plan.predictions
                .iter()
                .map(|p| (p.name.clone(), p.seconds))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn rmat_graph_selects_arrow() {
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let g = rmat::rmat(9, 8, rmat::RmatParams::graph500(), &mut rng);
        let a: CsrMatrix<f64> = g.to_adjacency();
        let d = decompose(&a, 32);
        // Bandwidth-bound regime — the §6 comparison the decomposition is
        // designed for. (At this toy scale the default model is α- and
        // flop-dominated, which drowns the volume signal.)
        let config = PlannerConfig {
            cost: CostModel {
                alpha: 1e-7,
                beta: 1e-9,
                compute_rate: 5e9,
            },
            target_ranks: 24,
            ..PlannerConfig::default()
        };
        let plan = plan(&a, &d, &config).unwrap();
        assert!(
            plan.chosen.starts_with("Arrow"),
            "expected Arrow on R-MAT, planner chose {}",
            plan.chosen
        );
        // The arrow plan's predicted max per-rank volume is also the
        // smallest outright.
        let arrow_bytes = plan.predictions[0].estimate.max_rank_bytes;
        for p in &plan.predictions[1..] {
            assert!(arrow_bytes < p.estimate.max_rank_bytes);
        }
    }

    #[test]
    fn dense_band_selects_non_arrow_baseline() {
        // A wide dense band decomposed at a much smaller width spills
        // across many levels: per-level collectives and inter-level
        // routing make the predicted arrow volume worse than a
        // structure-oblivious baseline.
        let a = band(600, 48);
        let d = decompose(&a, 8);
        assert!(
            d.order() > 2,
            "band should spill across levels, got {}",
            d.order()
        );
        let plan = plan(&a, &d, &PlannerConfig::default()).unwrap();
        assert!(
            !plan.chosen.starts_with("Arrow"),
            "expected a baseline on a dense band, planner chose {} ({:?})",
            plan.chosen,
            plan.predictions
                .iter()
                .map(|p| (p.name.clone(), p.seconds))
                .collect::<Vec<_>>()
        );
        // The arrow prediction itself must rank it worse than the winner.
        let arrow_pred = plan
            .predictions
            .iter()
            .find(|p| p.name.starts_with("Arrow"))
            .expect("arrow is always a candidate");
        assert!(arrow_pred.seconds > plan.predictions[0].seconds);
    }

    #[test]
    fn predictions_are_sorted_and_complete() {
        let a: CsrMatrix<f64> = basic::cycle(200).to_adjacency();
        let d = decompose(&a, 16);
        let plan = plan(&a, &d, &PlannerConfig::default()).unwrap();
        assert_eq!(plan.predictions.len(), 4);
        for w in plan.predictions.windows(2) {
            assert!(w[0].seconds <= w[1].seconds);
        }
        assert_eq!(plan.chosen, plan.predictions[0].name);
    }
}
