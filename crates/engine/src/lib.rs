//! # amd-engine — a batched SpMM serving engine
//!
//! The paper's workflow (§5, §7) decomposes a matrix **once** and
//! amortizes that cost over many SpMM iterations. This crate turns that
//! shape into a serving subsystem:
//!
//! * [`DecompositionCache`] — an LRU keyed by
//!   [`CsrMatrix::fingerprint`](amd_sparse::CsrMatrix::fingerprint),
//!   write-through persisted into the versioned
//!   [`arrow_core::catalog`] (lineage-tracked version chains) so warm
//!   restarts skip LA-Decompose entirely,
//! * [`planner`] — predicts per-iteration cost for every distributed
//!   algorithm from its planned distribution
//!   ([`DistSpmm::predict_volume`](amd_spmm::DistSpmm::predict_volume))
//!   under the α-β [`CostModel`](amd_comm::CostModel), and binds the
//!   winner per matrix,
//! * [`Engine`] — registration plus a request batcher that coalesces
//!   compatible multiply queries into one multi-RHS run; batching is
//!   exact (bit-identical to per-query runs) because every algorithm
//!   computes output columns independently,
//! * [`attribution`] — per-query cost attribution closing the loop on
//!   the planner: every run's accounted [`MachineStats`]
//!   (`amd_comm::MachineStats`) is folded against its prediction
//!   (`engine.plan.*`, `engine.algo.<slug>.*` calibration counters, a
//!   per-rank volume histogram, and a rank-agreement check), and every
//!   [`QueryResponse`] carries the [`QueryCost`] of the run that
//!   answered it.
//!
//! [`MachineStats`]: amd_comm::MachineStats
//!
//! For **mutating** matrices the engine additionally supports a sparse
//! delta overlay ([`Engine::set_delta`]) — runs are answered as
//! `A₀ + ΔA` through [`amd_spmm::DeltaSpmm`] without re-decomposing —
//! and a staleness [`Engine::refresh`] that rebinds a matrix to its
//! compacted successor (new fingerprint, fresh decomposition through the
//! cache, full planner re-ranking, version carried forward). The
//! `amd-stream` crate drives both from a budgeted update stream.
//!
//! Bindings have a full lifecycle: [`Engine::deregister`] drops one
//! (refusing while it still owns pending queries, releasing its cache
//! reference once no other binding shares the content), and
//! [`Engine::flush_owned`] drains just the queries registered under one
//! salt — the per-tenant flush of a multi-tenant holder.
//!
//! ```
//! use amd_engine::{Engine, EngineConfig, MultiplyQuery};
//! use amd_graph::generators::basic;
//! use amd_sparse::CsrMatrix;
//!
//! let a: CsrMatrix<f64> = basic::star(64).to_adjacency();
//! let mut engine = Engine::new(EngineConfig::default()).unwrap();
//! let id = engine.register(&a).unwrap();          // decompose + plan once
//! for q in 0..8 {
//!     let x = (0..64).map(|r| ((q + r) % 5) as f64).collect();
//!     engine.submit(MultiplyQuery { matrix: id, x, iters: 2, sigma: None }).unwrap();
//! }
//! let answers = engine.flush().unwrap();          // one 8-column run
//! assert_eq!(answers.len(), 8);
//! assert_eq!(engine.stats().runs, 1);
//! ```

pub mod attribution;
pub mod cache;
pub mod engine;
pub mod planner;

pub use attribution::{algo_slug, AttributionMetrics, QueryCost, RunAttribution};
pub use cache::{CacheStats, DecompositionCache};
pub use engine::{
    Engine, EngineConfig, EngineStats, MatrixId, MultiplyQuery, QueryId, QueryResponse,
    RefreshTicket,
};
pub use planner::{plan, Plan, PlannerConfig, Prediction};

// Incremental-refresh vocabulary, re-exported so serving layers can
// configure the policy and read outcomes without a direct
// `arrow_core` dependency.
pub use arrow_core::incremental::{FallbackReason, IncrementalPolicy, RefreshOutcome};
