//! Time-series recorder: periodic snapshot deltas as JSONL.
//!
//! A [`TimeSeriesRecorder`] owns a baseline [`Snapshot`] and, on each
//! [`sample`](TimeSeriesRecorder::sample), emits one single-line JSON
//! document (`"schema": "amd-metrics-ts/1"`) describing the **window**
//! since the previous sample: windowed rates (queries/s, updates/s,
//! refreshes/s) derived from counter deltas, windowed multiply-latency
//! quantiles derived from histogram *bucket* deltas (so a p99 line
//! reflects only the window, not the whole run), plus the cumulative
//! counter values and the raw per-window deltas for downstream
//! consumers (the CLI `top` dashboard tails this log).
//!
//! The recorder is resilient to the registry changing shape between
//! samples: a counter that disappears and reappears smaller (tenant
//! eviction recycling a namespace) clamps its delta to zero instead of
//! underflowing, and a zero-width window reports zero rates rather
//! than dividing by zero.
//!
//! ```
//! use amd_obs::{Registry, TimeSeriesRecorder, parse_ts_line};
//!
//! let r = Registry::new();
//! let mut ts = TimeSeriesRecorder::new(&r);
//! r.counter("engine.queries").add(30);
//! let line = ts.sample_at(2.0);
//! let point = parse_ts_line(&line).unwrap();
//! assert_eq!(point.qps, 15.0);
//! ```

use crate::json::{parse_json, JsonValue, JsonWriter};
use crate::registry::{MetricValue, Registry, Snapshot};
use crate::Stopwatch;

/// Schema marker of one time-series line.
pub const TS_SCHEMA: &str = "amd-metrics-ts/1";

/// Emits one JSONL line per sampling interval — see the [module
/// docs](self).
pub struct TimeSeriesRecorder {
    registry: Registry,
    sw: Stopwatch,
    seq: u64,
    last: Snapshot,
    last_t: f64,
}

impl TimeSeriesRecorder {
    /// A recorder over `registry` with an empty baseline: the first
    /// sample's window covers everything since construction.
    pub fn new(registry: &Registry) -> Self {
        Self {
            registry: registry.clone(),
            sw: Stopwatch::start(),
            seq: 0,
            last: Snapshot::default(),
            last_t: 0.0,
        }
    }

    /// Samples now (wall clock since construction) and returns the
    /// line, **without** a trailing newline.
    pub fn sample(&mut self) -> String {
        let t = self.sw.elapsed_seconds();
        self.sample_at(t)
    }

    /// Samples at an explicit timestamp (seconds since the recorder's
    /// epoch) — the deterministic entry point tests use. A timestamp
    /// at or before the previous sample yields a zero-width window
    /// (all rates zero); deltas are still taken against the previous
    /// snapshot.
    pub fn sample_at(&mut self, t_seconds: f64) -> String {
        let snap = self.registry.snapshot();
        let window = (t_seconds - self.last_t).max(0.0);
        let line = render_line(self.seq, t_seconds, window, &snap, &self.last);
        self.last = snap;
        self.last_t = t_seconds;
        self.seq += 1;
        line
    }
}

fn counter_of(snap: &Snapshot, name: &str) -> u64 {
    match snap.get(name) {
        Some(MetricValue::Counter(v)) | Some(MetricValue::Gauge(v)) => *v,
        _ => 0,
    }
}

/// Windowed rate: `delta / window`, zero for an empty window.
fn rate(delta: u64, window: f64) -> f64 {
    if window > 0.0 {
        delta as f64 / window
    } else {
        0.0
    }
}

fn render_line(seq: u64, t: f64, window: f64, cur: &Snapshot, prev: &Snapshot) -> String {
    let delta = |name: &str| counter_of(cur, name).saturating_sub(counter_of(prev, name));
    let mut w = JsonWriter::compact_object();
    w.field_str("schema", TS_SCHEMA);
    w.field_u64("seq", seq);
    w.field_f64("t_seconds", t);
    w.field_f64("window_seconds", window);
    w.field_f64("qps", rate(delta("engine.queries"), window));
    w.field_f64("runs_per_s", rate(delta("engine.runs"), window));
    w.field_f64("updates_per_s", rate(delta("hub.updates"), window));
    w.field_f64(
        "refreshes_per_s",
        rate(delta("hub.refreshes_completed"), window),
    );
    // Windowed multiply latency from histogram bucket deltas: the
    // quantiles of just this window's samples.
    let mult = cur
        .histogram("multiply.seconds")
        .unwrap_or_default()
        .delta(&prev.histogram("multiply.seconds").unwrap_or_default());
    w.field_u64("multiply_window_count", mult.count);
    w.field_f64("multiply_p50_ms", mult.p50 as f64 / 1e6);
    w.field_f64("multiply_p99_ms", mult.p99 as f64 / 1e6);
    // Cumulative counter/gauge values (zeros omitted) …
    w.begin_object("counters");
    for (name, value) in cur.metrics() {
        match value {
            MetricValue::Counter(v) | MetricValue::Gauge(v) if *v > 0 => w.field_u64(name, *v),
            _ => {}
        }
    }
    w.end_object();
    // … and the raw per-window counter deltas (nonzero only).
    w.begin_object("deltas");
    for (name, value) in cur.metrics() {
        if let MetricValue::Counter(_) = value {
            let d = delta(name);
            if d > 0 {
                w.field_u64(name, d);
            }
        }
    }
    w.end_object();
    w.finish()
}

/// One parsed time-series line.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TsPoint {
    /// Sample index, 0-based.
    pub seq: u64,
    /// Seconds since the recorder's epoch.
    pub t_seconds: f64,
    /// Width of the window this line describes, in seconds.
    pub window_seconds: f64,
    /// Queries per second over the window.
    pub qps: f64,
    /// Engine runs per second over the window.
    pub runs_per_s: f64,
    /// Hub updates per second over the window.
    pub updates_per_s: f64,
    /// Completed refreshes per second over the window.
    pub refreshes_per_s: f64,
    /// Multiply samples inside the window.
    pub multiply_window_count: u64,
    /// Windowed multiply latency median in milliseconds.
    pub multiply_p50_ms: f64,
    /// Windowed multiply latency p99 in milliseconds.
    pub multiply_p99_ms: f64,
    /// Cumulative counter/gauge values at sample time (zeros omitted).
    pub counters: Vec<(String, u64)>,
    /// Per-window counter deltas (nonzero only).
    pub deltas: Vec<(String, u64)>,
}

impl TsPoint {
    /// A cumulative counter's value at sample time (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |&(_, v)| v)
    }
}

/// Parses one line of the time-series log (the inverse of
/// [`TimeSeriesRecorder::sample`]). Rejects documents whose schema
/// marker is not [`TS_SCHEMA`].
pub fn parse_ts_line(line: &str) -> Result<TsPoint, String> {
    let doc = parse_json(line.trim())?;
    match doc.get("schema").and_then(JsonValue::as_str) {
        Some(s) if s == TS_SCHEMA => {}
        other => return Err(format!("not a time-series line (schema = {other:?})")),
    }
    let num = |key: &str| doc.get(key).and_then(JsonValue::as_f64).unwrap_or(0.0);
    let int = |key: &str| doc.get(key).and_then(JsonValue::as_u64).unwrap_or(0);
    let map = |key: &str| -> Vec<(String, u64)> {
        doc.get(key)
            .and_then(JsonValue::members)
            .map(|members| {
                members
                    .iter()
                    .filter_map(|(k, v)| v.as_u64().map(|n| (k.clone(), n)))
                    .collect()
            })
            .unwrap_or_default()
    };
    Ok(TsPoint {
        seq: int("seq"),
        t_seconds: num("t_seconds"),
        window_seconds: num("window_seconds"),
        qps: num("qps"),
        runs_per_s: num("runs_per_s"),
        updates_per_s: num("updates_per_s"),
        refreshes_per_s: num("refreshes_per_s"),
        multiply_window_count: int("multiply_window_count"),
        multiply_p50_ms: num("multiply_p50_ms"),
        multiply_p99_ms: num("multiply_p99_ms"),
        counters: map("counters"),
        deltas: map("deltas"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seconds_to_nanos;

    #[test]
    fn first_sample_windows_from_an_empty_baseline() {
        // Single snapshot: the first line's deltas are the cumulative
        // values — there is no earlier sample to subtract.
        let r = Registry::new();
        r.counter("engine.queries").add(10);
        let mut ts = TimeSeriesRecorder::new(&r);
        let p = parse_ts_line(&ts.sample_at(2.0)).unwrap();
        assert_eq!(p.seq, 0);
        assert_eq!(p.window_seconds, 2.0);
        assert_eq!(p.qps, 5.0);
        assert_eq!(p.counter("engine.queries"), 10);
        assert_eq!(p.deltas, vec![("engine.queries".to_string(), 10)]);
    }

    #[test]
    fn empty_window_reports_zero_rates() {
        let r = Registry::new();
        let mut ts = TimeSeriesRecorder::new(&r);
        let _ = ts.sample_at(1.0);
        r.counter("engine.queries").add(100);
        // Same timestamp again: zero-width window, rates must be 0 (not
        // NaN/inf) even though the counters moved.
        let p = parse_ts_line(&ts.sample_at(1.0)).unwrap();
        assert_eq!(p.window_seconds, 0.0);
        assert_eq!(p.qps, 0.0);
        assert_eq!(p.deltas, vec![("engine.queries".to_string(), 100)]);
    }

    #[test]
    fn counter_rollback_across_snapshot_gaps_clamps() {
        // A namespace removed and re-created smaller (tenant eviction
        // then re-admission) must clamp the delta at zero, not wrap.
        let r = Registry::new();
        r.counter("hub.tenant.1.updates").add(50);
        let mut ts = TimeSeriesRecorder::new(&r);
        let _ = ts.sample_at(1.0);
        r.remove_prefix("hub.tenant.1.");
        r.counter("hub.tenant.1.updates").add(3);
        let p = parse_ts_line(&ts.sample_at(2.0)).unwrap();
        assert!(
            p.deltas.iter().all(|(n, _)| n != "hub.tenant.1.updates"),
            "rolled-back counter leaked a delta: {:?}",
            p.deltas
        );
        assert_eq!(p.counter("hub.tenant.1.updates"), 3);
    }

    #[test]
    fn windowed_p99_reflects_only_the_window() {
        let r = Registry::new();
        let h = r.histogram("multiply.seconds");
        h.record(seconds_to_nanos(1.0)); // 1 s outlier before the window
        let mut ts = TimeSeriesRecorder::new(&r);
        let _ = ts.sample_at(1.0);
        for _ in 0..100 {
            h.record(seconds_to_nanos(0.001));
        }
        let p = parse_ts_line(&ts.sample_at(2.0)).unwrap();
        assert_eq!(p.multiply_window_count, 100);
        assert!(
            p.multiply_p99_ms < 10.0,
            "old outlier leaked into the windowed p99: {} ms",
            p.multiply_p99_ms
        );
    }

    #[test]
    fn lines_round_trip_and_sequence() {
        let r = Registry::new();
        r.counter("engine.queries").add(1);
        r.gauge("engine.largest_batch").set(4);
        let mut ts = TimeSeriesRecorder::new(&r);
        let lines = [ts.sample_at(1.0), ts.sample_at(2.0)];
        for (i, line) in lines.iter().enumerate() {
            assert!(!line.contains('\n'), "JSONL line has a newline");
            let p = parse_ts_line(line).unwrap();
            assert_eq!(p.seq, i as u64);
            assert_eq!(p.counter("engine.largest_batch"), 4);
        }
        // Second window saw no movement.
        let p = parse_ts_line(&lines[1]).unwrap();
        assert_eq!(p.qps, 0.0);
        assert!(p.deltas.is_empty());
        // Non-schema documents are rejected.
        assert!(parse_ts_line("{\"schema\": \"amd-metrics/1\"}").is_err());
        assert!(parse_ts_line("not json").is_err());
    }
}
