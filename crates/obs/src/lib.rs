//! # amd-obs — unified telemetry for the arrow-matrix serving stack
//!
//! One dependency-free observability layer shared by every crate in the
//! workspace: the engine, the streaming hub, the persistence catalog,
//! and the CLI all record into the same three primitives.
//!
//! * [`Registry`] — a cheap-to-clone, thread-safe registry of named
//!   [`Counter`]s, [`Gauge`]s, and [`Histogram`]s. Handles are `Arc`ed
//!   atomics: recording is a single atomic RMW, and a handle stays
//!   valid (and cheap) no matter how many clones exist. A registry
//!   [snapshot](Registry::snapshot) serializes to JSON with a
//!   hand-rolled writer, read back by [`parse_json`] (the workspace
//!   builds offline — no serde).
//! * [`Histogram`] — log-bucketed (powers of two) latency histograms.
//!   Values are `u64` (the convention throughout the workspace is
//!   **nanoseconds** for durations); the snapshot exposes
//!   count/sum/max and p50/p90/p99 derived from the bucket walk.
//! * [`Tracer`] — span-based structured tracing into a bounded ring
//!   buffer of [`TraceEvent`]s. Spans have parents, so one background
//!   refresh produces a retrievable tree: `refresh` → `queued` →
//!   `decompose` → `commit`, with instantaneous events (`trip`,
//!   `grant`, `splice`, …) hanging off the same root.
//! * [`Stopwatch`] — the single wall-clock measurement type. Every
//!   timing site in the workspace reads one stopwatch and feeds the
//!   result to *both* its consumer (adaptive budgets, bench reports)
//!   and the matching histogram, so no duration is measured twice.
//! * [`timeseries`] — a JSONL recorder of periodic snapshot deltas
//!   (`"schema": "amd-metrics-ts/1"`) with windowed rates and windowed
//!   latency quantiles derived from counter/histogram-bucket deltas.
//! * [`chrome`] — a Chrome Trace Event Format exporter over the tracer
//!   ring (tenant lanes, parent nesting, orphan re-rooting after ring
//!   eviction), loadable in Perfetto / `chrome://tracing`.
//!
//! [`Telemetry`] bundles one registry and one tracer; layers share it
//! by cloning (`Engine::telemetry()`, `StreamHub::telemetry()`).
//! [`Telemetry::disabled`] yields no-op handles whose record calls
//! compile to a branch on a `None` — the `obs_overhead` bench holds
//! the instrumented stack to < 3% against this baseline.
//!
//! ```
//! use amd_obs::Telemetry;
//!
//! let t = Telemetry::new();
//! let queries = t.registry.counter("engine.queries");
//! let lat = t.registry.histogram("multiply.seconds");
//! queries.inc();
//! lat.record_seconds(0.002);
//!
//! let root = t.tracer.start("refresh", amd_obs::SpanId::NONE, Some(7));
//! let child = t.tracer.start("decompose", root, Some(7));
//! t.tracer.end(child);
//! t.tracer.end(root);
//!
//! let snap = t.registry.snapshot();
//! assert_eq!(snap.counter("engine.queries"), Some(1));
//! assert!(snap.to_json().contains("\"multiply.seconds\""));
//! assert_eq!(t.tracer.snapshot().len(), 2);
//! ```

pub mod chrome;
mod json;
mod registry;
pub mod timeseries;
mod trace;

pub use chrome::{chrome_trace_json, format_span_tree};
pub use json::{parse_json, JsonValue, JsonWriter};
pub use registry::{Counter, Gauge, Histogram, HistogramSnapshot, MetricValue, Registry, Snapshot};
pub use timeseries::{parse_ts_line, TimeSeriesRecorder, TsPoint, TS_SCHEMA};
pub use trace::{SpanId, TraceEvent, Tracer};

use std::time::Instant;

/// One registry + one tracer: the telemetry bundle a serving layer
/// owns and shares downwards. Cloning is cheap (two `Arc`s) and every
/// clone observes the same metrics and events.
#[derive(Clone)]
pub struct Telemetry {
    /// Named counters, gauges, and histograms.
    pub registry: Registry,
    /// The span/event ring buffer.
    pub tracer: Tracer,
}

impl Telemetry {
    /// Default tracer ring capacity (completed events retained).
    pub const DEFAULT_TRACE_CAPACITY: usize = 4096;

    /// A live telemetry bundle with the default trace capacity.
    pub fn new() -> Self {
        Self {
            registry: Registry::new(),
            tracer: Tracer::new(Self::DEFAULT_TRACE_CAPACITY),
        }
    }

    /// A no-op bundle: every handle it yields skips recording. This is
    /// the uninstrumented baseline of the `obs_overhead` bench.
    pub fn disabled() -> Self {
        Self {
            registry: Registry::disabled(),
            tracer: Tracer::disabled(),
        }
    }

    /// `false` when built by [`disabled`](Self::disabled).
    pub fn is_enabled(&self) -> bool {
        self.registry.is_enabled()
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new()
    }
}

/// The workspace's single wall-clock measurement type. Wraps
/// [`Instant`] so call sites never touch `std::time` directly, and the
/// one measured duration can feed both a consumer (adaptive budget,
/// bench JSON) and a [`Histogram`].
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    t0: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Self {
        Self { t0: Instant::now() }
    }

    /// Elapsed wall-clock seconds since [`start`](Self::start).
    pub fn elapsed_seconds(&self) -> f64 {
        self.t0.elapsed().as_secs_f64()
    }

    /// Elapsed wall-clock nanoseconds, saturating at `u64::MAX`.
    pub fn elapsed_nanos(&self) -> u64 {
        u64::try_from(self.t0.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// Converts a duration in seconds to the nanosecond `u64` convention
/// used by every duration histogram (saturating, negatives clamp to 0).
pub fn seconds_to_nanos(seconds: f64) -> u64 {
    if seconds <= 0.0 {
        return 0;
    }
    let nanos = seconds * 1e9;
    if nanos >= u64::MAX as f64 {
        u64::MAX
    } else {
        nanos as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_measures_forward() {
        let sw = Stopwatch::start();
        let a = sw.elapsed_nanos();
        let b = sw.elapsed_nanos();
        assert!(b >= a);
        assert!(sw.elapsed_seconds() >= 0.0);
    }

    #[test]
    fn seconds_to_nanos_clamps() {
        assert_eq!(seconds_to_nanos(-1.0), 0);
        assert_eq!(seconds_to_nanos(0.0), 0);
        assert_eq!(seconds_to_nanos(1.0), 1_000_000_000);
        assert_eq!(seconds_to_nanos(f64::INFINITY), u64::MAX);
    }

    #[test]
    fn disabled_telemetry_is_inert() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        let c = t.registry.counter("x");
        c.add(5);
        assert_eq!(c.get(), 0);
        let h = t.registry.histogram("y");
        h.record(10);
        assert_eq!(h.count(), 0);
        let s = t.tracer.start("span", SpanId::NONE, None);
        t.tracer.end(s);
        assert!(t.tracer.snapshot().is_empty());
        assert!(t.registry.snapshot().metrics().is_empty());
    }
}
