//! Dependency-free JSON: a tiny writer (used by
//! [`Snapshot::to_json`](crate::Snapshot::to_json)) and a minimal
//! recursive-descent parser (used by the CLI `stats` subcommand and
//! the metrics-smoke tests to read snapshots back). The workspace
//! builds offline, so serde is not an option.

use std::fmt::Write as _;

/// An incremental writer for one JSON object (optionally nested one
/// level deep — all the snapshot schema needs). Keys are escaped;
/// values are unsigned integers, floats, raw fragments, or strings.
pub struct JsonWriter {
    buf: String,
    /// Pending-comma state per open scope (outer object, inner object).
    first: Vec<bool>,
    /// Compact mode emits no newlines or indentation — one line per
    /// document, the JSONL convention of the time-series log.
    compact: bool,
}

impl JsonWriter {
    /// Starts a top-level object (pretty-printed).
    pub fn object() -> Self {
        Self {
            buf: String::from("{"),
            first: vec![true],
            compact: false,
        }
    }

    /// Starts a top-level object emitted on a single line (JSONL).
    pub fn compact_object() -> Self {
        Self {
            buf: String::from("{"),
            first: vec![true],
            compact: true,
        }
    }

    fn key(&mut self, name: &str) {
        let first = self.first.last_mut().expect("writer scope open");
        if *first {
            *first = false;
        } else {
            self.buf.push(',');
        }
        if !self.compact {
            self.buf.push('\n');
            for _ in 0..self.first.len() {
                self.buf.push_str("  ");
            }
        }
        self.buf.push('"');
        escape_into(&mut self.buf, name);
        self.buf.push_str("\": ");
    }

    /// Writes `"name": value`.
    pub fn field_u64(&mut self, name: &str, value: u64) {
        self.key(name);
        let _ = write!(self.buf, "{value}");
    }

    /// Writes `"name": value` for a float. Non-finite values (which
    /// JSON cannot represent) are written as `null`.
    pub fn field_f64(&mut self, name: &str, value: f64) {
        self.key(name);
        if value.is_finite() {
            // Rust's `Display` for f64 never uses exponent notation and
            // round-trips, so the output is always a valid JSON number.
            let _ = write!(self.buf, "{value}");
        } else {
            self.buf.push_str("null");
        }
    }

    /// Writes `"name": "value"`.
    pub fn field_str(&mut self, name: &str, value: &str) {
        self.key(name);
        self.buf.push('"');
        escape_into(&mut self.buf, value);
        self.buf.push('"');
    }

    /// Writes `"name": <raw>` where `raw` is a pre-serialized JSON
    /// fragment (an array, a nested document). The caller guarantees
    /// validity; this is the escape hatch for the few schema corners —
    /// histogram bucket lists, trace event arrays — that outgrow the
    /// writer's one-level object model.
    pub fn field_raw(&mut self, name: &str, raw: &str) {
        self.key(name);
        self.buf.push_str(raw);
    }

    /// Opens a nested object under `name`.
    pub fn begin_object(&mut self, name: &str) {
        self.key(name);
        self.buf.push('{');
        self.first.push(true);
    }

    /// Closes the innermost nested object.
    pub fn end_object(&mut self) {
        assert!(self.first.len() > 1, "no nested object open");
        let empty = self.first.pop() == Some(true);
        if !empty && !self.compact {
            self.buf.push('\n');
            for _ in 0..self.first.len() {
                self.buf.push_str("  ");
            }
        }
        self.buf.push('}');
    }

    /// Closes the top-level object and returns the document.
    pub fn finish(mut self) -> String {
        assert_eq!(self.first.len(), 1, "nested object left open");
        if self.first[0] || self.compact {
            self.buf.push('}');
        } else {
            self.buf.push_str("\n}");
        }
        if !self.compact {
            self.buf.push('\n');
        }
        self.buf
    }
}

fn escape_into(buf: &mut String, s: &str) {
    for ch in s.chars() {
        match ch {
            '"' => buf.push_str("\\\""),
            '\\' => buf.push_str("\\\\"),
            '\n' => buf.push_str("\\n"),
            '\r' => buf.push_str("\\r"),
            '\t' => buf.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(buf, "\\u{:04x}", c as u32);
            }
            c => buf.push(c),
        }
    }
}

/// A parsed JSON value. Numbers are kept as `f64` (metric values stay
/// well inside the exact-integer range of a double).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object; insertion order preserved.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member lookup on an object (`None` otherwise).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a float, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The object's members, if it is an object.
    pub fn members(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(m) => Some(m),
            _ => None,
        }
    }
}

/// Parses one JSON document. Errors carry the byte offset and a short
/// description.
pub fn parse_json(input: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| format!("invalid number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err("truncated \\u escape".to_string());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| "invalid \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "invalid \\u escape".to_string())?;
                            self.pos += 4;
                            // Surrogate pairs are outside the snapshot
                            // schema; map them to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos - 1)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8".to_string())?;
                    let ch = rest.chars().next().expect("peeked non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_emits_valid_nested_json() {
        let mut w = JsonWriter::object();
        w.field_u64("a", 1);
        w.begin_object("h");
        w.field_u64("count", 2);
        w.end_object();
        w.field_str("name", "x\"y");
        let doc = w.finish();
        let v = parse_json(&doc).unwrap();
        assert_eq!(v.get("a").and_then(JsonValue::as_u64), Some(1));
        assert_eq!(
            v.get("h")
                .and_then(|h| h.get("count"))
                .and_then(JsonValue::as_u64),
            Some(2)
        );
        assert_eq!(v.get("name").and_then(JsonValue::as_str), Some("x\"y"));
    }

    #[test]
    fn compact_writer_emits_one_line() {
        let mut w = JsonWriter::compact_object();
        w.field_u64("a", 1);
        w.field_f64("rate", 2.5);
        w.field_f64("bad", f64::NAN);
        w.field_raw("pairs", "[[1, 2], [3, 4]]");
        w.begin_object("inner");
        w.field_str("k", "v");
        w.end_object();
        let doc = w.finish();
        assert!(!doc.contains('\n'), "compact doc has a newline: {doc:?}");
        let v = parse_json(&doc).unwrap();
        assert_eq!(v.get("a").and_then(JsonValue::as_u64), Some(1));
        assert_eq!(v.get("rate").and_then(JsonValue::as_f64), Some(2.5));
        assert_eq!(v.get("bad"), Some(&JsonValue::Null));
        match v.get("pairs") {
            Some(JsonValue::Arr(items)) => assert_eq!(items.len(), 2),
            other => panic!("expected array, got {other:?}"),
        }
        assert_eq!(
            v.get("inner")
                .and_then(|i| i.get("k"))
                .and_then(JsonValue::as_str),
            Some("v")
        );
    }

    #[test]
    fn empty_object_round_trips() {
        let doc = JsonWriter::object().finish();
        assert_eq!(parse_json(&doc).unwrap(), JsonValue::Obj(vec![]));
    }

    #[test]
    fn parser_handles_the_grammar() {
        let v = parse_json(
            r#"{"s": "a\nb", "n": -1.5e2, "b": true, "z": null, "arr": [1, 2, {"k": 3}]}"#,
        )
        .unwrap();
        assert_eq!(v.get("s").and_then(JsonValue::as_str), Some("a\nb"));
        assert_eq!(v.get("n").and_then(JsonValue::as_f64), Some(-150.0));
        assert_eq!(v.get("b"), Some(&JsonValue::Bool(true)));
        assert_eq!(v.get("z"), Some(&JsonValue::Null));
        match v.get("arr") {
            Some(JsonValue::Arr(items)) => {
                assert_eq!(items.len(), 3);
                assert_eq!(items[2].get("k").and_then(JsonValue::as_u64), Some(3));
            }
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_json("").is_err());
        assert!(parse_json("{").is_err());
        assert!(parse_json("{\"a\": 1} x").is_err());
        assert!(parse_json("{\"a\" 1}").is_err());
        assert!(parse_json("[1, ]").is_err());
    }

    #[test]
    fn as_u64_is_strict() {
        assert_eq!(JsonValue::Num(3.0).as_u64(), Some(3));
        assert_eq!(JsonValue::Num(3.5).as_u64(), None);
        assert_eq!(JsonValue::Num(-1.0).as_u64(), None);
        assert_eq!(JsonValue::Str("3".into()).as_u64(), None);
    }
}
