//! Chrome Trace Event Format export of the [`Tracer`] ring.
//!
//! [`chrome_trace_json`] renders a tracer snapshot as a JSON document
//! loadable in Perfetto / `chrome://tracing`: completed spans become
//! `"ph": "X"` (complete) events, instantaneous events become
//! `"ph": "i"` (instant) events, and every tenant gets its own lane —
//! `tid 0` is the engine/hub lane, tenant `t` renders on `tid t + 1`,
//! with `"M"` metadata events naming the lanes. Timestamps are the
//! tracer's nanosecond clock converted to the format's microseconds
//! (fractional, so sub-microsecond spans survive).
//!
//! **Orphan handling.** The tracer ring is bounded: when it wraps, the
//! oldest completed events are dropped — and because a parent span is
//! pushed when it *ends*, a long-lived root can be evicted while its
//! children survive (or simply still be open). Surviving children whose
//! parent id is absent from the snapshot are re-rooted: exported as
//! top-level events (`args.parent = 0`) instead of dangling references
//! into the evicted past. The viewer still nests them correctly on the
//! time axis; nothing points at an event that does not exist.
//!
//! [`Tracer`]: crate::Tracer

use crate::json::JsonWriter;
use crate::trace::TraceEvent;
use std::collections::HashSet;
use std::fmt::Write as _;

/// Lane (Chrome `tid`) of an event: tenants get their own lanes above
/// the shared engine/hub lane 0.
fn lane(tenant: Option<u64>) -> u64 {
    tenant.map_or(0, |t| t.saturating_add(1))
}

/// Renders a tracer snapshot (see [`Tracer::snapshot`]) as one Chrome
/// Trace Event Format document. Events whose parent was evicted from
/// the ring are emitted as top-level (see the [module docs](self)).
///
/// [`Tracer::snapshot`]: crate::Tracer::snapshot
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let present: HashSet<u64> = events.iter().map(|e| e.id).collect();
    let mut lanes: Vec<(u64, Option<u64>)> = Vec::new();
    for e in events {
        let l = lane(e.tenant);
        if !lanes.iter().any(|&(id, _)| id == l) {
            lanes.push((l, e.tenant));
        }
    }
    lanes.sort_unstable();

    let mut items: Vec<String> = Vec::new();
    // Process/lane names first: metadata events the viewers read.
    items.push(meta_event("process_name", 0, "arrow-matrix"));
    for &(l, tenant) in &lanes {
        let name = match tenant {
            None => "engine/hub".to_string(),
            Some(t) => format!("tenant {t}"),
        };
        items.push(meta_event("thread_name", l, &name));
    }
    for e in events {
        // Orphan handling: a parent id that is not in this snapshot
        // (ring-evicted or still open) re-roots the child.
        let parent = if e.parent != 0 && present.contains(&e.parent) {
            e.parent
        } else {
            0
        };
        let mut w = JsonWriter::compact_object();
        w.field_str("name", e.name);
        w.field_str("ph", if e.duration_nanos > 0 { "X" } else { "i" });
        w.field_u64("pid", 0);
        w.field_u64("tid", lane(e.tenant));
        w.field_f64("ts", e.start_nanos as f64 / 1e3);
        if e.duration_nanos > 0 {
            w.field_f64("dur", e.duration_nanos as f64 / 1e3);
        } else {
            // Thread-scoped instant: renders as a tick on its lane.
            w.field_str("s", "t");
        }
        w.begin_object("args");
        w.field_u64("id", e.id);
        w.field_u64("parent", parent);
        if !e.detail.is_empty() {
            w.field_str("detail", &e.detail);
        }
        w.end_object();
        items.push(w.finish());
    }

    let mut out = String::from("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n");
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str("  ");
        out.push_str(item);
    }
    out.push_str("\n]}\n");
    out
}

fn meta_event(kind: &str, tid: u64, name: &str) -> String {
    let mut w = JsonWriter::compact_object();
    w.field_str("name", kind);
    w.field_str("ph", "M");
    w.field_u64("pid", 0);
    w.field_u64("tid", tid);
    w.begin_object("args");
    w.field_str("name", name);
    w.end_object();
    w.finish()
}

/// Debug-formats the span forest of a snapshot (indented, parents
/// before children) — a cheap textual check that the export preserved
/// the tree. Orphaned children appear at the top level, mirroring
/// [`chrome_trace_json`].
pub fn format_span_tree(events: &[TraceEvent]) -> String {
    let present: HashSet<u64> = events.iter().map(|e| e.id).collect();
    let mut out = String::new();
    fn visit(events: &[TraceEvent], parent: u64, depth: usize, out: &mut String) {
        for e in events.iter().filter(|e| e.parent == parent) {
            for _ in 0..depth {
                out.push_str("  ");
            }
            let _ = writeln!(out, "{} ({} ns)", e.name, e.duration_nanos);
            visit(events, e.id, depth + 1, out);
        }
    }
    // Roots: parent 0, or parent evicted from the ring.
    for e in events {
        if e.parent == 0 || !present.contains(&e.parent) {
            let _ = writeln!(out, "{} ({} ns)", e.name, e.duration_nanos);
            visit(events, e.id, 1, &mut out);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse_json, JsonValue};
    use crate::trace::{SpanId, Tracer};

    fn events_of(doc: &JsonValue) -> Vec<&JsonValue> {
        match doc.get("traceEvents") {
            Some(JsonValue::Arr(items)) => items.iter().collect(),
            other => panic!("traceEvents missing: {other:?}"),
        }
    }

    #[test]
    fn export_nests_spans_and_lanes() {
        let t = Tracer::new(16);
        let root = t.start("refresh", SpanId::NONE, Some(3));
        t.event("grant", root, Some(3), "slot=0".to_string());
        let child = t.start("decompose", root, Some(3));
        t.end(child);
        t.end_with(root, "committed".to_string());

        let json = chrome_trace_json(&t.snapshot());
        let doc = parse_json(&json).expect("well-formed trace JSON");
        let events = events_of(&doc);
        // 1 process_name + 1 lane + 3 events.
        assert_eq!(events.len(), 5);

        let by_name = |name: &str| {
            events
                .iter()
                .find(|e| e.get("name").and_then(JsonValue::as_str) == Some(name))
                .copied()
                .unwrap_or_else(|| panic!("no event {name}"))
        };
        let refresh = by_name("refresh");
        assert_eq!(refresh.get("ph").and_then(JsonValue::as_str), Some("X"));
        assert_eq!(refresh.get("tid").and_then(JsonValue::as_u64), Some(4));
        let refresh_id = refresh
            .get("args")
            .and_then(|a| a.get("id"))
            .and_then(JsonValue::as_u64)
            .unwrap();
        let decompose = by_name("decompose");
        assert_eq!(
            decompose
                .get("args")
                .and_then(|a| a.get("parent"))
                .and_then(JsonValue::as_u64),
            Some(refresh_id)
        );
        let grant = by_name("grant");
        assert_eq!(grant.get("ph").and_then(JsonValue::as_str), Some("i"));
        assert_eq!(grant.get("s").and_then(JsonValue::as_str), Some("t"));
        // The child renders inside the parent on the time axis.
        let ts = |e: &JsonValue, k: &str| e.get(k).and_then(JsonValue::as_f64).unwrap_or(0.0);
        assert!(ts(refresh, "ts") <= ts(decompose, "ts"));
        assert!(
            ts(refresh, "ts") + ts(refresh, "dur") >= ts(decompose, "ts") + ts(decompose, "dur")
        );
        // Lane metadata names the tenant.
        let lane_meta = events
            .iter()
            .find(|e| {
                e.get("ph").and_then(JsonValue::as_str) == Some("M")
                    && e.get("tid").and_then(JsonValue::as_u64) == Some(4)
            })
            .expect("tenant lane metadata");
        assert_eq!(
            lane_meta
                .get("args")
                .and_then(|a| a.get("name"))
                .and_then(JsonValue::as_str),
            Some("tenant 3")
        );
    }

    #[test]
    fn wrapped_ring_reroots_orphaned_children() {
        // Regression: a tiny ring evicts the oldest completed events.
        // End children first, then the root, then overflow the ring so
        // the *root* is dropped while late children survive — their
        // parent id must not dangle in the export.
        let t = Tracer::new(3);
        let root = t.start("refresh", SpanId::NONE, Some(1));
        let c1 = t.start("decompose", root, Some(1));
        t.end(c1);
        t.end(root); // ring: [decompose, refresh]
        let c2 = t.start("splice-late", SpanId(root.0), Some(1));
        t.end(c2); // ring: [decompose, refresh, splice-late]
        for _ in 0..2 {
            t.event("filler", SpanId::NONE, None, String::new());
        }
        // Ring (cap 3): [splice-late, filler, filler] — root evicted.
        assert!(t.dropped() >= 2);
        let snapshot = t.snapshot();
        assert!(
            !snapshot.iter().any(|e| e.id == root.0),
            "test setup: root must be evicted"
        );
        let orphan_parent = snapshot
            .iter()
            .find(|e| e.name == "splice-late")
            .map(|e| e.parent)
            .expect("child survived");
        assert_eq!(orphan_parent, root.0, "child still references the root");

        let json = chrome_trace_json(&snapshot);
        let doc = parse_json(&json).expect("well-formed trace JSON");
        let present: Vec<u64> = events_of(&doc)
            .iter()
            .filter_map(|e| e.get("args").and_then(|a| a.get("id")))
            .filter_map(JsonValue::as_u64)
            .collect();
        for e in events_of(&doc) {
            let Some(parent) = e
                .get("args")
                .and_then(|a| a.get("parent"))
                .and_then(JsonValue::as_u64)
            else {
                continue; // metadata events carry no args.parent
            };
            assert!(
                parent == 0 || present.contains(&parent),
                "dangling parent {parent} in export"
            );
        }
        // The orphan is top-level in the formatted forest too.
        let forest = format_span_tree(&snapshot);
        assert!(
            forest.lines().any(|l| l.starts_with("splice-late")),
            "orphan not re-rooted:\n{forest}"
        );
    }

    #[test]
    fn empty_snapshot_exports_cleanly() {
        let json = chrome_trace_json(&[]);
        let doc = parse_json(&json).expect("well-formed trace JSON");
        assert_eq!(events_of(&doc).len(), 1); // just process_name
    }
}
