//! The metrics registry: named counters, gauges, and log-bucketed
//! histograms behind a cheap `Arc` handle.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are clonable
//! `Arc`ed atomics — recording is lock-free; the registry lock is
//! taken only on get-or-create and snapshot. A disabled registry
//! ([`Registry::disabled`]) hands out no-op handles whose record calls
//! branch on an empty `Option` and return.

use crate::json::JsonWriter;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of power-of-two histogram buckets (`u64` bit-lengths 0..=63).
const BUCKETS: usize = 64;

/// A monotonically increasing `u64` metric.
#[derive(Clone, Default)]
pub struct Counter {
    cell: Option<Arc<AtomicU64>>,
}

impl Counter {
    /// A no-op counter (what a disabled registry hands out; also the
    /// `Default`, so structs of handles can derive `Default`).
    pub fn noop() -> Self {
        Self { cell: None }
    }

    fn live() -> Self {
        Self {
            cell: Some(Arc::new(AtomicU64::new(0))),
        }
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.cell {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value (0 for a no-op counter).
    pub fn get(&self) -> u64 {
        self.cell.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A `u64` metric that can move both ways (plus a max-tracking update
/// for high-water marks like the largest batch).
#[derive(Clone, Default)]
pub struct Gauge {
    cell: Option<Arc<AtomicU64>>,
}

impl Gauge {
    /// A no-op gauge.
    pub fn noop() -> Self {
        Self { cell: None }
    }

    fn live() -> Self {
        Self {
            cell: Some(Arc::new(AtomicU64::new(0))),
        }
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, v: u64) {
        if let Some(c) = &self.cell {
            c.store(v, Ordering::Relaxed);
        }
    }

    /// Raises the value to `v` if `v` is larger (high-water mark).
    #[inline]
    pub fn record_max(&self, v: u64) {
        if let Some(c) = &self.cell {
            c.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Current value (0 for a no-op gauge).
    pub fn get(&self) -> u64 {
        self.cell.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

struct HistogramCell {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl HistogramCell {
    fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// Bucket index of a value: its bit length, so bucket `i` covers
/// `[2^(i-1), 2^i)` (bucket 0 holds exactly 0).
#[inline]
fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Upper bound of bucket `i` — the value a quantile resolves to. The
/// last bucket also absorbs clamped 64-bit-length values, so its upper
/// bound is `u64::MAX`.
fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A log-bucketed (powers of two) `u64` histogram. Durations are
/// recorded in **nanoseconds**; with 64 buckets the dynamic range
/// covers sub-nanosecond to centuries, and any quantile is exact to
/// within a factor of two — plenty for latency SLOs.
#[derive(Clone, Default)]
pub struct Histogram {
    cell: Option<Arc<HistogramCell>>,
}

impl Histogram {
    /// A no-op histogram.
    pub fn noop() -> Self {
        Self { cell: None }
    }

    fn live() -> Self {
        Self {
            cell: Some(Arc::new(HistogramCell::new())),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        if let Some(c) = &self.cell {
            // bucket_of(v) is at most 64, but index 64 can't happen:
            // bit length 64 needs the top bit set, and the guard below
            // folds it into the last bucket.
            let b = bucket_of(v).min(BUCKETS - 1);
            c.buckets[b].fetch_add(1, Ordering::Relaxed);
            c.count.fetch_add(1, Ordering::Relaxed);
            c.sum.fetch_add(v, Ordering::Relaxed);
            c.max.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Records a duration in seconds (converted to nanoseconds).
    #[inline]
    pub fn record_seconds(&self, seconds: f64) {
        if self.cell.is_some() {
            self.record(crate::seconds_to_nanos(seconds));
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.cell
            .as_ref()
            .map_or(0, |c| c.count.load(Ordering::Relaxed))
    }

    /// Sum of observations (saturating in practice: wrap needs 2^64).
    pub fn sum(&self) -> u64 {
        self.cell
            .as_ref()
            .map_or(0, |c| c.sum.load(Ordering::Relaxed))
    }

    /// Largest observation.
    pub fn max(&self) -> u64 {
        self.cell
            .as_ref()
            .map_or(0, |c| c.max.load(Ordering::Relaxed))
    }

    /// The value at quantile `q` in `[0, 1]`: the upper bound of the
    /// first bucket whose cumulative count reaches `ceil(q · count)`.
    /// 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let Some(c) = &self.cell else { return 0 };
        let count = c.count.load(Ordering::Relaxed);
        if count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in c.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_upper(i).min(self.max());
            }
        }
        self.max()
    }

    /// A point-in-time summary (count, sum, max, p50/p90/p99/p999, and
    /// the populated buckets).
    pub fn summarize(&self) -> HistogramSnapshot {
        let buckets = match &self.cell {
            None => Vec::new(),
            Some(c) => c
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, b)| {
                    let n = b.load(Ordering::Relaxed);
                    (n > 0).then(|| (bucket_upper(i), n))
                })
                .collect(),
        };
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            max: self.max(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
            p999: self.quantile(0.999),
            buckets,
        }
    }
}

/// A point-in-time histogram summary. All fields share the unit of the
/// recorded values (nanoseconds for duration histograms).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Largest observation (exact).
    pub max: u64,
    /// Median, exact to within a factor of two (bucket upper bound).
    pub p50: u64,
    /// 90th percentile (bucket upper bound).
    pub p90: u64,
    /// 99th percentile (bucket upper bound).
    pub p99: u64,
    /// 99.9th percentile (bucket upper bound).
    pub p999: u64,
    /// The populated buckets as `(upper_bound, count)` pairs, ascending
    /// by bound (empty buckets omitted). This is the full distribution:
    /// windowed quantiles are derived from the *difference* of two
    /// snapshots' bucket counts (see [`delta`](Self::delta)).
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// The value at quantile `q` recomputed from the snapshot's
    /// buckets: the upper bound of the first bucket whose cumulative
    /// count reaches `ceil(q · total)`, clamped to `max`. 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let total: u64 = self.buckets.iter().map(|&(_, n)| n).sum();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for &(upper, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return upper.min(self.max);
            }
        }
        self.max
    }

    /// The windowed view `self − earlier`: what was recorded between
    /// the two snapshots. Counts subtract saturating per bucket (a
    /// counter that moved backwards — e.g. a metric namespace removed
    /// and re-created — clamps to an empty window rather than
    /// underflowing). `max` and the quantiles are recomputed from the
    /// bucket deltas, so `max` is the window's *bucket upper bound*,
    /// exact only to within a factor of two.
    pub fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets: Vec<(u64, u64)> = Vec::new();
        for &(upper, n) in &self.buckets {
            let before = earlier
                .buckets
                .iter()
                .find(|&&(u, _)| u == upper)
                .map_or(0, |&(_, n0)| n0);
            let d = n.saturating_sub(before);
            if d > 0 {
                buckets.push((upper, d));
            }
        }
        let mut out = HistogramSnapshot {
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            max: self.max,
            buckets,
            ..HistogramSnapshot::default()
        };
        out.max = out.quantile(1.0);
        out.p50 = out.quantile(0.50);
        out.p90 = out.quantile(0.90);
        out.p99 = out.quantile(0.99);
        out.p999 = out.quantile(0.999);
        out
    }
}

enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A snapshot value of one named metric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// A counter's current value.
    Counter(u64),
    /// A gauge's current value.
    Gauge(u64),
    /// A histogram summary.
    Histogram(HistogramSnapshot),
}

/// A point-in-time copy of every metric in a [`Registry`], sorted by
/// name. Serializes to the metrics-JSON schema documented in the
/// README: counters and gauges as bare numbers, histograms as objects
/// with `count`/`sum`/`max`/`p50`/`p90`/`p99` fields.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    metrics: Vec<(String, MetricValue)>,
}

impl Snapshot {
    /// All metrics, sorted by name.
    pub fn metrics(&self) -> &[(String, MetricValue)] {
        &self.metrics
    }

    /// Looks up a metric by exact name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.metrics
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| &self.metrics[i].1)
    }

    /// A counter's value, if `name` is a counter.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name)? {
            MetricValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// A gauge's value, if `name` is a gauge.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        match self.get(name)? {
            MetricValue::Gauge(v) => Some(*v),
            _ => None,
        }
    }

    /// A histogram's summary, if `name` is a histogram.
    pub fn histogram(&self, name: &str) -> Option<HistogramSnapshot> {
        match self.get(name)? {
            MetricValue::Histogram(h) => Some(h.clone()),
            _ => None,
        }
    }

    /// Serializes to the metrics-JSON schema: one flat object keyed by
    /// metric name, preceded by a `"schema": "amd-metrics/1"` marker so
    /// consumers can reject files that are not snapshots. Deterministic
    /// (keys sorted, integer values only).
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::object();
        w.field_str("schema", "amd-metrics/1");
        for (name, value) in &self.metrics {
            match value {
                MetricValue::Counter(v) | MetricValue::Gauge(v) => w.field_u64(name, *v),
                MetricValue::Histogram(h) => {
                    w.begin_object(name);
                    w.field_u64("count", h.count);
                    w.field_u64("sum", h.sum);
                    w.field_u64("max", h.max);
                    w.field_u64("p50", h.p50);
                    w.field_u64("p90", h.p90);
                    w.field_u64("p99", h.p99);
                    w.field_u64("p999", h.p999);
                    // Explicit bucket bounds: `[[upper, count], …]`,
                    // empty buckets omitted. Readers that predate this
                    // field ignore it (the schema stays amd-metrics/1 —
                    // additive fields only).
                    let mut pairs = String::from("[");
                    for (i, (upper, n)) in h.buckets.iter().enumerate() {
                        if i > 0 {
                            pairs.push_str(", ");
                        }
                        let _ = write!(pairs, "[{upper}, {n}]");
                    }
                    pairs.push(']');
                    w.field_raw("buckets", &pairs);
                    w.end_object();
                }
            }
        }
        w.finish()
    }
}

struct RegistryInner {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

/// A thread-safe, cheap-to-clone registry of named metrics.
///
/// Names are dotted paths (`hub.tenant.3.updates`,
/// `multiply.seconds`); the `.seconds` suffix marks nanosecond
/// duration histograms by convention. Get-or-create is idempotent:
/// every caller asking for the same name receives a handle onto the
/// same cell, which is how the `*Stats` structs stay views over one
/// set of counters instead of parallel bookkeeping.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Option<Arc<RegistryInner>>,
}

impl Registry {
    /// A live registry.
    pub fn new() -> Self {
        Self {
            inner: Some(Arc::new(RegistryInner {
                metrics: Mutex::new(BTreeMap::new()),
            })),
        }
    }

    /// A registry whose handles are all no-ops (zero recording cost
    /// beyond a branch). Snapshots of a disabled registry are empty.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// `false` for a [`disabled`](Self::disabled) registry.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn lock(&self) -> Option<std::sync::MutexGuard<'_, BTreeMap<String, Metric>>> {
        self.inner
            .as_ref()
            .map(|i| i.metrics.lock().expect("obs registry poisoned"))
    }

    /// Get-or-create the counter `name`. Panics if `name` already
    /// exists as a different metric kind (a naming bug, not a load
    /// condition).
    pub fn counter(&self, name: &str) -> Counter {
        let Some(mut m) = self.lock() else {
            return Counter::noop();
        };
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter::live()))
        {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Get-or-create the gauge `name` (same kind rules as
    /// [`counter`](Self::counter)).
    pub fn gauge(&self, name: &str) -> Gauge {
        let Some(mut m) = self.lock() else {
            return Gauge::noop();
        };
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge::live()))
        {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Get-or-create the histogram `name` (same kind rules as
    /// [`counter`](Self::counter)).
    pub fn histogram(&self, name: &str) -> Histogram {
        let Some(mut m) = self.lock() else {
            return Histogram::noop();
        };
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::live()))
        {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Drops every metric whose name starts with `prefix` (used when a
    /// tenant is evicted: its `hub.tenant.<id>.*` namespace goes away;
    /// outstanding handles keep working but record into orphaned
    /// cells). Returns how many were removed.
    pub fn remove_prefix(&self, prefix: &str) -> usize {
        let Some(mut m) = self.lock() else { return 0 };
        let doomed: Vec<String> = m
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, _)| k.clone())
            .collect();
        for k in &doomed {
            m.remove(k);
        }
        doomed.len()
    }

    /// A point-in-time copy of every metric, sorted by name.
    pub fn snapshot(&self) -> Snapshot {
        let Some(m) = self.lock() else {
            return Snapshot::default();
        };
        Snapshot {
            metrics: m
                .iter()
                .map(|(name, metric)| {
                    let value = match metric {
                        Metric::Counter(c) => MetricValue::Counter(c.get()),
                        Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                        Metric::Histogram(h) => MetricValue::Histogram(h.summarize()),
                    };
                    (name.clone(), value)
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_round_trip() {
        let r = Registry::new();
        let c = r.counter("a.b");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name → same cell.
        assert_eq!(r.counter("a.b").get(), 5);

        let g = r.gauge("g");
        g.set(7);
        g.record_max(3);
        assert_eq!(g.get(), 7);
        g.record_max(11);
        assert_eq!(g.get(), 11);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::live();
        assert_eq!(h.quantile(0.5), 0);
        for v in [1u64, 2, 3, 4, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1110);
        assert_eq!(h.max(), 1000);
        // p50 rank = 3 → value 3 lives in bucket [2,4) → upper 3.
        assert_eq!(h.quantile(0.5), 3);
        // p99 rank = 6 → 1000 in bucket [512,1024) → upper 1023, but
        // clamped to the exact max.
        assert_eq!(h.quantile(0.99), 1000);
        // Quantile never exceeds max even for the last bucket.
        h.record(u64::MAX);
        assert_eq!(h.quantile(1.0), u64::MAX);
    }

    #[test]
    fn bucket_indexing_covers_the_range() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(62), (1u64 << 62) - 1);
        assert_eq!(bucket_upper(63), u64::MAX);
        assert_eq!(bucket_upper(64), u64::MAX);
    }

    #[test]
    fn snapshot_exposes_p999_and_buckets() {
        let h = Histogram::live();
        for v in [1u64, 2, 3, 4, 100, 1000] {
            h.record(v);
        }
        let s = h.summarize();
        assert_eq!(s.p999, s.max, "p999 clamps to the exact max");
        // Buckets: 1 → [1,1]; 2,3 → [3,2]; 4 → [7,1]; 100 → [127,1];
        // 1000 → [1023,1].
        assert_eq!(s.buckets, vec![(1, 1), (3, 2), (7, 1), (127, 1), (1023, 1)]);
        assert_eq!(s.buckets.iter().map(|&(_, n)| n).sum::<u64>(), s.count);
        // Quantiles recomputed from the bucket list match the cell's.
        assert_eq!(s.quantile(0.5), h.quantile(0.5));
        assert_eq!(s.quantile(0.99), h.quantile(0.99));
    }

    #[test]
    fn snapshot_delta_yields_windowed_quantiles() {
        let h = Histogram::live();
        h.record(1);
        h.record(1_000_000);
        let before = h.summarize();
        for _ in 0..99 {
            h.record(10);
        }
        h.record(5_000);
        let after = h.summarize();
        let window = after.delta(&before);
        assert_eq!(window.count, 100);
        assert_eq!(window.sum, 99 * 10 + 5_000);
        // The window never saw the old 1 ms outlier: its p99 reflects
        // only the new samples.
        assert!(window.p99 <= 8191, "windowed p99 = {}", window.p99);
        assert!(window.max <= 8191, "windowed max = {}", window.max);
        assert_eq!(window.p50, 15, "10 lands in bucket [8,16)");
        // Degenerate windows: identical snapshots → empty.
        let empty = after.delta(&after);
        assert_eq!(empty.count, 0);
        assert_eq!(empty.quantile(0.99), 0);
        // Backwards movement (snapshot order swapped) clamps, not wraps.
        let clamped = before.delta(&after);
        assert_eq!(clamped.count, 0);
        assert!(clamped.buckets.is_empty());
    }

    #[test]
    fn snapshot_is_sorted_and_queryable() {
        let r = Registry::new();
        r.counter("z").add(1);
        r.counter("a").add(2);
        r.histogram("h").record(5);
        let s = r.snapshot();
        let names: Vec<&str> = s.metrics().iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["a", "h", "z"]);
        assert_eq!(s.counter("a"), Some(2));
        assert_eq!(s.counter("missing"), None);
        assert_eq!(s.histogram("h").unwrap().count, 1);
        assert_eq!(s.histogram("a"), None);
    }

    #[test]
    fn snapshot_json_schema() {
        let r = Registry::new();
        r.counter("cache.hits").add(3);
        r.histogram("multiply.seconds").record_seconds(0.001);
        let json = r.snapshot().to_json();
        assert!(json.contains("\"cache.hits\": 3"));
        assert!(json.contains("\"multiply.seconds\": {"));
        assert!(json.contains("\"count\": 1"));
        // Round-trips through the parser.
        let v = crate::parse_json(&json).unwrap();
        assert_eq!(v.get("cache.hits").and_then(|x| x.as_u64()), Some(3));
        let h = v.get("multiply.seconds").unwrap();
        assert_eq!(h.get("count").and_then(|x| x.as_u64()), Some(1));
    }

    #[test]
    fn remove_prefix_scopes_to_the_namespace() {
        let r = Registry::new();
        r.counter("hub.tenant.1.updates").add(1);
        r.counter("hub.tenant.10.updates").add(1);
        r.counter("hub.updates").add(2);
        assert_eq!(r.remove_prefix("hub.tenant.1."), 1);
        let s = r.snapshot();
        assert_eq!(s.counter("hub.tenant.1.updates"), None);
        assert_eq!(s.counter("hub.tenant.10.updates"), Some(1));
        assert_eq!(s.counter("hub.updates"), Some(2));
    }

    #[test]
    fn handles_share_cells_across_threads() {
        let r = Registry::new();
        let c = r.counter("shared");
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(r.counter("shared").get(), 4000);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_conflicts_panic() {
        let r = Registry::new();
        r.counter("x");
        r.histogram("x");
    }
}
