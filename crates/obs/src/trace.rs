//! Span-based structured tracing into a bounded ring buffer.
//!
//! A [`Tracer`] records [`TraceEvent`]s: spans (start/end pairs with a
//! measured duration) and instantaneous events, each with an optional
//! parent span, so a background refresh leaves a retrievable tree —
//! `refresh` → (`trip`, `queued`, `grant`, `decompose`, `splice`,
//! `commit`) — across the hub thread and the worker pool. The ring
//! holds the most recent completed events; when it overflows, the
//! oldest are dropped and counted.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Identifier of an open or completed span. `SpanId::NONE` (0) means
/// "no parent"; real ids start at 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The absent parent.
    pub const NONE: SpanId = SpanId(0);

    /// `true` for a real span id (anything but [`NONE`](Self::NONE)).
    pub fn is_some(&self) -> bool {
        self.0 != 0
    }
}

/// One completed span or instantaneous event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// This event's id (unique within the tracer; 0 never appears).
    pub id: u64,
    /// Parent span id, 0 for roots.
    pub parent: u64,
    /// Static event name (`"refresh"`, `"decompose"`, `"grant"`, …).
    pub name: &'static str,
    /// The tenant this event belongs to, if any.
    pub tenant: Option<u64>,
    /// Nanoseconds since the tracer was created.
    pub start_nanos: u64,
    /// Span duration in nanoseconds; 0 for instantaneous events.
    pub duration_nanos: u64,
    /// Free-form detail (`"incremental"`, `"algo=arrow"`, …).
    pub detail: String,
}

struct OpenSpan {
    parent: u64,
    name: &'static str,
    tenant: Option<u64>,
    start: Instant,
    start_nanos: u64,
}

struct TracerInner {
    epoch: Instant,
    next_id: u64,
    open: HashMap<u64, OpenSpan>,
    ring: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl TracerInner {
    fn push(&mut self, event: TraceEvent) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(event);
    }
}

/// A cheap-to-clone handle onto one bounded event ring. Disabled
/// tracers ([`Tracer::disabled`]) accept every call and record
/// nothing.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<Mutex<TracerInner>>>,
}

impl Tracer {
    /// A live tracer retaining the most recent `capacity` completed
    /// events (at least 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Some(Arc::new(Mutex::new(TracerInner {
                epoch: Instant::now(),
                next_id: 1,
                open: HashMap::new(),
                ring: VecDeque::new(),
                capacity: capacity.max(1),
                dropped: 0,
            }))),
        }
    }

    /// A no-op tracer.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// `false` for a [`disabled`](Self::disabled) tracer.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn lock(&self) -> Option<std::sync::MutexGuard<'_, TracerInner>> {
        self.inner
            .as_ref()
            .map(|i| i.lock().expect("obs tracer poisoned"))
    }

    /// Opens a span. The returned id stays valid across threads (the
    /// hub opens `decompose`, the worker ends it). Returns
    /// [`SpanId::NONE`] on a disabled tracer.
    pub fn start(&self, name: &'static str, parent: SpanId, tenant: Option<u64>) -> SpanId {
        let Some(mut t) = self.lock() else {
            return SpanId::NONE;
        };
        let id = t.next_id;
        t.next_id += 1;
        let start = Instant::now();
        let start_nanos =
            u64::try_from(start.duration_since(t.epoch).as_nanos()).unwrap_or(u64::MAX);
        t.open.insert(
            id,
            OpenSpan {
                parent: parent.0,
                name,
                tenant,
                start,
                start_nanos,
            },
        );
        SpanId(id)
    }

    /// Closes a span with empty detail. Unknown or `NONE` ids are
    /// ignored (the span may predate a ring wrap or a disabled phase).
    pub fn end(&self, id: SpanId) {
        self.end_with(id, String::new());
    }

    /// Closes a span, attaching `detail`, and moves it to the ring.
    pub fn end_with(&self, id: SpanId, detail: String) {
        if !id.is_some() {
            return;
        }
        let Some(mut t) = self.lock() else { return };
        let Some(open) = t.open.remove(&id.0) else {
            return;
        };
        let duration_nanos = u64::try_from(open.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        t.push(TraceEvent {
            id: id.0,
            parent: open.parent,
            name: open.name,
            tenant: open.tenant,
            start_nanos: open.start_nanos,
            duration_nanos,
            detail,
        });
    }

    /// Records an instantaneous event under `parent`.
    pub fn event(&self, name: &'static str, parent: SpanId, tenant: Option<u64>, detail: String) {
        let Some(mut t) = self.lock() else { return };
        let id = t.next_id;
        t.next_id += 1;
        let start_nanos = u64::try_from(t.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX);
        t.push(TraceEvent {
            id,
            parent: parent.0,
            name,
            tenant,
            start_nanos,
            duration_nanos: 0,
            detail,
        });
    }

    /// The completed events, oldest first. Spans appear when they
    /// *end*, so a parent span usually follows its children; consumers
    /// reconstruct the tree through `parent` ids.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.lock()
            .map(|t| t.ring.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// How many completed events the ring has discarded.
    pub fn dropped(&self) -> u64 {
        self.lock().map(|t| t.dropped).unwrap_or(0)
    }

    /// Number of spans currently open (started, not yet ended).
    pub fn open_spans(&self) -> usize {
        self.lock().map(|t| t.open.len()).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_tree_is_reconstructible() {
        let t = Tracer::new(16);
        let root = t.start("refresh", SpanId::NONE, Some(3));
        t.event("trip", root, Some(3), "nnz=10".to_string());
        let child = t.start("decompose", root, Some(3));
        t.end_with(child, "incremental".to_string());
        t.end(root);

        let events = t.snapshot();
        assert_eq!(events.len(), 3);
        let trip = &events[0];
        assert_eq!(trip.name, "trip");
        assert_eq!(trip.parent, root.0);
        assert_eq!(trip.duration_nanos, 0);
        let dec = &events[1];
        assert_eq!(dec.name, "decompose");
        assert_eq!(dec.parent, root.0);
        assert_eq!(dec.detail, "incremental");
        let r = &events[2];
        assert_eq!(r.name, "refresh");
        assert_eq!(r.parent, 0);
        assert_eq!(r.tenant, Some(3));
        assert!(r.duration_nanos >= dec.duration_nanos);
        assert_eq!(t.open_spans(), 0);
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let t = Tracer::new(2);
        for _ in 0..4 {
            t.event("e", SpanId::NONE, None, String::new());
        }
        assert_eq!(t.snapshot().len(), 2);
        assert_eq!(t.dropped(), 2);
        // The survivors are the two newest.
        let ids: Vec<u64> = t.snapshot().iter().map(|e| e.id).collect();
        assert_eq!(ids, [3, 4]);
    }

    #[test]
    fn ending_twice_or_unknown_is_harmless() {
        let t = Tracer::new(4);
        let s = t.start("x", SpanId::NONE, None);
        t.end(s);
        t.end(s);
        t.end(SpanId(999));
        t.end(SpanId::NONE);
        assert_eq!(t.snapshot().len(), 1);
    }

    #[test]
    fn cross_clone_span_lifecycle() {
        let t = Tracer::new(4);
        let s = t.start("decompose", SpanId::NONE, Some(1));
        let t2 = t.clone();
        std::thread::spawn(move || t2.end(s)).join().unwrap();
        assert_eq!(t.snapshot().len(), 1);
        assert_eq!(t.snapshot()[0].name, "decompose");
    }
}
