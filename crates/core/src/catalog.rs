//! The versioned persistence catalog: one on-disk home for every
//! decomposition the serving stack keeps.
//!
//! Before this module each layer persisted its own way — the engine
//! cache spilled loose per-key files, the streaming holder overwrote a
//! single versioned file, and one-shot tools wrote bare payloads. A
//! [`Catalog`] unifies them: one directory, one manifest mapping
//! **content fingerprint → version chain**, shared by every consumer.
//!
//! ## Layout
//!
//! ```text
//! <root>/
//!   manifest.amdm            record list (rewritten last, atomically)
//!   amd3-<fp>-<id>.amd       one payload per version (AMD3: full
//!                            provenance header + decomposition)
//! ```
//!
//! Each [`VersionRecord`] carries the decompose identity (params +
//! seed), the **parent fingerprint** linking a refresh to the revision
//! it was spliced from (delta lineage), a catalog-wide **created-at**
//! counter, and the payload file name. Chains are keyed by fingerprint;
//! lineage edges connect chains across fingerprints, so a mutating
//! matrix's history is a parent-linked walk through the manifest.
//!
//! ## Crash safety
//!
//! Every write is temp-file + atomic rename, and the manifest is always
//! rewritten **last**: a crash between a payload landing and the
//! manifest rename leaves an orphan payload whose AMD3 header carries
//! its complete manifest record — [`Catalog::open`] adopts it. A
//! missing or corrupt manifest is rebuilt the same way, by scanning
//! payload headers (header-only reads; the level data is never parsed).
//!
//! ## Lifecycle
//!
//! [`Catalog::gc`] applies a [`RetainPolicy`]: keep the newest `last_k`
//! versions of every lineage, never dropping a fingerprint named live
//! (a serving binding still references it).
//! [`Catalog::remove_chain`] walks one lineage from its head and
//! deletes every version not shared with a live chain — the tenant
//! eviction path. [`Catalog::import_legacy_dir`] migrates pre-catalog
//! spill files (v1 per-key cache spills, v2 single-file streaming
//! persists) into proper chains, one-shot.

use crate::decomposition::ArrowDecomposition;
use crate::la_decompose::DecomposeConfig;
use crate::persist::{self, io_err, put_u64, CatalogMeta};
use amd_chaos::failpoint;
use amd_obs::{Counter, Histogram, Registry, Stopwatch};
use amd_sparse::{SparseError, SparseResult};
use std::collections::{HashMap, HashSet};
use std::fs::{self, File};
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

const MANIFEST: &str = "manifest.amdm";
const MANIFEST_MAGIC: &[u8; 4] = b"AMDM";
const PAYLOAD_EXT: &str = "amd";

/// One persisted decomposition version: a row of the manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VersionRecord {
    /// Content fingerprint of the decomposed matrix — the chain key.
    pub fingerprint: u128,
    /// Lineage revision (0 cold, +1 per refresh along the chain).
    /// Not necessarily unique within a lineage: an in-place patch
    /// flush persists a child under a new fingerprint at the *same*
    /// version; version lookups resolve to the newest match.
    pub version: u64,
    /// Fingerprint of the revision this one was refreshed from (0 =
    /// chain root). Lineage edges cross chains: a refresh produces a
    /// *new* fingerprint whose record points back at the old one.
    pub parent: u128,
    /// Catalog-wide monotonic creation counter.
    pub created_at: u64,
    /// Arrangement seed the decomposition was computed with.
    pub seed: u64,
    /// Decomposition parameters (arrow width, pruning, level cap).
    pub config: DecomposeConfig,
    /// Payload file name under the catalog root.
    pub payload: String,
}

impl VersionRecord {
    fn from_meta(meta: &CatalogMeta, payload: String) -> Self {
        Self {
            fingerprint: meta.fingerprint,
            version: meta.version,
            parent: meta.parent,
            created_at: meta.created_at,
            seed: meta.seed,
            config: meta.config,
            payload,
        }
    }

    /// `true` when this record answers a lookup for the given identity.
    fn matches(&self, fingerprint: u128, config: &DecomposeConfig, seed: u64) -> bool {
        self.fingerprint == fingerprint && self.config == *config && self.seed == seed
    }
}

/// What [`Catalog::gc`] keeps.
#[derive(Debug, Clone, Default)]
pub struct RetainPolicy {
    /// Newest versions kept per lineage (a lineage is the set of chains
    /// connected by parent edges). 0 keeps only live fingerprints.
    pub last_k: usize,
    /// Fingerprints that must survive regardless of age — the serving
    /// layer's currently bound revisions. Overrides `last_k`. Pins the
    /// named revisions only: ancestors beyond `last_k` are still
    /// collected (bounding history is the point of a GC sweep), so
    /// point-in-time restore reaches only retained versions afterwards.
    /// Eviction-driven removal ([`Catalog::remove_chain`]) is the
    /// opposite: it protects the full ancestor closure of live heads.
    pub live: Vec<u128>,
}

impl RetainPolicy {
    /// Keep the newest `last_k` versions per lineage (no live pins).
    pub fn last(last_k: usize) -> Self {
        Self {
            last_k,
            live: Vec::new(),
        }
    }
}

/// What a [`Catalog::gc`] sweep did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Versions removed (records and payload files).
    pub removed: usize,
    /// Versions kept.
    pub kept: usize,
}

/// A point-in-time view of the catalog's registry counters (see
/// [`Catalog::stats`]). Monotonic over the backing registry's
/// lifetime: a catalog opened with [`Catalog::open_with_registry`]
/// folds into the caller's `catalog.*` namespace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CatalogStats {
    /// Versions written ([`Catalog::put`] that landed a payload).
    pub puts: u64,
    /// Payloads loaded successfully ([`Catalog::get`] /
    /// [`Catalog::restore_at`] hits).
    pub loads: u64,
    /// Payloads that failed to load (corrupt/truncated/mismatched); the
    /// offending record is dropped so the caller's re-put heals it.
    pub load_failures: u64,
    /// Versions removed by [`Catalog::gc`] or [`Catalog::remove_chain`].
    pub removed: u64,
    /// Manifest records recovered by scanning payload headers (orphans
    /// from a crash window, or a full rebuild after manifest loss).
    pub recovered_records: u64,
    /// Legacy (v1/v2) files migrated by [`Catalog::import_legacy_dir`].
    pub imported: u64,
    /// Legacy files that could not be migrated (unreadable content or a
    /// failed catalog write); each is skipped and left in place —
    /// migration never takes the caller down.
    pub import_failures: u64,
    /// Stale `*.tmp` files swept by [`Catalog::open`] — the un-renamed
    /// half of an `atomic_write` interrupted by a crash. Never live
    /// data, so sweeping is always safe; before the sweep existed they
    /// leaked forever.
    pub stale_tmp_swept: u64,
}

/// The catalog's registry handles — one `catalog.*` namespace of
/// counters plus the I/O histograms. Every mutation path records here;
/// [`Catalog::stats`] is a fold over these cells.
struct CatalogMetrics {
    puts: Counter,
    loads: Counter,
    load_failures: Counter,
    removed: Counter,
    recovered_records: Counter,
    imported: Counter,
    import_failures: Counter,
    /// Payload bytes written by [`Catalog::put`].
    put_bytes: Counter,
    /// Payload bytes read back by loads (hits only).
    get_bytes: Counter,
    /// Payload bytes reclaimed by GC / chain removal.
    gc_bytes: Counter,
    /// Stale tmp files swept on open.
    stale_tmp_swept: Counter,
    /// Latency of each durable write's `fsync` (nanoseconds).
    fsync_seconds: Histogram,
}

impl CatalogMetrics {
    fn new(registry: &Registry) -> Self {
        Self {
            puts: registry.counter("catalog.puts"),
            loads: registry.counter("catalog.loads"),
            load_failures: registry.counter("catalog.load_failures"),
            removed: registry.counter("catalog.removed"),
            recovered_records: registry.counter("catalog.recovered_records"),
            imported: registry.counter("catalog.imported"),
            import_failures: registry.counter("catalog.import_failures"),
            put_bytes: registry.counter("catalog.put.bytes"),
            get_bytes: registry.counter("catalog.get.bytes"),
            gc_bytes: registry.counter("catalog.gc.bytes"),
            stale_tmp_swept: registry.counter("catalog.stale_tmp_swept"),
            fsync_seconds: registry.histogram("catalog.fsync.seconds"),
        }
    }
}

/// A versioned on-disk decomposition catalog. See the
/// [module docs](self).
pub struct Catalog {
    root: PathBuf,
    /// Manifest rows, ordered by `created_at` (ascending).
    records: Vec<VersionRecord>,
    next_created: u64,
    metrics: CatalogMetrics,
}

impl Catalog {
    /// Opens (creating if needed) the catalog rooted at `root`, with a
    /// private metrics registry. Reads the manifest, then reconciles it
    /// against the directory: records whose payload vanished are
    /// dropped, and payload files the manifest does not know (a crash
    /// between payload rename and manifest rewrite, or a lost manifest)
    /// are adopted from their AMD3 headers.
    pub fn open<P: Into<PathBuf>>(root: P) -> SparseResult<Self> {
        Self::open_with_registry(root, &Registry::new())
    }

    /// [`open`](Self::open), recording into the caller's `registry`
    /// under the `catalog.*` namespace — how the engine folds catalog
    /// I/O into its own telemetry.
    pub fn open_with_registry<P: Into<PathBuf>>(
        root: P,
        registry: &Registry,
    ) -> SparseResult<Self> {
        let root = root.into();
        fs::create_dir_all(&root).map_err(|e| {
            SparseError::InvalidCsr(format!("create catalog dir {}: {e}", root.display()))
        })?;
        let mut catalog = Self {
            root,
            records: Vec::new(),
            next_created: 1,
            metrics: CatalogMetrics::new(registry),
        };
        catalog.sweep_stale_tmp();
        let manifest_records = catalog.read_manifest().unwrap_or_default();
        let known: HashSet<&str> = manifest_records
            .iter()
            .map(|r| r.payload.as_str())
            .collect();
        let mut recovered = Vec::new();
        for name in catalog.payload_files()? {
            if known.contains(name.as_str()) {
                continue;
            }
            // Orphan payload: adopt it if (and only if) it carries a
            // full v3 header. Legacy files waiting for import and
            // unreadable debris are both left alone.
            let path = catalog.root.join(&name);
            if let Ok(file) = File::open(&path) {
                if let Ok(Some(meta)) = persist::peek_catalog_header(BufReader::new(file)) {
                    recovered.push(VersionRecord::from_meta(&meta, name));
                }
            }
        }
        catalog
            .metrics
            .recovered_records
            .add(recovered.len() as u64);
        let recovered_any = !recovered.is_empty();
        let mut records = manifest_records;
        records.extend(recovered);
        records.retain(|r| catalog.root.join(&r.payload).exists());
        records.sort_by_key(|r| r.created_at);
        records.dedup_by(|a, b| a.payload == b.payload);
        catalog.next_created = records.iter().map(|r| r.created_at).max().unwrap_or(0) + 1;
        catalog.records = records;
        if recovered_any {
            catalog.write_manifest()?;
        }
        Ok(catalog)
    }

    /// The catalog's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// A point-in-time fold of the catalog's registry counters.
    pub fn stats(&self) -> CatalogStats {
        CatalogStats {
            puts: self.metrics.puts.get(),
            loads: self.metrics.loads.get(),
            load_failures: self.metrics.load_failures.get(),
            removed: self.metrics.removed.get(),
            recovered_records: self.metrics.recovered_records.get(),
            imported: self.metrics.imported.get(),
            import_failures: self.metrics.import_failures.get(),
            stale_tmp_swept: self.metrics.stale_tmp_swept.get(),
        }
    }

    /// Total on-disk payload bytes of the versions currently
    /// catalogued (manifest excluded) — the CLI `catalog ls` summary.
    pub fn payload_bytes(&self) -> u64 {
        self.records
            .iter()
            .filter_map(|r| fs::metadata(self.root.join(&r.payload)).ok())
            .map(|m| m.len())
            .sum()
    }

    /// Number of versions in the manifest.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when the catalog holds no versions.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Every record, ordered by creation.
    pub fn records(&self) -> &[VersionRecord] {
        &self.records
    }

    /// Absolute path of a record's payload file.
    pub fn payload_path(&self, record: &VersionRecord) -> PathBuf {
        self.root.join(&record.payload)
    }

    /// The version chain of one fingerprint, ordered by creation.
    /// Usually a single record; multiple appear when the same content
    /// was decomposed under different params or seeds.
    pub fn versions(&self, fingerprint: u128) -> Vec<&VersionRecord> {
        self.records
            .iter()
            .filter(|r| r.fingerprint == fingerprint)
            .collect()
    }

    /// The record answering a full identity lookup, if present.
    pub fn record(
        &self,
        fingerprint: u128,
        config: &DecomposeConfig,
        seed: u64,
    ) -> Option<&VersionRecord> {
        self.records
            .iter()
            .rev()
            .find(|r| r.matches(fingerprint, config, seed))
    }

    /// Persists one decomposition version. `version` is the lineage
    /// counter and `parent` the fingerprint it was refreshed from (0
    /// for a root). Crash-safe: the payload lands via temp file +
    /// atomic rename before the manifest is rewritten; a crash between
    /// the two is healed by the next [`open`](Self::open). Putting an
    /// identity that is already catalogued is a no-op returning the
    /// existing record (first write wins, mirroring the in-memory
    /// cache's admit semantics).
    pub fn put(
        &mut self,
        d: &ArrowDecomposition,
        fingerprint: u128,
        config: &DecomposeConfig,
        seed: u64,
        version: u64,
        parent: u128,
    ) -> SparseResult<VersionRecord> {
        if let Some(existing) = self.record(fingerprint, config, seed) {
            return Ok(existing.clone());
        }
        let meta = CatalogMeta {
            fingerprint,
            version,
            parent,
            created_at: self.next_created,
            seed,
            config: *config,
        };
        let payload = Self::payload_name(fingerprint, config, seed);
        let path = self.root.join(&payload);
        self.atomic_write(&path, true, |w| persist::save_catalog(d, &meta, w))?;
        // Failpoint: crash in the window between the payload rename and
        // the manifest rewrite — the payload is durable but unreferenced
        // (the orphan-adoption window the next open must heal).
        failpoint::check(failpoint::CATALOG_PAYLOAD_AFTER_RENAME)?;
        if let Ok(m) = fs::metadata(&path) {
            self.metrics.put_bytes.add(m.len());
        }
        self.next_created += 1;
        let record = VersionRecord::from_meta(&meta, payload);
        self.records.push(record.clone());
        self.write_manifest()?;
        self.metrics.puts.inc();
        Ok(record)
    }

    /// Loads the decomposition for an exact identity. `Ok(None)` covers
    /// both "never catalogued" and "payload unreadable" — the latter
    /// drops the bad record (counted) so the caller's fresh decompose
    /// re-puts over it.
    pub fn get(
        &mut self,
        fingerprint: u128,
        config: &DecomposeConfig,
        seed: u64,
    ) -> SparseResult<Option<(ArrowDecomposition, VersionRecord)>> {
        let Some(record) = self.record(fingerprint, config, seed).cloned() else {
            return Ok(None);
        };
        match self.load_record(&record) {
            Some(d) => Ok(Some((d, record))),
            None => {
                self.drop_records(|r| r.payload == record.payload)?;
                Ok(None)
            }
        }
    }

    /// Point-in-time restore: walks the lineage backwards from `head`
    /// (following parent fingerprints, same config + seed) until it
    /// finds the requested `version`, and loads it. `Ok(None)` when the
    /// lineage does not reach that version.
    pub fn restore_at(
        &mut self,
        head: u128,
        config: &DecomposeConfig,
        seed: u64,
        version: u64,
    ) -> SparseResult<Option<(ArrowDecomposition, VersionRecord)>> {
        let mut cursor = head;
        let mut seen = HashSet::new();
        while cursor != 0 && seen.insert(cursor) {
            let Some(record) = self.record(cursor, config, seed).cloned() else {
                return Ok(None);
            };
            if record.version == version {
                return match self.load_record(&record) {
                    Some(d) => Ok(Some((d, record))),
                    None => {
                        self.drop_records(|r| r.payload == record.payload)?;
                        Ok(None)
                    }
                };
            }
            cursor = record.parent;
        }
        Ok(None)
    }

    /// [`restore_at`](Self::restore_at) without a known decompose
    /// identity: adopts the config + seed of the head's newest record —
    /// the CLI path, where only the fingerprint is in hand.
    pub fn restore_head_at(
        &mut self,
        head: u128,
        version: u64,
    ) -> SparseResult<Option<(ArrowDecomposition, VersionRecord)>> {
        let Some((config, seed)) = self.versions(head).last().map(|r| (r.config, r.seed)) else {
            return Ok(None);
        };
        self.restore_at(head, &config, seed, version)
    }

    /// Garbage collection: groups versions into lineages (chains
    /// connected by parent edges), keeps the newest
    /// [`last_k`](RetainPolicy::last_k) of each, and never drops a
    /// record whose fingerprint the policy names [`live`]
    /// (RetainPolicy::live). Removed payload files are deleted.
    ///
    /// [`live`]: RetainPolicy::live
    pub fn gc(&mut self, policy: &RetainPolicy) -> SparseResult<GcReport> {
        let live: HashSet<u128> = policy.live.iter().copied().collect();
        // Union-find over fingerprints: parent edges glue chains into
        // lineages.
        let mut component: HashMap<u128, u128> = HashMap::new();
        fn find(component: &mut HashMap<u128, u128>, x: u128) -> u128 {
            let parent = *component.entry(x).or_insert(x);
            if parent == x {
                return x;
            }
            let root = find(component, parent);
            component.insert(x, root);
            root
        }
        for r in &self.records {
            let a = find(&mut component, r.fingerprint);
            if r.parent != 0 {
                let b = find(&mut component, r.parent);
                component.insert(a, b);
            }
        }
        // Newest-first within each lineage; keep the first `last_k`.
        let mut by_lineage: HashMap<u128, Vec<usize>> = HashMap::new();
        let mut order: Vec<usize> = (0..self.records.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(self.records[i].created_at));
        for i in order {
            let root = find(&mut component, self.records[i].fingerprint);
            by_lineage.entry(root).or_default().push(i);
        }
        let mut keep = vec![false; self.records.len()];
        for indices in by_lineage.values() {
            for (rank, &i) in indices.iter().enumerate() {
                if rank < policy.last_k || live.contains(&self.records[i].fingerprint) {
                    keep[i] = true;
                }
            }
        }
        let removed = keep.iter().filter(|k| !**k).count();
        let kept = self.records.len() - removed;
        let mut idx = 0;
        self.drop_records(|_| {
            let dropped = !keep[idx];
            idx += 1;
            dropped
        })?;
        Ok(GcReport { removed, kept })
    }

    /// Removes one lineage, walking parent edges from `head`: every
    /// version of every fingerprint reached is deleted (records and
    /// payload files) — sparing any revision a `live` fingerprint still
    /// **depends on**: the live set is first expanded to its ancestor
    /// closure, so a shared root stays even when only a fork of it is
    /// still bound. The tenant-eviction path. Returns the number of
    /// versions removed.
    pub fn remove_chain(&mut self, head: u128, live: &[u128]) -> SparseResult<usize> {
        // Ancestor closure of the live heads: a binding's restore path
        // runs through every parent behind it, so all of them are live
        // too.
        let mut protected: HashSet<u128> = HashSet::new();
        let mut frontier: Vec<u128> = live.to_vec();
        while let Some(fp) = frontier.pop() {
            if fp == 0 || !protected.insert(fp) {
                continue;
            }
            for r in self.records.iter().filter(|r| r.fingerprint == fp) {
                frontier.push(r.parent);
            }
        }
        let mut doomed: HashSet<u128> = HashSet::new();
        let mut frontier = vec![head];
        while let Some(fp) = frontier.pop() {
            if fp == 0 || protected.contains(&fp) || !doomed.insert(fp) {
                continue;
            }
            for r in self.records.iter().filter(|r| r.fingerprint == fp) {
                frontier.push(r.parent);
            }
        }
        let before = self.records.len();
        self.drop_records(|r| doomed.contains(&r.fingerprint))?;
        Ok(before - self.records.len())
    }

    /// One-shot migration of a pre-catalog spill directory: every
    /// readable `*.amd` file that is **not** already a v3 catalog
    /// payload is loaded, re-identified, written into the catalog as a
    /// root version (v2 streaming persists keep their recorded version
    /// and fingerprint; v1 per-key cache spills recover their
    /// fingerprint by reconstructing the matrix), and the legacy file is
    /// deleted. `config`/`seed` supply the decompose identity the
    /// legacy formats never recorded — pass what the writing engine was
    /// configured with. Returns the number of files migrated.
    pub fn import_legacy_dir<P: AsRef<Path>>(
        &mut self,
        dir: P,
        config: &DecomposeConfig,
        seed: u64,
    ) -> SparseResult<usize> {
        let dir = dir.as_ref();
        if !dir.exists() {
            return Ok(0);
        }
        let entries = fs::read_dir(dir)
            .map_err(|e| SparseError::InvalidCsr(format!("read {}: {e}", dir.display())))?;
        let mut imported = 0;
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some(PAYLOAD_EXT) {
                continue;
            }
            // Skip files already in the catalog format (including this
            // catalog's own payloads when dir == root).
            let Ok(file) = File::open(&path) else {
                continue;
            };
            match persist::peek_catalog_header(BufReader::new(file)) {
                Ok(None) => {}
                _ => continue,
            }
            let Ok(file) = File::open(&path) else {
                continue;
            };
            let Ok((d, meta)) = persist::load_versioned(BufReader::new(file)) else {
                self.metrics.import_failures.inc();
                continue;
            };
            // v1 files carry no fingerprint; recover it from the
            // content (the decomposition reconstructs its matrix).
            let fingerprint = if meta.fingerprint != 0 {
                meta.fingerprint
            } else {
                match d.reconstruct() {
                    Ok(m) => m.fingerprint(),
                    Err(_) => {
                        self.metrics.import_failures.inc();
                        continue;
                    }
                }
            };
            let width_config = DecomposeConfig {
                arrow_width: d.b(),
                ..*config
            };
            // Migration is best-effort per file: one unwritable payload
            // (disk full, permissions) must not take the caller's
            // engine construction down — the legacy file stays behind
            // for a later attempt, counted.
            if self
                .put(&d, fingerprint, &width_config, seed, meta.version, 0)
                .is_err()
            {
                self.metrics.import_failures.inc();
                continue;
            }
            let _ = fs::remove_file(&path);
            self.metrics.imported.inc();
            imported += 1;
        }
        Ok(imported)
    }

    /// Writes a decomposition as a standalone one-shot file (outside
    /// the catalog; versioned v2 header so a later
    /// [`import_legacy_dir`](Self::import_legacy_dir) re-identifies
    /// it). The CLI `decompose` path.
    pub fn save_file<P: AsRef<Path>>(
        path: P,
        d: &ArrowDecomposition,
        fingerprint: u128,
        version: u64,
    ) -> SparseResult<()> {
        let path = path.as_ref();
        let file = File::create(path)
            .map_err(|e| SparseError::InvalidCsr(format!("create {}: {e}", path.display())))?;
        persist::save_versioned(
            d,
            &persist::PersistMeta {
                version,
                fingerprint,
            },
            BufWriter::new(file),
        )
    }

    /// Reads a standalone decomposition file of any format version.
    /// The CLI `multiply` path.
    pub fn load_file<P: AsRef<Path>>(
        path: P,
    ) -> SparseResult<(ArrowDecomposition, persist::PersistMeta)> {
        let path = path.as_ref();
        let file = File::open(path)
            .map_err(|e| SparseError::InvalidCsr(format!("open {}: {e}", path.display())))?;
        persist::load_versioned(BufReader::new(file))
    }

    fn payload_name(fingerprint: u128, config: &DecomposeConfig, seed: u64) -> String {
        // Distinct params/seeds of the same content must not collide:
        // fold them into a short discriminator (FNV-1a).
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for byte in config
            .arrow_width
            .to_le_bytes()
            .into_iter()
            .chain([config.prune as u8])
            .chain(config.max_levels.to_le_bytes())
            .chain(seed.to_le_bytes())
        {
            h ^= byte as u64;
            h = h.wrapping_mul(PRIME);
        }
        format!("amd3-{fingerprint:032x}-{h:016x}.{PAYLOAD_EXT}")
    }

    /// Removes `*.tmp` debris left by a crash mid-[`atomic_write`]
    /// (counted in [`CatalogStats::stale_tmp_swept`]). A tmp file is
    /// only ever the un-renamed half of an interrupted durable write —
    /// never live data — so sweeping is always safe. Best-effort: an
    /// unreadable directory just skips the sweep (open fails later with
    /// a better error if the directory is truly broken).
    ///
    /// [`atomic_write`]: Self::atomic_write
    fn sweep_stale_tmp(&self) {
        let Ok(entries) = fs::read_dir(&self.root) else {
            return;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if name.ends_with(".tmp") && fs::remove_file(entry.path()).is_ok() {
                self.metrics.stale_tmp_swept.inc();
            }
        }
    }

    fn payload_files(&self) -> SparseResult<Vec<String>> {
        let entries = fs::read_dir(&self.root)
            .map_err(|e| SparseError::InvalidCsr(format!("read {}: {e}", self.root.display())))?;
        let mut names = Vec::new();
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if name.ends_with(&format!(".{PAYLOAD_EXT}")) {
                names.push(name.to_string());
            }
        }
        names.sort();
        Ok(names)
    }

    fn load_record(&mut self, record: &VersionRecord) -> Option<ArrowDecomposition> {
        let path = self.root.join(&record.payload);
        let loaded = File::open(&path)
            .ok()
            .and_then(|f| persist::load_catalog(BufReader::new(f)).ok());
        match loaded {
            // Header/record mismatch means the file was tampered with or
            // mis-adopted; treat it as corrupt.
            Some((d, meta, _)) if meta.fingerprint == record.fingerprint => {
                self.metrics.loads.inc();
                if let Ok(m) = fs::metadata(&path) {
                    self.metrics.get_bytes.add(m.len());
                }
                Some(d)
            }
            _ => {
                self.metrics.load_failures.inc();
                None
            }
        }
    }

    /// Removes every record matching the predicate (payload files too)
    /// and rewrites the manifest once. The predicate sees records in
    /// manifest order.
    fn drop_records<F: FnMut(&VersionRecord) -> bool>(&mut self, mut f: F) -> SparseResult<()> {
        let mut dropped = Vec::new();
        self.records.retain(|r| {
            if f(r) {
                dropped.push(r.payload.clone());
                false
            } else {
                true
            }
        });
        if dropped.is_empty() {
            return Ok(());
        }
        for payload in &dropped {
            let path = self.root.join(payload);
            if let Ok(m) = fs::metadata(&path) {
                self.metrics.gc_bytes.add(m.len());
            }
            let _ = fs::remove_file(path);
        }
        self.metrics.removed.add(dropped.len() as u64);
        self.write_manifest()
    }

    fn atomic_write<F>(&self, path: &Path, payload: bool, write: F) -> SparseResult<()>
    where
        F: FnOnce(&mut BufWriter<File>) -> SparseResult<()>,
    {
        let tmp = path.with_extension("tmp");
        let result = (|| {
            let file = File::create(&tmp)
                .map_err(|e| SparseError::InvalidCsr(format!("create {}: {e}", tmp.display())))?;
            let mut w = BufWriter::new(file);
            write(&mut w)?;
            w.flush().map_err(io_err)?;
            // Failpoint: simulated crash after the tmp write, before
            // anything is durable or renamed.
            failpoint::check(if payload {
                failpoint::CATALOG_PAYLOAD_BEFORE_FSYNC
            } else {
                failpoint::CATALOG_MANIFEST_BEFORE_FSYNC
            })?;
            // Failpoint: torn write — truncate the tmp and skip its
            // fsync, exactly the state a power loss mid-write leaves
            // behind. The rename still happens; the checksum footer is
            // what must catch this on load.
            let torn = if payload {
                failpoint::torn(failpoint::CATALOG_PAYLOAD_TORN)
            } else {
                None
            };
            if let Some(keep) = torn {
                let len = w.get_ref().metadata().map_err(io_err)?.len();
                let keep_len = (len as f64 * keep) as u64;
                w.get_ref().set_len(keep_len).map_err(io_err)?;
            } else {
                let sw = Stopwatch::start();
                w.get_ref().sync_all().map_err(io_err)?;
                self.metrics.fsync_seconds.record(sw.elapsed_nanos());
            }
            fs::rename(&tmp, path).map_err(|e| {
                SparseError::InvalidCsr(format!(
                    "rename {} -> {}: {e}",
                    tmp.display(),
                    path.display()
                ))
            })
        })();
        if let Err(e) = &result {
            // An injected crash must leave the same debris a real crash
            // would (the stale tmp feeds the reopen sweep); only real
            // in-process errors clean up after themselves.
            if !failpoint::is_injected(e) {
                let _ = fs::remove_file(&tmp);
            }
        }
        result
    }

    fn write_manifest(&self) -> SparseResult<()> {
        // Failpoint: crash before the manifest rewrite begins (payload
        // durable and renamed, manifest one generation behind).
        failpoint::check(failpoint::CATALOG_MANIFEST_BEFORE_REWRITE)?;
        let path = self.root.join(MANIFEST);
        self.atomic_write(&path, false, |w| {
            w.write_all(MANIFEST_MAGIC).map_err(io_err)?;
            put_u64(w, self.records.len() as u64)?;
            for r in &self.records {
                w.write_all(&r.fingerprint.to_le_bytes()).map_err(io_err)?;
                put_u64(w, r.version)?;
                w.write_all(&r.parent.to_le_bytes()).map_err(io_err)?;
                put_u64(w, r.created_at)?;
                put_u64(w, r.seed)?;
                put_u64(w, r.config.arrow_width as u64)?;
                put_u64(w, r.config.prune as u64)?;
                put_u64(w, r.config.max_levels as u64)?;
                let name = r.payload.as_bytes();
                put_u64(w, name.len() as u64)?;
                w.write_all(name).map_err(io_err)?;
            }
            Ok(())
        })
    }

    /// `None` on any structural problem — the caller falls back to a
    /// payload-header rebuild.
    fn read_manifest(&self) -> Option<Vec<VersionRecord>> {
        let file = File::open(self.root.join(MANIFEST)).ok()?;
        let mut r = BufReader::new(file);
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic).ok()?;
        if &magic != MANIFEST_MAGIC {
            return None;
        }
        let count = get_u64_opt(&mut r)? as usize;
        if count > 10_000_000 {
            return None;
        }
        let mut records = Vec::with_capacity(count);
        for _ in 0..count {
            let mut fp = [0u8; 16];
            r.read_exact(&mut fp).ok()?;
            let fingerprint = u128::from_le_bytes(fp);
            let version = get_u64_opt(&mut r)?;
            let mut parent_bytes = [0u8; 16];
            r.read_exact(&mut parent_bytes).ok()?;
            let parent = u128::from_le_bytes(parent_bytes);
            let created_at = get_u64_opt(&mut r)?;
            let seed = get_u64_opt(&mut r)?;
            let arrow_width = get_u64_opt(&mut r)? as u32;
            let prune = get_u64_opt(&mut r)? != 0;
            let max_levels = get_u64_opt(&mut r)? as u32;
            let name_len = get_u64_opt(&mut r)? as usize;
            if name_len > 4096 {
                return None;
            }
            let mut name = vec![0u8; name_len];
            r.read_exact(&mut name).ok()?;
            records.push(VersionRecord {
                fingerprint,
                version,
                parent,
                created_at,
                seed,
                config: DecomposeConfig {
                    arrow_width,
                    prune,
                    max_levels,
                },
                payload: String::from_utf8(name).ok()?,
            });
        }
        Some(records)
    }
}

fn get_u64_opt<R: Read>(r: &mut R) -> Option<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf).ok()?;
    Some(u64::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::la_decompose::decompose_snapshot;
    use amd_graph::generators::basic;
    use amd_sparse::CsrMatrix;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("amd-catalog-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample(n: u32) -> (CsrMatrix<f64>, ArrowDecomposition) {
        let a: CsrMatrix<f64> = basic::cycle(n).to_adjacency();
        let d = decompose_snapshot(&a, &cfg(), 1).unwrap();
        (a, d)
    }

    fn cfg() -> DecomposeConfig {
        DecomposeConfig::with_width(8)
    }

    #[test]
    fn put_get_roundtrip_and_reopen() {
        let dir = tmpdir("roundtrip");
        let (a, d) = sample(40);
        let fp = a.fingerprint();
        {
            let mut c = Catalog::open(&dir).unwrap();
            let rec = c.put(&d, fp, &cfg(), 1, 0, 0).unwrap();
            assert_eq!(rec.fingerprint, fp);
            assert_eq!(rec.version, 0);
            // Idempotent: a second put of the same identity no-ops.
            let again = c.put(&d, fp, &cfg(), 1, 5, 0).unwrap();
            assert_eq!(again, rec);
            assert_eq!(c.len(), 1);
            assert_eq!(c.stats().puts, 1);
        }
        let mut c = Catalog::open(&dir).unwrap();
        assert_eq!(c.stats().recovered_records, 0, "manifest was intact");
        let (loaded, rec) = c.get(fp, &cfg(), 1).unwrap().unwrap();
        assert_eq!(loaded, d);
        assert_eq!(rec.fingerprint, fp);
        // Unknown identities miss cleanly.
        assert!(c.get(fp ^ 1, &cfg(), 1).unwrap().is_none());
        assert!(c.get(fp, &cfg(), 2).unwrap().is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn lineage_chain_restores_point_in_time() {
        let dir = tmpdir("lineage");
        let mut c = Catalog::open(&dir).unwrap();
        let (a0, d0) = sample(30);
        let (a1, d1) = sample(30 + 2); // stand-ins for refreshed content
        let (a2, d2) = sample(30 + 4);
        let (f0, f1, f2) = (a0.fingerprint(), a1.fingerprint(), a2.fingerprint());
        c.put(&d0, f0, &cfg(), 1, 0, 0).unwrap();
        c.put(&d1, f1, &cfg(), 1, 1, f0).unwrap();
        c.put(&d2, f2, &cfg(), 1, 2, f1).unwrap();
        assert_eq!(c.versions(f1).len(), 1);
        // Walk the lineage from the head back to every version.
        for (want_v, want_d) in [(0u64, &d0), (1, &d1), (2, &d2)] {
            let (got, rec) = c.restore_at(f2, &cfg(), 1, want_v).unwrap().unwrap();
            assert_eq!(&got, want_d, "version {want_v}");
            assert_eq!(rec.version, want_v);
        }
        assert!(c.restore_at(f2, &cfg(), 1, 9).unwrap().is_none());
        // Head-only restore adopts the head's identity.
        let (got, _) = c.restore_head_at(f2, 0).unwrap().unwrap();
        assert_eq!(got, d0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_between_payload_and_manifest_recovers() {
        let dir = tmpdir("crash");
        let (a0, d0) = sample(24);
        let (a1, d1) = sample(28);
        let mut c = Catalog::open(&dir).unwrap();
        c.put(&d0, a0.fingerprint(), &cfg(), 1, 0, 0).unwrap();
        let manifest_before = fs::read(dir.join(MANIFEST)).unwrap();
        c.put(&d1, a1.fingerprint(), &cfg(), 1, 0, 0).unwrap();
        drop(c);
        // Simulate the crash window: the second payload landed but the
        // manifest rewrite never happened.
        fs::write(dir.join(MANIFEST), &manifest_before).unwrap();
        let mut c = Catalog::open(&dir).unwrap();
        assert_eq!(c.stats().recovered_records, 1, "orphan payload adopted");
        assert_eq!(c.len(), 2);
        let (loaded, _) = c.get(a1.fingerprint(), &cfg(), 1).unwrap().unwrap();
        assert_eq!(loaded, d1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn lost_or_corrupt_manifest_rebuilds_from_headers() {
        let dir = tmpdir("rebuild");
        let (a0, d0) = sample(24);
        let (a1, d1) = sample(32);
        {
            let mut c = Catalog::open(&dir).unwrap();
            c.put(&d0, a0.fingerprint(), &cfg(), 1, 0, 0).unwrap();
            c.put(&d1, a1.fingerprint(), &cfg(), 1, 1, a0.fingerprint())
                .unwrap();
        }
        for corruption in ["missing", "garbage"] {
            match corruption {
                "missing" => fs::remove_file(dir.join(MANIFEST)).unwrap(),
                _ => fs::write(dir.join(MANIFEST), b"NOT A MANIFEST").unwrap(),
            }
            let mut c = Catalog::open(&dir).unwrap();
            assert_eq!(c.stats().recovered_records, 2, "{corruption}: full rebuild");
            assert_eq!(c.len(), 2);
            // Lineage survives the rebuild: parent edges live in the
            // payload headers.
            let (got, rec) = c
                .restore_at(a1.fingerprint(), &cfg(), 1, 0)
                .unwrap()
                .unwrap();
            assert_eq!(got, d0);
            assert_eq!(rec.parent, 0);
            let (got, _) = c.get(a1.fingerprint(), &cfg(), 1).unwrap().unwrap();
            assert_eq!(got, d1);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_payload_drops_record_and_heals_on_reput() {
        let dir = tmpdir("corrupt");
        let (a, d) = sample(36);
        let fp = a.fingerprint();
        let mut c = Catalog::open(&dir).unwrap();
        let rec = c.put(&d, fp, &cfg(), 1, 0, 0).unwrap();
        let path = c.payload_path(&rec);
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(c.get(fp, &cfg(), 1).unwrap().is_none());
        assert_eq!(c.stats().load_failures, 1);
        assert_eq!(c.len(), 0, "bad record dropped");
        // The caller re-decomposes and re-puts; the chain is whole again.
        c.put(&d, fp, &cfg(), 1, 0, 0).unwrap();
        assert!(c.get(fp, &cfg(), 1).unwrap().is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn remove_chain_stops_at_live_fingerprints() {
        let dir = tmpdir("chain");
        let mut c = Catalog::open(&dir).unwrap();
        let (a0, d0) = sample(24);
        let (a1, d1) = sample(26);
        let (a2, d2) = sample(28);
        let (f0, f1, f2) = (a0.fingerprint(), a1.fingerprint(), a2.fingerprint());
        // Shared root f0; two heads f1 and f2 branch from it.
        c.put(&d0, f0, &cfg(), 1, 0, 0).unwrap();
        c.put(&d1, f1, &cfg(), 1, 1, f0).unwrap();
        c.put(&d2, f2, &cfg(), 1, 1, f0).unwrap();
        // Evicting the f1 head while only the f2 *head* is live: f0 is
        // not itself bound, but it is an ancestor the live f2 chain
        // still depends on (restore path, splice prior) — the ancestor
        // closure must protect it.
        let removed = c.remove_chain(f1, &[f2]).unwrap();
        assert_eq!(removed, 1, "only f1's own version goes");
        assert!(c.get(f0, &cfg(), 1).unwrap().is_some(), "shared root kept");
        assert!(c.get(f2, &cfg(), 1).unwrap().is_some());
        assert!(c.get(f1, &cfg(), 1).unwrap().is_none());
        // Evicting f2 with nothing live takes the whole lineage.
        let removed = c.remove_chain(f2, &[]).unwrap();
        assert_eq!(removed, 2);
        assert!(c.is_empty());
        // Zero orphans: no payload files survive their records.
        assert_eq!(c.payload_files().unwrap().len(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_retains_last_k_and_pins_live() {
        let dir = tmpdir("gc");
        let mut c = Catalog::open(&dir).unwrap();
        let mats: Vec<_> = (0..5).map(|i| sample(20 + 2 * i)).collect();
        let fps: Vec<u128> = mats.iter().map(|(a, _)| a.fingerprint()).collect();
        // One lineage: f0 <- f1 <- f2 <- f3 <- f4.
        for (i, (a, d)) in mats.iter().enumerate() {
            let parent = if i == 0 { 0 } else { fps[i - 1] };
            c.put(d, a.fingerprint(), &cfg(), 1, i as u64, parent)
                .unwrap();
        }
        // Keep the newest 2, but pin the oldest as live.
        let report = c
            .gc(&RetainPolicy {
                last_k: 2,
                live: vec![fps[0]],
            })
            .unwrap();
        assert_eq!(report.kept, 3);
        assert_eq!(report.removed, 2);
        assert!(c.get(fps[0], &cfg(), 1).unwrap().is_some(), "live pinned");
        assert!(c.get(fps[3], &cfg(), 1).unwrap().is_some());
        assert!(c.get(fps[4], &cfg(), 1).unwrap().is_some());
        assert!(c.get(fps[1], &cfg(), 1).unwrap().is_none());
        assert!(c.get(fps[2], &cfg(), 1).unwrap().is_none());
        assert_eq!(c.payload_files().unwrap().len(), 3, "files follow records");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn import_legacy_dir_migrates_v1_and_v2() {
        use std::io::BufWriter;
        let legacy = tmpdir("legacy-src");
        fs::create_dir_all(&legacy).unwrap();
        let (a0, d0) = sample(30);
        let (a1, d1) = sample(34);
        // A v1 per-key cache spill (no provenance at all) and a v2
        // streaming persist (fingerprint + version header) — the two
        // pre-catalog formats. This block is the legacy-import fixture:
        // the only place outside the persistence module that writes the
        // old formats.
        {
            let f = File::create(legacy.join("arrow-00ff.amd")).unwrap();
            persist::save(&d0, BufWriter::new(f)).unwrap();
            let f = File::create(legacy.join("dyn.amd")).unwrap();
            persist::save_versioned(
                &d1,
                &persist::PersistMeta {
                    version: 4,
                    fingerprint: a1.fingerprint(),
                },
                BufWriter::new(f),
            )
            .unwrap();
            // Debris that must survive untouched.
            fs::write(legacy.join("notes.txt"), b"hello").unwrap();
        }
        let dir = tmpdir("legacy-dst");
        let mut c = Catalog::open(&dir).unwrap();
        let imported = c.import_legacy_dir(&legacy, &cfg(), 1).unwrap();
        assert_eq!(imported, 2);
        assert_eq!(c.stats().imported, 2);
        // The v1 file's fingerprint was recovered by reconstruction.
        let (got, rec) = c.get(a0.fingerprint(), &cfg(), 1).unwrap().unwrap();
        assert_eq!(got, d0);
        assert_eq!(rec.version, 0);
        // The v2 file kept its recorded version.
        let (got, rec) = c.get(a1.fingerprint(), &cfg(), 1).unwrap().unwrap();
        assert_eq!(got, d1);
        assert_eq!(rec.version, 4);
        // Legacy payloads are gone; debris is not.
        assert!(!legacy.join("arrow-00ff.amd").exists());
        assert!(!legacy.join("dyn.amd").exists());
        assert!(legacy.join("notes.txt").exists());
        // Importing again is a no-op (one-shot).
        assert_eq!(c.import_legacy_dir(&legacy, &cfg(), 1).unwrap(), 0);
        let _ = fs::remove_dir_all(&legacy);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn import_in_place_converts_the_spill_dir_itself() {
        use std::io::BufWriter;
        let dir = tmpdir("inplace");
        fs::create_dir_all(&dir).unwrap();
        let (a, d) = sample(26);
        {
            let f = File::create(dir.join("arrow-0123.amd")).unwrap();
            persist::save(&d, BufWriter::new(f)).unwrap();
        }
        // Open the catalog *at* the legacy spill dir and migrate in
        // place: the loose file becomes a catalog payload.
        let mut c = Catalog::open(&dir).unwrap();
        assert_eq!(c.len(), 0, "legacy files are not adopted blindly");
        assert_eq!(c.import_legacy_dir(&dir, &cfg(), 1).unwrap(), 1);
        assert!(!dir.join("arrow-0123.amd").exists());
        let (got, _) = c.get(a.fingerprint(), &cfg(), 1).unwrap().unwrap();
        assert_eq!(got, d);
        let _ = fs::remove_dir_all(&dir);
    }
}
