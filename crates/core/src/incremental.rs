//! Delta-localized incremental re-decomposition.
//!
//! A refresh of a streamed matrix `M = A₀ + ΔA` normally re-runs
//! LA-Decompose from scratch, even when `ΔA` touches a few dozen
//! vertices of a huge matrix. This module exploits the observation the
//! paper makes about LA-Decompose itself (§5.1): the algorithm works on
//! edge lists and levels only record which entries they own, so the
//! arrangement of *untouched* components is still valid. The
//! incremental path:
//!
//! 1. **Affected region.** Starting from the vertices the delta touches,
//!    grow the region through each prior level's weakly-connected
//!    components ([`amd_graph::traversal::grow_region`]): every vertex
//!    whose level assignment can interact with the change joins. A
//!    level's pruned hubs (arm rows, positions `< b`) act as barriers —
//!    an arm row absorbs its incident edges whatever the rest of the
//!    arrangement does, so connectivity *through* a hub does not
//!    constrain the re-arranged band.
//! 2. **Localized LA-Decompose.** Re-run LA-Decompose only on the
//!    subgraph induced by the region (compacted to `|R|` vertices, so
//!    the cost scales with the region, not the matrix).
//! 3. **Splice.** Strip from the prior levels every entry with both
//!    endpoints in the region, lift the freshly decomposed levels back
//!    to `n` vertices, and append them. The result is a *valid* arrow
//!    decomposition of `M` — it may differ structurally from a cold
//!    rebuild, but `Σᵢ P_πᵢ Bᵢ Pᵀ_πᵢ = M` holds exactly (entry values
//!    are moved, never recomputed), so multiplies bit-match a cold
//!    decompose-and-multiply for exactly representable data.
//!
//! Why splicing is sound for any region `R` containing the touched
//! vertices: the delta lives entirely inside `R × R`, so entries with at
//! least one endpoint outside `R` are identical in `A₀` and `M`; those
//! stay in their old levels (removing entries never violates the arrow
//! pattern or the active prefix). Entries with both endpoints in `R`
//! are exactly the rows/columns of the induced subgraph `M[R]`, which
//! the localized decomposition covers once each. The region expansion
//! of step 1 is therefore a *quality* heuristic (it lets edges near the
//! change be re-arranged together), not a correctness requirement.
//!
//! The incremental path trades decomposition **depth** for refresh
//! **latency** — each splice appends the localized levels. The
//! [`IncrementalPolicy`] bounds both: a region above
//! `max_affected_fraction` or a spliced order above `max_order` falls
//! back to a cold [`decompose_snapshot`], reported in the
//! [`RefreshOutcome`] so serving layers can count incremental vs
//! fallback refreshes and the reused-vertex fraction.

use crate::decomposition::{ArrowDecomposition, ArrowLevel};
use crate::la_decompose::{decompose_snapshot, la_decompose, DecomposeConfig};
use crate::strategy::RandomForestLa;
use amd_graph::traversal::grow_region;
use amd_graph::Graph;
use amd_obs::Stopwatch;
use amd_sparse::{CooMatrix, CsrMatrix, Permutation, SparseError, SparseResult};

/// When to attempt — and when to abandon — the delta-localized path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IncrementalPolicy {
    /// Attempt the incremental path at all (`false` forces cold
    /// rebuilds, the ablation/debug switch).
    pub enabled: bool,
    /// Fall back to a cold decompose once the affected region exceeds
    /// this fraction of the vertices — past it, re-arranging the region
    /// costs about as much as a rebuild and the splice only adds depth.
    pub max_affected_fraction: f64,
    /// Fall back once the spliced decomposition would exceed this many
    /// levels. Splices accumulate depth across refreshes; this is the
    /// re-compaction trigger (a cold rebuild resets the order).
    pub max_order: u32,
}

impl Default for IncrementalPolicy {
    fn default() -> Self {
        Self {
            enabled: true,
            max_affected_fraction: 0.25,
            max_order: 64,
        }
    }
}

impl IncrementalPolicy {
    /// A policy that never attempts the incremental path.
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            ..Self::default()
        }
    }
}

/// Why an incremental attempt fell back to a cold decompose.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FallbackReason {
    /// The policy disables the incremental path.
    Disabled,
    /// No prior decomposition was supplied (first build, cache
    /// eviction, restart).
    NoPrior,
    /// The caller could not say which vertices the delta touches.
    NoTouched,
    /// The prior decomposes a matrix of a different dimension.
    ShapeMismatch,
    /// The prior was built at a different arrow width.
    WidthMismatch,
    /// The affected region exceeded
    /// [`IncrementalPolicy::max_affected_fraction`].
    RegionTooLarge,
    /// The spliced order would exceed [`IncrementalPolicy::max_order`].
    OrderTooDeep,
    /// LA-Decompose failed on the induced subgraph (e.g. its own
    /// `max_levels` cap); the cold path gets to try the full matrix.
    SubDecompose,
    /// A serving-cost guard predicted the spliced decomposition would
    /// serve slower than its budget over the cold baseline, so the
    /// holder re-compacted (rebuilt cold) instead of keeping the
    /// splice. Never produced by
    /// [`decompose_snapshot_incremental`] itself — stamped by
    /// cost-aware callers (e.g. the engine's splice guard).
    CostGuard,
}

/// Wall-clock breakdown of one refresh decomposition, measured inside
/// [`decompose_snapshot_incremental`] with a single
/// [`amd_obs::Stopwatch`] per phase. Serving layers fold these into
/// their `refresh.*.seconds` histograms; the kernel itself keeps no
/// counters.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseTimings {
    /// Seconds spent computing the affected region and extracting the
    /// induced subgraph (0 on the cold path — there is no region).
    pub extract_seconds: f64,
    /// Seconds spent decomposing: the localized LA-Decompose on the
    /// incremental path, the full one on the cold path.
    pub decompose_seconds: f64,
    /// Seconds spent stripping the prior and lifting the localized
    /// levels back to `n` vertices (0 on the cold path).
    pub splice_seconds: f64,
}

/// What a refresh decomposition actually did.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefreshOutcome {
    /// `true` when the result was spliced from the prior decomposition.
    pub incremental: bool,
    /// Why the incremental path was not taken (`None` when it was).
    pub fallback: Option<FallbackReason>,
    /// Vertices in the affected region (0 when it was never computed).
    pub affected_vertices: u32,
    /// Matrix dimension `n`.
    pub total_vertices: u32,
    /// Order of the produced decomposition.
    pub order: u32,
    /// Where the wall-clock time of this refresh went.
    pub timings: PhaseTimings,
}

impl RefreshOutcome {
    /// Fraction of vertices whose arrangement survived the refresh
    /// untouched (0 for a cold rebuild).
    pub fn reused_fraction(&self) -> f64 {
        if !self.incremental || self.total_vertices == 0 {
            return 0.0;
        }
        (self.total_vertices - self.affected_vertices) as f64 / self.total_vertices as f64
    }
}

/// The affected region of a delta: the touched vertices plus everything
/// whose level assignment can interact with the change.
///
/// For each prior level (independently — level graphs are
/// edge-disjoint, so growth does not cascade across levels) the touched
/// vertices *owning entries in that level* are expanded through the
/// weakly-connected components of the level's edges; a touched vertex
/// with no entry in a level has no assignment there to protect (it was
/// ordered behind the active prefix) and seeds nothing. The level's arm
/// vertices (positions `< b` under its arrangement) act as barriers:
/// they join the region when adjacent to it but do not propagate it —
/// an arm row absorbs its incident edges whatever the rest of the
/// arrangement does, so connectivity *through* a hub does not constrain
/// the re-arranged band. The region is the union over levels (plus the
/// touched set itself). Returns a membership mask of length `n`.
pub fn affected_region(prior: &ArrowDecomposition, touched: &[u32]) -> SparseResult<Vec<bool>> {
    let n = prior.n();
    let mut region = vec![false; n as usize];
    for &v in touched {
        if v >= n {
            return Err(SparseError::IndexOutOfBounds {
                row: v,
                col: v,
                rows: n,
                cols: n,
            });
        }
        region[v as usize] = true;
    }
    if touched.is_empty() {
        return Ok(region);
    }
    let b = prior.b();
    let mut level_region = vec![false; n as usize];
    let mut present = vec![false; n as usize];
    for level in prior.levels() {
        let mut edges: Vec<(u32, u32)> = Vec::with_capacity(level.nnz());
        present.iter_mut().for_each(|m| *m = false);
        for (pr, pc, _) in level.matrix.iter() {
            let (u, v) = (level.perm.vertex_at(pr), level.perm.vertex_at(pc));
            present[u as usize] = true;
            present[v as usize] = true;
            if u != v {
                edges.push((u.min(v), u.max(v)));
            }
        }
        edges.sort_unstable();
        edges.dedup();
        if edges.is_empty() {
            continue;
        }
        // Seed from the touched vertices that own entries in *this*
        // level (not the accumulated region — cascading the growth
        // across levels compounds block-sized components into most of
        // the graph on well-connected inputs, forcing needless cold
        // fallbacks).
        level_region.iter_mut().for_each(|m| *m = false);
        let mut seeded = false;
        for &v in touched {
            if present[v as usize] {
                level_region[v as usize] = true;
                seeded = true;
            }
        }
        if !seeded {
            continue;
        }
        let g = Graph::from_edges(n, &edges);
        grow_region(&g, |v| level.perm.position(v) >= b, &mut level_region);
        for (acc, &m) in region.iter_mut().zip(&level_region) {
            *acc |= m;
        }
    }
    Ok(region)
}

/// The prior levels with every entry owned by the region removed
/// (both endpoints inside it); levels that become empty are dropped.
/// Entry removal cannot violate the arrow pattern or the active prefix,
/// so the surviving levels stay valid as they are.
fn strip_region(prior: &ArrowDecomposition, region: &[bool]) -> Vec<ArrowLevel> {
    let n = prior.n();
    let owned = |pr: u32, pc: u32, level: &ArrowLevel| {
        region[level.perm.vertex_at(pr) as usize] && region[level.perm.vertex_at(pc) as usize]
    };
    let mut kept_levels = Vec::with_capacity(prior.order());
    for level in prior.levels() {
        // Count first: most levels are untouched by a localized region,
        // and those must not pay for a rebuilt copy.
        let kept = level
            .matrix
            .iter()
            .filter(|&(pr, pc, _)| !owned(pr, pc, level))
            .count();
        if kept == 0 {
            continue;
        }
        let matrix = if kept == level.nnz() {
            level.matrix.clone()
        } else {
            let mut coo = CooMatrix::with_capacity(n, n, kept);
            for (pr, pc, v) in level.matrix.iter() {
                if !owned(pr, pc, level) {
                    coo.push(pr, pc, v).expect("level positions are in bounds");
                }
            }
            coo.to_csr()
        };
        kept_levels.push(ArrowLevel {
            perm: level.perm.clone(),
            matrix,
            active_n: level.active_n,
        });
    }
    kept_levels
}

/// The incremental variant of [`decompose_snapshot`]: decompose `merged`
/// reusing `prior` where the delta permits.
///
/// `touched` must list **every** vertex incident to a difference between
/// the matrix `prior` decomposes and `merged` (extra vertices are
/// harmless; missing ones make the splice reconstruct the wrong
/// operator — debug builds assert exact reconstruction). Pass
/// `prior = None` or `touched = None` to force the cold path; an empty
/// `touched` slice means "no structural difference" and reuses the prior
/// as-is.
///
/// Never fails over to an error when the incremental path is merely
/// inapplicable — every fallback runs [`decompose_snapshot`] and reports
/// why in the returned [`RefreshOutcome`].
pub fn decompose_snapshot_incremental(
    merged: &CsrMatrix<f64>,
    cfg: &DecomposeConfig,
    seed: u64,
    prior: Option<&ArrowDecomposition>,
    touched: Option<&[u32]>,
    policy: &IncrementalPolicy,
) -> SparseResult<(ArrowDecomposition, RefreshOutcome)> {
    if merged.rows() != merged.cols() {
        return Err(SparseError::ShapeMismatch {
            left: (merged.rows(), merged.cols()),
            right: (merged.cols(), merged.rows()),
        });
    }
    let n = merged.rows();
    let cold = |reason: FallbackReason,
                affected: u32,
                extract_seconds: f64|
     -> SparseResult<(ArrowDecomposition, RefreshOutcome)> {
        let sw = Stopwatch::start();
        let d = decompose_snapshot(merged, cfg, seed)?;
        let order = d.order() as u32;
        Ok((
            d,
            RefreshOutcome {
                incremental: false,
                fallback: Some(reason),
                affected_vertices: affected,
                total_vertices: n,
                order,
                timings: PhaseTimings {
                    extract_seconds,
                    decompose_seconds: sw.elapsed_seconds(),
                    splice_seconds: 0.0,
                },
            },
        ))
    };
    if !policy.enabled {
        return cold(FallbackReason::Disabled, 0, 0.0);
    }
    let Some(prior) = prior else {
        return cold(FallbackReason::NoPrior, 0, 0.0);
    };
    let Some(touched) = touched else {
        return cold(FallbackReason::NoTouched, 0, 0.0);
    };
    if prior.n() != n {
        return cold(FallbackReason::ShapeMismatch, 0, 0.0);
    }
    if prior.b() != cfg.arrow_width.max(1) {
        return cold(FallbackReason::WidthMismatch, 0, 0.0);
    }

    let extract_sw = Stopwatch::start();
    let region = affected_region(prior, touched)?;
    let affected = region.iter().filter(|&&m| m).count() as u32;
    if affected as f64 > policy.max_affected_fraction * n as f64 {
        return cold(
            FallbackReason::RegionTooLarge,
            affected,
            extract_sw.elapsed_seconds(),
        );
    }

    // Localized LA-Decompose on the induced subgraph, compacted so its
    // cost scales with the region.
    let verts: Vec<u32> = (0..n).filter(|&v| region[v as usize]).collect();
    let m = verts.len() as u32;
    let mut local = vec![u32::MAX; n as usize];
    for (i, &v) in verts.iter().enumerate() {
        local[v as usize] = i as u32;
    }
    let mut coo = CooMatrix::new(m, m);
    for &v in &verts {
        for (&c, &val) in merged.row_indices(v).iter().zip(merged.row_values(v)) {
            if region[c as usize] {
                coo.push(local[v as usize], local[c as usize], val)
                    .expect("region entries are in bounds");
            }
        }
    }
    let sub_csr = coo.to_csr();
    let extract_seconds = extract_sw.elapsed_seconds();

    let decompose_sw = Stopwatch::start();
    let sub = match la_decompose(&sub_csr, cfg, &mut RandomForestLa::new(seed)) {
        Ok(d) => d,
        Err(_) => return cold(FallbackReason::SubDecompose, affected, extract_seconds),
    };
    let decompose_seconds = decompose_sw.elapsed_seconds();

    let splice_sw = Stopwatch::start();
    let mut levels = strip_region(prior, &region);
    if (levels.len() + sub.order()) as u32 > policy.max_order {
        return cold(FallbackReason::OrderTooDeep, affected, extract_seconds);
    }

    // Lift the localized levels back to n vertices: region vertices keep
    // their sub-arrangement positions, everything else is ordered after
    // them (isolated at these levels, beyond the active prefix).
    for level in sub.levels() {
        let mut order: Vec<u32> = Vec::with_capacity(n as usize);
        for p in 0..m {
            order.push(verts[level.perm.vertex_at(p) as usize]);
        }
        order.extend((0..n).filter(|&v| !region[v as usize]));
        let perm = Permutation::from_order(order).expect("lifted order is a bijection");
        let mut indptr = level.matrix.indptr().to_vec();
        let tail = *indptr.last().expect("CSR indptr is never empty");
        indptr.resize(n as usize + 1, tail);
        let matrix = CsrMatrix::from_raw_unchecked(
            n,
            n,
            indptr,
            level.matrix.indices().to_vec(),
            level.matrix.values().to_vec(),
        );
        levels.push(ArrowLevel {
            perm,
            matrix,
            active_n: level.active_n,
        });
    }

    let d = ArrowDecomposition::new(n, prior.b(), levels);
    debug_assert_eq!(
        d.validate(merged).expect("splice shapes match"),
        0.0,
        "spliced decomposition must reconstruct the merged matrix exactly \
         (was `touched` missing a changed vertex?)"
    );
    let outcome = RefreshOutcome {
        incremental: true,
        fallback: None,
        affected_vertices: affected,
        total_vertices: n,
        order: d.order() as u32,
        timings: PhaseTimings {
            extract_seconds,
            decompose_seconds,
            splice_seconds: splice_sw.elapsed_seconds(),
        },
    };
    Ok((d, outcome))
}

#[cfg(test)]
mod tests {
    use super::*;
    use amd_graph::generators::basic;
    use amd_sparse::ops;

    fn ring(n: u32) -> CsrMatrix<f64> {
        basic::cycle(n).to_adjacency()
    }

    /// Applies `updates` (additive, symmetric off-diagonal pairs already
    /// expanded by the caller) and returns (merged, touched).
    fn apply(base: &CsrMatrix<f64>, updates: &[(u32, u32, f64)]) -> (CsrMatrix<f64>, Vec<u32>) {
        let n = base.rows();
        let mut coo = CooMatrix::new(n, n);
        let mut touched: Vec<u32> = Vec::new();
        for &(r, c, v) in updates {
            coo.push(r, c, v).unwrap();
            touched.push(r);
            touched.push(c);
        }
        touched.sort_unstable();
        touched.dedup();
        (ops::apply_delta(base, &coo.to_csr()).unwrap(), touched)
    }

    #[test]
    fn localized_insert_splices_and_reconstructs() {
        let n = 96;
        let base = ring(n);
        let cfg = DecomposeConfig::with_width(8);
        let prior = decompose_snapshot(&base, &cfg, 7).unwrap();
        // A chord inside one neighbourhood.
        let (merged, touched) = apply(&base, &[(10, 13, 2.0), (13, 10, 2.0)]);
        let (d, outcome) = decompose_snapshot_incremental(
            &merged,
            &cfg,
            7,
            Some(&prior),
            Some(&touched),
            &IncrementalPolicy::default(),
        )
        .unwrap();
        assert!(outcome.incremental, "fallback: {:?}", outcome.fallback);
        assert!(outcome.affected_vertices >= 2);
        assert!(outcome.reused_fraction() > 0.5, "{outcome:?}");
        assert_eq!(d.validate(&merged).unwrap(), 0.0);
        assert_eq!(d.nnz(), merged.nnz(), "each entry in exactly one level");
    }

    #[test]
    fn deletion_only_delta_strips_without_new_levels() {
        let n = 64;
        let base = ring(n);
        let cfg = DecomposeConfig::with_width(8);
        let prior = decompose_snapshot(&base, &cfg, 3).unwrap();
        // Remove one edge entirely (both directions cancel to zero).
        let (merged, touched) = apply(&base, &[(20, 21, -1.0), (21, 20, -1.0)]);
        assert_eq!(merged.nnz(), base.nnz() - 2);
        let (d, outcome) = decompose_snapshot_incremental(
            &merged,
            &cfg,
            3,
            Some(&prior),
            Some(&touched),
            &IncrementalPolicy::default(),
        )
        .unwrap();
        assert!(outcome.incremental);
        assert_eq!(d.validate(&merged).unwrap(), 0.0);
    }

    #[test]
    fn empty_touched_reuses_prior_as_is() {
        let n = 48;
        let base = ring(n);
        let cfg = DecomposeConfig::with_width(8);
        let prior = decompose_snapshot(&base, &cfg, 1).unwrap();
        let (d, outcome) = decompose_snapshot_incremental(
            &base,
            &cfg,
            1,
            Some(&prior),
            Some(&[]),
            &IncrementalPolicy::default(),
        )
        .unwrap();
        assert!(outcome.incremental);
        assert_eq!(outcome.affected_vertices, 0);
        assert_eq!(outcome.reused_fraction(), 1.0);
        assert_eq!(d, prior);
    }

    #[test]
    fn fallback_reasons_are_reported() {
        let n = 48;
        let base = ring(n);
        let cfg = DecomposeConfig::with_width(8);
        let prior = decompose_snapshot(&base, &cfg, 1).unwrap();
        let (merged, touched) = apply(&base, &[(0, 24, 1.0), (24, 0, 1.0)]);
        let run = |prior: Option<&ArrowDecomposition>,
                   touched: Option<&[u32]>,
                   policy: &IncrementalPolicy,
                   cfg: &DecomposeConfig| {
            let (d, o) =
                decompose_snapshot_incremental(&merged, cfg, 1, prior, touched, policy).unwrap();
            assert_eq!(d.validate(&merged).unwrap(), 0.0, "fallback stays exact");
            o
        };
        let default = IncrementalPolicy::default();
        assert_eq!(
            run(None, Some(&touched), &default, &cfg).fallback,
            Some(FallbackReason::NoPrior)
        );
        assert_eq!(
            run(Some(&prior), None, &default, &cfg).fallback,
            Some(FallbackReason::NoTouched)
        );
        assert_eq!(
            run(
                Some(&prior),
                Some(&touched),
                &IncrementalPolicy::disabled(),
                &cfg
            )
            .fallback,
            Some(FallbackReason::Disabled)
        );
        let tiny = IncrementalPolicy {
            max_affected_fraction: 0.0,
            ..default
        };
        assert_eq!(
            run(Some(&prior), Some(&touched), &tiny, &cfg).fallback,
            Some(FallbackReason::RegionTooLarge)
        );
        let shallow = IncrementalPolicy {
            max_order: 1,
            max_affected_fraction: 1.0,
            ..default
        };
        assert_eq!(
            run(Some(&prior), Some(&touched), &shallow, &cfg).fallback,
            Some(FallbackReason::OrderTooDeep)
        );
        let wide = DecomposeConfig::with_width(16);
        assert_eq!(
            run(Some(&prior), Some(&touched), &default, &wide).fallback,
            Some(FallbackReason::WidthMismatch)
        );
    }

    #[test]
    fn touched_out_of_bounds_is_an_error() {
        let base = ring(16);
        let cfg = DecomposeConfig::with_width(4);
        let prior = decompose_snapshot(&base, &cfg, 1).unwrap();
        assert!(affected_region(&prior, &[16]).is_err());
        assert!(decompose_snapshot_incremental(
            &base,
            &cfg,
            1,
            Some(&prior),
            Some(&[99]),
            &IncrementalPolicy::default(),
        )
        .is_err());
    }

    #[test]
    fn affected_region_contains_touched_and_stays_local_on_a_ring() {
        let n = 256;
        let base = ring(n);
        let cfg = DecomposeConfig::with_width(8);
        let prior = decompose_snapshot(&base, &cfg, 5).unwrap();
        let touched = [100u32, 101, 102];
        let region = affected_region(&prior, &touched).unwrap();
        for &v in &touched {
            assert!(region[v as usize]);
        }
        let affected = region.iter().filter(|&&m| m).count();
        assert!(
            affected < n as usize / 4,
            "a 3-vertex touch on a ring must stay local, got {affected}/{n}"
        );
    }

    #[test]
    fn repeated_splices_accumulate_then_policy_recompacts() {
        // Chain incremental refreshes; the order grows, and a max_order
        // policy eventually forces a cold re-compaction.
        let n = 120;
        let cfg = DecomposeConfig::with_width(8);
        let policy = IncrementalPolicy {
            max_order: 8,
            ..IncrementalPolicy::default()
        };
        let mut cur = ring(n);
        let mut d = decompose_snapshot(&cur, &cfg, 2).unwrap();
        let mut saw_order_fallback = false;
        for round in 0..12u32 {
            let a = (7 * round) % n;
            let b = (a + 3) % n;
            let (merged, touched) = apply(&cur, &[(a, b, 1.0), (b, a, 1.0)]);
            let (next, outcome) =
                decompose_snapshot_incremental(&merged, &cfg, 2, Some(&d), Some(&touched), &policy)
                    .unwrap();
            assert_eq!(next.validate(&merged).unwrap(), 0.0, "round {round}");
            saw_order_fallback |= outcome.fallback == Some(FallbackReason::OrderTooDeep);
            assert!(next.order() as u32 <= policy.max_order.max(cfg.max_levels));
            cur = merged;
            d = next;
        }
        assert!(
            saw_order_fallback,
            "12 chained splices at max_order 8 must trip a re-compaction"
        );
    }
}
