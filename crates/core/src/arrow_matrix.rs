//! Tiled arrow matrices (Figure 2 of the paper).
//!
//! An arrow matrix `B` of width `b` is tiled into `b × b` blocks `B(i,j)`.
//! Nonzeros live in three tile families:
//!
//! * row-arm tiles `B(0,j)` for `j = 0..nb`,
//! * column-arm tiles `B(i,0)` for `i = 1..nb`,
//! * diagonal tiles `B(i,i)` for `i = 1..nb`.
//!
//! In the distributed algorithm (Algorithm 1), rank `i` owns `B(0,i)`,
//! `B(i,0)` and `B(i,i)` plus the feature-matrix slice `D(i)`.

use amd_sparse::{CooMatrix, CsrMatrix, SparseError, SparseResult};

/// An arrow matrix in tiled form. Value type is `f64` (the distributed
/// pipeline's numeric type).
#[derive(Debug, Clone, PartialEq)]
pub struct ArrowMatrix {
    n: u32,
    b: u32,
    /// `row_tiles[j]` = `B(0,j)`; `row_tiles[0]` is the top-left corner
    /// tile holding both arms' overlap and the first band block.
    row_tiles: Vec<CsrMatrix<f64>>,
    /// `col_tiles[i - 1]` = `B(i,0)` for `i ≥ 1`.
    col_tiles: Vec<CsrMatrix<f64>>,
    /// `diag_tiles[i - 1]` = `B(i,i)` for `i ≥ 1`.
    diag_tiles: Vec<CsrMatrix<f64>>,
}

impl ArrowMatrix {
    /// Builds the tiled form from an `n × n` CSR matrix whose nonzeros all
    /// lie in the arrow pattern for width `b` (first `b` rows, first `b`
    /// columns, or a diagonal `b × b` block).
    ///
    /// Returns an error if any entry falls outside the pattern.
    pub fn from_csr(a: &CsrMatrix<f64>, b: u32) -> SparseResult<Self> {
        if a.rows() != a.cols() {
            return Err(SparseError::ShapeMismatch {
                left: (a.rows(), a.cols()),
                right: (a.cols(), a.rows()),
            });
        }
        assert!(b >= 1, "arrow width must be at least 1");
        let n = a.rows();
        let nb = block_count(n, b);
        let tile = |i: u32| -> (u32, u32) { (i * b, ((i + 1) * b).min(n)) };
        let mut row_builders: Vec<CooMatrix<f64>> = (0..nb)
            .map(|j| {
                let (lo, hi) = tile(j);
                CooMatrix::new(b.min(n), hi - lo)
            })
            .collect();
        let mut col_builders: Vec<CooMatrix<f64>> = (1..nb)
            .map(|i| {
                let (lo, hi) = tile(i);
                CooMatrix::new(hi - lo, b.min(n))
            })
            .collect();
        let mut diag_builders: Vec<CooMatrix<f64>> = (1..nb)
            .map(|i| {
                let (lo, hi) = tile(i);
                CooMatrix::new(hi - lo, hi - lo)
            })
            .collect();
        for (r, c, v) in a.iter() {
            let (bi, bj) = (r / b, c / b);
            if bi == 0 {
                row_builders[bj as usize].push(r, c - bj * b, v)?;
            } else if bj == 0 {
                col_builders[bi as usize - 1].push(r - bi * b, c, v)?;
            } else if bi == bj {
                diag_builders[bi as usize - 1].push(r - bi * b, c - bj * b, v)?;
            } else {
                return Err(SparseError::InvalidCsr(format!(
                    "entry ({r}, {c}) outside arrow pattern for width {b}"
                )));
            }
        }
        Ok(Self {
            n,
            b,
            row_tiles: row_builders.iter().map(CooMatrix::to_csr).collect(),
            col_tiles: col_builders.iter().map(CooMatrix::to_csr).collect(),
            diag_tiles: diag_builders.iter().map(CooMatrix::to_csr).collect(),
        })
    }

    /// Matrix dimension `n`.
    #[inline]
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Arrow width / tile size `b`.
    #[inline]
    pub fn b(&self) -> u32 {
        self.b
    }

    /// Number of block rows `⌈n/b⌉`.
    #[inline]
    pub fn block_count(&self) -> u32 {
        block_count(self.n, self.b)
    }

    /// Row-arm tile `B(0,j)`.
    pub fn row_tile(&self, j: u32) -> &CsrMatrix<f64> {
        &self.row_tiles[j as usize]
    }

    /// Column-arm tile `B(i,0)` for `i ≥ 1`.
    pub fn col_tile(&self, i: u32) -> &CsrMatrix<f64> {
        assert!(i >= 1, "column tiles start at block row 1");
        &self.col_tiles[i as usize - 1]
    }

    /// Diagonal tile `B(i,i)` for `i ≥ 1` (`B(0,0)` is `row_tile(0)`).
    pub fn diag_tile(&self, i: u32) -> &CsrMatrix<f64> {
        assert!(i >= 1, "diagonal tiles start at block row 1");
        &self.diag_tiles[i as usize - 1]
    }

    /// Total stored entries across all tiles.
    pub fn nnz(&self) -> usize {
        self.row_tiles.iter().map(CsrMatrix::nnz).sum::<usize>()
            + self.col_tiles.iter().map(CsrMatrix::nnz).sum::<usize>()
            + self.diag_tiles.iter().map(CsrMatrix::nnz).sum::<usize>()
    }

    /// Number of tiles holding at least one nonzero — the quantity the
    /// §7.2 block-count comparison reports.
    pub fn nonzero_tiles(&self) -> usize {
        self.row_tiles.iter().filter(|t| t.nnz() > 0).count()
            + self.col_tiles.iter().filter(|t| t.nnz() > 0).count()
            + self.diag_tiles.iter().filter(|t| t.nnz() > 0).count()
    }

    /// Reassembles the full `n × n` CSR matrix (for validation).
    pub fn to_csr(&self) -> CsrMatrix<f64> {
        let b = self.b;
        let mut coo = CooMatrix::with_capacity(self.n, self.n, self.nnz());
        for (j, t) in self.row_tiles.iter().enumerate() {
            for (r, c, v) in t.iter() {
                coo.push(r, c + j as u32 * b, v)
                    .expect("tile entry in range");
            }
        }
        for (idx, t) in self.col_tiles.iter().enumerate() {
            let i = idx as u32 + 1;
            for (r, c, v) in t.iter() {
                // Skip duplicates with the row arm (impossible: r offset ≥ b).
                coo.push(r + i * b, c, v).expect("tile entry in range");
            }
        }
        for (idx, t) in self.diag_tiles.iter().enumerate() {
            let i = idx as u32 + 1;
            for (r, c, v) in t.iter() {
                coo.push(r + i * b, c + i * b, v)
                    .expect("tile entry in range");
            }
        }
        coo.to_csr()
    }
}

/// `⌈n/b⌉`, with a minimum of 1 so even empty matrices have a tile.
pub fn block_count(n: u32, b: u32) -> u32 {
    n.div_ceil(b).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use amd_sparse::arrow_width;

    // Helper building an arrow-pattern CSR: arms of width 2 + block diag.
    fn arrow_csr(n: u32, b: u32) -> CsrMatrix<f64> {
        let mut coo = CooMatrix::new(n, n);
        // Row arm, column arm.
        for j in 0..n {
            coo.push(0, j, (j + 1) as f64).unwrap();
            if j >= b {
                coo.push(j, 1, 0.5).unwrap();
            }
        }
        // Block-diagonal entries.
        for blk in 1..(n / b) {
            let base = blk * b;
            coo.push(base, base + 1, 2.0).unwrap();
            coo.push(base + 1, base, 2.0).unwrap();
        }
        coo.to_csr()
    }

    #[test]
    fn roundtrip_preserves_matrix() {
        let a = arrow_csr(12, 3);
        let arrow = ArrowMatrix::from_csr(&a, 3).unwrap();
        assert_eq!(arrow.to_csr(), a);
        assert_eq!(arrow.nnz(), a.nnz());
        assert_eq!(arrow.block_count(), 4);
    }

    #[test]
    fn rejects_entries_outside_pattern() {
        let mut coo = CooMatrix::new(9, 9);
        coo.push(4, 8, 1.0).unwrap(); // blocks (1, 2): off-pattern for b=3
        let a = coo.to_csr();
        assert!(ArrowMatrix::from_csr(&a, 3).is_err());
    }

    #[test]
    fn accepts_all_arm_and_diag_positions() {
        let a = arrow_csr(12, 4);
        let arrow = ArrowMatrix::from_csr(&a, 4).unwrap();
        // Arrow width of the reassembled matrix is ≤ b by construction.
        assert!(arrow_width(&arrow.to_csr()) <= 4 + 3); // block diag ⇒ |i−j| < b
                                                        // Tile accessors.
        assert!(arrow.row_tile(0).nnz() > 0);
        assert!(arrow.col_tile(1).nnz() > 0);
        let _ = arrow.diag_tile(1);
    }

    #[test]
    fn ragged_last_tile() {
        // n = 10, b = 4 → blocks of 4, 4, 2.
        let a = arrow_csr(10, 4);
        let arrow = ArrowMatrix::from_csr(&a, 4).unwrap();
        assert_eq!(arrow.block_count(), 3);
        assert_eq!(arrow.row_tile(2).cols(), 2);
        assert_eq!(arrow.diag_tile(2).rows(), 2);
        assert_eq!(arrow.to_csr(), a);
    }

    #[test]
    fn nonzero_tile_counting() {
        let mut coo = CooMatrix::new(12, 12);
        coo.push(0, 0, 1.0).unwrap(); // tile (0,0)
        coo.push(5, 0, 1.0).unwrap(); // col tile (1,0)
        coo.push(9, 10, 1.0).unwrap(); // diag tile (3,3) with b=3? 9/3=3 ✓
        let a = coo.to_csr();
        let arrow = ArrowMatrix::from_csr(&a, 3).unwrap();
        assert_eq!(arrow.nonzero_tiles(), 3);
    }

    #[test]
    fn rectangular_input_rejected() {
        let a = CsrMatrix::<f64>::zeros(3, 4);
        assert!(ArrowMatrix::from_csr(&a, 2).is_err());
    }

    #[test]
    fn width_one_arrowhead() {
        // b = 1: classic arrowhead matrix.
        let mut coo = CooMatrix::new(5, 5);
        for j in 1..5 {
            coo.push(0, j, 1.0).unwrap();
            coo.push(j, 0, 1.0).unwrap();
            coo.push(j, j, 2.0).unwrap();
        }
        let a = coo.to_csr();
        let arrow = ArrowMatrix::from_csr(&a, 1).unwrap();
        assert_eq!(arrow.block_count(), 5);
        assert_eq!(arrow.to_csr(), a);
    }
}
