//! The arrow matrix decomposition `A = Σᵢ P_πᵢ Bᵢ Pᵀ_πᵢ` (§4).

use crate::arrow_matrix::ArrowMatrix;
use amd_sparse::{
    kernel, ops, spmm, CsrMatrix, DenseMatrix, Permutation, SparseError, SparseResult,
};

/// One level of the decomposition: a permutation `πᵢ` and the arrow matrix
/// `Bᵢ` expressed in permuted coordinates (positions).
#[derive(Debug, Clone, PartialEq)]
pub struct ArrowLevel {
    /// The arrangement `πᵢ` mapping vertices to positions.
    pub perm: Permutation,
    /// `Bᵢ` as a full `n × n` CSR matrix in position coordinates. All
    /// nonzeros lie in the arrow pattern of width `b` and within the
    /// leading `active_n × active_n` block.
    pub matrix: CsrMatrix<f64>,
    /// Number of leading positions that may host nonzeros (pruned vertices
    /// plus arranged non-isolated vertices). Positions `≥ active_n` are
    /// structurally empty, which is what lets later levels use fewer ranks.
    pub active_n: u32,
}

impl ArrowLevel {
    /// Tiled view of the *active* part of this level's matrix.
    pub fn to_arrow(&self, b: u32) -> SparseResult<ArrowMatrix> {
        let active = self.matrix.submatrix(0, self.active_n, 0, self.active_n);
        ArrowMatrix::from_csr(&active, b)
    }

    /// Stored entries of this level.
    pub fn nnz(&self) -> usize {
        self.matrix.nnz()
    }
}

/// A `b`-arrow matrix decomposition of order `l = levels.len()`.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrowDecomposition {
    n: u32,
    b: u32,
    levels: Vec<ArrowLevel>,
}

impl ArrowDecomposition {
    /// Assembles a decomposition from levels (used by `la_decompose`).
    pub fn new(n: u32, b: u32, levels: Vec<ArrowLevel>) -> Self {
        debug_assert!(levels.iter().all(|l| l.matrix.rows() == n));
        Self { n, b, levels }
    }

    /// Matrix dimension.
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Arrow width `b`.
    pub fn b(&self) -> u32 {
        self.b
    }

    /// The order `l` of the decomposition (number of arrow matrices).
    pub fn order(&self) -> usize {
        self.levels.len()
    }

    /// The levels in peeling order (level 0 first).
    pub fn levels(&self) -> &[ArrowLevel] {
        &self.levels
    }

    /// Total stored entries across all levels (each entry of `A` appears
    /// in exactly one level — the storage argument of Lemma 7).
    pub fn nnz(&self) -> usize {
        self.levels.iter().map(ArrowLevel::nnz).sum()
    }

    /// Applies additive value patches to entries that already exist
    /// structurally, without re-running LA-Decompose.
    ///
    /// Every stored entry of `A` lives in exactly one level (at position
    /// `(πᵢ(r), πᵢ(c))` of that level's matrix), so a value-only change
    /// can be folded into the owning level directly — the decomposition
    /// identity `A + Δ = Σᵢ P_πᵢ (Bᵢ + Δᵢ) Pᵀ_πᵢ` holds with `Δᵢ` the
    /// patches owned by level `i`. This is the streaming layer's fast
    /// path: structure-preserving updates cost `O(order · log row_nnz)`
    /// each instead of a full re-decomposition.
    ///
    /// Returns an error (leaving `self` unchanged) if any patch targets a
    /// position that no level stores; such updates change the structure
    /// and must go through the delta overlay + refresh path instead.
    pub fn patch_values(&mut self, patches: &[(u32, u32, f64)]) -> SparseResult<()> {
        // Validate every target first so a failed batch has no effect.
        let mut owners = Vec::with_capacity(patches.len());
        for &(r, c, _) in patches {
            if r >= self.n || c >= self.n {
                return Err(SparseError::IndexOutOfBounds {
                    row: r,
                    col: c,
                    rows: self.n,
                    cols: self.n,
                });
            }
            let owner = self.levels.iter().position(|level| {
                let (pr, pc) = (level.perm.position(r), level.perm.position(c));
                level.matrix.row_indices(pr).binary_search(&pc).is_ok()
            });
            match owner {
                Some(i) => owners.push(i),
                None => {
                    return Err(SparseError::InvalidCsr(format!(
                        "patch target ({r}, {c}) is not a stored entry of any level; \
                         structural updates need the delta/refresh path"
                    )))
                }
            }
        }
        for (&(r, c, dv), &i) in patches.iter().zip(&owners) {
            let level = &mut self.levels[i];
            let (pr, pc) = (level.perm.position(r), level.perm.position(c));
            *level
                .matrix
                .get_mut(pr, pc)
                .expect("owner level stores the position") += dv;
        }
        Ok(())
    }

    /// Reconstructs `A = Σᵢ P_πᵢ Bᵢ Pᵀ_πᵢ` (validation path).
    pub fn reconstruct(&self) -> SparseResult<CsrMatrix<f64>> {
        let mut acc = CsrMatrix::<f64>::zeros(self.n, self.n);
        for level in &self.levels {
            // Bᵢ is stored in position coordinates; applying the *inverse*
            // arrangement maps positions back to vertices.
            let back = level.perm.inverse().apply_symmetric(&level.matrix)?;
            acc = ops::add(&acc, &back)?;
        }
        Ok(acc.prune_zeros())
    }

    /// Maximum absolute entry-wise error of the reconstruction vs `a`.
    pub fn validate(&self, a: &CsrMatrix<f64>) -> SparseResult<f64> {
        self.reconstruct()?.max_abs_diff(a)
    }

    /// Fraction of positions that are active, averaged over levels
    /// (`Σᵢ active_nᵢ / (l · n)`). Spliced levels produced by incremental
    /// refresh have tiny active prefixes, so a low fraction means the
    /// fused multiply skips most of the permutation work a naive
    /// level-by-level multiply would pay. `1.0` for an empty decomposition
    /// (nothing is skippable).
    pub fn active_prefix_fraction(&self) -> f64 {
        if self.levels.is_empty() || self.n == 0 {
            return 1.0;
        }
        let active: u64 = self.levels.iter().map(|l| l.active_n as u64).sum();
        active as f64 / (self.levels.len() as u64 * self.n as u64) as f64
    }

    /// `Y = A · X` through the decomposition (Eq. 1):
    /// `AX = Σᵢ P_πᵢ (Bᵢ (Pᵀ_πᵢ X))`.
    ///
    /// Each level runs the fused active-prefix kernel
    /// ([`kernel::fused_level_acc`]): one cache-blocked pass that gathers
    /// `x` through the arrangement, multiplies the banded level matrix and
    /// accumulates straight into `y`, touching only the level's active
    /// prefix. Bit-identical to [`multiply_unfused`](Self::multiply_unfused)
    /// for all non-NaN inputs (see the kernel module docs for why).
    pub fn multiply(&self, x: &DenseMatrix<f64>) -> SparseResult<DenseMatrix<f64>> {
        let mut y = DenseMatrix::zeros(self.n, x.cols());
        for level in &self.levels {
            kernel::fused_level_acc(
                &level.matrix,
                level.perm.order(),
                level.active_n,
                x,
                &mut y,
                kernel::DEFAULT_K_BLOCK,
            )?;
        }
        Ok(y)
    }

    /// The historical three-pass multiply: materialise `Pᵀ_πᵢ X`, run the
    /// level SpMM over all `n` rows, permute back, add. Kept as the naive
    /// comparator for the fused kernel's exactness tests and the
    /// `kernels` benchmark — not a serving path.
    pub fn multiply_unfused(&self, x: &DenseMatrix<f64>) -> SparseResult<DenseMatrix<f64>> {
        let mut y = DenseMatrix::zeros(self.n, x.cols());
        for level in &self.levels {
            let px = level.perm.apply_rows(x)?;
            let yi = spmm::spmm(&level.matrix, &px)?;
            let back = level.perm.unapply_rows(&yi)?;
            y.add_assign(&back)?;
        }
        Ok(y)
    }

    /// Iterated multiply `X_{t+1} = σ(A X_t)` for `steps` iterations.
    pub fn iterate(
        &self,
        x0: &DenseMatrix<f64>,
        steps: u32,
        sigma: impl Fn(f64) -> f64 + Sync,
    ) -> SparseResult<DenseMatrix<f64>> {
        let mut x = x0.clone();
        for _ in 0..steps {
            let mut y = self.multiply(&x)?;
            y.map_inplace(&sigma);
            x = y;
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::la_decompose::{la_decompose, DecomposeConfig};
    use crate::strategy::RandomForestLa;
    use amd_graph::generators::basic;
    use amd_sparse::spmm::spmm as ref_spmm;

    fn decompose_star(n: u32, b: u32) -> (CsrMatrix<f64>, ArrowDecomposition) {
        let a: CsrMatrix<f64> = basic::star(n).to_adjacency();
        let d = la_decompose(
            &a,
            &DecomposeConfig {
                arrow_width: b,
                ..Default::default()
            },
            &mut RandomForestLa::new(3),
        )
        .unwrap();
        (a, d)
    }

    #[test]
    fn star_reconstructs_exactly() {
        let (a, d) = decompose_star(40, 4);
        assert_eq!(d.validate(&a).unwrap(), 0.0);
        assert_eq!(d.nnz(), a.nnz());
    }

    #[test]
    fn multiply_matches_direct_spmm() {
        let (a, d) = decompose_star(40, 4);
        let x = DenseMatrix::from_fn(40, 3, |r, c| ((r * 3 + c) % 7) as f64 - 3.0);
        let direct = ref_spmm(&a, &x).unwrap();
        let via = d.multiply(&x).unwrap();
        assert!(via.max_abs_diff(&direct).unwrap() < 1e-9);
    }

    #[test]
    fn iterate_applies_sigma() {
        let (a, d) = decompose_star(20, 4);
        let x = DenseMatrix::from_fn(20, 2, |r, _| if r == 0 { 1.0 } else { -1.0 });
        let relu = |v: f64| v.max(0.0);
        let it = d.iterate(&x, 2, relu).unwrap();
        // Direct computation.
        let mut direct = x.clone();
        for _ in 0..2 {
            let mut y = ref_spmm(&a, &direct).unwrap();
            y.map_inplace(relu);
            direct = y;
        }
        assert!(it.max_abs_diff(&direct).unwrap() < 1e-9);
    }

    #[test]
    fn patch_values_tracks_matrix_edits() {
        // Patch a decomposition in place and check it reconstructs the
        // edited matrix exactly — across all levels of a deeper instance.
        use rand::SeedableRng;
        let g = amd_graph::generators::random::random_tree(
            120,
            &mut rand_chacha::ChaCha8Rng::seed_from_u64(7),
        );
        let a: CsrMatrix<f64> = g.to_adjacency();
        let mut d = la_decompose(
            &a,
            &DecomposeConfig::with_width(8),
            &mut RandomForestLa::new(5),
        )
        .unwrap();
        // Pick stored entries spread over the matrix and perturb them.
        let targets: Vec<(u32, u32, f64)> = a
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 17 == 0)
            .map(|(i, (r, c, _))| (r, c, 0.25 * (i as f64 + 1.0)))
            .collect();
        assert!(!targets.is_empty());
        d.patch_values(&targets).unwrap();
        let mut edited = a.clone();
        for &(r, c, dv) in &targets {
            *edited.get_mut(r, c).unwrap() += dv;
        }
        assert_eq!(d.validate(&edited).unwrap(), 0.0);
    }

    #[test]
    fn patch_rejects_structural_updates_atomically() {
        let (a, mut d) = decompose_star(30, 4);
        let before = d.clone();
        // (1, 2) is not an edge of a star — the batch must fail and leave
        // the decomposition untouched even though (0, 1) is patchable.
        let err = d.patch_values(&[(0, 1, 1.0), (1, 2, 1.0)]);
        assert!(err.is_err());
        assert_eq!(d, before, "failed patch must not partially apply");
        // Out-of-bounds targets are rejected too.
        assert!(d.patch_values(&[(40, 0, 1.0)]).is_err());
        assert_eq!(d.validate(&a).unwrap(), 0.0);
    }

    #[test]
    fn fused_multiply_bit_matches_unfused() {
        let (_, d) = decompose_star(60, 4);
        let x = DenseMatrix::from_fn(60, 7, |r, c| ((r * 7 + c) % 23) as f64 / 4.0 - 2.5);
        assert_eq!(d.multiply(&x).unwrap(), d.multiply_unfused(&x).unwrap());
    }

    #[test]
    fn active_prefix_fraction_bounds() {
        let (_, d) = decompose_star(40, 4);
        let f = d.active_prefix_fraction();
        assert!(f > 0.0 && f <= 1.0, "fraction {f} out of range");
        let total: u64 = d.levels().iter().map(|l| l.active_n as u64).sum();
        assert_eq!(f, total as f64 / (d.order() as u64 * 40) as f64);
        assert_eq!(
            ArrowDecomposition::new(5, 2, Vec::new()).active_prefix_fraction(),
            1.0
        );
    }

    #[test]
    fn levels_expose_arrow_views() {
        let (_, d) = decompose_star(40, 4);
        for level in d.levels() {
            let arrow = level.to_arrow(d.b()).unwrap();
            assert_eq!(arrow.nnz(), level.nnz());
        }
    }
}
