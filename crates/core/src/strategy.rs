//! Pluggable linear arrangement strategies for LA-Decompose.
//!
//! LA-Decompose (§5.1) is a framework parameterised by how step 2 computes
//! the arrangement of the pruned subgraph. The paper's evaluation uses the
//! random spanning forest heuristic (§5.3); the separator-based layout
//! (§5.2) gives the provable bounds; RCM and the identity are baselines
//! for the ablation benchmarks.

use amd_graph::separator::{BfsLevelSeparator, CentroidSeparator};
use amd_graph::traversal::connected_components;
use amd_graph::Graph;
use amd_linarr::{reverse_cuthill_mckee, separator_la, spanning_forest_la};
use amd_sparse::Permutation;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Produces a linear arrangement of a (possibly disconnected) graph.
///
/// Strategies may be stateful (e.g. hold an RNG); LA-Decompose calls
/// `arrange` once per level on the subgraph that remains after pruning.
pub trait ArrangementStrategy {
    /// Computes an arrangement covering every vertex of `g`.
    fn arrange(&mut self, g: &Graph) -> Permutation;

    /// Human-readable name for reports.
    fn name(&self) -> &'static str;
}

/// The paper's production heuristic: random spanning forest + smallest-
/// first tree layout (§5.3 + §5.4). Deterministic given the seed.
#[derive(Debug, Clone)]
pub struct RandomForestLa {
    rng: ChaCha8Rng,
}

impl RandomForestLa {
    /// Creates the strategy with a fixed seed.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }
}

impl ArrangementStrategy for RandomForestLa {
    fn arrange(&mut self, g: &Graph) -> Permutation {
        spanning_forest_la(g, &mut self.rng)
    }

    fn name(&self) -> &'static str {
        "random-forest-la"
    }
}

/// Separator-LA (§5.2) with the BFS-level separator for general graphs,
/// switching to exact centroids when the graph is a forest.
#[derive(Debug, Clone, Copy, Default)]
pub struct SeparatorLaStrategy;

impl ArrangementStrategy for SeparatorLaStrategy {
    fn arrange(&mut self, g: &Graph) -> Permutation {
        let comps = connected_components(g);
        let is_forest = g.m() + (comps.count as usize) == g.n() as usize;
        if is_forest {
            separator_la(g, &CentroidSeparator)
        } else {
            separator_la(g, &BfsLevelSeparator)
        }
    }

    fn name(&self) -> &'static str {
        "separator-la"
    }
}

/// Reverse Cuthill-McKee — the bandwidth-minimisation baseline (§3).
#[derive(Debug, Clone, Copy, Default)]
pub struct RcmLa;

impl ArrangementStrategy for RcmLa {
    fn arrange(&mut self, g: &Graph) -> Permutation {
        reverse_cuthill_mckee(g)
    }

    fn name(&self) -> &'static str {
        "rcm"
    }
}

/// The identity arrangement — the "no reordering" control for ablations.
#[derive(Debug, Clone, Copy, Default)]
pub struct IdentityLa;

impl ArrangementStrategy for IdentityLa {
    fn arrange(&mut self, g: &Graph) -> Permutation {
        Permutation::identity(g.n())
    }

    fn name(&self) -> &'static str {
        "identity"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amd_graph::generators::basic;
    use amd_linarr::la_cost;

    #[test]
    fn all_strategies_cover_vertices() {
        let g = basic::grid_2d(5, 5);
        let mut strategies: Vec<Box<dyn ArrangementStrategy>> = vec![
            Box::new(RandomForestLa::new(1)),
            Box::new(SeparatorLaStrategy),
            Box::new(RcmLa),
            Box::new(IdentityLa),
        ];
        for s in &mut strategies {
            let pi = s.arrange(&g);
            assert_eq!(pi.len(), 25, "{} wrong size", s.name());
        }
    }

    #[test]
    fn forest_detection_uses_centroids() {
        // On trees the separator strategy must produce the Lemma 2 cost
        // shape; smoke-test by comparing against identity on a deep tree.
        let g = basic::complete_ary_tree(2, 127);
        let mut s = SeparatorLaStrategy;
        let pi = s.arrange(&g);
        let mut id = IdentityLa;
        let idp = id.arrange(&g);
        // BFS numbering of a balanced tree is already decent; the
        // separator layout should be within a small factor either way.
        let (c1, c2) = (la_cost(&g, &pi), la_cost(&g, &idp));
        assert!(c1 > 0 && c2 > 0);
    }

    #[test]
    fn random_forest_deterministic_per_seed() {
        let g = basic::grid_2d(6, 6);
        let p1 = RandomForestLa::new(9).arrange(&g);
        let p2 = RandomForestLa::new(9).arrange(&g);
        assert_eq!(p1, p2);
    }

    #[test]
    fn names_are_distinct() {
        let names = [
            RandomForestLa::new(0).name(),
            SeparatorLaStrategy.name(),
            RcmLa.name(),
            IdentityLa.name(),
        ];
        let set: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), names.len());
    }
}
