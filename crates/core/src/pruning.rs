//! Power-law pruning analysis (§5.6).
//!
//! LA-Decompose's first step places the `b` highest-degree vertices in the
//! arrow's arm. For graphs whose degrees follow a truncated Zipf
//! distribution with shape `α > 1`, Theorem 1 and Lemma 5 quantify how
//! many vertices must be pruned so the remainder has bounded degree, and
//! Corollary 2 turns that into the width recommendation `b = ω(n^{1/α})`.

use amd_graph::zipf::{survival_bound, TruncatedZipf};

/// Lemma 5: upper bound on the probability that more than `b` vertices
/// have degree ≥ `delta0` in an `n`-vertex Zipf(α) degree model:
/// `n · Δ₀^{1−α} / (b (α−1) ζ(α))` (clamped to 1).
pub fn lemma5_probability(n: u64, alpha: f64, b: u64, delta0: f64) -> f64 {
    assert!(alpha > 1.0 && b > 0);
    let p = n as f64 * survival_bound(delta0, alpha) / b as f64;
    p.min(1.0)
}

/// The balance point of §5.6: pruning `b ≈ n^{1/α}` vertices leaves
/// maximum degree ≈ `n^{1/α}` with probability `1 − o(1)`. Returns the
/// recommended arrow width for a power-law graph (`δ = 1/α`).
pub fn recommended_width(n: u64, alpha: f64) -> u64 {
    assert!(alpha > 1.0);
    ((n as f64).powf(1.0 / alpha).ceil() as u64).max(1)
}

/// Expected maximum degree of the graph that remains after removing the
/// `b` highest-degree vertices, under the Zipf(α) degree model: the
/// smallest `Δ₀` with `n·S(Δ₀) ≤ b`.
pub fn residual_max_degree(n: u64, alpha: f64, b: u64) -> u64 {
    let z = TruncatedZipf::new(n, alpha);
    // S is monotone decreasing: binary search the threshold.
    let (mut lo, mut hi) = (1u64, n);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if n as f64 * z.survival(mid) <= b as f64 {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    lo
}

/// Empirical counterpart used in tests and the E8 ablation: number of
/// degrees in `degrees` strictly greater than `x`.
pub fn count_above(degrees: &[u32], x: u32) -> usize {
    degrees.iter().filter(|&&d| d > x).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn lemma5_probability_shrinks_with_b_and_delta() {
        let p1 = lemma5_probability(10_000, 2.0, 10, 1000.0);
        let p2 = lemma5_probability(10_000, 2.0, 100, 1000.0);
        let p3 = lemma5_probability(10_000, 2.0, 10, 5000.0);
        assert!(p2 < p1);
        assert!(p3 < p1);
        assert!(lemma5_probability(10, 2.0, 1000, 2.0) <= 1.0);
    }

    #[test]
    fn recommended_width_scales_as_root() {
        assert_eq!(recommended_width(10_000, 2.0), 100);
        assert!(recommended_width(1_000_000, 3.0) <= 101);
        assert!(recommended_width(100, 1.5) >= 21); // 100^(2/3) ≈ 21.5
    }

    #[test]
    fn residual_max_degree_decreases_in_b() {
        let d1 = residual_max_degree(100_000, 1.8, 10);
        let d2 = residual_max_degree(100_000, 1.8, 1_000);
        assert!(d2 <= d1);
        assert!(d2 >= 1);
    }

    #[test]
    fn model_predicts_empirical_prune_counts() {
        // Sample Zipf degrees and verify Lemma 5's expectation bound: the
        // number of vertices above Δ₀ should rarely exceed n·S(Δ₀) by much.
        let n = 50_000u64;
        let alpha = 2.0;
        let z = amd_graph::zipf::TruncatedZipf::new(n, alpha);
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let degrees: Vec<u32> = (0..n).map(|_| z.sample(&mut rng) as u32).collect();
        for delta0 in [10u32, 50, 200] {
            let expected = n as f64 * z.survival(delta0 as u64);
            let actual = count_above(&degrees, delta0) as f64;
            assert!(
                actual <= 2.0 * expected + 10.0,
                "Δ₀={delta0}: actual {actual} ≫ expected {expected}"
            );
        }
    }

    #[test]
    fn corollary2_width_controls_residual_degree() {
        // b = n^{1/α} ⇒ residual max degree ≈ n^{1/α} (same order).
        let n = 100_000u64;
        let alpha = 2.0;
        let b = recommended_width(n, alpha);
        let residual = residual_max_degree(n, alpha, b);
        let target = (n as f64).powf(1.0 / alpha);
        assert!(
            (residual as f64) <= 8.0 * target,
            "residual {residual} far above n^(1/α) = {target}"
        );
    }
}
