//! Decomposition persistence.
//!
//! The paper's workflow decomposes once (their Julia pipeline, on fat
//! memory nodes) and reuses the decomposition across many SpMM runs. This
//! module serialises an [`ArrowDecomposition`] to a compact little-endian
//! binary stream so the same workflow works here: decompose, save, and
//! load on later runs without repeating the arrangement computation.
//!
//! Format (version 1): magic `AMD1`, then `n`, `b`, `l`, and per level the
//! permutation order array, `active_n`, and the CSR arrays of the level
//! matrix. All integers are `u64` LE; values are `f64` LE bits.
//!
//! Format (version 2): magic `AMD2`, then a [`PersistMeta`] header — the
//! matrix **version** counter and the 128-bit content **fingerprint** of
//! the matrix the decomposition was computed from — followed by the same
//! payload as version 1. The streaming layer writes v2 on every refresh
//! so a restart can tell *which* revision of a mutating matrix a spill
//! file describes; [`load`] accepts both formats.
//!
//! Format (version 3): magic `AMD3`, then a [`CatalogMeta`] header — the
//! v2 provenance plus the **parent fingerprint** (delta lineage), the
//! catalog **created-at** counter, and the full decompose identity
//! (arrow width, pruning flag, level cap, arrangement seed) — followed
//! by the same payload. The [`catalog`](crate::catalog) writes v3
//! exclusively, so a lost or corrupt manifest can be rebuilt by reading
//! nothing but payload headers. [`load`] and [`load_versioned`] accept
//! all three formats.
//!
//! Version-3 streams additionally end in an 8-byte **checksum footer**:
//! the FNV-1a-64 digest of every preceding byte (magic, header, and
//! payload). A torn or truncated write — simulated by the
//! `catalog.payload.torn` failpoint, produced for real by power loss
//! mid-write — is rejected on load with a clear [`SparseError`] instead
//! of deserializing garbage. Unchecksummed v3 files written before the
//! footer existed (the stream ends exactly after the payload) still
//! load, as do v1/v2 streams.
//!
//! Every function here is an implementation detail of
//! [`crate::catalog`]; serving layers persist through a
//! [`Catalog`](crate::catalog::Catalog), never through this module
//! directly.

use crate::decomposition::{ArrowDecomposition, ArrowLevel};
use crate::la_decompose::DecomposeConfig;
use amd_sparse::{CsrMatrix, Permutation, SparseError, SparseResult};
use std::io::{Read, Write};

const MAGIC: &[u8; 4] = b"AMD1";
const MAGIC_V2: &[u8; 4] = b"AMD2";
const MAGIC_V3: &[u8; 4] = b"AMD3";

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Write adapter folding every byte into an FNV-1a-64 digest, so the
/// checksum costs one fused pass instead of re-reading the stream.
struct HashingWriter<W: Write> {
    inner: W,
    digest: u64,
}

impl<W: Write> HashingWriter<W> {
    fn new(inner: W) -> Self {
        Self {
            inner,
            digest: FNV_OFFSET,
        }
    }
}

impl<W: Write> Write for HashingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let n = self.inner.write(buf)?;
        for &b in &buf[..n] {
            self.digest = (self.digest ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// Read adapter mirroring [`HashingWriter`] on the load path.
struct HashingReader<R: Read> {
    inner: R,
    digest: u64,
}

impl<R: Read> HashingReader<R> {
    fn new(inner: R) -> Self {
        Self {
            inner,
            digest: FNV_OFFSET,
        }
    }
}

impl<R: Read> Read for HashingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        for &b in &buf[..n] {
            self.digest = (self.digest ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
        Ok(n)
    }
}

/// Provenance header of a version-2 persisted decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PersistMeta {
    /// Monotonic revision counter of the source matrix (0 for the first
    /// decomposition, bumped by every streaming refresh).
    pub version: u64,
    /// [`CsrMatrix::fingerprint`] of the exact matrix that was decomposed.
    pub fingerprint: u128,
}

/// Full provenance header of a version-3 (catalog) payload: everything
/// the [`catalog`](crate::catalog) needs to reconstruct a manifest
/// record from the payload file alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CatalogMeta {
    /// [`CsrMatrix::fingerprint`] of the exact matrix that was decomposed.
    pub fingerprint: u128,
    /// Lineage revision counter (0 for a cold decomposition, +1 per
    /// streaming refresh along the chain).
    pub version: u64,
    /// Content fingerprint of the lineage predecessor this revision was
    /// refreshed from; 0 marks a chain root.
    pub parent: u128,
    /// Catalog-wide monotonic creation counter (orders versions within
    /// and across chains without wall clocks).
    pub created_at: u64,
    /// Seed of the random-forest arrangement strategy.
    pub seed: u64,
    /// Decomposition parameters (arrow width, pruning, level cap).
    pub config: DecomposeConfig,
}

impl CatalogMeta {
    /// The v2 view of this header (fingerprint + version).
    pub fn persist_meta(&self) -> PersistMeta {
        PersistMeta {
            version: self.version,
            fingerprint: self.fingerprint,
        }
    }
}

/// Writes the decomposition to `w` (version-1 stream, no provenance).
pub fn save<W: Write>(d: &ArrowDecomposition, mut w: W) -> SparseResult<()> {
    w.write_all(MAGIC).map_err(io_err)?;
    save_payload(d, &mut w)
}

/// Writes a version-3 stream: [`CatalogMeta`] provenance header followed
/// by the decomposition payload and an FNV-1a-64 checksum footer over
/// everything before it.
pub fn save_catalog<W: Write>(
    d: &ArrowDecomposition,
    meta: &CatalogMeta,
    w: W,
) -> SparseResult<()> {
    let mut w = HashingWriter::new(w);
    w.write_all(MAGIC_V3).map_err(io_err)?;
    write_catalog_header(&mut w, meta)?;
    save_payload(d, &mut w)?;
    let digest = w.digest;
    put_u64(&mut w, digest)
}

fn write_catalog_header<W: Write>(w: &mut W, meta: &CatalogMeta) -> SparseResult<()> {
    w.write_all(&meta.fingerprint.to_le_bytes())
        .map_err(io_err)?;
    put_u64(w, meta.version)?;
    w.write_all(&meta.parent.to_le_bytes()).map_err(io_err)?;
    put_u64(w, meta.created_at)?;
    put_u64(w, meta.seed)?;
    put_u64(w, meta.config.arrow_width as u64)?;
    put_u64(w, meta.config.prune as u64)?;
    put_u64(w, meta.config.max_levels as u64)
}

fn read_catalog_header<R: Read>(r: &mut R) -> SparseResult<CatalogMeta> {
    let mut fp = [0u8; 16];
    r.read_exact(&mut fp).map_err(io_err)?;
    let fingerprint = u128::from_le_bytes(fp);
    let version = get_u64(r)?;
    let mut parent_bytes = [0u8; 16];
    r.read_exact(&mut parent_bytes).map_err(io_err)?;
    let parent = u128::from_le_bytes(parent_bytes);
    let created_at = get_u64(r)?;
    let seed = get_u64(r)?;
    let arrow_width = get_u64(r)? as u32;
    let prune = get_u64(r)? != 0;
    let max_levels = get_u64(r)? as u32;
    Ok(CatalogMeta {
        fingerprint,
        version,
        parent,
        created_at,
        seed,
        config: DecomposeConfig {
            arrow_width,
            prune,
            max_levels,
        },
    })
}

/// Reads **only** the header of a stream: the magic plus, for a
/// version-3 payload, the full [`CatalogMeta`]. Version-1/2 streams
/// report `None` — they predate catalog provenance. This is the cheap
/// probe manifest rebuilds use: it never touches the level payload.
pub fn peek_catalog_header<R: Read>(mut r: R) -> SparseResult<Option<CatalogMeta>> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic).map_err(io_err)?;
    match &magic {
        m if m == MAGIC_V3 => Ok(Some(read_catalog_header(&mut r)?)),
        m if m == MAGIC || m == MAGIC_V2 => Ok(None),
        _ => Err(SparseError::InvalidCsr(format!(
            "bad magic {magic:?}: not an arrow decomposition file"
        ))),
    }
}

/// Writes a version-2 stream: [`PersistMeta`] provenance header followed
/// by the decomposition payload.
pub fn save_versioned<W: Write>(
    d: &ArrowDecomposition,
    meta: &PersistMeta,
    mut w: W,
) -> SparseResult<()> {
    w.write_all(MAGIC_V2).map_err(io_err)?;
    put_u64(&mut w, meta.version)?;
    w.write_all(&meta.fingerprint.to_le_bytes())
        .map_err(io_err)?;
    save_payload(d, &mut w)
}

fn save_payload<W: Write>(d: &ArrowDecomposition, mut w: W) -> SparseResult<()> {
    put_u64(&mut w, d.n() as u64)?;
    put_u64(&mut w, d.b() as u64)?;
    put_u64(&mut w, d.order() as u64)?;
    for level in d.levels() {
        put_u64(&mut w, level.active_n as u64)?;
        let order = level.perm.order();
        put_u64(&mut w, order.len() as u64)?;
        for &v in order {
            put_u64(&mut w, v as u64)?;
        }
        let m = &level.matrix;
        put_u64(&mut w, m.nnz() as u64)?;
        for &off in m.indptr() {
            put_u64(&mut w, off as u64)?;
        }
        for &c in m.indices() {
            put_u64(&mut w, c as u64)?;
        }
        for &v in m.values() {
            w.write_all(&v.to_le_bytes()).map_err(io_err)?;
        }
    }
    Ok(())
}

/// Reads a decomposition from `r`, validating structure. Accepts
/// version-1, -2, and -3 streams, discarding the provenance headers;
/// use [`load_versioned`] or [`load_catalog`] to keep them.
pub fn load<R: Read>(r: R) -> SparseResult<ArrowDecomposition> {
    load_catalog(r).map(|(d, _, _)| d)
}

/// Reads a decomposition plus its v2 provenance. Version-1 streams
/// (which predate the header) report the default meta: version 0,
/// fingerprint 0; version-3 streams report the v2 view of their header.
pub fn load_versioned<R: Read>(r: R) -> SparseResult<(ArrowDecomposition, PersistMeta)> {
    load_catalog(r).map(|(d, meta, _)| (d, meta))
}

/// Reads a decomposition plus every header it carries: the v2 meta
/// (defaulted for v1 streams) and, for a version-3 payload, the full
/// [`CatalogMeta`].
pub fn load_catalog<R: Read>(
    r: R,
) -> SparseResult<(ArrowDecomposition, PersistMeta, Option<CatalogMeta>)> {
    let mut r = HashingReader::new(r);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic).map_err(io_err)?;
    let mut catalog = None;
    let meta = match &magic {
        m if m == MAGIC => PersistMeta::default(),
        m if m == MAGIC_V2 => {
            let version = get_u64(&mut r)?;
            let mut fp = [0u8; 16];
            r.read_exact(&mut fp).map_err(io_err)?;
            PersistMeta {
                version,
                fingerprint: u128::from_le_bytes(fp),
            }
        }
        m if m == MAGIC_V3 => {
            let full = read_catalog_header(&mut r)?;
            catalog = Some(full);
            full.persist_meta()
        }
        _ => {
            return Err(SparseError::InvalidCsr(format!(
                "bad magic {:?}: not an arrow decomposition file",
                magic
            )))
        }
    };
    let n = get_u64(&mut r)? as u32;
    let b = get_u64(&mut r)? as u32;
    let l = get_u64(&mut r)? as usize;
    if l > 1_000_000 {
        return Err(SparseError::InvalidCsr(format!(
            "implausible level count {l}"
        )));
    }
    let mut levels = Vec::with_capacity(l);
    for _ in 0..l {
        let active_n = get_u64(&mut r)? as u32;
        let order_len = get_u64(&mut r)? as usize;
        if order_len != n as usize {
            return Err(SparseError::InvalidCsr(format!(
                "permutation length {order_len} != n = {n}"
            )));
        }
        let mut order = Vec::with_capacity(order_len);
        for _ in 0..order_len {
            order.push(get_u64(&mut r)? as u32);
        }
        let perm = Permutation::from_order(order)?;
        let nnz = get_u64(&mut r)? as usize;
        let mut indptr = Vec::with_capacity(n as usize + 1);
        for _ in 0..=n as usize {
            indptr.push(get_u64(&mut r)? as usize);
        }
        let mut indices = Vec::with_capacity(nnz);
        for _ in 0..nnz {
            indices.push(get_u64(&mut r)? as u32);
        }
        let mut values = Vec::with_capacity(nnz);
        let mut buf = [0u8; 8];
        for _ in 0..nnz {
            r.read_exact(&mut buf).map_err(io_err)?;
            values.push(f64::from_le_bytes(buf));
        }
        // Full validation on load: corrupt files are rejected here.
        let matrix = CsrMatrix::from_raw(n, n, indptr, indices, values)?;
        levels.push(ArrowLevel {
            perm,
            matrix,
            active_n,
        });
    }
    if catalog.is_some() {
        // v3: verify the checksum footer. The digest is snapshotted
        // *before* the footer bytes pass through the hashing reader.
        let digest = r.digest;
        let mut footer = [0u8; 8];
        match read_up_to(&mut r, &mut footer)? {
            0 => {} // unchecksummed v3, written before the footer existed
            8 => {
                let stored = u64::from_le_bytes(footer);
                if stored != digest {
                    return Err(SparseError::InvalidCsr(format!(
                        "payload checksum mismatch: stored {stored:#018x}, \
                         computed {digest:#018x} (torn or corrupt write)"
                    )));
                }
            }
            k => {
                return Err(SparseError::InvalidCsr(format!(
                    "truncated checksum footer ({k} of 8 bytes)"
                )))
            }
        }
    }
    Ok((ArrowDecomposition::new(n, b, levels), meta, catalog))
}

/// Reads until `buf` is full or EOF; reports how many bytes arrived.
fn read_up_to<R: Read>(r: &mut R, buf: &mut [u8; 8]) -> SparseResult<usize> {
    let mut total = 0;
    while total < buf.len() {
        let n = r.read(&mut buf[total..]).map_err(io_err)?;
        if n == 0 {
            break;
        }
        total += n;
    }
    Ok(total)
}

pub(crate) fn put_u64<W: Write>(w: &mut W, v: u64) -> SparseResult<()> {
    w.write_all(&v.to_le_bytes()).map_err(io_err)
}

fn get_u64<R: Read>(r: &mut R) -> SparseResult<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf).map_err(io_err)?;
    Ok(u64::from_le_bytes(buf))
}

pub(crate) fn io_err(e: std::io::Error) -> SparseError {
    SparseError::InvalidCsr(format!("I/O error: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::la_decompose::{la_decompose, DecomposeConfig};
    use crate::strategy::RandomForestLa;
    use amd_graph::generators::datasets;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn sample() -> (CsrMatrix<f64>, ArrowDecomposition) {
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let g = datasets::genbank_like(600, &mut rng);
        let a: CsrMatrix<f64> = g.to_adjacency();
        let d = la_decompose(
            &a,
            &DecomposeConfig::with_width(64),
            &mut RandomForestLa::new(3),
        )
        .unwrap();
        (a, d)
    }

    #[test]
    fn roundtrip_preserves_decomposition() {
        let (a, d) = sample();
        let mut buf = Vec::new();
        save(&d, &mut buf).unwrap();
        let loaded = load(buf.as_slice()).unwrap();
        assert_eq!(d, loaded);
        assert_eq!(loaded.validate(&a).unwrap(), 0.0);
    }

    #[test]
    fn loaded_decomposition_multiplies() {
        let (a, d) = sample();
        let mut buf = Vec::new();
        save(&d, &mut buf).unwrap();
        let loaded = load(buf.as_slice()).unwrap();
        let x = amd_sparse::DenseMatrix::from_fn(a.rows(), 3, |r, c| ((r + c) % 5) as f64);
        let y1 = d.multiply(&x).unwrap();
        let y2 = loaded.multiply(&x).unwrap();
        assert_eq!(y1, y2);
    }

    #[test]
    fn bad_magic_rejected() {
        let buf = b"NOPE0000000000000000000000000000".to_vec();
        assert!(load(buf.as_slice()).is_err());
    }

    #[test]
    fn truncated_stream_rejected() {
        let (_, d) = sample();
        let mut buf = Vec::new();
        save(&d, &mut buf).unwrap();
        for cut in [3usize, 11, buf.len() / 2, buf.len() - 1] {
            assert!(load(&buf[..cut]).is_err(), "cut at {cut} accepted");
        }
    }

    #[test]
    fn corrupted_permutation_rejected() {
        let (_, d) = sample();
        let mut buf = Vec::new();
        save(&d, &mut buf).unwrap();
        // Duplicate the first permutation entry (offset: magic + 3 u64s +
        // active_n + order_len = 4 + 8*5 = 44; entries start at 44).
        let first = buf[44..52].to_vec();
        buf[52..60].copy_from_slice(&first);
        assert!(load(buf.as_slice()).is_err(), "duplicate vertex accepted");
    }

    #[test]
    fn versioned_roundtrip_preserves_meta() {
        let (a, d) = sample();
        let meta = PersistMeta {
            version: 7,
            fingerprint: a.fingerprint(),
        };
        let mut buf = Vec::new();
        save_versioned(&d, &meta, &mut buf).unwrap();
        let (loaded, got) = load_versioned(buf.as_slice()).unwrap();
        assert_eq!(got, meta);
        assert_eq!(loaded, d);
        // The plain loader accepts v2 streams too.
        assert_eq!(load(buf.as_slice()).unwrap(), d);
    }

    #[test]
    fn v1_stream_reports_default_meta() {
        let (_, d) = sample();
        let mut buf = Vec::new();
        save(&d, &mut buf).unwrap();
        let (loaded, meta) = load_versioned(buf.as_slice()).unwrap();
        assert_eq!(meta, PersistMeta::default());
        assert_eq!(loaded, d);
    }

    #[test]
    fn truncated_v2_header_rejected() {
        let (a, d) = sample();
        let mut buf = Vec::new();
        save_versioned(
            &d,
            &PersistMeta {
                version: 1,
                fingerprint: a.fingerprint(),
            },
            &mut buf,
        )
        .unwrap();
        for cut in [4usize, 10, 20, 27] {
            assert!(load(&buf[..cut]).is_err(), "cut at {cut} accepted");
        }
    }

    #[test]
    fn catalog_roundtrip_preserves_full_meta() {
        let (a, d) = sample();
        let meta = CatalogMeta {
            fingerprint: a.fingerprint(),
            version: 3,
            parent: 0xdead_beef,
            created_at: 17,
            seed: 9,
            config: DecomposeConfig::with_width(64),
        };
        let mut buf = Vec::new();
        save_catalog(&d, &meta, &mut buf).unwrap();
        let (loaded, basic, full) = load_catalog(buf.as_slice()).unwrap();
        assert_eq!(loaded, d);
        assert_eq!(full, Some(meta));
        assert_eq!(basic, meta.persist_meta());
        // The header is readable without touching the payload, and the
        // older loaders still accept the stream.
        assert_eq!(peek_catalog_header(buf.as_slice()).unwrap(), Some(meta));
        assert_eq!(load(buf.as_slice()).unwrap(), d);
        let (_, v2) = load_versioned(buf.as_slice()).unwrap();
        assert_eq!(v2.version, 3);
        assert_eq!(v2.fingerprint, a.fingerprint());
    }

    #[test]
    fn peek_header_reports_none_for_legacy_streams() {
        let (a, d) = sample();
        let mut v1 = Vec::new();
        save(&d, &mut v1).unwrap();
        assert_eq!(peek_catalog_header(v1.as_slice()).unwrap(), None);
        let mut v2 = Vec::new();
        save_versioned(
            &d,
            &PersistMeta {
                version: 1,
                fingerprint: a.fingerprint(),
            },
            &mut v2,
        )
        .unwrap();
        assert_eq!(peek_catalog_header(v2.as_slice()).unwrap(), None);
        assert!(peek_catalog_header(&b"NOPE"[..]).is_err());
    }

    #[test]
    fn truncated_v3_header_rejected() {
        let (a, d) = sample();
        let meta = CatalogMeta {
            fingerprint: a.fingerprint(),
            version: 1,
            parent: 0,
            created_at: 1,
            seed: 1,
            config: DecomposeConfig::default(),
        };
        let mut buf = Vec::new();
        save_catalog(&d, &meta, &mut buf).unwrap();
        for cut in [4usize, 12, 30, 50, 83] {
            assert!(load(&buf[..cut]).is_err(), "cut at {cut} accepted");
            assert!(
                peek_catalog_header(&buf[..cut.min(20)]).is_err(),
                "header cut accepted"
            );
        }
    }

    #[test]
    fn checksum_rejects_silent_value_corruption() {
        let (a, d) = sample();
        let meta = CatalogMeta {
            fingerprint: a.fingerprint(),
            version: 1,
            parent: 0,
            created_at: 1,
            seed: 1,
            config: DecomposeConfig::with_width(64),
        };
        let mut buf = Vec::new();
        save_catalog(&d, &meta, &mut buf).unwrap();
        // Flip one bit in the last payload value — the length and CSR
        // structure stay valid, so only the checksum can catch this.
        let idx = buf.len() - 9;
        buf[idx] ^= 0x01;
        let err = load_catalog(buf.as_slice()).unwrap_err();
        assert!(
            err.to_string().contains("checksum mismatch"),
            "expected checksum rejection, got: {err}"
        );
        buf[idx] ^= 0x01;
        assert!(load_catalog(buf.as_slice()).is_ok(), "restored file loads");
    }

    #[test]
    fn unchecksummed_v3_still_loads() {
        let (a, d) = sample();
        let meta = CatalogMeta {
            fingerprint: a.fingerprint(),
            version: 2,
            parent: 1,
            created_at: 5,
            seed: 3,
            config: DecomposeConfig::with_width(64),
        };
        let mut buf = Vec::new();
        save_catalog(&d, &meta, &mut buf).unwrap();
        // A legacy v3 file is byte-identical minus the 8-byte footer.
        buf.truncate(buf.len() - 8);
        let (loaded, _, full) = load_catalog(buf.as_slice()).unwrap();
        assert_eq!(loaded, d);
        assert_eq!(full, Some(meta));
        // A *partial* footer means the tail was torn off: rejected.
        let mut torn = buf.clone();
        torn.extend_from_slice(&[0xAB; 3]);
        let err = load_catalog(torn.as_slice()).unwrap_err();
        assert!(
            err.to_string().contains("truncated checksum footer"),
            "{err}"
        );
    }

    #[test]
    fn empty_decomposition_roundtrip() {
        let d = ArrowDecomposition::new(4, 2, Vec::new());
        let mut buf = Vec::new();
        save(&d, &mut buf).unwrap();
        let loaded = load(buf.as_slice()).unwrap();
        assert_eq!(loaded.order(), 0);
        assert_eq!(loaded.n(), 4);
    }
}
