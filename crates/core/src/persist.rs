//! Decomposition persistence.
//!
//! The paper's workflow decomposes once (their Julia pipeline, on fat
//! memory nodes) and reuses the decomposition across many SpMM runs. This
//! module serialises an [`ArrowDecomposition`] to a compact little-endian
//! binary stream so the same workflow works here: decompose, save, and
//! load on later runs without repeating the arrangement computation.
//!
//! Format (version 1): magic `AMD1`, then `n`, `b`, `l`, and per level the
//! permutation order array, `active_n`, and the CSR arrays of the level
//! matrix. All integers are `u64` LE; values are `f64` LE bits.

use crate::decomposition::{ArrowDecomposition, ArrowLevel};
use amd_sparse::{CsrMatrix, Permutation, SparseError, SparseResult};
use std::io::{Read, Write};

const MAGIC: &[u8; 4] = b"AMD1";

/// Writes the decomposition to `w`.
pub fn save<W: Write>(d: &ArrowDecomposition, mut w: W) -> SparseResult<()> {
    w.write_all(MAGIC).map_err(io_err)?;
    put_u64(&mut w, d.n() as u64)?;
    put_u64(&mut w, d.b() as u64)?;
    put_u64(&mut w, d.order() as u64)?;
    for level in d.levels() {
        put_u64(&mut w, level.active_n as u64)?;
        let order = level.perm.order();
        put_u64(&mut w, order.len() as u64)?;
        for &v in order {
            put_u64(&mut w, v as u64)?;
        }
        let m = &level.matrix;
        put_u64(&mut w, m.nnz() as u64)?;
        for &off in m.indptr() {
            put_u64(&mut w, off as u64)?;
        }
        for &c in m.indices() {
            put_u64(&mut w, c as u64)?;
        }
        for &v in m.values() {
            w.write_all(&v.to_le_bytes()).map_err(io_err)?;
        }
    }
    Ok(())
}

/// Reads a decomposition from `r`, validating structure.
pub fn load<R: Read>(mut r: R) -> SparseResult<ArrowDecomposition> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic).map_err(io_err)?;
    if &magic != MAGIC {
        return Err(SparseError::InvalidCsr(format!(
            "bad magic {:?}: not an arrow decomposition file",
            magic
        )));
    }
    let n = get_u64(&mut r)? as u32;
    let b = get_u64(&mut r)? as u32;
    let l = get_u64(&mut r)? as usize;
    if l > 1_000_000 {
        return Err(SparseError::InvalidCsr(format!(
            "implausible level count {l}"
        )));
    }
    let mut levels = Vec::with_capacity(l);
    for _ in 0..l {
        let active_n = get_u64(&mut r)? as u32;
        let order_len = get_u64(&mut r)? as usize;
        if order_len != n as usize {
            return Err(SparseError::InvalidCsr(format!(
                "permutation length {order_len} != n = {n}"
            )));
        }
        let mut order = Vec::with_capacity(order_len);
        for _ in 0..order_len {
            order.push(get_u64(&mut r)? as u32);
        }
        let perm = Permutation::from_order(order)?;
        let nnz = get_u64(&mut r)? as usize;
        let mut indptr = Vec::with_capacity(n as usize + 1);
        for _ in 0..=n as usize {
            indptr.push(get_u64(&mut r)? as usize);
        }
        let mut indices = Vec::with_capacity(nnz);
        for _ in 0..nnz {
            indices.push(get_u64(&mut r)? as u32);
        }
        let mut values = Vec::with_capacity(nnz);
        let mut buf = [0u8; 8];
        for _ in 0..nnz {
            r.read_exact(&mut buf).map_err(io_err)?;
            values.push(f64::from_le_bytes(buf));
        }
        // Full validation on load: corrupt files are rejected here.
        let matrix = CsrMatrix::from_raw(n, n, indptr, indices, values)?;
        levels.push(ArrowLevel {
            perm,
            matrix,
            active_n,
        });
    }
    Ok(ArrowDecomposition::new(n, b, levels))
}

fn put_u64<W: Write>(w: &mut W, v: u64) -> SparseResult<()> {
    w.write_all(&v.to_le_bytes()).map_err(io_err)
}

fn get_u64<R: Read>(r: &mut R) -> SparseResult<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf).map_err(io_err)?;
    Ok(u64::from_le_bytes(buf))
}

fn io_err(e: std::io::Error) -> SparseError {
    SparseError::InvalidCsr(format!("I/O error: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::la_decompose::{la_decompose, DecomposeConfig};
    use crate::strategy::RandomForestLa;
    use amd_graph::generators::datasets;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn sample() -> (CsrMatrix<f64>, ArrowDecomposition) {
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let g = datasets::genbank_like(600, &mut rng);
        let a: CsrMatrix<f64> = g.to_adjacency();
        let d = la_decompose(
            &a,
            &DecomposeConfig::with_width(64),
            &mut RandomForestLa::new(3),
        )
        .unwrap();
        (a, d)
    }

    #[test]
    fn roundtrip_preserves_decomposition() {
        let (a, d) = sample();
        let mut buf = Vec::new();
        save(&d, &mut buf).unwrap();
        let loaded = load(buf.as_slice()).unwrap();
        assert_eq!(d, loaded);
        assert_eq!(loaded.validate(&a).unwrap(), 0.0);
    }

    #[test]
    fn loaded_decomposition_multiplies() {
        let (a, d) = sample();
        let mut buf = Vec::new();
        save(&d, &mut buf).unwrap();
        let loaded = load(buf.as_slice()).unwrap();
        let x = amd_sparse::DenseMatrix::from_fn(a.rows(), 3, |r, c| ((r + c) % 5) as f64);
        let y1 = d.multiply(&x).unwrap();
        let y2 = loaded.multiply(&x).unwrap();
        assert_eq!(y1, y2);
    }

    #[test]
    fn bad_magic_rejected() {
        let buf = b"NOPE0000000000000000000000000000".to_vec();
        assert!(load(buf.as_slice()).is_err());
    }

    #[test]
    fn truncated_stream_rejected() {
        let (_, d) = sample();
        let mut buf = Vec::new();
        save(&d, &mut buf).unwrap();
        for cut in [3usize, 11, buf.len() / 2, buf.len() - 1] {
            assert!(load(&buf[..cut]).is_err(), "cut at {cut} accepted");
        }
    }

    #[test]
    fn corrupted_permutation_rejected() {
        let (_, d) = sample();
        let mut buf = Vec::new();
        save(&d, &mut buf).unwrap();
        // Duplicate the first permutation entry (offset: magic + 3 u64s +
        // active_n + order_len = 4 + 8*5 = 44; entries start at 44).
        let first = buf[44..52].to_vec();
        buf[52..60].copy_from_slice(&first);
        assert!(load(buf.as_slice()).is_err(), "duplicate vertex accepted");
    }

    #[test]
    fn empty_decomposition_roundtrip() {
        let d = ArrowDecomposition::new(4, 2, Vec::new());
        let mut buf = Vec::new();
        save(&d, &mut buf).unwrap();
        let loaded = load(buf.as_slice()).unwrap();
        assert_eq!(loaded.order(), 0);
        assert_eq!(loaded.n(), 4);
    }
}
