//! Compiled serving kernels: a decomposition lowered to a chosen
//! [`Scalar`] precision.
//!
//! [`ArrowDecomposition`] stores levels as full `n × n` `f64` matrices —
//! the right representation for patching, splicing and persistence, but
//! not for the multiply hot loop. [`CompiledDecomposition`] is the
//! serving-side lowering: per level it keeps only the active-prefix rows
//! of the matrix (narrowed to the target scalar type) plus the
//! arrangement's position/order maps, and multiplies through the fused
//! cache-blocked kernels of [`amd_sparse::kernel`], parallelised over
//! output row blocks.
//!
//! Compiling to `f32` halves the bytes every multiply streams. The price
//! is rounding error, bounded by [`f32_multiply_error_bound`]: narrowing
//! the matrix and the feature matrix each cost one relative rounding
//! (`≤ u = 2⁻²⁴`), every product a third, and accumulating a row of `m`
//! products plus the cross-level adds costs the usual `γ` factor. Summed,
//! for output entry `(v, j)`:
//!
//! ```text
//! |y₃₂ − y₆₄|(v, j) ≤ Σ_levels γ(m_p + l + 3) · (|Bᵢ|·|x|)(v, j)
//! γ(t) = t·u / (1 − t·u),   u = 2⁻²⁴
//! ```
//!
//! where `m_p` is the nonzero count of the level row owning `v` and `l`
//! the decomposition order. The bound is asserted elementwise by the
//! kernel exactness tests.

use crate::decomposition::ArrowDecomposition;
use amd_sparse::{kernel, CsrMatrix, DenseMatrix, Scalar, SparseResult};

/// Output rows per parallel chunk in the compiled multiply.
const ROWS_PER_CHUNK: usize = 256;

/// One lowered level: active-prefix CSR at precision `T` plus the
/// arrangement maps the fused kernel needs.
#[derive(Debug, Clone)]
struct CompiledLevel<T: Scalar> {
    /// The leading `active_n` rows of the level matrix, values narrowed
    /// to `T`. Columns still index positions of the full arrangement.
    matrix: CsrMatrix<T>,
    /// Vertex → position map of the level arrangement.
    positions: Vec<u32>,
    /// Position → vertex map of the level arrangement.
    order: Vec<u32>,
    /// Active-prefix length (equals `matrix.rows()`).
    active_n: u32,
}

/// A decomposition lowered to precision `T` for serving multiplies.
///
/// Built with [`ArrowDecomposition::compile`]; answers
/// [`multiply`](Self::multiply) / [`iterate`](Self::iterate) in `T`
/// end-to-end (storage, products and accumulation). For `T = f64` the
/// results are bit-identical to [`ArrowDecomposition::multiply`].
#[derive(Debug, Clone)]
pub struct CompiledDecomposition<T: Scalar> {
    n: u32,
    levels: Vec<CompiledLevel<T>>,
}

impl ArrowDecomposition {
    /// Lowers the decomposition to precision `T`, trimming each level to
    /// its active prefix.
    pub fn compile<T: Scalar>(&self) -> CompiledDecomposition<T> {
        let levels = self
            .levels()
            .iter()
            .map(|level| {
                let active = level.active_n as usize;
                let indptr = level.matrix.indptr()[..=active].to_vec();
                let nnz = *indptr.last().expect("indptr is never empty");
                let matrix = CsrMatrix::from_raw_unchecked(
                    level.active_n,
                    level.matrix.cols(),
                    indptr,
                    level.matrix.indices()[..nnz].to_vec(),
                    level.matrix.values()[..nnz]
                        .iter()
                        .map(|&v| T::from_f64(v))
                        .collect(),
                );
                CompiledLevel {
                    matrix,
                    positions: level.perm.positions().to_vec(),
                    order: level.perm.order().to_vec(),
                    active_n: level.active_n,
                }
            })
            .collect();
        CompiledDecomposition {
            n: self.n(),
            levels,
        }
    }
}

impl<T: Scalar> CompiledDecomposition<T> {
    /// Matrix dimension.
    pub fn n(&self) -> u32 {
        self.n
    }

    /// `Y = A · X` at precision `T` through the fused parallel kernels.
    pub fn multiply(&self, x: &DenseMatrix<T>) -> SparseResult<DenseMatrix<T>> {
        let mut y = DenseMatrix::zeros(self.n, x.cols());
        for level in &self.levels {
            kernel::fused_level_acc_parallel(
                &level.matrix,
                &level.positions,
                &level.order,
                level.active_n,
                x,
                &mut y,
                kernel::DEFAULT_K_BLOCK,
                ROWS_PER_CHUNK,
            )?;
        }
        Ok(y)
    }

    /// Iterated multiply `X_{t+1} = σ(A X_t)` at precision `T`.
    pub fn iterate(
        &self,
        x0: &DenseMatrix<T>,
        steps: u32,
        sigma: impl Fn(T) -> T + Sync,
    ) -> SparseResult<DenseMatrix<T>> {
        let mut x = x0.clone();
        for _ in 0..steps {
            let mut y = self.multiply(&x)?;
            y.map_inplace(&sigma);
            x = y;
        }
        Ok(x)
    }
}

/// Elementwise bound on `|y₃₂ − y₆₄|` for one f32 multiply of `d` against
/// `x` (see the module docs for the derivation). The bound is in terms of
/// `Σᵢ |Bᵢ|·|x|`, so it adapts to the data: zero rows get a zero bound.
pub fn f32_multiply_error_bound(
    d: &ArrowDecomposition,
    x: &DenseMatrix<f64>,
) -> SparseResult<DenseMatrix<f64>> {
    const U: f64 = 5.960_464_477_539_063e-8; // 2⁻²⁴, f32 unit roundoff
    let gamma = |t: f64| t * U / (1.0 - t * U);
    let l = d.order() as f64;
    let k = x.cols() as usize;
    let mut bound = DenseMatrix::zeros(d.n(), x.cols());
    let mut row_abs = vec![0.0f64; k];
    for level in d.levels() {
        for p in 0..level.active_n {
            let cols = level.matrix.row_indices(p);
            if cols.is_empty() {
                continue;
            }
            row_abs.fill(0.0);
            for (&c, &v) in cols.iter().zip(level.matrix.row_values(p)) {
                let xr = x.row(level.perm.vertex_at(c));
                let av = v.abs();
                for j in 0..k {
                    row_abs[j] += av * xr[j].abs();
                }
            }
            let g = gamma(cols.len() as f64 + l + 3.0);
            let out = bound.row_mut(level.perm.vertex_at(p));
            for j in 0..k {
                out[j] += g * row_abs[j];
            }
        }
    }
    Ok(bound)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::la_decompose::{la_decompose, DecomposeConfig};
    use crate::strategy::RandomForestLa;
    use amd_graph::generators::basic;

    fn decomposed(n: u32, b: u32) -> ArrowDecomposition {
        let a: CsrMatrix<f64> = basic::star(n).to_adjacency();
        la_decompose(
            &a,
            &DecomposeConfig {
                arrow_width: b,
                ..Default::default()
            },
            &mut RandomForestLa::new(3),
        )
        .unwrap()
    }

    #[test]
    fn compiled_f64_bit_matches_decomposition_multiply() {
        let d = decomposed(50, 4);
        let c = d.compile::<f64>();
        let x = DenseMatrix::from_fn(50, 6, |r, j| ((r * 6 + j) % 19) as f64 / 8.0 - 1.0);
        assert_eq!(c.multiply(&x).unwrap(), d.multiply(&x).unwrap());
    }

    #[test]
    fn compiled_iterate_matches_decomposition_iterate() {
        let d = decomposed(30, 4);
        let c = d.compile::<f64>();
        let x = DenseMatrix::from_fn(30, 2, |r, _| if r % 3 == 0 { 1.0 } else { -1.0 });
        let relu = |v: f64| v.max(0.0);
        assert_eq!(
            c.iterate(&x, 3, relu).unwrap(),
            d.iterate(&x, 3, relu).unwrap()
        );
    }

    #[test]
    fn compiled_f32_within_error_bound() {
        let d = decomposed(50, 4);
        let c = d.compile::<f32>();
        let x64 = DenseMatrix::from_fn(50, 4, |r, j| ((r * 4 + j) % 29) as f64 / 7.0 - 2.0);
        let x32 = DenseMatrix::from_fn(50, 4, |r, j| x64.get(r, j) as f32);
        let y32 = c.multiply(&x32).unwrap();
        let y64 = d.multiply(&x64).unwrap();
        let bound = f32_multiply_error_bound(&d, &x64).unwrap();
        for v in 0..50u32 {
            for j in 0..4u32 {
                let err = (y32.get(v, j) as f64 - y64.get(v, j)).abs();
                // The f32 input x32 is itself a rounding of x64, already
                // accounted for in the bound's narrowing term.
                assert!(
                    err <= bound.get(v, j),
                    "({v}, {j}): err {err:e} > bound {:e}",
                    bound.get(v, j)
                );
            }
        }
    }

    #[test]
    fn compiled_f32_exact_on_integer_data() {
        let d = decomposed(40, 4);
        let c = d.compile::<f32>();
        let x32 = DenseMatrix::from_fn(40, 3, |r, j| ((r * 3 + j) % 7) as f32 - 3.0);
        let x64 = DenseMatrix::from_fn(40, 3, |r, j| ((r * 3 + j) % 7) as f64 - 3.0);
        let y32 = c.multiply(&x32).unwrap();
        let y64 = d.multiply(&x64).unwrap();
        for v in 0..40u32 {
            for j in 0..3u32 {
                assert_eq!(y32.get(v, j) as f64, y64.get(v, j));
            }
        }
    }
}
