//! Decomposition statistics: compaction (Lemma 1), per-level profiles, and
//! the §7.2 nonzero-block comparison against a direct 1.5D tiling.

use crate::decomposition::ArrowDecomposition;
use amd_sparse::CsrMatrix;
use std::collections::HashSet;

/// Per-level summary of a decomposition.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelStats {
    /// Level index `i` of `Bᵢ`.
    pub level: usize,
    /// Stored entries of `Bᵢ`.
    pub nnz: usize,
    /// Rows with at least one entry.
    pub nonzero_rows: u32,
    /// The dense active prefix length (positions that may host entries).
    pub active_n: u32,
    /// `active_n / n`: the share of positions the fused multiply kernel
    /// actually touches at this level. Spliced levels from incremental
    /// refresh sit near `0`, which is what makes serving deep splices
    /// cheap.
    pub active_fraction: f64,
    /// Nonzero `b × b` tiles in the arrow layout.
    pub nonzero_tiles: usize,
}

/// Whole-decomposition summary.
#[derive(Debug, Clone, PartialEq)]
pub struct DecompositionStats {
    /// Arrow width `b`.
    pub b: u32,
    /// Order `l` (number of levels).
    pub order: usize,
    /// Per-level breakdown.
    pub levels: Vec<LevelStats>,
    /// Minimum ratio `nnz(Bᵢ) / nnz(Bᵢ₊₁)` over consecutive levels — the
    /// empirical `x` for which the decomposition is `x`-compacting
    /// (`f64::INFINITY` for single-level decompositions).
    pub compaction_factor: f64,
    /// Fraction of rows of the *second* matrix that are nonzero, the
    /// quantity §7.2 reports as 0.1%–13%. `0.0` for order-1 decompositions.
    pub second_level_row_fraction: f64,
    /// Level-averaged active-prefix share
    /// ([`ArrowDecomposition::active_prefix_fraction`]): the fraction of
    /// per-level positions the fused serving kernel reads/writes.
    pub active_prefix_fraction: f64,
}

impl DecompositionStats {
    /// Computes statistics for a decomposition.
    pub fn of(d: &ArrowDecomposition) -> Self {
        let levels: Vec<LevelStats> = d
            .levels()
            .iter()
            .enumerate()
            .map(|(i, l)| LevelStats {
                level: i,
                nnz: l.nnz(),
                nonzero_rows: l.matrix.nonzero_row_count(),
                active_n: l.active_n,
                active_fraction: if d.n() > 0 {
                    l.active_n as f64 / d.n() as f64
                } else {
                    1.0
                },
                nonzero_tiles: l.to_arrow(d.b()).map(|a| a.nonzero_tiles()).unwrap_or(0),
            })
            .collect();
        let compaction_factor = levels
            .windows(2)
            .map(|w| {
                if w[1].nnz == 0 {
                    f64::INFINITY
                } else {
                    w[0].nnz as f64 / w[1].nnz as f64
                }
            })
            .fold(f64::INFINITY, f64::min);
        let second_level_row_fraction = if levels.len() >= 2 && d.n() > 0 {
            levels[1].nonzero_rows as f64 / d.n() as f64
        } else {
            0.0
        };
        Self {
            b: d.b(),
            order: levels.len(),
            levels,
            compaction_factor,
            second_level_row_fraction,
            active_prefix_fraction: d.active_prefix_fraction(),
        }
    }

    /// `true` if the decomposition is `x`-compacting (Lemma 1): every
    /// level's nnz is at most `1/x` of its predecessor's.
    pub fn is_x_compacting(&self, x: f64) -> bool {
        self.compaction_factor >= x
    }

    /// Total nonzero tiles across all levels — the arrow side of the §7.2
    /// block-count comparison.
    pub fn total_nonzero_tiles(&self) -> usize {
        self.levels.iter().map(|l| l.nonzero_tiles).sum()
    }
}

/// Number of nonzero `b × b` tiles of `a` under a direct tiling — the
/// 1.5D side of the §7.2 comparison ("15–20× fewer nonzero blocks at
/// b = 5·10⁶, over 100× fewer at b = 10⁶").
pub fn direct_tiling_nonzero_blocks(a: &CsrMatrix<f64>, b: u32) -> usize {
    assert!(b >= 1);
    let mut tiles: HashSet<(u32, u32)> = HashSet::new();
    for r in 0..a.rows() {
        let br = r / b;
        for &c in a.row_indices(r) {
            tiles.insert((br, c / b));
        }
    }
    tiles.len()
}

/// Per-block-row nonzero counts of the first matrix `B₀`, restricted to
/// the three tile families — the data behind Figure 1's heat strips.
#[derive(Debug, Clone, PartialEq)]
pub struct StructureProfile {
    /// Tile size used.
    pub b: u32,
    /// `row_arm[j]` = nnz of `B(0,j)`.
    pub row_arm: Vec<usize>,
    /// `col_arm[i]` = nnz of `B(i,0)` (index 0 = block row 1).
    pub col_arm: Vec<usize>,
    /// `diagonal[i]` = nnz of `B(i,i)` (index 0 = block row 1).
    pub diagonal: Vec<usize>,
}

impl StructureProfile {
    /// Profiles the first level of a decomposition.
    pub fn of_first_level(d: &ArrowDecomposition) -> Option<Self> {
        let level = d.levels().first()?;
        let arrow = level.to_arrow(d.b()).ok()?;
        let nb = arrow.block_count();
        Some(Self {
            b: d.b(),
            row_arm: (0..nb).map(|j| arrow.row_tile(j).nnz()).collect(),
            col_arm: (1..nb).map(|i| arrow.col_tile(i).nnz()).collect(),
            diagonal: (1..nb).map(|i| arrow.diag_tile(i).nnz()).collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::la_decompose::{la_decompose, DecomposeConfig};
    use crate::strategy::RandomForestLa;
    use amd_graph::generators::{basic, datasets};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn genbank_decomposition() -> (CsrMatrix<f64>, ArrowDecomposition) {
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let g = datasets::genbank_like(3000, &mut rng);
        let a: CsrMatrix<f64> = g.to_adjacency();
        let d = la_decompose(
            &a,
            &DecomposeConfig::with_width(128),
            &mut RandomForestLa::new(2),
        )
        .unwrap();
        (a, d)
    }

    #[test]
    fn stats_shape() {
        let (a, d) = genbank_decomposition();
        let s = DecompositionStats::of(&d);
        assert_eq!(s.order, d.order());
        assert_eq!(s.levels.iter().map(|l| l.nnz).sum::<usize>(), a.nnz());
        assert!(s.compaction_factor > 1.0, "factor {}", s.compaction_factor);
        assert!(s.is_x_compacting(1.5));
        assert!(s.second_level_row_fraction < 0.5);
        assert_eq!(s.active_prefix_fraction, d.active_prefix_fraction());
        for l in &s.levels {
            assert_eq!(l.active_fraction, l.active_n as f64 / d.n() as f64);
        }
        // Later levels of a compacting decomposition have shrinking
        // active prefixes.
        assert!(s.levels.last().unwrap().active_fraction < s.levels[0].active_fraction);
    }

    #[test]
    fn arrow_uses_fewer_blocks_than_direct_tiling() {
        // §7.2: the arrow decomposition needs far fewer nonzero blocks
        // than tiling A directly — because a direct tiling of a hub row
        // touches every block column.
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let g = datasets::mawi_like(4000, &mut rng);
        let a: CsrMatrix<f64> = g.to_adjacency();
        let b = 64u32;
        let d = la_decompose(
            &a,
            &DecomposeConfig::with_width(b),
            &mut RandomForestLa::new(9),
        )
        .unwrap();
        let s = DecompositionStats::of(&d);
        let direct = direct_tiling_nonzero_blocks(&a, b);
        let arrow = s.total_nonzero_tiles();
        assert!(
            arrow * 3 < direct,
            "arrow {arrow} blocks not ≪ direct {direct}"
        );
    }

    #[test]
    fn direct_tiling_counts_blocks() {
        let a: CsrMatrix<f64> = basic::star(9).to_adjacency();
        // Star in natural order, b=3: row 0 hits all 3 block columns; each
        // other block row hits block col 0 → tiles (0,0),(0,1),(0,2),(1,0),(2,0).
        assert_eq!(direct_tiling_nonzero_blocks(&a, 3), 5);
        // b = n: single block.
        assert_eq!(direct_tiling_nonzero_blocks(&a, 9), 1);
    }

    #[test]
    fn structure_profile_covers_all_nnz() {
        let (_, d) = genbank_decomposition();
        let p = StructureProfile::of_first_level(&d).unwrap();
        let total: usize = p.row_arm.iter().sum::<usize>()
            + p.col_arm.iter().sum::<usize>()
            + p.diagonal.iter().sum::<usize>();
        assert_eq!(total, d.levels()[0].nnz());
        assert_eq!(p.row_arm.len(), p.col_arm.len() + 1);
    }

    #[test]
    fn single_level_stats_edge_cases() {
        let a: CsrMatrix<f64> = basic::star(20).to_adjacency();
        let d = la_decompose(
            &a,
            &DecomposeConfig::with_width(4),
            &mut RandomForestLa::new(1),
        )
        .unwrap();
        let s = DecompositionStats::of(&d);
        assert_eq!(s.order, 1);
        assert_eq!(s.compaction_factor, f64::INFINITY);
        assert_eq!(s.second_level_row_fraction, 0.0);
        assert!(s.is_x_compacting(1e9));
    }
}
