//! LA-Decompose (§5.1): building an arrow matrix decomposition from linear
//! arrangements.
//!
//! Given a square matrix `A` and a target arrow width `b`, repeat until no
//! entries remain:
//!
//! 1. place the `b` highest-degree vertices `V_h` of the remaining graph
//!    at the beginning of the arrangement `πᵢ` (§5.6 pruning),
//! 2. arrange the induced subgraph `Gᵢ[Vᵢ \ V_h]` with the chosen
//!    [`ArrangementStrategy`] and append,
//! 3. set `Bᵢ` to the entries of `Pᵀ_πᵢ Aᵢ P_πᵢ` that fall in the arrow
//!    pattern (first `b` rows/columns + block-diagonal `b × b` band),
//! 4. recurse on the remainder `Aᵢ₊₁ = Aᵢ − P_πᵢ Bᵢ Pᵀ_πᵢ`.
//!
//! As the paper observes, the matrices `Aᵢ` are never materialised: the
//! algorithm works on edge lists, and levels only record which entries
//! they own. Vertices isolated at a level are ordered last, so each level
//! has a dense "active" prefix and later levels need fewer ranks.

use crate::decomposition::{ArrowDecomposition, ArrowLevel};
use crate::strategy::ArrangementStrategy;
use amd_graph::degree::top_degree_vertices;
use amd_graph::Graph;
use amd_sparse::{CooMatrix, CsrMatrix, Permutation, SparseError, SparseResult};
use std::collections::HashMap;

/// Parameters of LA-Decompose.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecomposeConfig {
    /// Target arrow width `b` (tile size of the distributed algorithm).
    pub arrow_width: u32,
    /// Prune the `b` highest-degree vertices into the arm before arranging
    /// (§5.6). Disabling this is the E8 ablation.
    pub prune: bool,
    /// Safety cap on the number of levels; exceeded only by adversarial
    /// arrangements (an error is returned rather than looping forever).
    pub max_levels: u32,
}

impl Default for DecomposeConfig {
    fn default() -> Self {
        Self {
            arrow_width: 64,
            prune: true,
            max_levels: 64,
        }
    }
}

impl DecomposeConfig {
    /// Convenience constructor fixing only the arrow width.
    pub fn with_width(arrow_width: u32) -> Self {
        Self {
            arrow_width,
            ..Default::default()
        }
    }
}

/// Decomposes a snapshot with the default random-forest arrangement.
///
/// This is the self-contained entry point background workers use: unlike
/// [`la_decompose`], it does not borrow a caller-held
/// [`ArrangementStrategy`], so a thread that owns only the matrix
/// snapshot, the config, and a seed can produce the decomposition —
/// deterministically equal to what the synchronous path builds with
/// [`RandomForestLa::new(seed)`](crate::strategy::RandomForestLa).
pub fn decompose_snapshot(
    a: &CsrMatrix<f64>,
    cfg: &DecomposeConfig,
    seed: u64,
) -> SparseResult<ArrowDecomposition> {
    la_decompose(a, cfg, &mut crate::strategy::RandomForestLa::new(seed))
}

/// Runs LA-Decompose on a square matrix.
///
/// The sparsity structure is symmetrised for the graph view (an entry at
/// `(i, j)` or `(j, i)` creates the edge `{i, j}`); values are carried
/// per direction, so non-symmetric matrices decompose correctly too.
pub fn la_decompose(
    a: &CsrMatrix<f64>,
    cfg: &DecomposeConfig,
    strategy: &mut dyn ArrangementStrategy,
) -> SparseResult<ArrowDecomposition> {
    if a.rows() != a.cols() {
        return Err(SparseError::ShapeMismatch {
            left: (a.rows(), a.cols()),
            right: (a.cols(), a.rows()),
        });
    }
    let n = a.rows();
    let b = cfg.arrow_width.max(1);

    // Structure edges {u, v}, u < v.
    let mut edges: Vec<(u32, u32)> = Graph::from_matrix_structure(a).edge_list();
    let has_diagonal = (0..n).any(|r| a.row_indices(r).binary_search(&r).is_ok());

    // perms[i] and level_of_pair fill up as levels peel off edges.
    let mut perms: Vec<Permutation> = Vec::new();
    let mut active_ns: Vec<u32> = Vec::new();
    let mut level_of_pair: HashMap<(u32, u32), u32> = HashMap::with_capacity(edges.len());

    while !edges.is_empty() {
        let level = perms.len() as u32;
        if level >= cfg.max_levels {
            // Report the per-level active-prefix sizes alongside the edge
            // count: an adversarial arrangement shows up as a stalled (or
            // growing) prefix sequence, which is the first thing needed to
            // diagnose why the peeling is not converging.
            return Err(SparseError::InvalidCsr(format!(
                "LA-Decompose did not converge within {} levels ({} edges left); \
                 the arrangement strategy is not reducing edge lengths \
                 (per-level active-prefix sizes: {:?})",
                cfg.max_levels,
                edges.len(),
                active_ns
            )));
        }
        let g = Graph::from_edges(n, &edges);

        // Step 1: pruning set V_h (highest degree, at most b, degree ≥ 1).
        let pruned: Vec<u32> = if cfg.prune {
            top_degree_vertices(&g, b as usize)
                .into_iter()
                .filter(|&v| g.degree(v) > 0)
                .collect()
        } else {
            Vec::new()
        };
        let mut is_pruned = vec![false; n as usize];
        for &v in &pruned {
            is_pruned[v as usize] = true;
        }

        // Step 2: arrange the pruned-out subgraph.
        let keep: Vec<bool> = (0..n).map(|v| !is_pruned[v as usize]).collect();
        let filtered = g.filter_vertices(&keep);
        let sub_pi = strategy.arrange(&filtered);

        // Assemble πᵢ: pruned hubs first, then non-isolated vertices of Gᵢ
        // in sub-arrangement order, then everything else (isolated at this
        // level) — keeping isolated vertices last gives the dense active
        // prefix.
        let mut order: Vec<u32> = Vec::with_capacity(n as usize);
        order.extend_from_slice(&pruned);
        for p in 0..n {
            let v = sub_pi.vertex_at(p);
            if !is_pruned[v as usize] && g.degree(v) > 0 {
                order.push(v);
            }
        }
        let active_n = order.len() as u32;
        for p in 0..n {
            let v = sub_pi.vertex_at(p);
            if !is_pruned[v as usize] && g.degree(v) == 0 {
                order.push(v);
            }
        }
        let pi = Permutation::from_order(order)
            .expect("LA-Decompose order covers every vertex exactly once");

        // Step 3: peel the arrow-shaped edges.
        let mut remaining = Vec::with_capacity(edges.len());
        let mut captured = 0usize;
        for &(u, v) in &edges {
            let (p, q) = (pi.position(u), pi.position(v));
            if p.min(q) < b || p / b == q / b {
                level_of_pair.insert((u, v), level);
                captured += 1;
            } else {
                remaining.push((u, v));
            }
        }
        debug_assert!(captured > 0, "a level must capture at least one edge");
        edges = remaining;
        perms.push(pi);
        active_ns.push(active_n);
    }

    // Ensure at least one level when the matrix has diagonal entries only.
    if perms.is_empty() && has_diagonal {
        perms.push(Permutation::identity(n));
        active_ns.push(n);
    }

    // Materialise the per-level matrices in position coordinates.
    let mut builders: Vec<CooMatrix<f64>> = perms.iter().map(|_| CooMatrix::new(n, n)).collect();
    for (r, c, v) in a.iter() {
        let (lvl, pi) = if r == c {
            (0u32, &perms[0])
        } else {
            let key = if r < c { (r, c) } else { (c, r) };
            let lvl = *level_of_pair
                .get(&key)
                .expect("every structural edge was assigned to a level");
            (lvl, &perms[lvl as usize])
        };
        builders[lvl as usize].push(pi.position(r), pi.position(c), v)?;
    }
    // Diagonal entries always satisfy the block-diagonal pattern, but they
    // belong inside the active prefix; extend active_n to cover them.
    if has_diagonal && !perms.is_empty() {
        let pi = &perms[0];
        let max_diag_pos = (0..n)
            .filter(|&r| a.row_indices(r).binary_search(&r).is_ok())
            .map(|r| pi.position(r))
            .max()
            .unwrap_or(0);
        active_ns[0] = active_ns[0].max(max_diag_pos + 1);
    }

    let levels: Vec<ArrowLevel> = perms
        .into_iter()
        .zip(active_ns)
        .zip(builders)
        .map(|((perm, active_n), coo)| ArrowLevel {
            perm,
            matrix: coo.to_csr(),
            active_n,
        })
        .collect();
    Ok(ArrowDecomposition::new(n, b, levels))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{IdentityLa, RandomForestLa, RcmLa, SeparatorLaStrategy};
    use amd_graph::generators::{basic, datasets, random};
    use amd_sparse::{band, DenseMatrix};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn check_decomposition(a: &CsrMatrix<f64>, d: &ArrowDecomposition) {
        // Exact reconstruction.
        assert_eq!(d.validate(a).unwrap(), 0.0, "reconstruction mismatch");
        // Each entry in exactly one level.
        assert_eq!(d.nnz(), a.nnz(), "entries duplicated or lost");
        for (i, level) in d.levels().iter().enumerate() {
            // Arrow pattern within the active region: the tiled view must
            // accept every entry.
            let arrow = level
                .to_arrow(d.b())
                .unwrap_or_else(|e| panic!("level {i} violates the arrow pattern: {e}"));
            assert_eq!(arrow.nnz(), level.nnz());
            // Arrow width of the materialised matrix obeys the bound
            // (block diagonal ⇒ width < 2b, arms exempt).
            assert!(band::is_arrow_width(&level.matrix, 2 * d.b()));
            // No nonzeros beyond the active prefix.
            let tail = level.matrix.submatrix(level.active_n, d.n(), 0, d.n());
            assert_eq!(tail.nnz(), 0, "level {i} has entries beyond active_n");
            let tail_cols = level.matrix.submatrix(0, d.n(), level.active_n, d.n());
            assert_eq!(tail_cols.nnz(), 0, "level {i} has columns beyond active_n");
        }
    }

    #[test]
    fn star_decomposes_in_one_level() {
        // The star's hub is pruned into the arm; every edge is arm-incident.
        let a: CsrMatrix<f64> = basic::star(50).to_adjacency();
        let d = la_decompose(
            &a,
            &DecomposeConfig::with_width(4),
            &mut RandomForestLa::new(1),
        )
        .unwrap();
        assert_eq!(d.order(), 1);
        check_decomposition(&a, &d);
    }

    #[test]
    fn path_decomposes_with_identity_arrangement() {
        let a: CsrMatrix<f64> = basic::path(64).to_adjacency();
        let d = la_decompose(&a, &DecomposeConfig::with_width(8), &mut IdentityLa).unwrap();
        check_decomposition(&a, &d);
        // A path in natural order has all edges in the band or one block
        // apart; the decomposition stays shallow.
        assert!(d.order() <= 2, "order {}", d.order());
    }

    #[test]
    fn random_tree_all_strategies() {
        let g = random::random_tree(300, &mut ChaCha8Rng::seed_from_u64(5));
        let a: CsrMatrix<f64> = g.to_adjacency();
        let cfg = DecomposeConfig::with_width(16);
        let strategies: Vec<Box<dyn ArrangementStrategy>> = vec![
            Box::new(RandomForestLa::new(2)),
            Box::new(SeparatorLaStrategy),
            Box::new(RcmLa),
        ];
        for mut s in strategies {
            let d = la_decompose(&a, &cfg, s.as_mut()).unwrap();
            check_decomposition(&a, &d);
            assert!(d.order() <= 8, "{} produced order {}", s.name(), d.order());
        }
    }

    #[test]
    fn diagonal_and_values_preserved() {
        // Non-uniform values and a diagonal.
        let mut coo = CooMatrix::new(10, 10);
        for v in 0..10u32 {
            coo.push(v, v, v as f64 + 1.0).unwrap();
        }
        coo.push(0, 9, 2.5).unwrap();
        coo.push(9, 0, -2.5).unwrap(); // asymmetric values
        coo.push(3, 4, 7.0).unwrap(); // single-direction entry
        let a = coo.to_csr();
        let d = la_decompose(
            &a,
            &DecomposeConfig::with_width(3),
            &mut RandomForestLa::new(4),
        )
        .unwrap();
        check_decomposition(&a, &d);
    }

    #[test]
    fn diagonal_only_matrix() {
        let a = CsrMatrix::<f64>::identity(12);
        let d = la_decompose(&a, &DecomposeConfig::with_width(4), &mut IdentityLa).unwrap();
        assert_eq!(d.order(), 1);
        check_decomposition(&a, &d);
    }

    #[test]
    fn empty_matrix_gives_empty_decomposition() {
        let a = CsrMatrix::<f64>::zeros(5, 5);
        let d = la_decompose(&a, &DecomposeConfig::with_width(2), &mut IdentityLa).unwrap();
        assert_eq!(d.order(), 0);
        assert_eq!(d.reconstruct().unwrap().nnz(), 0);
        let x = DenseMatrix::from_fn(5, 2, |r, c| (r + c) as f64);
        assert_eq!(d.multiply(&x).unwrap().frobenius_norm(), 0.0);
    }

    #[test]
    fn max_levels_error_reports_active_prefix_sizes() {
        // A cycle under the identity arrangement needs more than one
        // level at width 4 (edges like (7, 8) cross blocks outside the
        // arm); capping max_levels at 1 must fail with a diagnosable
        // error naming the level sizes seen so far.
        let a: CsrMatrix<f64> = basic::cycle(64).to_adjacency();
        let err = la_decompose(
            &a,
            &DecomposeConfig {
                arrow_width: 4,
                prune: false,
                max_levels: 1,
            },
            &mut IdentityLa,
        )
        .unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("active-prefix sizes"),
            "error must name the per-level active-prefix sizes: {msg}"
        );
        assert!(
            msg.contains("[64]"),
            "the one completed level (all 64 vertices active) must be listed: {msg}"
        );
    }

    #[test]
    fn rectangular_rejected() {
        let a = CsrMatrix::<f64>::zeros(3, 4);
        assert!(la_decompose(&a, &DecomposeConfig::default(), &mut IdentityLa).is_err());
    }

    #[test]
    fn pruning_reduces_order_on_power_law_graphs() {
        // §5.6: pruning the hubs must shrink the decomposition of skewed
        // graphs.
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let g = datasets::mawi_like(3000, &mut rng);
        let a: CsrMatrix<f64> = g.to_adjacency();
        let with = la_decompose(
            &a,
            &DecomposeConfig {
                arrow_width: 64,
                prune: true,
                max_levels: 64,
            },
            &mut RandomForestLa::new(7),
        )
        .unwrap();
        let without = la_decompose(
            &a,
            &DecomposeConfig {
                arrow_width: 64,
                prune: false,
                max_levels: 64,
            },
            &mut RandomForestLa::new(7),
        )
        .unwrap();
        check_decomposition(&a, &with);
        check_decomposition(&a, &without);
        assert!(
            with.order() <= without.order(),
            "pruning should not increase order: {} vs {}",
            with.order(),
            without.order()
        );
        // The first level must capture the giant star via the arm.
        assert!(
            with.levels()[0].nnz() * 10 > a.nnz() * 8,
            "arm missed the hub"
        );
    }

    #[test]
    fn compaction_is_geometric_on_datasets() {
        // Lemma 1: nnz per level decreases geometrically when b exceeds the
        // average edge length of the arrangement.
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let g = datasets::genbank_like(4000, &mut rng);
        let a: CsrMatrix<f64> = g.to_adjacency();
        let d = la_decompose(
            &a,
            &DecomposeConfig::with_width(128),
            &mut RandomForestLa::new(5),
        )
        .unwrap();
        check_decomposition(&a, &d);
        assert!(d.order() <= 4, "order {} too deep", d.order());
        for w in d.levels().windows(2) {
            assert!(
                w[1].nnz() * 2 <= w[0].nnz(),
                "levels not compacting: {} -> {}",
                w[0].nnz(),
                w[1].nnz()
            );
        }
    }
}
