//! # arrow-core — the arrow matrix decomposition
//!
//! Implements the primary contribution of *"Arrow Matrix Decomposition: A
//! Novel Approach for Communication-Efficient Sparse Matrix
//! Multiplication"* (Gianinazzi et al., PPoPP 2024):
//!
//! * [`ArrowMatrix`] — an `n × n` matrix with arrow-width `b`, stored as
//!   `b × b` tiles (row arm `B(0,j)`, column arm `B(i,0)`, block diagonal
//!   `B(i,i)`; Figure 2 of the paper),
//! * [`ArrowDecomposition`] — `A = Σᵢ P_πᵢ Bᵢ Pᵀ_πᵢ` with validation,
//!   reconstruction and fused active-prefix multiplication (Eq. 1),
//! * [`CompiledDecomposition`] — the decomposition lowered to a serving
//!   precision (`f64`, or `f32` for half-bandwidth multiplies with the
//!   derived error bound of [`f32_multiply_error_bound`]),
//! * [`la_decompose()`] — the LA-Decompose framework (§5.1): prune the `b`
//!   highest-degree vertices, lay out the remainder with a pluggable
//!   [`ArrangementStrategy`], peel off the arrow-shaped part, recurse,
//! * [`incremental`] — delta-localized re-decomposition: refresh a
//!   streamed matrix by re-arranging only the affected region of the
//!   prior decomposition and splicing, with policy-driven fallback to a
//!   cold rebuild,
//! * [`catalog`] — the versioned persistence catalog: one on-disk
//!   directory (manifest of fingerprint → version chains, crash-safe
//!   atomic writes, point-in-time restore, GC) shared by every serving
//!   layer that keeps decompositions warm across restarts,
//! * [`pruning`] — the power-law pruning analysis of §5.6 (Theorem 1,
//!   Lemma 5, Corollary 2),
//! * [`stats`] — compaction factors (Lemma 1) and the nonzero-block
//!   comparison against a direct 1.5D tiling (§7.2).
//!
//! ## Block-diagonal band
//!
//! §4.1 notes: *"To further enhance efficiency, we consider a
//! block-diagonal band."* We follow that choice: a level's band consists
//! of the entries whose endpoints fall in the same `b × b` diagonal tile
//! (rather than a sliding `|i−j| ≤ b` band), which makes every nonzero of
//! `Bᵢ` live in exactly one of the three tile families the distributed
//! algorithm communicates. Entries at block boundaries spill to later
//! levels; the geometric compaction of Lemma 1 is preserved (the expected
//! in-block fraction of an edge of length `d ≤ b` is `1 − d/b`).

pub mod arrow_matrix;
pub mod catalog;
pub mod compiled;
pub mod decomposition;
pub mod incremental;
pub mod la_decompose;
pub mod persist;
pub mod pruning;
pub mod stats;
pub mod strategy;

pub use arrow_matrix::ArrowMatrix;
pub use catalog::{Catalog, CatalogStats, GcReport, RetainPolicy, VersionRecord};
pub use compiled::{f32_multiply_error_bound, CompiledDecomposition};
pub use decomposition::{ArrowDecomposition, ArrowLevel};
pub use incremental::{
    decompose_snapshot_incremental, FallbackReason, IncrementalPolicy, RefreshOutcome,
};
pub use la_decompose::{decompose_snapshot, la_decompose, DecomposeConfig};
pub use persist::PersistMeta;
pub use strategy::{ArrangementStrategy, IdentityLa, RandomForestLa, RcmLa, SeparatorLaStrategy};
