//! Crash-exact catalog recovery under injected faults.
//!
//! Each test arms a chaos failpoint inside the catalog's write path,
//! drives a `put` into the injected crash, and asserts that reopening
//! the directory recovers the exact pre-crash manifest state with
//! zero orphan payloads and zero stale temp files. Lives in its own
//! integration-test binary so the process-wide failpoint table is not
//! shared with unrelated unit tests; within the binary, the arm
//! guard's exclusivity lock serializes the tests.

use amd_chaos::{failpoint, FaultPlan};
use amd_sparse::CsrMatrix;
use arrow_core::{decompose_snapshot, ArrowDecomposition, Catalog, DecomposeConfig};
use std::fs;
use std::path::PathBuf;

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("amd-failpoints-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn cfg() -> DecomposeConfig {
    DecomposeConfig::with_width(8)
}

fn sample(n: u32) -> (CsrMatrix<f64>, ArrowDecomposition) {
    let a: CsrMatrix<f64> = amd_graph::generators::basic::cycle(n).to_adjacency();
    let d = decompose_snapshot(&a, &cfg(), 1).unwrap();
    (a, d)
}

/// Counts `*.tmp` and unreferenced `*.amd` files under `dir`.
fn debris(dir: &PathBuf, referenced: &[String]) -> (usize, usize) {
    let mut tmp = 0;
    let mut orphans = 0;
    for entry in fs::read_dir(dir).unwrap() {
        let name = entry.unwrap().file_name().to_string_lossy().into_owned();
        if name.ends_with(".tmp") {
            tmp += 1;
        } else if name.ends_with(".amd") && !referenced.iter().any(|r| r == &name) {
            orphans += 1;
        }
    }
    (tmp, orphans)
}

fn referenced(c: &Catalog) -> Vec<String> {
    c.records().iter().map(|r| r.payload.clone()).collect()
}

/// The tentpole property, site by site: crash a `put` at every catalog
/// failpoint in sequence and assert reopen recovers exactly — the
/// baseline record is intact, debris is healed, and the interrupted
/// record either vanished without trace (pre-rename sites) or was
/// adopted from its durable payload (post-rename sites).
#[test]
fn crash_at_every_catalog_site_recovers_exactly() {
    let sites = [
        (failpoint::CATALOG_PAYLOAD_BEFORE_FSYNC, false),
        (failpoint::CATALOG_PAYLOAD_AFTER_RENAME, true),
        (failpoint::CATALOG_MANIFEST_BEFORE_REWRITE, true),
        (failpoint::CATALOG_MANIFEST_BEFORE_FSYNC, true),
    ];
    let (a0, d0) = sample(24);
    let (a1, d1) = sample(28);
    for (site, payload_survives) in sites {
        let dir = tmpdir(&site.replace('.', "-"));
        // A healthy baseline put, outside the fault window.
        let mut c = Catalog::open(&dir).unwrap();
        let baseline = c.put(&d0, a0.fingerprint(), &cfg(), 1, 0, 0).unwrap();
        drop(c);

        {
            let mut c = Catalog::open(&dir).unwrap();
            let plan = FaultPlan::crash_at(9, site, 1);
            let _guard = plan.arm();
            let err = c
                .put(&d1, a1.fingerprint(), &cfg(), 1, 0, 0)
                .expect_err("the injected crash must surface");
            assert!(
                failpoint::is_injected(&err),
                "unexpected error at {site}: {err}"
            );
            // Simulated crash: the catalog object is abandoned here,
            // exactly as a dying process would leave it.
        }

        let mut c = Catalog::open(&dir).unwrap();
        let stats = c.stats();
        if payload_survives {
            // The payload landed before the crash: reopen adopts it.
            assert_eq!(stats.recovered_records, 1, "{site}: orphan not adopted");
            assert_eq!(c.len(), 2, "{site}");
            let (got, _) = c.get(a1.fingerprint(), &cfg(), 1).unwrap().unwrap();
            assert_eq!(got, d1, "{site}: adopted payload must load bit-exactly");
        } else {
            // The crash hit before the rename: only a tmp file leaked,
            // and the sweep reclaims it.
            assert_eq!(stats.stale_tmp_swept, 1, "{site}: tmp not swept");
            assert_eq!(c.len(), 1, "{site}");
            assert!(c.get(a1.fingerprint(), &cfg(), 1).unwrap().is_none());
        }
        // The baseline record is untouched either way...
        let (got, rec) = c.get(a0.fingerprint(), &cfg(), 1).unwrap().unwrap();
        assert_eq!(got, d0, "{site}");
        assert_eq!(rec, baseline, "{site}");
        // ...and the directory holds zero debris.
        assert_eq!(debris(&dir, &referenced(&c)), (0, 0), "{site}");
        let _ = fs::remove_dir_all(&dir);
    }
}

/// A torn (truncated, unsynced) payload write lands in the manifest
/// but is rejected by the checksum footer on load; the record drops so
/// a re-put heals the chain.
#[test]
fn torn_payload_is_rejected_and_healed_by_reput() {
    let dir = tmpdir("torn");
    let (a, d) = sample(32);
    let fp = a.fingerprint();
    {
        let mut c = Catalog::open(&dir).unwrap();
        let plan = FaultPlan::torn_payload(11, 0.5);
        let _guard = plan.arm();
        // The torn write does NOT error: the truncated file is renamed
        // into place and recorded, exactly like a crash after a
        // partial flush that still hit the rename.
        c.put(&d, fp, &cfg(), 1, 0, 0).unwrap();
        assert_eq!(c.len(), 1);
    }
    let mut c = Catalog::open(&dir).unwrap();
    assert!(
        c.get(fp, &cfg(), 1).unwrap().is_none(),
        "the torn payload must fail its load"
    );
    assert_eq!(c.stats().load_failures, 1);
    assert_eq!(c.len(), 0, "the bad record drops so a re-put heals it");
    let rec = c.put(&d, fp, &cfg(), 1, 0, 0).unwrap();
    let (got, got_rec) = c.get(fp, &cfg(), 1).unwrap().unwrap();
    assert_eq!(got, d);
    assert_eq!(got_rec, rec);
    assert_eq!(debris(&dir, &referenced(&c)), (0, 0));
    let _ = fs::remove_dir_all(&dir);
}

/// Junk `*.tmp` files (whatever their origin) are swept and counted on
/// open; real payloads and the manifest are left alone.
#[test]
fn stale_tmp_files_are_swept_and_counted_on_open() {
    let dir = tmpdir("sweep");
    let (a, d) = sample(20);
    {
        let mut c = Catalog::open(&dir).unwrap();
        c.put(&d, a.fingerprint(), &cfg(), 1, 0, 0).unwrap();
    }
    fs::write(dir.join("leftover-1.amd.tmp"), b"junk").unwrap();
    fs::write(dir.join("manifest.amdm.tmp"), b"junk").unwrap();
    let mut c = Catalog::open(&dir).unwrap();
    assert_eq!(c.stats().stale_tmp_swept, 2);
    assert_eq!(c.len(), 1);
    let (got, _) = c.get(a.fingerprint(), &cfg(), 1).unwrap().unwrap();
    assert_eq!(got, d);
    assert_eq!(debris(&dir, &referenced(&c)), (0, 0));
    let _ = fs::remove_dir_all(&dir);
}

/// Property test: under a random put sequence crashed at a random
/// site, reopening always recovers every *fully committed* record
/// bit-exactly and leaves zero debris.
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]
        #[test]
        fn reopen_recovers_exact_pre_crash_state(
            committed in 1usize..4,
            site_idx in 0usize..4,
            seed in 0u64..1000,
        ) {
            let sites = [
                failpoint::CATALOG_PAYLOAD_BEFORE_FSYNC,
                failpoint::CATALOG_PAYLOAD_AFTER_RENAME,
                failpoint::CATALOG_MANIFEST_BEFORE_REWRITE,
                failpoint::CATALOG_MANIFEST_BEFORE_FSYNC,
            ];
            let site = sites[site_idx];
            let dir = tmpdir(&format!("prop-{committed}-{site_idx}-{seed}"));
            // `committed` healthy puts of distinct content...
            let healthy: Vec<_> = (0..committed)
                .map(|i| sample(16 + 2 * i as u32))
                .collect();
            let mut c = Catalog::open(&dir).unwrap();
            for (a, d) in &healthy {
                c.put(d, a.fingerprint(), &cfg(), 1, 0, 0).unwrap();
            }
            drop(c);
            // ...then one put crashed at the drawn site.
            let (ax, dx) = sample(64);
            {
                let mut c = Catalog::open(&dir).unwrap();
                let plan = FaultPlan::crash_at(seed, site, 1);
                let _guard = plan.arm();
                let err = c.put(&dx, ax.fingerprint(), &cfg(), 1, 0, 0).unwrap_err();
                prop_assert!(failpoint::is_injected(&err));
            }
            let mut c = Catalog::open(&dir).unwrap();
            // Every committed record survives bit-exactly.
            for (a, d) in &healthy {
                let (got, _) = c.get(a.fingerprint(), &cfg(), 1).unwrap().unwrap();
                prop_assert_eq!(&got, d);
            }
            // The interrupted put either vanished or was adopted whole.
            let extra = c.len() - committed;
            prop_assert!(extra <= 1);
            if extra == 1 {
                let (got, _) = c.get(ax.fingerprint(), &cfg(), 1).unwrap().unwrap();
                prop_assert_eq!(&got, &dx);
            }
            prop_assert_eq!(debris(&dir, &referenced(&c)), (0, 0));
            let _ = fs::remove_dir_all(&dir);
        }
    }
}
