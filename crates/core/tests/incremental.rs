//! Acceptance tests for delta-localized incremental re-decomposition:
//! random *localized* update streams (inserts, weight changes, and
//! deletions — including deletions that disconnect components and
//! updates that straddle level boundaries) must produce decompositions
//! whose multiplies bit-match a cold decompose-and-multiply, across
//! chained refreshes, with policy fallbacks counted and exact too.

use amd_graph::generators::{basic, random};
use amd_sparse::{ops, spmm, CooMatrix, CsrMatrix, DeltaBuilder, DenseMatrix};
use arrow_core::incremental::{decompose_snapshot_incremental, FallbackReason, IncrementalPolicy};
use arrow_core::{decompose_snapshot, ArrowDecomposition, DecomposeConfig};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Integer-valued probe operand: exact in f64, so answers must match
/// bit for bit.
fn probe(n: u32, k: u32, salt: u32) -> DenseMatrix<f64> {
    DenseMatrix::from_fn(n, k, |r, c| (((salt + 5 * r + 3 * c) % 9) as f64) - 4.0)
}

/// Reference `σ-free` iterated multiply through plain CSR SpMM.
fn reference(a: &CsrMatrix<f64>, x: &DenseMatrix<f64>, iters: u32) -> DenseMatrix<f64> {
    let mut cur = x.clone();
    for _ in 0..iters {
        cur = spmm::spmm(a, &cur).unwrap();
    }
    cur
}

/// Asserts the full acceptance property for one refresh step: the
/// incremental result is valid, covers every entry exactly once, and
/// multiplies identically to both the raw operator and a cold rebuild.
fn assert_exact(d: &ArrowDecomposition, merged: &CsrMatrix<f64>, cfg: &DecomposeConfig, seed: u64) {
    assert_eq!(d.validate(merged).unwrap(), 0.0, "exact reconstruction");
    assert_eq!(d.nnz(), merged.nnz(), "each entry in exactly one level");
    let n = merged.rows();
    let x = probe(n, 3, 1);
    let via = d.multiply(&x).unwrap();
    assert_eq!(via, reference(merged, &x, 1), "multiply == raw operator");
    let cold = decompose_snapshot(merged, cfg, seed).unwrap();
    assert_eq!(
        via,
        cold.multiply(&x).unwrap(),
        "multiply bit-matches a cold decompose-and-multiply"
    );
}

/// One symbolic update of a localized stream.
#[derive(Debug, Clone, Copy)]
struct Step {
    u: u32,
    v: u32,
    kind: u8,
}

/// A base graph (tree plus ring chords for density) and a stream of
/// updates confined to a window of the vertex space.
fn localized_stream() -> impl Strategy<Value = (u32, u64, u32, Vec<Step>)> {
    (48u32..100, 0u64..1000).prop_flat_map(|(n, seed)| {
        let window = 10u32.min(n - 1);
        (
            Just(n),
            Just(seed),
            0..n,
            proptest::collection::vec((0..window, 0..window, 0u8..3), 1..24).prop_map(
                move |steps| {
                    steps
                        .into_iter()
                        .filter(|&(a, b, _)| a != b)
                        .map(|(a, b, kind)| Step { u: a, v: b, kind })
                        .collect::<Vec<_>>()
                },
            ),
        )
    })
}

fn base_graph(n: u32, seed: u64) -> CsrMatrix<f64> {
    let tree = random::random_tree(n, &mut ChaCha8Rng::seed_from_u64(seed));
    let mut coo = tree.to_adjacency::<f64>().to_coo();
    // Ring chords give every vertex degree ≥ 2 and multiple levels.
    for v in 0..n {
        coo.push_sym(v, (v + 1) % n, 1.0).unwrap();
    }
    coo.to_csr()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random localized update streams — inserts, re-weights, deletions —
    /// refreshed incrementally in chained rounds: every round's multiply
    /// bit-matches a cold decompose-and-multiply of the merged matrix.
    #[test]
    fn localized_streams_bit_match_cold_rebuilds(
        (n, seed, start, steps) in localized_stream()
    ) {
        let cfg = DecomposeConfig::with_width(8);
        let policy = IncrementalPolicy::default();
        let mut cur = base_graph(n, seed);
        let mut d = decompose_snapshot(&cur, &cfg, seed).unwrap();
        // Three chained rounds over thirds of the stream, each splicing
        // onto the previous round's (possibly already spliced) result.
        for round_steps in steps.chunks(steps.len().div_ceil(3).max(1)) {
            let mut delta = DeltaBuilder::<f64>::new(n, n);
            for s in round_steps {
                let (u, v) = ((start + s.u) % n, (start + s.v) % n);
                let served = cur.get(u, v) + delta.get(u, v);
                match s.kind {
                    // Structural insert (or growth) of a chord.
                    0 => delta.add_sym(u, v, 2.0).unwrap(),
                    // Integer re-weighting.
                    1 => delta.add_sym(u, v, 1.0).unwrap(),
                    // Deletion: cancel whatever is currently served.
                    _ => {
                        if served != 0.0 {
                            delta.add_sym(u, v, -served).unwrap();
                        }
                    }
                }
            }
            if delta.is_empty() {
                continue;
            }
            let merged = ops::apply_delta(&cur, &delta.to_csr()).unwrap();
            let touched = delta.touched_vertices();
            let (next, outcome) = decompose_snapshot_incremental(
                &merged, &cfg, seed, Some(&d), Some(&touched), &policy,
            ).unwrap();
            assert_exact(&next, &merged, &cfg, seed);
            prop_assert_eq!(outcome.total_vertices, n);
            cur = merged;
            d = next;
        }
    }

    /// The fallback path (region capped at zero) is itself always exact.
    #[test]
    fn forced_fallback_streams_stay_exact(
        (n, seed, start, steps) in localized_stream()
    ) {
        let cfg = DecomposeConfig::with_width(8);
        let policy = IncrementalPolicy {
            max_affected_fraction: 0.0,
            ..IncrementalPolicy::default()
        };
        let cur = base_graph(n, seed);
        let d = decompose_snapshot(&cur, &cfg, seed).unwrap();
        let mut delta = DeltaBuilder::<f64>::new(n, n);
        // One guaranteed chord so the delta is never empty.
        delta.add_sym(start % n, (start + 2) % n, 1.0).unwrap();
        for s in &steps {
            let (u, v) = ((start + s.u) % n, (start + s.v) % n);
            delta.add_sym(u, v, 1.0).unwrap();
        }
        let merged = ops::apply_delta(&cur, &delta.to_csr()).unwrap();
        let touched = delta.touched_vertices();
        let (next, outcome) = decompose_snapshot_incremental(
            &merged, &cfg, seed, Some(&d), Some(&touched), &policy,
        ).unwrap();
        prop_assert!(!outcome.incremental);
        prop_assert_eq!(outcome.fallback, Some(FallbackReason::RegionTooLarge));
        assert_exact(&next, &merged, &cfg, seed);
    }
}

#[test]
fn deletion_that_disconnects_a_component_is_exact() {
    // Two rings joined by a single bridge; deleting the bridge
    // disconnects them.
    let half = 128u32;
    let n = 2 * half;
    let mut coo = CooMatrix::<f64>::new(n, n);
    for v in 0..half {
        coo.push_sym(v, (v + 1) % half, 1.0).unwrap();
        coo.push_sym(half + v, half + (v + 1) % half, 1.0).unwrap();
    }
    coo.push_sym(0, half, 3.0).unwrap(); // the bridge
    let base = coo.to_csr();
    let cfg = DecomposeConfig::with_width(8);
    let d = decompose_snapshot(&base, &cfg, 11).unwrap();

    let mut delta = DeltaBuilder::<f64>::new(n, n);
    delta.add_sym(0, half, -3.0).unwrap();
    let merged = ops::apply_delta(&base, &delta.to_csr()).unwrap();
    assert_eq!(merged.nnz(), base.nnz() - 2, "bridge gone");
    let (next, outcome) = decompose_snapshot_incremental(
        &merged,
        &cfg,
        11,
        Some(&d),
        Some(&delta.touched_vertices()),
        &IncrementalPolicy::default(),
    )
    .unwrap();
    assert!(outcome.incremental, "fallback: {:?}", outcome.fallback);
    assert_exact(&next, &merged, &cfg, 11);
}

#[test]
fn updates_straddling_level_boundaries_are_exact() {
    // A graph deep enough for several levels; pick touched entries owned
    // by *different* levels of the prior decomposition plus a fresh
    // chord, so the affected region spans level boundaries.
    let n = 200u32;
    let base = {
        let tree = random::random_tree(n, &mut ChaCha8Rng::seed_from_u64(9));
        let mut coo = tree.to_adjacency::<f64>().to_coo();
        for v in 0..n {
            coo.push_sym(v, (v + 1) % n, 1.0).unwrap();
            coo.push_sym(v, (v + 7) % n, 1.0).unwrap();
        }
        coo.to_csr()
    };
    let cfg = DecomposeConfig::with_width(8);
    let d = decompose_snapshot(&base, &cfg, 4).unwrap();
    assert!(d.order() >= 2, "need multiple levels, got {}", d.order());

    // Locate one stored entry owned by level 0 and one by a later level.
    let owner = |dec: &ArrowDecomposition, r: u32, c: u32| -> Option<usize> {
        dec.levels().iter().position(|level| {
            let (pr, pc) = (level.perm.position(r), level.perm.position(c));
            level.matrix.row_indices(pr).binary_search(&pc).is_ok()
        })
    };
    let mut early = None;
    let mut late = None;
    for (r, c, _) in base.iter() {
        if r >= c {
            continue;
        }
        match owner(&d, r, c) {
            Some(0) if early.is_none() => early = Some((r, c)),
            Some(l) if l > 0 && late.is_none() => late = Some((r, c)),
            _ => {}
        }
        if early.is_some() && late.is_some() {
            break;
        }
    }
    let (e0, e1) = (
        early.expect("level-0 entry"),
        late.expect("later-level entry"),
    );

    let mut delta = DeltaBuilder::<f64>::new(n, n);
    delta.add_sym(e0.0, e0.1, 5.0).unwrap(); // re-weight a level-0 entry
    delta.add_sym(e1.0, e1.1, -base.get(e1.0, e1.1)).unwrap(); // delete a deep entry
    delta.add_sym(e0.0, e1.1, 2.0).unwrap(); // chord across the two
    let merged = ops::apply_delta(&base, &delta.to_csr()).unwrap();
    let (next, outcome) = decompose_snapshot_incremental(
        &merged,
        &cfg,
        4,
        Some(&d),
        Some(&delta.touched_vertices()),
        &IncrementalPolicy::default(),
    )
    .unwrap();
    assert_exact(&next, &merged, &cfg, 4);
    assert!(
        outcome.incremental || outcome.fallback == Some(FallbackReason::RegionTooLarge),
        "unexpected outcome {outcome:?}"
    );
}

/// CI perf gate (ignored by default; run with
/// `cargo test --release -- --ignored perf_smoke`): on a 50k-vertex
/// graph with 0.5% of the vertices touched, the incremental refresh must
/// beat a cold decompose outright.
#[test]
#[ignore = "perf smoke: release-mode timing gate, run explicitly in CI"]
fn perf_smoke_incremental_beats_cold() {
    let n = 50_000u32;
    let base = {
        let mut coo = CooMatrix::<f64>::new(n, n);
        for v in 0..n {
            coo.push_sym(v, (v + 1) % n, 1.0).unwrap();
            coo.push_sym(v, (v + 4) % n, 1.0).unwrap();
        }
        coo.to_csr()
    };
    let cfg = DecomposeConfig::with_width(64);
    let prior = decompose_snapshot(&base, &cfg, 21).unwrap();

    // Touch 0.5% of the vertices: chord inserts inside one window.
    let window = n / 200;
    let mut delta = DeltaBuilder::<f64>::new(n, n);
    let mut v = 1000u32;
    while v + 2 < 1000 + window {
        delta.add_sym(v, v + 2, 1.0).unwrap();
        v += 3;
    }
    let merged = ops::apply_delta(&base, &delta.to_csr()).unwrap();
    let touched = delta.touched_vertices();
    assert!(touched.len() as u32 <= window);

    let t0 = amd_obs::Stopwatch::start();
    let cold = decompose_snapshot(&merged, &cfg, 21).unwrap();
    let cold_secs = t0.elapsed_seconds();

    let t1 = amd_obs::Stopwatch::start();
    let (incr, outcome) = decompose_snapshot_incremental(
        &merged,
        &cfg,
        21,
        Some(&prior),
        Some(&touched),
        &IncrementalPolicy::default(),
    )
    .unwrap();
    let incr_secs = t1.elapsed_seconds();

    assert!(outcome.incremental, "fallback: {:?}", outcome.fallback);
    assert!(
        outcome.reused_fraction() > 0.9,
        "0.5% touched must reuse >90% of the vertices, got {:.3}",
        outcome.reused_fraction()
    );
    // Exactness at scale (spot-check with a narrow probe).
    let x = probe(n, 1, 3);
    assert_eq!(
        incr.multiply(&x).unwrap(),
        cold.multiply(&x).unwrap(),
        "incremental multiply must bit-match the cold rebuild"
    );
    assert!(
        incr_secs < cold_secs,
        "incremental refresh ({incr_secs:.3}s) must beat cold decompose ({cold_secs:.3}s)"
    );
    println!(
        "perf_smoke: n={n} touched={} cold={cold_secs:.3}s incremental={incr_secs:.3}s \
         speedup={:.1}x reused={:.3}",
        touched.len(),
        cold_secs / incr_secs,
        outcome.reused_fraction()
    );
}

#[test]
fn basic_star_prior_round_trip() {
    // A hub-touching delta on a star: the region reaches everything
    // through the pruned hub's neighbours, so the policy falls back —
    // and the fallback is still exact.
    let n = 60u32;
    let base: CsrMatrix<f64> = basic::star(n).to_adjacency();
    let cfg = DecomposeConfig::with_width(4);
    let d = decompose_snapshot(&base, &cfg, 2).unwrap();
    let mut delta = DeltaBuilder::<f64>::new(n, n);
    delta.add_sym(0, 30, 1.0).unwrap(); // hub edge re-weight
    let merged = ops::apply_delta(&base, &delta.to_csr()).unwrap();
    let (next, _outcome) = decompose_snapshot_incremental(
        &merged,
        &cfg,
        2,
        Some(&d),
        Some(&delta.touched_vertices()),
        &IncrementalPolicy::default(),
    )
    .unwrap();
    assert_exact(&next, &merged, &cfg, 2);
}
