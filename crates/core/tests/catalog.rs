//! Catalog acceptance tests: crash/restart round trips and GC
//! retention properties.
//!
//! The unit tests in `src/catalog.rs` cover the format mechanics; these
//! exercise the guarantees serving layers lean on — a catalog that
//! survives being killed at the worst moment, and a garbage collector
//! that can never collect a revision a live binding still references.

use amd_graph::generators::basic;
use amd_sparse::CsrMatrix;
use arrow_core::catalog::{Catalog, RetainPolicy};
use arrow_core::{decompose_snapshot, ArrowDecomposition, DecomposeConfig};
use proptest::prelude::*;
use std::path::PathBuf;

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("amd-catalog-it-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn cfg() -> DecomposeConfig {
    DecomposeConfig::with_width(4)
}

/// Distinct content per index: a cycle with one re-weighted edge.
fn sample(i: usize) -> (CsrMatrix<f64>, ArrowDecomposition) {
    let mut a: CsrMatrix<f64> = basic::cycle(16).to_adjacency();
    *a.get_mut(0, 1).unwrap() += i as f64;
    let d = decompose_snapshot(&a, &cfg(), 1).unwrap();
    (a, d)
}

/// The crash window end to end: several versions land, the manifest is
/// rolled back to an earlier state (payloads newer than the manifest —
/// exactly what a kill between payload rename and manifest rewrite
/// leaves), and a reopen must recover every version bit-for-bit,
/// lineage included.
#[test]
fn restart_after_partial_write_recovers_all_versions() {
    let dir = tmpdir("restart");
    let mats: Vec<_> = (0..4).map(sample).collect();
    let fps: Vec<u128> = mats.iter().map(|(a, _)| a.fingerprint()).collect();
    let mut manifests = Vec::new();
    {
        let mut c = Catalog::open(&dir).unwrap();
        for (i, (a, d)) in mats.iter().enumerate() {
            let parent = if i == 0 { 0 } else { fps[i - 1] };
            c.put(d, a.fingerprint(), &cfg(), 1, i as u64, parent)
                .unwrap();
            manifests.push(std::fs::read(dir.join("manifest.amdm")).unwrap());
        }
    }
    // Roll the manifest back to each earlier state in turn; reopening
    // must always see all 4 versions (the rest adopted from headers).
    for (kept, manifest) in manifests.iter().enumerate() {
        std::fs::write(dir.join("manifest.amdm"), manifest).unwrap();
        let mut c = Catalog::open(&dir).unwrap();
        assert_eq!(c.len(), 4, "manifest knew {} of 4", kept + 1);
        assert_eq!(c.stats().recovered_records as usize, 3 - kept);
        for (i, (a, d)) in mats.iter().enumerate() {
            let (got, rec) = c.get(a.fingerprint(), &cfg(), 1).unwrap().unwrap();
            assert_eq!(&got, d, "version {i} content");
            assert_eq!(rec.version, i as u64);
            assert_eq!(rec.parent, if i == 0 { 0 } else { fps[i - 1] });
        }
        // The whole lineage is walkable from the head.
        let (got, _) = c
            .restore_at(fps[3], &cfg(), 1, 0)
            .unwrap()
            .expect("lineage reaches the root");
        assert_eq!(got, mats[0].1);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Retain-last-k never drops a version still referenced by a live
    /// binding, no matter the lineage shape, k, or which revisions are
    /// live; and it never leaves orphan payload files behind.
    #[test]
    fn gc_never_drops_live_versions(
        // Parent of each version: an earlier version's index, or a root.
        parents in proptest::collection::vec(0usize..6, 1..6),
        live_mask in proptest::collection::vec(any::<bool>(), 6..7),
        last_k in 0usize..4,
    ) {
        let dir = tmpdir(&format!("gcprop-{last_k}-{}", parents.len()));
        let mats: Vec<_> = (0..=parents.len()).map(sample).collect();
        let fps: Vec<u128> = mats.iter().map(|(a, _)| a.fingerprint()).collect();
        let mut c = Catalog::open(&dir).unwrap();
        // Version 0 is a root; version i+1 hangs off parents[i] (any
        // earlier version), yielding arbitrary lineage forests.
        c.put(&mats[0].1, fps[0], &cfg(), 1, 0, 0).unwrap();
        for (i, &p) in parents.iter().enumerate() {
            let parent = fps[p.min(i)];
            c.put(&mats[i + 1].1, fps[i + 1], &cfg(), 1, (i + 1) as u64, parent)
                .unwrap();
        }
        let live: Vec<u128> = fps
            .iter()
            .zip(live_mask.iter().chain(std::iter::repeat(&false)))
            .filter(|(_, &m)| m)
            .map(|(&fp, _)| fp)
            .collect();
        let total = c.len();
        let report = c.gc(&RetainPolicy { last_k, live: live.clone() }).unwrap();
        prop_assert_eq!(report.kept + report.removed, total);
        // The property: every live fingerprint still loads.
        for &fp in &live {
            prop_assert!(
                c.get(fp, &cfg(), 1).unwrap().is_some(),
                "live fingerprint {:032x} was collected", fp
            );
        }
        // No orphans in either direction: every record's payload
        // exists, and every payload file belongs to a record.
        let on_disk = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|e| e.path().extension().is_some_and(|x| x == "amd"))
            .count();
        prop_assert_eq!(on_disk, c.len());
        for r in c.records() {
            prop_assert!(c.payload_path(r).exists());
        }
        // A reopened catalog agrees (the manifest was rewritten last).
        let survivors = c.len();
        drop(c);
        let c = Catalog::open(&dir).unwrap();
        prop_assert_eq!(c.len(), survivors);
        prop_assert_eq!(c.stats().recovered_records, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
