//! Acceptance properties of the fused serving kernels: the fused
//! active-prefix multiply must bit-match the naive three-pass reference
//! on integer data across random decompositions — cold and spliced —
//! and the `f32` lowering must stay inside its documented error bound.
//! An ignored release-mode perf gate asserts the fusion actually pays.

use amd_sparse::{ops, spmm, CooMatrix, CsrMatrix, DeltaBuilder, DenseMatrix};
use arrow_core::incremental::{decompose_snapshot_incremental, IncrementalPolicy};
use arrow_core::{
    decompose_snapshot, f32_multiply_error_bound, ArrowDecomposition, DecomposeConfig,
};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Integer-valued probe operand: exact in f64 (and in f32 for these
/// magnitudes), so fused and naive answers must match bit for bit.
fn probe(n: u32, k: u32, salt: u32) -> DenseMatrix<f64> {
    DenseMatrix::from_fn(n, k, |r, c| (((salt + 5 * r + 3 * c) % 9) as f64) - 4.0)
}

/// Random tree plus ring chords with small integer weights.
fn base_graph(n: u32, seed: u64) -> CsrMatrix<f64> {
    let tree = amd_graph::generators::random::random_tree(n, &mut ChaCha8Rng::seed_from_u64(seed));
    let mut coo = tree.to_adjacency::<f64>().to_coo();
    for v in 0..n {
        coo.push_sym(v, (v + 1) % n, ((v % 3) + 1) as f64).unwrap();
    }
    coo.to_csr()
}

/// The full fused-vs-naive agreement check for one decomposition: the
/// fused in-place multiply and the compiled f64 kernel must both
/// bit-match the unfused three-pass reference (which itself must match
/// a plain CSR multiply of the reconstructed operator).
fn assert_fused_agrees(d: &ArrowDecomposition, a: &CsrMatrix<f64>, k: u32) {
    let x = probe(a.rows(), k, 1);
    let naive = d.multiply_unfused(&x).unwrap();
    assert_eq!(d.multiply(&x).unwrap(), naive, "fused == naive");
    assert_eq!(
        d.compile::<f64>().multiply(&x).unwrap(),
        naive,
        "compiled f64 == naive"
    );
    assert_eq!(spmm::spmm(a, &x).unwrap(), naive, "naive == raw operator");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Fused active-prefix multiply bit-matches the naive reference on
    /// random decompositions over a sweep of widths and operand shapes.
    #[test]
    fn fused_bit_matches_naive_on_random_decompositions(
        n in 40u32..120,
        seed in 0u64..500,
        b_log2 in 2u32..5, // widths 4, 8, 16
        k in 1u32..7,
    ) {
        let a = base_graph(n, seed);
        let d = decompose_snapshot(&a, &DecomposeConfig::with_width(1 << b_log2), seed).unwrap();
        assert_fused_agrees(&d, &a, k);
    }

    /// Spliced decompositions (incremental refresh stacks extra levels
    /// with small active prefixes) serve through the same fused path —
    /// still bit-identical to the naive reference.
    #[test]
    fn fused_bit_matches_naive_on_spliced_decompositions(
        n in 48u32..120,
        seed in 0u64..500,
        start in 0u32..48,
        rounds in 1usize..4,
    ) {
        let cfg = DecomposeConfig::with_width(8);
        let policy = IncrementalPolicy {
            max_affected_fraction: 1.0,
            max_order: 64,
            ..Default::default()
        };
        let mut cur = base_graph(n, seed);
        let mut d = decompose_snapshot(&cur, &cfg, seed).unwrap();
        for round in 0..rounds as u32 {
            let mut delta = DeltaBuilder::<f64>::new(n, n);
            let u = (start + 3 * round) % n;
            delta.add_sym(u, (u + 2) % n, 2.0).unwrap();
            delta.add_sym((u + 5) % n, (u + 9) % n, 1.0).unwrap();
            let merged = ops::apply_delta(&cur, &delta.to_csr()).unwrap();
            let (next, _) = decompose_snapshot_incremental(
                &merged, &cfg, seed, Some(&d), Some(&delta.touched_vertices()), &policy,
            ).unwrap();
            assert_fused_agrees(&next, &merged, 3);
            cur = merged;
            d = next;
        }
    }

    /// The f32 lowering stays within the documented elementwise error
    /// bound on fractional (inexact-in-f32) data, and is bit-exact on
    /// integer data.
    #[test]
    fn f32_compiled_multiply_respects_its_error_bound(
        n in 40u32..100,
        seed in 0u64..500,
        k in 1u32..5,
    ) {
        let a = base_graph(n, seed);
        let d = decompose_snapshot(&a, &DecomposeConfig::with_width(8), seed).unwrap();
        let c32 = d.compile::<f32>();

        // Fractional operand: error bounded by the derived estimate.
        let x64 = DenseMatrix::from_fn(n, k, |r, j| 0.3 + (((r + 2 * j) % 11) as f64) * 0.7);
        let x32 = DenseMatrix::from_fn(n, k, |r, j| x64.get(r, j) as f32);
        let y32 = c32.multiply(&x32).unwrap();
        let y64 = d.multiply(&x64).unwrap();
        let bound = f32_multiply_error_bound(&d, &x64).unwrap();
        for v in 0..n {
            for j in 0..k {
                let err = (y32.get(v, j) as f64 - y64.get(v, j)).abs();
                prop_assert!(
                    err <= bound.get(v, j),
                    "({v}, {j}): err {err:e} > bound {:e}", bound.get(v, j)
                );
            }
        }

        // Integer operand: bit-exact.
        let xi = probe(n, k, 2);
        let xi32 = DenseMatrix::from_fn(n, k, |r, j| xi.get(r, j) as f32);
        let yi32 = c32.multiply(&xi32).unwrap();
        let yi64 = d.multiply(&xi).unwrap();
        for v in 0..n {
            for j in 0..k {
                prop_assert_eq!(yi32.get(v, j) as f64, yi64.get(v, j));
            }
        }
    }
}

/// CI perf gate (ignored by default; run with
/// `cargo test --release -p arrow-core --test kernels -- --ignored perf_smoke`):
/// on a banded 50k matrix with a wide operand, the fused active-prefix
/// multiply must not lose to the naive three-pass reference.
#[test]
#[ignore = "perf smoke: release-mode timing gate, run explicitly in CI"]
fn perf_smoke_fused_beats_naive() {
    let n = 50_000u32;
    let base = {
        let mut coo = CooMatrix::<f64>::new(n, n);
        for v in 0..n {
            coo.push_sym(v, (v + 1) % n, 1.0).unwrap();
            coo.push_sym(v, (v + 4) % n, 1.0).unwrap();
        }
        coo.to_csr()
    };
    let d = decompose_snapshot(&base, &DecomposeConfig::with_width(64), 21).unwrap();
    let x = probe(n, 64, 3);

    // Warm up, then take the best of a few repetitions of each path.
    let mut fused_secs = f64::INFINITY;
    let mut naive_secs = f64::INFINITY;
    let mut fused_y = None;
    let mut naive_y = None;
    for _ in 0..5 {
        let t = amd_obs::Stopwatch::start();
        naive_y = Some(d.multiply_unfused(&x).unwrap());
        naive_secs = naive_secs.min(t.elapsed_seconds());
        let t = amd_obs::Stopwatch::start();
        fused_y = Some(d.multiply(&x).unwrap());
        fused_secs = fused_secs.min(t.elapsed_seconds());
    }
    assert_eq!(fused_y, naive_y, "fused must stay bit-identical");
    assert!(
        fused_secs <= naive_secs,
        "fused multiply ({fused_secs:.4}s) must not lose to naive ({naive_secs:.4}s)"
    );
    println!(
        "perf_smoke: n={n} k=64 naive={naive_secs:.4}s fused={fused_secs:.4}s speedup={:.2}x",
        naive_secs / fused_secs
    );
}
