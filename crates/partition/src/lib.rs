//! Partitioning baselines for the HP-1D SpMM comparison.
//!
//! The paper's hypergraph-partitioning baseline permutes the matrix by a
//! partition computed with HYPE (Mayer et al., IEEE BigData'18), a
//! neighbourhood-expansion heuristic. This crate reimplements that
//! algorithm ([`hype`]) together with trivial block/random partitioners
//! ([`block`]) and the quality metrics ([`metrics`]) that explain the
//! baseline's failure mode on star-heavy graphs (§7.2: "the partitioning
//! cost is lower bounded by the maximum degree").

pub mod block;
pub mod hype;
pub mod metrics;

pub use block::{block_partition, random_partition};
pub use hype::{hype_partition, HypeConfig};
pub use metrics::PartitionQuality;

/// A partition assignment: `assign[v]` is the part id of vertex `v`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// Part id per vertex, values in `0..parts`.
    pub assign: Vec<u32>,
    /// Number of parts.
    pub parts: u32,
}

impl Partition {
    /// Builds and validates an assignment.
    pub fn new(assign: Vec<u32>, parts: u32) -> Self {
        assert!(parts >= 1);
        debug_assert!(assign.iter().all(|&p| p < parts));
        Self { assign, parts }
    }

    /// Number of vertices.
    pub fn n(&self) -> u32 {
        self.assign.len() as u32
    }

    /// Vertices of each part, in increasing vertex order.
    pub fn groups(&self) -> Vec<Vec<u32>> {
        let mut groups = vec![Vec::new(); self.parts as usize];
        for (v, &p) in self.assign.iter().enumerate() {
            groups[p as usize].push(v as u32);
        }
        groups
    }

    /// Part sizes.
    pub fn sizes(&self) -> Vec<u32> {
        let mut sizes = vec![0u32; self.parts as usize];
        for &p in &self.assign {
            sizes[p as usize] += 1;
        }
        sizes
    }

    /// Load imbalance: `max size / ceil(n / parts)` (1.0 = perfectly
    /// balanced).
    pub fn imbalance(&self) -> f64 {
        let max = self.sizes().into_iter().max().unwrap_or(0) as f64;
        let ideal = (self.n() as f64 / self.parts as f64).ceil();
        if ideal == 0.0 {
            1.0
        } else {
            max / ideal
        }
    }

    /// The permutation that sorts vertices by part (stable within a part),
    /// i.e. the row reordering HP-1D applies before the 1D row split.
    pub fn to_permutation(&self) -> amd_sparse::Permutation {
        let mut order: Vec<u32> = (0..self.n()).collect();
        order.sort_by_key(|&v| (self.assign[v as usize], v));
        amd_sparse::Permutation::from_order(order).expect("sorted vertex list is a bijection")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_sizes() {
        let p = Partition::new(vec![0, 1, 0, 1, 2], 3);
        assert_eq!(p.sizes(), vec![2, 2, 1]);
        assert_eq!(p.groups()[0], vec![0, 2]);
        assert_eq!(p.n(), 5);
    }

    #[test]
    fn imbalance_perfect_and_skewed() {
        let p = Partition::new(vec![0, 0, 1, 1], 2);
        assert_eq!(p.imbalance(), 1.0);
        let q = Partition::new(vec![0, 0, 0, 1], 2);
        assert_eq!(q.imbalance(), 1.5);
    }

    #[test]
    fn permutation_sorts_by_part() {
        let p = Partition::new(vec![1, 0, 1, 0], 2);
        let pi = p.to_permutation();
        // Positions 0,1 hold part-0 vertices {1, 3}; positions 2,3 part 1.
        assert_eq!(pi.vertex_at(0), 1);
        assert_eq!(pi.vertex_at(1), 3);
        assert_eq!(pi.vertex_at(2), 0);
        assert_eq!(pi.vertex_at(3), 2);
    }
}
