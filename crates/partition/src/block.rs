//! Trivial partitioners: contiguous blocks and uniform random.

use crate::Partition;
use rand::Rng;

/// Contiguous 1D block partition: vertex `v` goes to part
/// `min(v / ⌈n/parts⌉, parts − 1)`.
pub fn block_partition(n: u32, parts: u32) -> Partition {
    assert!(parts >= 1);
    let size = n.div_ceil(parts).max(1);
    let assign = (0..n).map(|v| (v / size).min(parts - 1)).collect();
    Partition::new(assign, parts)
}

/// Uniform random assignment (the "no structure" control).
pub fn random_partition<R: Rng>(n: u32, parts: u32, rng: &mut R) -> Partition {
    assert!(parts >= 1);
    let assign = (0..n).map(|_| rng.gen_range(0..parts)).collect();
    Partition::new(assign, parts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn block_partition_balanced() {
        let p = block_partition(10, 3);
        assert_eq!(p.sizes(), vec![4, 4, 2]);
        assert_eq!(p.assign[0], 0);
        assert_eq!(p.assign[9], 2);
    }

    #[test]
    fn block_partition_more_parts_than_vertices() {
        let p = block_partition(2, 5);
        assert_eq!(p.sizes().iter().sum::<u32>(), 2);
        assert!(p.assign.iter().all(|&x| x < 5));
    }

    #[test]
    fn random_partition_covers_parts() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let p = random_partition(1000, 4, &mut rng);
        let sizes = p.sizes();
        assert!(sizes.iter().all(|&s| s > 150), "sizes {sizes:?}");
    }
}
