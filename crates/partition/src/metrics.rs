//! Partition quality metrics.

use crate::Partition;
use amd_graph::Graph;
use std::collections::HashSet;

/// Quality summary of a partition with respect to a graph.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionQuality {
    /// Edges whose endpoints lie in different parts.
    pub edge_cut: usize,
    /// Connectivity (λ − 1) metric: for every vertex's closed
    /// neighbourhood (the "net" of the SpMV hypergraph), the number of
    /// parts it touches minus one, summed — the standard communication
    /// volume proxy for row-wise SpMM.
    pub lambda_minus_one: u64,
    /// For each part: distinct external vertices adjacent to the part —
    /// the number of remote `X` rows HP-1D must fetch for that part.
    pub external_rows: Vec<usize>,
    /// `max(external_rows)` — the bandwidth bottleneck.
    pub max_part_external_rows: usize,
    /// Load imbalance (`max part size / ideal`).
    pub imbalance: f64,
}

impl PartitionQuality {
    /// Computes all metrics.
    pub fn of(g: &Graph, p: &Partition) -> Self {
        assert_eq!(g.n(), p.n());
        let mut edge_cut = 0usize;
        for (u, v) in g.edges() {
            if p.assign[u as usize] != p.assign[v as usize] {
                edge_cut += 1;
            }
        }
        let mut lambda_minus_one = 0u64;
        let mut parts_touched: HashSet<u32> = HashSet::new();
        for v in 0..g.n() {
            parts_touched.clear();
            parts_touched.insert(p.assign[v as usize]);
            for &u in g.neighbors(v) {
                parts_touched.insert(p.assign[u as usize]);
            }
            lambda_minus_one += (parts_touched.len() as u64).saturating_sub(1);
        }
        let mut external: Vec<HashSet<u32>> = vec![HashSet::new(); p.parts as usize];
        for (u, v) in g.edges() {
            let (pu, pv) = (p.assign[u as usize], p.assign[v as usize]);
            if pu != pv {
                external[pu as usize].insert(v);
                external[pv as usize].insert(u);
            }
        }
        let external_rows: Vec<usize> = external.iter().map(HashSet::len).collect();
        let max_part_external_rows = external_rows.iter().copied().max().unwrap_or(0);
        Self {
            edge_cut,
            lambda_minus_one,
            external_rows,
            max_part_external_rows,
            imbalance: p.imbalance(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block_partition;
    use amd_graph::generators::basic;

    #[test]
    fn path_block_partition_cut() {
        // Path of 8 in 2 blocks: exactly one cut edge (3-4).
        let g = basic::path(8);
        let p = block_partition(8, 2);
        let q = PartitionQuality::of(&g, &p);
        assert_eq!(q.edge_cut, 1);
        // Nets of vertices 3 and 4 straddle parts: λ−1 = 2.
        assert_eq!(q.lambda_minus_one, 2);
        assert_eq!(q.external_rows, vec![1, 1]);
        assert_eq!(q.max_part_external_rows, 1);
        assert_eq!(q.imbalance, 1.0);
    }

    #[test]
    fn star_hub_part_touches_everything() {
        let g = basic::star(16);
        let p = block_partition(16, 4); // hub in part 0
        let q = PartitionQuality::of(&g, &p);
        // All 12 leaves outside part 0 are external to it.
        assert_eq!(q.external_rows[0], 12);
        assert_eq!(q.max_part_external_rows, 12);
        // Cut: 12 of 15 edges.
        assert_eq!(q.edge_cut, 12);
    }

    #[test]
    fn single_part_zero_cut() {
        let g = basic::cycle(10);
        let p = block_partition(10, 1);
        let q = PartitionQuality::of(&g, &p);
        assert_eq!(q.edge_cut, 0);
        assert_eq!(q.lambda_minus_one, 0);
        assert_eq!(q.max_part_external_rows, 0);
    }
}
