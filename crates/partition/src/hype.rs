//! HYPE-style neighbourhood-expansion partitioning.
//!
//! Follows Mayer et al. (IEEE BigData'18): parts are grown one at a time;
//! at each step the *fringe* vertex with the fewest external (still
//! unassigned, non-fringe) neighbours moves into the core, and its
//! neighbours replenish the fringe. This greedily minimises the number of
//! hyperedges (here: vertex neighbourhoods) that straddle the part
//! boundary.
//!
//! On star-dominated graphs (MAWI) the expansion inevitably produces one
//! part adjacent to nearly all other vertices — the failure mode §7.2 of
//! the paper observes for its hypergraph baseline, which the arrow
//! decomposition's pruning avoids.

use crate::Partition;
use amd_graph::Graph;
use rand::Rng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Tuning knobs of the expansion.
#[derive(Debug, Clone, Copy)]
pub struct HypeConfig {
    /// Maximum fringe size; HYPE's paper uses small fringes (≈ 10).
    pub fringe_cap: usize,
}

impl Default for HypeConfig {
    fn default() -> Self {
        Self { fringe_cap: 16 }
    }
}

/// Partitions `g` into `parts` balanced parts by neighbourhood expansion.
pub fn hype_partition<R: Rng>(g: &Graph, parts: u32, cfg: &HypeConfig, rng: &mut R) -> Partition {
    assert!(parts >= 1);
    let n = g.n();
    let target = n.div_ceil(parts) as usize;
    const UNASSIGNED: u32 = u32::MAX;
    let mut assign = vec![UNASSIGNED; n as usize];
    let mut unassigned_count = n as usize;
    // Shuffled vertex stream for seed selection.
    let mut seeds: Vec<u32> = (0..n).collect();
    use rand::seq::SliceRandom;
    seeds.shuffle(rng);
    let mut seed_cursor = 0usize;

    for part in 0..parts {
        if unassigned_count == 0 {
            break;
        }
        // Last part absorbs everything left.
        if part == parts - 1 {
            for a in assign.iter_mut().filter(|a| **a == UNASSIGNED) {
                *a = part;
            }
            break;
        }
        let mut core_size = 0usize;
        // Lazy min-heap of (external-degree score, vertex).
        let mut fringe: BinaryHeap<Reverse<(u32, u32)>> = BinaryHeap::new();
        let mut in_fringe = vec![false; n as usize];
        while core_size < target && unassigned_count > 0 {
            if fringe.is_empty() {
                // (Re-)seed from the shuffled stream.
                while seed_cursor < seeds.len() && assign[seeds[seed_cursor] as usize] != UNASSIGNED
                {
                    seed_cursor += 1;
                }
                if seed_cursor >= seeds.len() {
                    break;
                }
                let s = seeds[seed_cursor];
                fringe.push(Reverse((external_degree(g, s, &assign), s)));
                in_fringe[s as usize] = true;
            }
            let Reverse((score, v)) = fringe.pop().expect("fringe refilled above");
            if assign[v as usize] != UNASSIGNED {
                continue; // stale entry
            }
            // Lazy score refresh: if stale, reinsert with the new score.
            let fresh = external_degree(g, v, &assign);
            if fresh != score && fringe.peek().is_some_and(|Reverse((s, _))| *s < fresh) {
                fringe.push(Reverse((fresh, v)));
                continue;
            }
            assign[v as usize] = part;
            in_fringe[v as usize] = false;
            core_size += 1;
            unassigned_count -= 1;
            // Replenish the fringe from v's unassigned neighbours.
            for &u in g.neighbors(v) {
                if assign[u as usize] == UNASSIGNED
                    && !in_fringe[u as usize]
                    && fringe.len() < cfg.fringe_cap
                {
                    in_fringe[u as usize] = true;
                    fringe.push(Reverse((external_degree(g, u, &assign), u)));
                }
            }
        }
    }
    // Safety: anything left (parts == 1 path) goes to the last part.
    for a in assign.iter_mut().filter(|a| **a == u32::MAX) {
        *a = parts - 1;
    }
    Partition::new(assign, parts)
}

/// Number of neighbours of `v` that are still unassigned — the expansion
/// score (smaller = less new boundary).
fn external_degree(g: &Graph, v: u32, assign: &[u32]) -> u32 {
    g.neighbors(v)
        .iter()
        .filter(|&&u| assign[u as usize] == u32::MAX)
        .count() as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::PartitionQuality;
    use crate::random_partition;
    use amd_graph::generators::{basic, datasets};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn covers_all_vertices() {
        let g = basic::grid_2d(10, 10);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let p = hype_partition(&g, 4, &HypeConfig::default(), &mut rng);
        assert_eq!(p.assign.len(), 100);
        assert!(p.assign.iter().all(|&a| a < 4));
        // All parts non-empty on a connected balanced graph.
        assert!(p.sizes().iter().all(|&s| s > 0), "sizes {:?}", p.sizes());
    }

    #[test]
    fn balanced_on_grid() {
        let g = basic::grid_2d(16, 16);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let p = hype_partition(&g, 8, &HypeConfig::default(), &mut rng);
        assert!(p.imbalance() <= 1.5, "imbalance {}", p.imbalance());
    }

    #[test]
    fn beats_random_cut_on_structured_graphs() {
        let g = basic::grid_2d(20, 20);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let hype = hype_partition(&g, 4, &HypeConfig::default(), &mut rng);
        let rand = random_partition(400, 4, &mut rng);
        let q_hype = PartitionQuality::of(&g, &hype);
        let q_rand = PartitionQuality::of(&g, &rand);
        assert!(
            q_hype.edge_cut * 2 < q_rand.edge_cut,
            "hype cut {} vs random cut {}",
            q_hype.edge_cut,
            q_rand.edge_cut
        );
    }

    #[test]
    fn star_graph_forces_high_connectivity() {
        // §7.2's observation: on a giant star the hub's part touches all
        // other parts — the connectivity metric is stuck at parts − 1.
        let g = basic::star(512);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let p = hype_partition(&g, 8, &HypeConfig::default(), &mut rng);
        let q = PartitionQuality::of(&g, &p);
        let hub_part = p.assign[0];
        // Every part other than the hub's consists of leaves only — all of
        // whose edges cross to the hub part.
        assert!(q.edge_cut >= (511 * 6 / 8) as usize, "cut {}", q.edge_cut);
        assert!(hub_part < 8);
    }

    #[test]
    fn single_part_degenerate() {
        let g = basic::path(10);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let p = hype_partition(&g, 1, &HypeConfig::default(), &mut rng);
        assert!(p.assign.iter().all(|&a| a == 0));
    }

    #[test]
    fn disconnected_graph_covered() {
        let g = Graph::from_edges(9, &[(0, 1), (3, 4), (6, 7)]);
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let p = hype_partition(&g, 3, &HypeConfig::default(), &mut rng);
        assert_eq!(p.assign.len(), 9);
        assert!(p.imbalance() <= 2.0);
    }

    #[test]
    fn mawi_like_partition_has_hub_dominated_part() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let g = datasets::mawi_like(2000, &mut rng);
        let p = hype_partition(&g, 8, &HypeConfig::default(), &mut rng);
        let q = PartitionQuality::of(&g, &p);
        // The hub part is adjacent to almost every other part.
        assert!(q.max_part_external_rows as f64 > 0.3 * 2000.0 / 8.0);
    }
}
