//! Adversarial delta generators: deterministic trace builders that
//! stress the parts of the stack a uniform-random workload never
//! touches.
//!
//! All generated values are small integers, so replayed answers are
//! exactly representable in `f64` and the bit-exactness invariant
//! (faulty run ≡ fault-free reference ≡ serial `iterated_spmm`) is
//! meaningful.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::trace::{ScenarioTrace, TraceOp};

/// Region-merging deltas: every added edge connects a row to a column
/// roughly `n/2` away, so each update merges arrow regions on opposite
/// sides of the matrix. This defeats splice locality — the touched
/// region spans the whole dimension and the incremental refresh path
/// is pushed toward its cold-fallback guard.
pub fn region_merging(
    n: usize,
    tenants: usize,
    rounds: usize,
    edges_per_round: usize,
    seed: u64,
) -> ScenarioTrace {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut trace = ScenarioTrace::new(n, tenants);
    let half = (n / 2).max(1) as u32;
    for round in 0..rounds {
        for tenant in 0..tenants {
            for _ in 0..edges_per_round {
                let row = rng.gen_range(0..n as u32);
                let col = (row + half) % n as u32;
                trace.ops.push(TraceOp::Add {
                    tenant,
                    row,
                    col,
                    value: 1.0,
                });
            }
            trace.ops.push(TraceOp::Query {
                tenant,
                salt: (round * 31 + tenant) as u64,
                iters: 2,
            });
            trace.ops.push(TraceOp::Refresh { tenant });
        }
        trace.ops.push(TraceOp::Settle);
    }
    trace
}

/// Oscillating content: each tenant owns a small fixed set of
/// coordinates that alternate between `+1` and back to `0` round over
/// round, so the merged matrix keeps returning to fingerprints it has
/// had before. With a catalog or decomposition cache attached, the
/// even rounds must be served by reuse, not fresh decompositions.
pub fn oscillating(n: usize, tenants: usize, rounds: usize, seed: u64) -> ScenarioTrace {
    const COORDS_PER_TENANT: usize = 4;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut trace = ScenarioTrace::new(n, tenants);
    let coords: Vec<Vec<(u32, u32)>> = (0..tenants)
        .map(|_| {
            (0..COORDS_PER_TENANT)
                .map(|_| {
                    let row = rng.gen_range(0..n as u32);
                    let col = (row + 1 + rng.gen_range(0..(n as u32 - 1))) % n as u32;
                    (row, col)
                })
                .collect()
        })
        .collect();
    for round in 0..rounds {
        let value = if round % 2 == 0 { 1.0 } else { -1.0 };
        for (tenant, tenant_coords) in coords.iter().enumerate() {
            for &(row, col) in tenant_coords {
                trace.ops.push(TraceOp::Add {
                    tenant,
                    row,
                    col,
                    value,
                });
            }
            trace.ops.push(TraceOp::Query {
                tenant,
                salt: (round * 17 + tenant) as u64,
                iters: 2,
            });
            trace.ops.push(TraceOp::Refresh { tenant });
        }
        trace.ops.push(TraceOp::Settle);
    }
    trace
}

/// Zipf-skewed bursty traffic: each round picks a tenant from a
/// truncated Zipf(`alpha`) distribution, and every third round the
/// chosen tenant emits a burst of updates back-to-back instead of one.
/// The hot tenant hammers the refresh queue while cold tenants go
/// quiet for long stretches — the fairness/backoff machinery has to
/// keep all of them exact.
pub fn zipf_bursts(
    n: usize,
    tenants: usize,
    rounds: usize,
    alpha: f64,
    burst: usize,
    seed: u64,
) -> ScenarioTrace {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut trace = ScenarioTrace::new(n, tenants);
    let zipf = Zipf::new(tenants, alpha);
    for round in 0..rounds {
        let tenant = zipf.sample(&mut rng);
        let updates = if round % 3 == 2 { burst.max(1) } else { 1 };
        for _ in 0..updates {
            let row = rng.gen_range(0..n as u32);
            let col = (row + 1 + rng.gen_range(0..(n as u32 - 1))) % n as u32;
            trace.ops.push(TraceOp::Add {
                tenant,
                row,
                col,
                value: 1.0,
            });
        }
        trace.ops.push(TraceOp::Query {
            tenant,
            salt: round as u64,
            iters: 2,
        });
        if round % 2 == 1 {
            trace.ops.push(TraceOp::Refresh { tenant });
        }
    }
    trace.ops.push(TraceOp::Settle);
    // One final query per tenant so even tenants Zipf never picked are
    // verified against the reference.
    for tenant in 0..tenants {
        trace.ops.push(TraceOp::Query {
            tenant,
            salt: 9999 + tenant as u64,
            iters: 2,
        });
    }
    trace
}

/// Power-law *tenant* skew: every operation's tenant is drawn from a
/// truncated Zipf(`alpha`) over the tenant IDs, so a handful of hot
/// tenants absorb most of the mutation and query traffic while the
/// long tail sits nearly idle. Unlike [`zipf_bursts`] (one tenant per
/// round), every round interleaves several independently-drawn
/// tenants, which is what multi-tenant serving actually looks like:
/// hot tenants' refreshes overlap cold tenants' queries, and the
/// per-tenant isolation (caches, refresh queues, catalogs) must keep
/// every answer exact under the contention.
pub fn zipf_tenant_skew(
    n: usize,
    tenants: usize,
    rounds: usize,
    ops_per_round: usize,
    alpha: f64,
    seed: u64,
) -> ScenarioTrace {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut trace = ScenarioTrace::new(n, tenants);
    let zipf = Zipf::new(tenants, alpha);
    for round in 0..rounds {
        for slot in 0..ops_per_round.max(1) {
            let tenant = zipf.sample(&mut rng);
            let row = rng.gen_range(0..n as u32);
            let col = (row + 1 + rng.gen_range(0..(n as u32 - 1))) % n as u32;
            trace.ops.push(TraceOp::Add {
                tenant,
                row,
                col,
                value: 1.0,
            });
            trace.ops.push(TraceOp::Query {
                tenant,
                salt: (round * 131 + slot) as u64,
                iters: 2,
            });
            // Hot tenants refresh often; the tail almost never does, so
            // its serving stays on the corrected (delta) path.
            if slot % 2 == 0 {
                trace.ops.push(TraceOp::Refresh { tenant });
            }
        }
        trace.ops.push(TraceOp::Settle);
    }
    // Verify every tenant at least once, including those the skew
    // never picked — the cold tail must be exact too.
    for tenant in 0..tenants {
        trace.ops.push(TraceOp::Query {
            tenant,
            salt: 7777 + tenant as u64,
            iters: 2,
        });
    }
    trace
}

/// Tiny truncated-Zipf sampler over `{0, …, n-1}` (rank k+1 has weight
/// `(k+1)^-alpha`) via an inverse-CDF table walk. Kept inline so this
/// crate stays at the bottom of the dependency stack.
struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    fn new(n: usize, alpha: f64) -> Self {
        let mut cumulative = Vec::with_capacity(n.max(1));
        let mut total = 0.0;
        for k in 1..=n.max(1) {
            total += (k as f64).powf(-alpha);
            cumulative.push(total);
        }
        Self { cumulative }
    }

    fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let total = *self.cumulative.last().expect("non-empty table");
        let u = rng.gen::<f64>() * total;
        self.cumulative
            .iter()
            .position(|&c| u <= c)
            .unwrap_or(self.cumulative.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::ScenarioTrace;

    fn roundtrips(trace: &ScenarioTrace) {
        let back = ScenarioTrace::from_text(&trace.to_text()).unwrap();
        assert_eq!(&back, trace);
    }

    #[test]
    fn generators_are_deterministic_and_roundtrip() {
        let a = region_merging(64, 2, 4, 3, 11);
        assert_eq!(a, region_merging(64, 2, 4, 3, 11));
        assert_ne!(a, region_merging(64, 2, 4, 3, 12));
        roundtrips(&a);

        let b = oscillating(64, 2, 4, 11);
        assert_eq!(b, oscillating(64, 2, 4, 11));
        roundtrips(&b);

        let c = zipf_bursts(64, 3, 12, 1.2, 6, 11);
        assert_eq!(c, zipf_bursts(64, 3, 12, 1.2, 6, 11));
        roundtrips(&c);

        let d = zipf_tenant_skew(64, 16, 4, 6, 1.3, 11);
        assert_eq!(d, zipf_tenant_skew(64, 16, 4, 6, 1.3, 11));
        assert_ne!(d, zipf_tenant_skew(64, 16, 4, 6, 1.3, 12));
        roundtrips(&d);
    }

    #[test]
    fn tenant_skew_is_power_law_but_covers_every_tenant() {
        let tenants = 16;
        let t = zipf_tenant_skew(64, tenants, 8, 8, 1.3, 7);
        let mut updates = vec![0usize; tenants];
        let mut queried = vec![false; tenants];
        for op in &t.ops {
            match op {
                TraceOp::Add { tenant, .. } => updates[*tenant] += 1,
                TraceOp::Query { tenant, .. } => queried[*tenant] = true,
                _ => {}
            }
        }
        // The head must dominate the tail: the hottest tenant sees more
        // traffic than the coldest half combined.
        let hottest = *updates.iter().max().unwrap();
        let cold_half: usize = {
            let mut sorted = updates.clone();
            sorted.sort_unstable();
            sorted[..tenants / 2].iter().sum()
        };
        assert!(
            hottest > cold_half,
            "hottest tenant ({hottest}) must out-traffic the cold half ({cold_half}): {updates:?}"
        );
        // ... but every tenant is still verified at least once.
        assert!(
            queried.iter().all(|&q| q),
            "all tenants queried: {queried:?}"
        );
        assert_eq!(t.max_tenant().unwrap(), tenants - 1);
    }

    #[test]
    fn region_merging_edges_span_half_the_dimension() {
        let t = region_merging(100, 1, 2, 5, 3);
        for op in &t.ops {
            if let TraceOp::Add { row, col, .. } = op {
                let d = (*col as i64 - *row as i64).rem_euclid(100);
                assert_eq!(d, 50, "edge must reach across the matrix");
            }
        }
    }

    #[test]
    fn oscillating_rounds_cancel() {
        let t = oscillating(32, 1, 4, 5);
        let mut sum = 0.0;
        let mut coords = std::collections::HashSet::new();
        for op in &t.ops {
            if let TraceOp::Add {
                row, col, value, ..
            } = op
            {
                assert_ne!(row, col, "off-diagonal updates only");
                sum += value;
                coords.insert((*row, *col));
            }
        }
        assert_eq!(sum, 0.0, "even round count must return to base content");
        assert!(
            coords.len() <= 4,
            "oscillation reuses a fixed coordinate set"
        );
    }

    #[test]
    fn zipf_bursts_skew_toward_rank_zero() {
        let t = zipf_bursts(64, 4, 60, 1.4, 5, 7);
        let mut per_tenant = [0usize; 4];
        for op in &t.ops {
            if let TraceOp::Add { tenant, .. } = op {
                per_tenant[*tenant] += 1;
            }
        }
        assert!(
            per_tenant[0] > per_tenant[3],
            "rank 0 must dominate rank 3: {per_tenant:?}"
        );
        let max = t.max_tenant().unwrap();
        assert!(max <= 3);
    }
}
