//! # amd-chaos — fault injection for the arrow-matrix serving stack
//!
//! The serving stack earns trust by surviving injected faults
//! repeatedly, not by never seeing them. This crate provides the
//! primitives the chaos harness is built from:
//!
//! * [`failpoint`] — named, deterministic-seeded injection sites
//!   threaded through catalog I/O, the refresh worker, and the serving
//!   path. When no fault plan is armed every probe is a single relaxed
//!   atomic load and a predicted branch, so the `obs_overhead` gate
//!   (< 3% instrumentation overhead) holds with the probes compiled in.
//! * [`plan`] — [`FaultPlan`]: a named set of (site, action, trigger)
//!   faults with one seed, armed as an RAII [`FaultGuard`] that holds a
//!   process-wide exclusive lock (one armed plan at a time) and disarms
//!   on drop. Canned plans cover the scenarios CI runs: worker kill,
//!   a crash in each catalog fsync/rename window, torn payload writes,
//!   and transient multiply errors.
//! * [`trace`] — [`ScenarioTrace`]: a recorded mutation/query trace
//!   (`amd-trace/1`, line-oriented text) with save/load for
//!   record + replay of chaos scenarios.
//! * [`generators`] — adversarial delta generators: region-merging
//!   edges that defeat splice locality, oscillating content that
//!   exercises merged-fingerprint reuse, and Zipf-skewed bursty tenant
//!   traffic.
//!
//! The scenario *runner* (which drives a `StreamHub` under a plan and
//! asserts bit-exactness against a fault-free reference) lives in the
//! facade crate (`arrow_matrix::scenario`), because this crate sits
//! below `amd-stream` in the dependency stack.
//!
//! ```
//! use amd_chaos::{failpoint, FaultAction, FaultPlan, Trigger};
//!
//! // Disarmed: probes are no-ops.
//! assert!(failpoint::check(failpoint::ENGINE_MULTIPLY_TRANSIENT).is_ok());
//!
//! // Armed: the first two hits fail with `SparseError::Injected`.
//! let plan = FaultPlan::new(7).with(
//!     failpoint::ENGINE_MULTIPLY_TRANSIENT,
//!     FaultAction::Error,
//!     Trigger::Times(2),
//! );
//! let guard = plan.arm();
//! assert!(failpoint::check(failpoint::ENGINE_MULTIPLY_TRANSIENT).is_err());
//! assert!(failpoint::check(failpoint::ENGINE_MULTIPLY_TRANSIENT).is_err());
//! assert!(failpoint::check(failpoint::ENGINE_MULTIPLY_TRANSIENT).is_ok());
//! drop(guard); // disarms
//! assert!(failpoint::check(failpoint::ENGINE_MULTIPLY_TRANSIENT).is_ok());
//! ```

pub mod failpoint;
pub mod generators;
pub mod plan;
pub mod trace;

pub use failpoint::{quiet_injected_panics, Fault, FaultAction, FaultGuard, Trigger};
pub use plan::FaultPlan;
pub use trace::{ScenarioTrace, TraceOp, TRACE_SCHEMA};
