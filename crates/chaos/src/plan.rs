//! Fault plans: a named set of faults armed together under one seed.

use std::time::Duration;

use crate::failpoint::{self, Fault, FaultAction, FaultGuard, Trigger};

/// A set of faults plus the seed for their deterministic triggers.
/// Build with [`FaultPlan::new`] + [`with`](FaultPlan::with) or use a
/// canned constructor, then [`arm`](FaultPlan::arm) it for the
/// duration of a scenario.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Seed for probabilistic triggers (per-site streams derive from
    /// this plus the site name).
    pub seed: u64,
    /// The faults armed together.
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan under `seed`. Arming it injects nothing but still
    /// takes the process-wide exclusivity lock — fault-free reference
    /// runs arm an empty plan so they serialize with faulty runs.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            faults: Vec::new(),
        }
    }

    /// Adds one fault (builder style).
    pub fn with(mut self, site: &str, action: FaultAction, trigger: Trigger) -> Self {
        self.faults.push(Fault {
            site: site.to_string(),
            action,
            trigger,
        });
        self
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Arms the plan. The returned guard disarms it on drop.
    pub fn arm(&self) -> FaultGuard {
        failpoint::arm(self.seed, &self.faults)
    }

    /// Kill one refresh worker: the first decompose job panics
    /// mid-flight. Supervision must respawn the worker and requeue the
    /// grant with the stream serving bit-exactly throughout.
    pub fn worker_kill(seed: u64) -> Self {
        Self::new(seed).with(
            failpoint::WORKER_DECOMPOSE_PANIC,
            FaultAction::Panic,
            Trigger::Times(1),
        )
    }

    /// Kill every decompose attempt: retries exhaust and the hub must
    /// take the counted synchronous-refresh fallback.
    pub fn worker_kill_always(seed: u64) -> Self {
        Self::new(seed).with(
            failpoint::WORKER_DECOMPOSE_PANIC,
            FaultAction::Panic,
            Trigger::Always,
        )
    }

    /// Simulated crash at one catalog site on its `nth` hit (1-based).
    /// The write in progress is abandoned exactly as a real crash
    /// would leave it; reopen must recover with zero orphans.
    pub fn crash_at(seed: u64, site: &str, nth: u64) -> Self {
        Self::new(seed).with(site, FaultAction::Error, Trigger::Nth(nth))
    }

    /// Torn payload write: the first payload written is truncated to
    /// `keep` of its length and not fsynced. The checksum footer must
    /// reject it on load.
    pub fn torn_payload(seed: u64, keep: f64) -> Self {
        Self::new(seed).with(
            failpoint::CATALOG_PAYLOAD_TORN,
            FaultAction::Torn(keep),
            Trigger::Nth(1),
        )
    }

    /// Transient multiply errors: the first `times` serving multiplies
    /// fail; the engine must retry and answer bit-exactly.
    pub fn transient_multiply(seed: u64, times: u64) -> Self {
        Self::new(seed).with(
            failpoint::ENGINE_MULTIPLY_TRANSIENT,
            FaultAction::Error,
            Trigger::Times(times),
        )
    }

    /// Injected latency before every decompose, for backlog/burst
    /// scenarios.
    pub fn slow_decompose(seed: u64, delay: Duration) -> Self {
        Self::new(seed).with(
            failpoint::WORKER_DECOMPOSE_DELAY,
            FaultAction::Delay(delay),
            Trigger::Always,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_faults() {
        let plan = FaultPlan::worker_kill(5).with(
            failpoint::ENGINE_MULTIPLY_TRANSIENT,
            FaultAction::Error,
            Trigger::Times(1),
        );
        assert_eq!(plan.seed, 5);
        assert_eq!(plan.faults.len(), 2);
        assert!(!plan.is_empty());
        assert!(FaultPlan::new(0).is_empty());
    }

    #[test]
    fn empty_plan_arms_nothing_but_holds_the_lock() {
        let plan = FaultPlan::new(1);
        let _guard = plan.arm();
        assert!(failpoint::check(failpoint::WORKER_DECOMPOSE_PANIC).is_ok());
        assert!(failpoint::fired_counts().is_empty());
    }
}
