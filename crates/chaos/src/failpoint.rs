//! Named fault-injection sites ("failpoints").
//!
//! A failpoint is a call to [`check`] (or [`torn`]) at a named site in
//! production code. With no plan armed the probe is one relaxed atomic
//! load and a predicted not-taken branch — cheap enough to leave
//! compiled into release builds without moving the `obs_overhead`
//! needle. Arming a [`FaultPlan`](crate::FaultPlan) installs per-site
//! state behind a process-wide exclusive lock; dropping the returned
//! [`FaultGuard`] disarms everything.
//!
//! Determinism: probabilistic triggers draw from a per-site ChaCha8
//! stream seeded by `fnv(plan_seed, site_name)`, so a scenario replays
//! the same faults at the same hits for the same seed regardless of
//! which other sites are armed.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;

use amd_sparse::{SparseError, SparseResult};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Catalog payload write: fail before the payload file is fsynced
/// (tmp file written but nothing durable or renamed).
pub const CATALOG_PAYLOAD_BEFORE_FSYNC: &str = "catalog.payload.before_fsync";
/// Catalog put: crash in the window between the payload rename and the
/// manifest rewrite (payload on disk, manifest does not reference it —
/// the orphan-adoption window).
pub const CATALOG_PAYLOAD_AFTER_RENAME: &str = "catalog.payload.after_rename";
/// Catalog payload write: torn write — the payload tmp file is
/// truncated to a fraction of its length and *not* fsynced before the
/// rename, simulating power loss mid-write.
pub const CATALOG_PAYLOAD_TORN: &str = "catalog.payload.torn";
/// Catalog manifest: fail before the manifest rewrite starts (payload
/// durable and renamed, manifest still the previous generation).
pub const CATALOG_MANIFEST_BEFORE_REWRITE: &str = "catalog.manifest.before_rewrite";
/// Catalog manifest write: fail before the manifest tmp is fsynced.
pub const CATALOG_MANIFEST_BEFORE_FSYNC: &str = "catalog.manifest.before_fsync";
/// Refresh worker: panic mid-decompose (kills the worker thread).
pub const WORKER_DECOMPOSE_PANIC: &str = "worker.decompose.panic";
/// Refresh worker: injected delay before the decompose starts.
pub const WORKER_DECOMPOSE_DELAY: &str = "worker.decompose.delay";
/// Serving path: transient multiply error, retried by the engine.
pub const ENGINE_MULTIPLY_TRANSIENT: &str = "engine.multiply.transient";

/// Every named failpoint site compiled into the workspace.
pub const SITES: &[&str] = &[
    CATALOG_PAYLOAD_BEFORE_FSYNC,
    CATALOG_PAYLOAD_AFTER_RENAME,
    CATALOG_PAYLOAD_TORN,
    CATALOG_MANIFEST_BEFORE_REWRITE,
    CATALOG_MANIFEST_BEFORE_FSYNC,
    WORKER_DECOMPOSE_PANIC,
    WORKER_DECOMPOSE_DELAY,
    ENGINE_MULTIPLY_TRANSIENT,
];

/// What an armed site does when its trigger fires.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultAction {
    /// Return [`SparseError::Injected`] from the probe. Catalog sites
    /// treat this as a simulated crash: the in-progress write is
    /// abandoned exactly as a real crash would leave it (stale tmp
    /// files and all).
    Error,
    /// Panic at the probe (used to kill refresh worker threads).
    Panic,
    /// Sleep for the given duration, then continue normally.
    Delay(Duration),
    /// Torn write: truncate the in-progress file to this fraction of
    /// its length and skip its fsync (only honored by [`torn`] probes).
    Torn(f64),
}

/// When an armed site fires, counted per site over the plan's lifetime.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Trigger {
    /// Fire on every hit.
    Always,
    /// Fire on the first `n` hits, then pass.
    Times(u64),
    /// Fire only on the `n`-th hit (1-based), pass otherwise.
    Nth(u64),
    /// Fire each hit independently with this probability, drawn from
    /// the site's deterministic ChaCha8 stream.
    Probability(f64),
}

/// One armed fault: a site name plus what to do and when.
#[derive(Debug, Clone)]
pub struct Fault {
    /// Failpoint site name (one of [`SITES`]).
    pub site: String,
    /// Action taken when the trigger fires.
    pub action: FaultAction,
    /// When the site fires.
    pub trigger: Trigger,
}

struct SiteState {
    action: FaultAction,
    trigger: Trigger,
    hits: u64,
    fired: u64,
    rng: ChaCha8Rng,
}

/// Fast-path gate: false ⇒ every probe returns immediately.
static ARMED: AtomicBool = AtomicBool::new(false);

fn table() -> &'static Mutex<HashMap<String, SiteState>> {
    static TABLE: OnceLock<Mutex<HashMap<String, SiteState>>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Exclusivity lock: at most one armed plan per process. Held by the
/// [`FaultGuard`] so concurrent tests serialize instead of corrupting
/// each other's fault tables.
fn exclusive() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

fn lock_table() -> MutexGuard<'static, HashMap<String, SiteState>> {
    // A poisoned lock only means some armed test panicked mid-assert;
    // the table contents are still structurally sound.
    table().lock().unwrap_or_else(|e| e.into_inner())
}

/// FNV-1a over the site name, offset by the plan seed: stable per-site
/// streams that do not depend on which other sites are armed.
fn site_seed(seed: u64, site: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed;
    for b in site.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// RAII handle for an armed plan: holds the process-wide exclusivity
/// lock and disarms every site when dropped.
#[must_use = "dropping the guard disarms the plan immediately"]
pub struct FaultGuard {
    _lock: MutexGuard<'static, ()>,
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        ARMED.store(false, Ordering::SeqCst);
        lock_table().clear();
    }
}

/// Arms `faults` under `seed`, replacing any previous table. Blocks
/// until no other plan is armed (the returned guard holds the
/// exclusivity lock until dropped).
pub fn arm(seed: u64, faults: &[Fault]) -> FaultGuard {
    let lock = exclusive().lock().unwrap_or_else(|e| e.into_inner());
    {
        let mut table = lock_table();
        table.clear();
        for f in faults {
            table.insert(
                f.site.clone(),
                SiteState {
                    action: f.action.clone(),
                    trigger: f.trigger,
                    hits: 0,
                    fired: 0,
                    rng: ChaCha8Rng::seed_from_u64(site_seed(seed, &f.site)),
                },
            );
        }
    }
    ARMED.store(!faults.is_empty(), Ordering::SeqCst);
    FaultGuard { _lock: lock }
}

/// Records a hit at `site` and returns the action if its trigger fired.
fn fire(site: &str) -> Option<FaultAction> {
    let mut table = lock_table();
    let st = table.get_mut(site)?;
    st.hits += 1;
    let fires = match st.trigger {
        Trigger::Always => true,
        Trigger::Times(n) => st.fired < n,
        Trigger::Nth(n) => st.hits == n,
        Trigger::Probability(p) => st.rng.gen_bool(p.clamp(0.0, 1.0)),
    };
    if fires {
        st.fired += 1;
        Some(st.action.clone())
    } else {
        None
    }
}

/// The general probe: call at a named site on a fallible path.
///
/// Disarmed (the common case) this is one relaxed load and a branch.
/// Armed, it may return [`SparseError::Injected`], panic, or sleep,
/// according to the site's action.
#[inline]
pub fn check(site: &str) -> SparseResult<()> {
    if !ARMED.load(Ordering::Relaxed) {
        return Ok(());
    }
    check_slow(site)
}

#[cold]
fn check_slow(site: &str) -> SparseResult<()> {
    match fire(site) {
        None | Some(FaultAction::Torn(_)) => Ok(()),
        Some(FaultAction::Error) => Err(SparseError::Injected(site.to_string())),
        Some(FaultAction::Panic) => panic!("injected fault at failpoint `{site}`"),
        Some(FaultAction::Delay(d)) => {
            std::thread::sleep(d);
            Ok(())
        }
    }
}

/// Torn-write probe: returns `Some(keep_fraction)` when a
/// [`FaultAction::Torn`] fault fires at `site`, `None` otherwise.
#[inline]
pub fn torn(site: &str) -> Option<f64> {
    if !ARMED.load(Ordering::Relaxed) {
        return None;
    }
    torn_slow(site)
}

#[cold]
fn torn_slow(site: &str) -> Option<f64> {
    match fire(site) {
        Some(FaultAction::Torn(frac)) => Some(frac.clamp(0.0, 1.0)),
        _ => None,
    }
}

/// True for errors produced by an armed [`FaultAction::Error`] site —
/// the retry loops only retry *injected* (transient) failures, never
/// real structural errors.
pub fn is_injected(err: &SparseError) -> bool {
    matches!(err, SparseError::Injected(_))
}

/// Snapshot of `(site, hits, fired)` for every currently armed site,
/// sorted by site name. Scenario reports persist these counts.
pub fn fired_counts() -> Vec<(String, u64, u64)> {
    let table = lock_table();
    let mut out: Vec<_> = table
        .iter()
        .map(|(site, st)| (site.clone(), st.hits, st.fired))
        .collect();
    out.sort();
    out
}

/// Installs (once per process) a panic hook that swallows the panic
/// message for *injected* worker panics and forwards everything else
/// to the previous hook. Keeps chaos test and CLI output readable:
/// injected worker deaths are expected, reported through supervision
/// counters, and should not spray backtrace noise on stderr.
pub fn quiet_injected_panics() {
    static ONCE: OnceLock<()> = OnceLock::new();
    ONCE.get_or_init(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !msg.contains("injected fault") {
                prev(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    // Every test arms its own plan; the guard serializes them, so they
    // are safe to run in one process despite the global table.

    #[test]
    fn disarmed_probe_is_a_noop() {
        // An empty plan holds the exclusivity lock (so no parallel test
        // arms a real plan underneath us) without arming anything.
        let _guard = arm(0, &[]);
        assert!(check(ENGINE_MULTIPLY_TRANSIENT).is_ok());
        assert!(torn(CATALOG_PAYLOAD_TORN).is_none());
    }

    #[test]
    fn times_trigger_fires_then_passes() {
        let faults = [Fault {
            site: ENGINE_MULTIPLY_TRANSIENT.into(),
            action: FaultAction::Error,
            trigger: Trigger::Times(2),
        }];
        let guard = arm(1, &faults);
        assert!(is_injected(&check(ENGINE_MULTIPLY_TRANSIENT).unwrap_err()));
        assert!(is_injected(&check(ENGINE_MULTIPLY_TRANSIENT).unwrap_err()));
        assert!(check(ENGINE_MULTIPLY_TRANSIENT).is_ok());
        let counts = fired_counts();
        assert_eq!(counts, vec![(ENGINE_MULTIPLY_TRANSIENT.to_string(), 3, 2)]);
        drop(guard);
        assert!(check(ENGINE_MULTIPLY_TRANSIENT).is_ok());
        assert!(fired_counts().is_empty());
    }

    #[test]
    fn nth_trigger_fires_exactly_once() {
        let faults = [Fault {
            site: CATALOG_PAYLOAD_BEFORE_FSYNC.into(),
            action: FaultAction::Error,
            trigger: Trigger::Nth(3),
        }];
        let _guard = arm(2, &faults);
        assert!(check(CATALOG_PAYLOAD_BEFORE_FSYNC).is_ok());
        assert!(check(CATALOG_PAYLOAD_BEFORE_FSYNC).is_ok());
        assert!(check(CATALOG_PAYLOAD_BEFORE_FSYNC).is_err());
        assert!(check(CATALOG_PAYLOAD_BEFORE_FSYNC).is_ok());
    }

    #[test]
    fn probability_trigger_is_deterministic_per_seed() {
        let faults = [Fault {
            site: WORKER_DECOMPOSE_DELAY.into(),
            action: FaultAction::Error,
            trigger: Trigger::Probability(0.5),
        }];
        let run = |seed: u64| -> Vec<bool> {
            let _guard = arm(seed, &faults);
            (0..32)
                .map(|_| check(WORKER_DECOMPOSE_DELAY).is_err())
                .collect()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
        let fired = run(9).iter().filter(|f| **f).count();
        assert!(
            fired > 0 && fired < 32,
            "p=0.5 should be neither never nor always"
        );
    }

    #[test]
    fn torn_probe_reports_fraction_and_ignores_other_actions() {
        let faults = [
            Fault {
                site: CATALOG_PAYLOAD_TORN.into(),
                action: FaultAction::Torn(0.4),
                trigger: Trigger::Nth(1),
            },
            Fault {
                site: CATALOG_PAYLOAD_BEFORE_FSYNC.into(),
                action: FaultAction::Error,
                trigger: Trigger::Always,
            },
        ];
        let _guard = arm(3, &faults);
        assert_eq!(torn(CATALOG_PAYLOAD_TORN), Some(0.4));
        assert_eq!(torn(CATALOG_PAYLOAD_TORN), None);
        // An Error action at a torn probe site does not tear anything.
        assert_eq!(torn(CATALOG_PAYLOAD_BEFORE_FSYNC), None);
        // A Torn action at a check probe site passes.
        assert!(check(CATALOG_PAYLOAD_TORN).is_ok());
    }

    #[test]
    fn delay_action_sleeps_then_passes() {
        let faults = [Fault {
            site: WORKER_DECOMPOSE_DELAY.into(),
            action: FaultAction::Delay(Duration::from_millis(5)),
            trigger: Trigger::Nth(1),
        }];
        let _guard = arm(4, &faults);
        let t0 = std::time::Instant::now();
        assert!(check(WORKER_DECOMPOSE_DELAY).is_ok());
        assert!(t0.elapsed() >= Duration::from_millis(5));
    }

    #[test]
    fn site_seed_distinguishes_sites_and_seeds() {
        assert_ne!(site_seed(1, SITES[0]), site_seed(1, SITES[1]));
        assert_ne!(site_seed(1, SITES[0]), site_seed(2, SITES[0]));
        assert_eq!(site_seed(1, SITES[0]), site_seed(1, SITES[0]));
    }
}
