//! Recorded mutation/query traces (`amd-trace/1`): record once, replay
//! under any fault plan.
//!
//! The format is deliberately line-oriented text so traces diff and
//! version cleanly:
//!
//! ```text
//! amd-trace/1 n=64 tenants=2
//! a 0 3 17 1.0        # add value at (row, col) for tenant 0
//! s 1 5 5 2.0         # set value at (row, col) for tenant 1
//! q 0 7 2             # query tenant 0, operand salt 7, 2 iterations
//! r 1                 # request a refresh for tenant 1
//! w                   # settle: wait for all in-flight refreshes
//! ```
//!
//! Values round-trip exactly: they are written with Rust's shortest
//! `f64` formatting and parsed back bit-identically.

use std::fmt::Write as _;
use std::path::Path;

/// Schema marker on the header line of every trace file.
pub const TRACE_SCHEMA: &str = "amd-trace/1";

/// One replayable operation against a multi-tenant hub.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceOp {
    /// Add `value` to the entry at `(row, col)` of `tenant`'s matrix.
    Add {
        tenant: usize,
        row: u32,
        col: u32,
        value: f64,
    },
    /// Set the entry at `(row, col)` of `tenant`'s matrix to `value`.
    Set {
        tenant: usize,
        row: u32,
        col: u32,
        value: f64,
    },
    /// Run a query for `tenant`: a deterministic dense operand derived
    /// from `salt`, iterated `iters` times.
    Query {
        tenant: usize,
        salt: u64,
        iters: usize,
    },
    /// Request a refresh for `tenant`.
    Refresh { tenant: usize },
    /// Settle: wait until every in-flight refresh has committed.
    Settle,
}

/// A recorded scenario: matrix dimension, tenant count, and the op
/// stream. Equality is exact, so record → save → load → replay is
/// verifiable bit-for-bit.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioTrace {
    /// Square matrix dimension every tenant starts from.
    pub n: usize,
    /// Number of tenants the trace addresses (`0..tenants`).
    pub tenants: usize,
    /// The operation stream, replayed in order.
    pub ops: Vec<TraceOp>,
}

impl ScenarioTrace {
    /// An empty trace over `tenants` copies of an `n × n` matrix.
    pub fn new(n: usize, tenants: usize) -> Self {
        Self {
            n,
            tenants,
            ops: Vec::new(),
        }
    }

    /// Serializes to the `amd-trace/1` text format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{TRACE_SCHEMA} n={} tenants={}", self.n, self.tenants);
        for op in &self.ops {
            match op {
                TraceOp::Add {
                    tenant,
                    row,
                    col,
                    value,
                } => {
                    let _ = writeln!(out, "a {tenant} {row} {col} {value:?}");
                }
                TraceOp::Set {
                    tenant,
                    row,
                    col,
                    value,
                } => {
                    let _ = writeln!(out, "s {tenant} {row} {col} {value:?}");
                }
                TraceOp::Query {
                    tenant,
                    salt,
                    iters,
                } => {
                    let _ = writeln!(out, "q {tenant} {salt} {iters}");
                }
                TraceOp::Refresh { tenant } => {
                    let _ = writeln!(out, "r {tenant}");
                }
                TraceOp::Settle => {
                    let _ = writeln!(out, "w");
                }
            }
        }
        out
    }

    /// Parses the `amd-trace/1` text format. Unknown op codes, short
    /// lines, and malformed numbers are reported with line numbers.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut lines = text.lines().enumerate();
        let (_, header) = lines.next().ok_or("empty trace")?;
        let mut parts = header.split_whitespace();
        if parts.next() != Some(TRACE_SCHEMA) {
            return Err(format!("not an {TRACE_SCHEMA} trace: `{header}`"));
        }
        let n = parse_kv(parts.next(), "n")?;
        let tenants = parse_kv(parts.next(), "tenants")?;
        let mut trace = Self::new(n, tenants);
        for (idx, line) in lines {
            let line = line.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut f = line.split_whitespace();
            let code = f.next().unwrap_or("");
            let op = match code {
                "a" | "s" => {
                    let tenant = field(&mut f, idx, "tenant")?;
                    let row = field(&mut f, idx, "row")?;
                    let col = field(&mut f, idx, "col")?;
                    let value: f64 = field(&mut f, idx, "value")?;
                    if code == "a" {
                        TraceOp::Add {
                            tenant,
                            row,
                            col,
                            value,
                        }
                    } else {
                        TraceOp::Set {
                            tenant,
                            row,
                            col,
                            value,
                        }
                    }
                }
                "q" => TraceOp::Query {
                    tenant: field(&mut f, idx, "tenant")?,
                    salt: field(&mut f, idx, "salt")?,
                    iters: field(&mut f, idx, "iters")?,
                },
                "r" => TraceOp::Refresh {
                    tenant: field(&mut f, idx, "tenant")?,
                },
                "w" => TraceOp::Settle,
                other => return Err(format!("line {}: unknown op `{other}`", idx + 1)),
            };
            if f.next().is_some() {
                return Err(format!("line {}: trailing fields", idx + 1));
            }
            trace.ops.push(op);
        }
        Ok(trace)
    }

    /// Writes the trace to `path` in text form.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_text())
    }

    /// Reads a trace from `path`.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        Self::from_text(&text)
    }

    /// The largest tenant index any op addresses, if any op does.
    pub fn max_tenant(&self) -> Option<usize> {
        self.ops
            .iter()
            .filter_map(|op| match op {
                TraceOp::Add { tenant, .. }
                | TraceOp::Set { tenant, .. }
                | TraceOp::Query { tenant, .. }
                | TraceOp::Refresh { tenant } => Some(*tenant),
                TraceOp::Settle => None,
            })
            .max()
    }
}

fn parse_kv<T: std::str::FromStr>(part: Option<&str>, key: &str) -> Result<T, String> {
    let part = part.ok_or_else(|| format!("header missing `{key}=`"))?;
    let value = part
        .strip_prefix(key)
        .and_then(|rest| rest.strip_prefix('='))
        .ok_or_else(|| format!("header expected `{key}=<value>`, got `{part}`"))?;
    value
        .parse()
        .map_err(|_| format!("header `{key}`: bad value `{value}`"))
}

fn field<'a, T: std::str::FromStr>(
    f: &mut impl Iterator<Item = &'a str>,
    line_idx: usize,
    name: &str,
) -> Result<T, String> {
    let raw = f
        .next()
        .ok_or_else(|| format!("line {}: missing {name}", line_idx + 1))?;
    raw.parse()
        .map_err(|_| format!("line {}: bad {name} `{raw}`", line_idx + 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ScenarioTrace {
        let mut t = ScenarioTrace::new(64, 2);
        t.ops = vec![
            TraceOp::Add {
                tenant: 0,
                row: 3,
                col: 17,
                value: 1.0,
            },
            TraceOp::Set {
                tenant: 1,
                row: 5,
                col: 5,
                value: -2.0,
            },
            TraceOp::Query {
                tenant: 0,
                salt: 7,
                iters: 2,
            },
            TraceOp::Refresh { tenant: 1 },
            TraceOp::Settle,
            TraceOp::Add {
                tenant: 1,
                row: 0,
                col: 1,
                value: 0.1 + 0.2,
            },
        ];
        t
    }

    #[test]
    fn text_roundtrip_is_exact() {
        let t = sample();
        let text = t.to_text();
        assert!(text.starts_with("amd-trace/1 n=64 tenants=2\n"));
        let back = ScenarioTrace::from_text(&text).unwrap();
        assert_eq!(back, t); // includes bit-exact 0.30000000000000004
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join(format!("amd-chaos-trace-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.trace");
        let t = sample();
        t.save(&path).unwrap();
        assert_eq!(ScenarioTrace::load(&path).unwrap(), t);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let text = "amd-trace/1 n=8 tenants=1\n\n# comment\na 0 1 2 3.0  # inline\nw\n";
        let t = ScenarioTrace::from_text(text).unwrap();
        assert_eq!(t.ops.len(), 2);
        assert_eq!(t.max_tenant(), Some(0));
    }

    #[test]
    fn malformed_traces_are_rejected_with_line_numbers() {
        assert!(ScenarioTrace::from_text("").unwrap_err().contains("empty"));
        assert!(ScenarioTrace::from_text("bogus/9 n=1 tenants=1")
            .unwrap_err()
            .contains("not an amd-trace/1"));
        let err = ScenarioTrace::from_text("amd-trace/1 n=8 tenants=1\nz 0\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        let err = ScenarioTrace::from_text("amd-trace/1 n=8 tenants=1\na 0 1 2\n").unwrap_err();
        assert!(err.contains("missing value"), "{err}");
        let err = ScenarioTrace::from_text("amd-trace/1 n=8 tenants=1\nw 3\n").unwrap_err();
        assert!(err.contains("trailing"), "{err}");
    }
}
