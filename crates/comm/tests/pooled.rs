//! Machine-level pooled execution: determinism against spawn-per-run,
//! panic containment in the shared pool's rank slots, pool lifecycle
//! (drop and rebuild), and the `#[ignore]`d perf gate CI runs in its
//! `exec-smoke` job.

use amd_comm::Machine;
use amd_exec::ExecPool;
use std::time::Instant;

/// A small SPMD program with real cross-rank traffic: ring exchange
/// plus an all-to-rank-0 gather, returning a per-rank checksum.
fn ring_program(machine: &Machine, p: u32, payload: usize) -> Vec<(f64, f64)> {
    let report = machine.run(|ctx| {
        let r = ctx.rank();
        let right = (r + 1) % p;
        let left = (r + p - 1) % p;
        ctx.send(right, 0, vec![r as f64 + 0.25; payload]);
        let v: Vec<f64> = ctx.recv(left, 0);
        let sum: f64 = v.iter().sum();
        if r == 0 {
            let mut acc = sum;
            for peer in 1..p {
                let w: Vec<f64> = ctx.recv(peer, 1);
                acc += w[0];
            }
            acc
        } else {
            ctx.send(0, 1, vec![sum]);
            sum
        }
    });
    report
        .results
        .iter()
        .zip(&report.stats.ranks)
        .map(|(&y, s)| (y, s.sim_time))
        .collect()
}

/// Pooled results and per-rank sim clocks bit-match spawn-per-run.
#[test]
fn pooled_machine_bit_matches_spawn_per_run() {
    for p in [1u32, 2, 5, 8] {
        let pooled = ring_program(&Machine::new(p), p, 128);
        let spawned = ring_program(&Machine::new(p).spawn_per_run(), p, 128);
        assert_eq!(pooled.len(), spawned.len());
        for (r, ((py, pt), (sy, st))) in pooled.iter().zip(&spawned).enumerate() {
            assert_eq!(py.to_bits(), sy.to_bits(), "p={p} rank {r} result");
            assert_eq!(pt.to_bits(), st.to_bits(), "p={p} rank {r} sim clock");
        }
    }
}

/// A rank panic surfaces with the exact spawn-per-run message and does
/// NOT poison the shared pool: the same pool keeps serving runs, and
/// the surviving slots are reused rather than respawned.
#[test]
fn rank_panic_does_not_poison_the_pool() {
    let pool = ExecPool::new(4);
    let machine = Machine::new(4).with_exec(pool.clone());
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        machine.run(|ctx| {
            if ctx.rank() == 2 {
                panic!("injected rank failure");
            }
            ctx.rank()
        })
    }));
    let msg = *caught
        .expect_err("rank panic must propagate")
        .downcast::<String>()
        .unwrap();
    assert!(
        msg.contains("rank 2 panicked") && msg.contains("injected rank failure"),
        "panic must keep the spawn-per-run format: {msg}"
    );
    // The pool is still whole: subsequent runs succeed and reuse the
    // cached slots (panicked slots survive — the payload travelled out
    // through the result, not the thread).
    let spawned_before = pool.stats().rank_threads_spawned;
    for round in 0..3 {
        let report = machine.run(|ctx| ctx.rank() * 10);
        assert_eq!(report.results, vec![0, 10, 20, 30], "round {round}");
    }
    let stats = pool.stats();
    assert_eq!(
        stats.rank_threads_spawned, spawned_before,
        "post-panic runs must reuse cached slots, not respawn"
    );
    assert!(stats.rank_threads_reused >= 12, "3 runs × 4 ranks reused");
}

/// Dropping a pool joins its threads; a rebuilt pool serves the same
/// machine configuration identically.
#[test]
fn pool_drop_and_rebuild_reproduces_results() {
    let first = {
        let pool = ExecPool::new(3);
        ring_program(&Machine::new(6).with_exec(pool), 6, 64)
        // pool dropped here: workers and rank slots join
    };
    let pool = ExecPool::new(3);
    let second = ring_program(&Machine::new(6).with_exec(pool), 6, 64);
    for ((fy, ft), (sy, st)) in first.iter().zip(&second) {
        assert_eq!(fy.to_bits(), sy.to_bits());
        assert_eq!(ft.to_bits(), st.to_bits());
    }
}

/// Perf gate (CI `exec-smoke`): on small-query churn the pooled machine
/// must beat spawn-per-run by at least 2×. `#[ignore]`d from the
/// default suite — timing gates belong in perf lanes, not unit lanes.
#[test]
#[ignore = "perf gate: run explicitly (CI exec-smoke job)"]
fn pooled_churn_beats_spawn_per_run() {
    const RUNS: usize = 30;
    const ROUNDS: usize = 7;
    let p = 8u32;
    let pool = ExecPool::new(8);
    let pooled = Machine::new(p).with_exec(pool);
    let spawned = Machine::new(p).spawn_per_run();
    let churn = |machine: &Machine| {
        let t0 = Instant::now();
        for _ in 0..RUNS {
            ring_program(machine, p, 64);
        }
        t0.elapsed().as_secs_f64()
    };
    churn(&pooled); // warm the slot cache
    let mut best_pooled = f64::INFINITY;
    let mut best_spawned = f64::INFINITY;
    for _ in 0..ROUNDS {
        best_pooled = best_pooled.min(churn(&pooled));
        best_spawned = best_spawned.min(churn(&spawned));
    }
    let speedup = best_spawned / best_pooled;
    assert!(
        speedup >= 2.0,
        "pooled churn must be ≥ 2× spawn-per-run (got {speedup:.2}×: \
         pooled {best_pooled:.4}s vs spawned {best_spawned:.4}s)"
    );
}
