//! Property tests for the message-passing machine: arbitrary communication
//! patterns must deliver exactly, deterministically, and without deadlock.

use amd_comm::{Group, Machine, RoutedItem};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every rank sends one message to a random target; every byte arrives
    /// and the simulated clocks are deterministic.
    #[test]
    fn random_permutation_exchange(
        p in 2u32..12,
        seed in any::<u64>(),
    ) {
        // Build a random derangement-ish map (self-sends allowed).
        let targets: Vec<u32> = (0..p)
            .map(|r| {
                let x = seed.wrapping_mul(0x9e3779b97f4a7c15).rotate_left(r)
                    ^ (r as u64) << 32;
                (x % p as u64) as u32
            })
            .collect();
        // Inverse multiset: how many messages each rank expects.
        let mut expect = vec![0u32; p as usize];
        for &t in &targets {
            expect[t as usize] += 1;
        }
        let run = || {
            let targets = targets.clone();
            let expect = expect.clone();
            Machine::new(p)
                .run(move |ctx| {
                    let me = ctx.rank();
                    ctx.send(targets[me as usize], 1, vec![me as f64; 8]);
                    let mut got = Vec::new();
                    for src in 0..p {
                        if targets[src as usize] == me {
                            let v: Vec<f64> = ctx.recv(src, 1);
                            got.push((src, v));
                        }
                    }
                    prop_assert_eq!(got.len() as u32, expect[me as usize]);
                    for (src, v) in &got {
                        prop_assert_eq!(v.len(), 8);
                        prop_assert!(v.iter().all(|&x| x == *src as f64));
                    }
                    Ok(ctx.sim_time())
                })
                .results
        };
        let r1: Result<Vec<f64>, _> = run().into_iter().collect();
        let r2: Result<Vec<f64>, _> = run().into_iter().collect();
        let (r1, r2) = (r1?, r2?);
        prop_assert_eq!(r1, r2, "simulated clocks not deterministic");
    }

    /// Collectives on arbitrary subgroup splits produce correct sums.
    #[test]
    fn subgroup_allreduce_correct(
        p in 2u32..12,
        split in 1u32..11,
        len in 1usize..20,
    ) {
        let split = split.min(p - 1).max(1);
        let report = Machine::new(p).run(|ctx| {
            let me = ctx.rank();
            let members: Vec<u32> =
                if me < split { (0..split).collect() } else { (split..p).collect() };
            let g = Group::new(ctx, members);
            let data = vec![me as f64 + 1.0; len];
            g.allreduce_sum_ring(ctx, data)
        });
        let lower: f64 = (0..split).map(|r| r as f64 + 1.0).sum();
        let upper: f64 = (split..p).map(|r| r as f64 + 1.0).sum();
        for (r, v) in report.results.iter().enumerate() {
            let want = if (r as u32) < split { lower } else { upper };
            prop_assert!(v.iter().all(|&x| (x - want).abs() < 1e-9),
                "rank {r}: {v:?} != {want}");
        }
    }

    /// Destination routing delivers an arbitrary item multiset intact.
    #[test]
    fn routing_preserves_item_multiset(
        p in 1u32..10,
        dests in proptest::collection::vec(0u32..10, 0..24),
    ) {
        let dests: Vec<u32> = dests.into_iter().map(|d| d % p).collect();
        let total = dests.len();
        let report = Machine::new(p).run(|ctx| {
            let g = Group::world(ctx);
            let me = g.my_idx() as u32;
            // Rank 0 originates everything; others send nothing.
            let items: Vec<RoutedItem> = if me == 0 {
                dests
                    .iter()
                    .enumerate()
                    .map(|(i, &d)| RoutedItem {
                        dest: d,
                        tag: i as u64,
                        data: vec![i as f64, d as f64],
                    })
                    .collect()
            } else {
                Vec::new()
            };
            let got = g.route_by_destination(ctx, items);
            got.iter()
                .map(|it| {
                    assert_eq!(it.dest, me);
                    assert_eq!(it.data[1] as u32, me);
                    it.tag
                })
                .collect::<Vec<u64>>()
        });
        let mut all_tags: Vec<u64> = report.results.into_iter().flatten().collect();
        all_tags.sort_unstable();
        prop_assert_eq!(all_tags, (0..total as u64).collect::<Vec<_>>());
    }
}
