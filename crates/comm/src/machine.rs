//! The machine: runs the SPMD closure on `p` ranks, collects stats.
//!
//! Ranks execute on cached rank-slot threads of a persistent
//! [`amd_exec::ExecPool`] by default (the process-global pool unless
//! one is supplied via [`Machine::with_exec`]), so a serving stack
//! answering many small queries does not pay thread creation per run.
//! [`Machine::spawn_per_run`] restores the historical
//! spawn-`p`-threads-per-call behaviour — kept as the comparator for
//! the determinism suite and the calibration bench. Results, per-rank
//! simulated clocks, and message accounting are bit-identical across
//! the two modes: the clocks are purely logical (derived from message
//! sizes and the cost model, never from the OS scheduler).

use crate::cost::CostModel;
use crate::message::Packet;
use crate::rank::RankCtx;
use crate::stats::{MachineStats, RankStats};
use amd_exec::ExecPool;
use amd_obs::Stopwatch;
use crossbeam_channel::unbounded;
use std::sync::Arc;

/// How a [`Machine`] obtains the `p` threads a run needs.
#[derive(Debug, Clone, Default)]
pub enum MachineExec {
    /// Acquire rank slots from the process-global [`amd_exec`] pool
    /// (the default: persistent threads, no per-run spawn cost).
    #[default]
    Global,
    /// Acquire rank slots from a specific pool.
    Pool(ExecPool),
    /// Spawn `p` fresh OS threads per run — the pre-pool behaviour,
    /// kept as a comparator for determinism tests and calibration.
    SpawnPerRun,
}

/// A `p`-rank message-passing machine.
#[derive(Debug, Clone)]
pub struct Machine {
    p: u32,
    cost: CostModel,
    exec: MachineExec,
}

/// Results and accounting of one run.
#[derive(Debug, Clone)]
pub struct RunReport<T> {
    /// Per-rank return values, indexed by rank.
    pub results: Vec<T>,
    /// Per-rank and aggregate accounting.
    pub stats: MachineStats,
}

impl Machine {
    /// A machine with `p ≥ 1` ranks and the default cost model.
    pub fn new(p: u32) -> Self {
        assert!(p >= 1, "machine needs at least one rank");
        Self {
            p,
            cost: CostModel::default(),
            exec: MachineExec::default(),
        }
    }

    /// Overrides the cost model.
    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Runs ranks on slots of `pool` instead of the global pool.
    pub fn with_exec(mut self, pool: ExecPool) -> Self {
        self.exec = MachineExec::Pool(pool);
        self
    }

    /// Selects an execution mode explicitly.
    pub fn with_exec_mode(mut self, exec: MachineExec) -> Self {
        self.exec = exec;
        self
    }

    /// Spawns `p` fresh OS threads per run (pre-pool comparator).
    pub fn spawn_per_run(mut self) -> Self {
        self.exec = MachineExec::SpawnPerRun;
        self
    }

    /// Number of ranks.
    pub fn p(&self) -> u32 {
        self.p
    }

    /// Runs `program` on every rank (SPMD) and joins.
    ///
    /// Each rank executes on its own OS thread (a cached pool slot in
    /// the default mode); a panic in any rank propagates after all
    /// ranks have finished.
    pub fn run<T, F>(&self, program: F) -> RunReport<T>
    where
        T: Send,
        F: Fn(&mut RankCtx) -> T + Sync,
    {
        let p = self.p as usize;
        let mut senders = Vec::with_capacity(p);
        let mut receivers = Vec::with_capacity(p);
        for _ in 0..p {
            let (tx, rx) = unbounded::<Packet>();
            senders.push(tx);
            receivers.push(rx);
        }
        let senders = Arc::new(senders);
        let start = Stopwatch::start();
        let program = &program;
        let outcomes: Vec<(T, RankStats)> = match &self.exec {
            MachineExec::SpawnPerRun => self.run_spawned(p, receivers, &senders, program),
            MachineExec::Global => {
                self.run_pooled(&amd_exec::global(), p, receivers, &senders, program)
            }
            MachineExec::Pool(pool) => self.run_pooled(pool, p, receivers, &senders, program),
        };
        let wall_seconds = start.elapsed_seconds();
        let mut results = Vec::with_capacity(p);
        let mut ranks = Vec::with_capacity(p);
        for (out, stats) in outcomes {
            results.push(out);
            ranks.push(stats);
        }
        RunReport {
            results,
            stats: MachineStats {
                ranks,
                wall_seconds,
            },
        }
    }

    /// Pooled mode: one cached rank-slot thread per rank.
    fn run_pooled<T, F>(
        &self,
        pool: &ExecPool,
        p: usize,
        receivers: Vec<crossbeam_channel::Receiver<Packet>>,
        senders: &Arc<Vec<crossbeam_channel::Sender<Packet>>>,
        program: &F,
    ) -> Vec<(T, RankStats)>
    where
        T: Send,
        F: Fn(&mut RankCtx) -> T + Sync,
    {
        let tasks: Vec<Box<dyn FnOnce() -> (T, RankStats) + Send + '_>> = receivers
            .into_iter()
            .enumerate()
            .map(|(r, rx)| {
                let senders = Arc::clone(senders);
                let cost = self.cost;
                Box::new(move || {
                    let mut ctx = RankCtx::new(r as u32, p as u32, cost, senders, rx);
                    let out = program(&mut ctx);
                    (out, ctx.finalize())
                }) as Box<dyn FnOnce() -> (T, RankStats) + Send + '_>
            })
            .collect();
        pool.run_tasks(tasks)
            .into_iter()
            .enumerate()
            .map(|(r, res)| {
                res.unwrap_or_else(|e| {
                    std::panic::resume_unwind(Box::new(format!(
                        "rank {r} panicked: {}",
                        panic_message(&*e)
                    )))
                })
            })
            .collect()
    }

    /// Spawn-per-run comparator: `p` fresh scoped OS threads.
    fn run_spawned<T, F>(
        &self,
        p: usize,
        receivers: Vec<crossbeam_channel::Receiver<Packet>>,
        senders: &Arc<Vec<crossbeam_channel::Sender<Packet>>>,
        program: &F,
    ) -> Vec<(T, RankStats)>
    where
        T: Send,
        F: Fn(&mut RankCtx) -> T + Sync,
    {
        std::thread::scope(|scope| {
            let handles: Vec<_> = receivers
                .into_iter()
                .enumerate()
                .map(|(r, rx)| {
                    let senders = Arc::clone(senders);
                    let cost = self.cost;
                    scope.spawn(move || {
                        let mut ctx = RankCtx::new(r as u32, p as u32, cost, senders, rx);
                        let out = program(&mut ctx);
                        (out, ctx.finalize())
                    })
                })
                .collect();
            handles
                .into_iter()
                .enumerate()
                .map(|(r, h)| {
                    h.join().unwrap_or_else(|e| {
                        std::panic::resume_unwind(Box::new(format!(
                            "rank {r} panicked: {}",
                            panic_message(&*e)
                        )))
                    })
                })
                .collect()
        })
    }
}

fn panic_message(e: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = e.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = e.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_see_their_ids() {
        let report = Machine::new(4).run(|ctx| (ctx.rank(), ctx.p()));
        for (r, &(rank, p)) in report.results.iter().enumerate() {
            assert_eq!(rank as usize, r);
            assert_eq!(p, 4);
        }
    }

    #[test]
    fn ring_pass_accumulates() {
        // Token passed around a ring, each rank adds its id.
        let p = 8u32;
        let report = Machine::new(p).run(|ctx| {
            let r = ctx.rank();
            if r == 0 {
                ctx.send(1, 0, 0u64);
                let total: u64 = ctx.recv(p - 1, 0);
                total
            } else {
                let acc: u64 = ctx.recv(r - 1, 0);
                ctx.send((r + 1) % p, 0, acc + r as u64);
                0
            }
        });
        assert_eq!(report.results[0], (0..8).sum::<u64>());
        // Latency chain: p sequential messages → sim time ≥ p · α.
        let alpha = CostModel::default().alpha;
        assert!(report.stats.sim_time() >= p as f64 * alpha);
    }

    #[test]
    fn deterministic_sim_times() {
        let run = || {
            Machine::new(6)
                .run(|ctx| {
                    let r = ctx.rank();
                    // Everyone sends to rank 0, rank 0 replies.
                    if r == 0 {
                        for s in 1..6 {
                            let _: Vec<f64> = ctx.recv(s, 1);
                        }
                        for s in 1..6 {
                            ctx.send(s, 2, 1.0f64);
                        }
                    } else {
                        ctx.send(0, 1, vec![0.0f64; r as usize * 10]);
                        let _: f64 = ctx.recv(0, 2);
                    }
                    ctx.sim_time()
                })
                .results
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn wall_time_recorded() {
        let report = Machine::new(2).run(|_| ());
        assert!(report.stats.wall_seconds >= 0.0);
        assert_eq!(report.stats.ranks.len(), 2);
    }

    #[test]
    fn large_rank_count_smoke() {
        let report = Machine::new(64).run(|ctx| {
            // Nearest-neighbour exchange.
            let r = ctx.rank();
            let right = (r + 1) % 64;
            let left = (r + 63) % 64;
            ctx.send(right, 0, r as u64);
            let v: u64 = ctx.recv(left, 0);
            v
        });
        assert_eq!(report.results[1], 0);
        assert_eq!(report.results[0], 63);
    }
}
