//! A message-passing machine with α-β cost accounting.
//!
//! This crate is the stand-in for the MPI + GPU cluster of the paper's
//! evaluation (see DESIGN.md §1). A [`Machine`] runs `p` *ranks* as real
//! OS threads executing the same SPMD closure; ranks exchange real data
//! through channels, and every message and local kernel is charged to a
//! per-rank **simulated clock** following the α-β model of §2:
//!
//! * sending a message of `s` bytes occupies the sender for `α + β·s`
//!   (single-port, sends serialise),
//! * the receiver's clock advances to
//!   `max(local, depart + α + β·s)` when the message is consumed — which
//!   means computation placed *before* a receive naturally overlaps with
//!   the transfer, exactly like nonblocking MPI,
//! * local work is charged via [`RankCtx::compute_flops`].
//!
//! Collectives ([`Group`]) are built from point-to-point messages with
//! binomial trees, so their `O(log p)` latency emerges from the model
//! rather than being injected as a formula.
//!
//! The simulated clock is deterministic given the message pattern: message
//! timestamps travel with the data and the final times are maxima over
//! them, independent of real thread scheduling.

pub mod collectives;
pub mod cost;
pub mod machine;
pub mod message;
pub mod rank;
pub mod routing;
pub mod stats;

pub use collectives::{binomial_children, Group};
pub use cost::{fit_beta, BetaFit, CostModel};
pub use machine::{Machine, MachineExec, RunReport};
pub use message::Payload;
pub use rank::RankCtx;
pub use routing::RoutedItem;
pub use stats::{MachineStats, RankStats};
