//! The per-rank execution context.

use crate::cost::CostModel;
use crate::message::{Packet, Payload};
use crate::stats::RankStats;
use crossbeam_channel::{Receiver, Sender};
use std::collections::HashMap;
use std::sync::Arc;

/// Handle a rank's program uses to communicate, charge compute, and read
/// its simulated clock.
pub struct RankCtx {
    rank: u32,
    p: u32,
    cost: CostModel,
    senders: Arc<Vec<Sender<Packet>>>,
    rx: Receiver<Packet>,
    /// Messages received from the channel but not yet matched by a
    /// `recv(src, tag)` call.
    unmatched: Vec<Packet>,
    sim_time: f64,
    /// Inbound-link clock: the NIC drains one message at a time, so a
    /// rank's aggregate incoming volume serialises at β bytes/s even when
    /// the CPU clock is ahead (single-port, full-duplex model).
    nic_time: f64,
    pub(crate) stats: RankStats,
    /// Per-group collective sequence numbers (see `collectives`).
    pub(crate) coll_seq: HashMap<u64, u64>,
}

impl RankCtx {
    pub(crate) fn new(
        rank: u32,
        p: u32,
        cost: CostModel,
        senders: Arc<Vec<Sender<Packet>>>,
        rx: Receiver<Packet>,
    ) -> Self {
        Self {
            rank,
            p,
            cost,
            senders,
            rx,
            unmatched: Vec::new(),
            sim_time: 0.0,
            nic_time: 0.0,
            stats: RankStats::default(),
            coll_seq: HashMap::new(),
        }
    }

    /// This rank's id in `0..p`.
    #[inline]
    pub fn rank(&self) -> u32 {
        self.rank
    }

    /// Number of ranks in the machine.
    #[inline]
    pub fn p(&self) -> u32 {
        self.p
    }

    /// The machine's cost model.
    #[inline]
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// Current simulated clock in seconds.
    #[inline]
    pub fn sim_time(&self) -> f64 {
        self.sim_time
    }

    /// Sends `data` to `to` with a user `tag` (tags with the top bit set
    /// are reserved for collectives). Never blocks; the sender's clock
    /// advances by `α + β·bytes` (single-port model).
    pub fn send<T: Payload>(&mut self, to: u32, tag: u64, data: T) {
        assert!(
            to < self.p,
            "send to rank {to} out of range (p = {})",
            self.p
        );
        self.send_internal(to, tag, data);
    }

    pub(crate) fn send_internal<T: Payload>(&mut self, to: u32, tag: u64, data: T) {
        let bytes = data.payload_bytes();
        let depart = self.sim_time;
        self.sim_time += self.cost.transfer_time(bytes);
        self.stats.sent_bytes += bytes as u64;
        self.stats.sent_msgs += 1;
        let pkt = Packet {
            src: self.rank,
            tag,
            bytes,
            depart,
            data: Box::new(data),
        };
        self.senders[to as usize]
            .send(pkt)
            .expect("receiver thread alive for the duration of the run");
    }

    /// Receives the next message from `from` with tag `tag`, blocking the
    /// OS thread until it arrives.
    ///
    /// Timing: the message occupies the inbound link for `β·bytes`
    /// starting no earlier than `depart + α`, and inbound transfers
    /// serialise (single-port). The CPU clock advances to the completed
    /// arrival, so compute performed before this call overlaps with the
    /// transfer — as with nonblocking MPI — but a rank receiving from many
    /// peers still pays `β · total bytes` (the hot-spot behaviour that
    /// breaks 1D algorithms on star graphs).
    ///
    /// Panics if the payload type does not match the sender's.
    pub fn recv<T: Payload>(&mut self, from: u32, tag: u64) -> T {
        let pkt = self.take_packet(from, tag);
        self.nic_time =
            (self.nic_time.max(pkt.depart + self.cost.alpha)) + self.cost.beta * pkt.bytes as f64;
        self.sim_time = self.sim_time.max(self.nic_time);
        self.stats.recv_bytes += pkt.bytes as u64;
        self.stats.recv_msgs += 1;
        *pkt.data.downcast::<T>().unwrap_or_else(|_| {
            panic!(
                "rank {}: type mismatch receiving (src={from}, tag={tag:#x})",
                self.rank
            )
        })
    }

    fn take_packet(&mut self, from: u32, tag: u64) -> Packet {
        if let Some(i) = self
            .unmatched
            .iter()
            .position(|p| p.src == from && p.tag == tag)
        {
            // `remove`, not `swap_remove`: messages with the same (src, tag)
            // must keep FIFO order (MPI non-overtaking rule) — the ring
            // all-reduce relies on it.
            return self.unmatched.remove(i);
        }
        loop {
            let pkt = self
                .rx
                .recv()
                .expect("channel closed while rank still expects messages");
            if pkt.src == from && pkt.tag == tag {
                return pkt;
            }
            self.unmatched.push(pkt);
        }
    }

    /// Charges `flops` of local computation to the simulated clock.
    pub fn compute_flops(&mut self, flops: f64) {
        let t = self.cost.compute_time(flops);
        self.sim_time += t;
        self.stats.compute_time += t;
    }

    /// Advances the simulated clock by raw seconds (rarely needed; prefer
    /// [`compute_flops`](Self::compute_flops)).
    pub fn elapse(&mut self, seconds: f64) {
        assert!(seconds >= 0.0);
        self.sim_time += seconds;
    }

    pub(crate) fn finalize(mut self) -> RankStats {
        self.stats.sim_time = self.sim_time;
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;

    #[test]
    fn clock_advances_on_send_and_recv() {
        let cost = CostModel {
            alpha: 1.0,
            beta: 0.1,
            compute_rate: 1.0,
        };
        let report = Machine::new(2).with_cost(cost).run(|ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 1, vec![0.0f64; 10]); // 80 bytes → 1 + 8 = 9 s
                ctx.sim_time()
            } else {
                let v: Vec<f64> = ctx.recv(0, 1);
                assert_eq!(v.len(), 10);
                ctx.sim_time()
            }
        });
        assert_eq!(report.results[0], 9.0); // sender occupied
        assert_eq!(report.results[1], 9.0); // depart 0 + 9
    }

    #[test]
    fn recv_models_overlap() {
        // Receiver computes 100 s before receiving a message that arrives
        // at t = 9 → clock stays at 100 (transfer hidden).
        let cost = CostModel {
            alpha: 1.0,
            beta: 0.1,
            compute_rate: 1.0,
        };
        let report = Machine::new(2).with_cost(cost).run(|ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 7, vec![0.0f64; 10]);
                0.0
            } else {
                ctx.compute_flops(100.0);
                let _: Vec<f64> = ctx.recv(0, 7);
                ctx.sim_time()
            }
        });
        assert_eq!(report.results[1], 100.0);
    }

    #[test]
    fn out_of_order_tags_are_buffered() {
        let report = Machine::new(2).run(|ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 1, 10u64);
                ctx.send(1, 2, 20u64);
                0
            } else {
                // Receive in reverse tag order.
                let b: u64 = ctx.recv(0, 2);
                let a: u64 = ctx.recv(0, 1);
                assert_eq!((a, b), (10, 20));
                1
            }
        });
        assert_eq!(report.results, vec![0, 1]);
    }

    #[test]
    fn inbound_volume_serialises_at_receiver() {
        // A hot-spot rank receiving from many peers pays β·total even if
        // all senders depart simultaneously (single inbound port).
        let cost = CostModel {
            alpha: 0.0,
            beta: 1.0,
            compute_rate: 1.0,
        };
        let p = 8u32;
        let report = Machine::new(p).with_cost(cost).run(|ctx| {
            if ctx.rank() == 0 {
                for s in 1..p {
                    let _: Vec<f64> = ctx.recv(s, 0);
                }
                ctx.sim_time()
            } else {
                ctx.send(0, 0, vec![0.0f64; 10]); // 80 bytes each
                0.0
            }
        });
        // 7 messages × 80 bytes × β = 560 s of inbound occupancy.
        assert!(
            (report.results[0] - 560.0).abs() < 1e-9,
            "hot-spot time {}",
            report.results[0]
        );
    }

    #[test]
    fn same_tag_messages_keep_fifo_order() {
        // MPI non-overtaking: many messages with identical (src, tag) must
        // be received in send order even when other traffic interleaves
        // and forces buffering. Regression test for a swap_remove bug that
        // broke the ring all-reduce.
        let report = Machine::new(2).run(|ctx| {
            if ctx.rank() == 0 {
                for i in 0..50u64 {
                    ctx.send(1, 9, i); // same tag stream
                    ctx.send(1, 1000 + i, ()); // decoy traffic
                }
                Vec::new()
            } else {
                // Buffer everything by first receiving all decoys.
                for i in 0..50u64 {
                    let _: () = ctx.recv(0, 1000 + i);
                }
                (0..50).map(|_| ctx.recv::<u64>(0, 9)).collect::<Vec<u64>>()
            }
        });
        assert_eq!(report.results[1], (0..50).collect::<Vec<u64>>());
    }

    #[test]
    fn self_send_works() {
        let report = Machine::new(1).run(|ctx| {
            ctx.send(0, 3, 5u32);
            let v: u32 = ctx.recv(0, 3);
            v
        });
        assert_eq!(report.results, vec![5]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn send_out_of_range_panics() {
        Machine::new(1).run(|ctx| {
            ctx.send(5, 0, ());
        });
    }

    #[test]
    fn stats_account_volume() {
        let report = Machine::new(2).run(|ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 0, vec![0u32; 25]); // 100 bytes
            } else {
                let _: Vec<u32> = ctx.recv(0, 0);
            }
        });
        assert_eq!(report.stats.ranks[0].sent_bytes, 100);
        assert_eq!(report.stats.ranks[1].recv_bytes, 100);
        assert_eq!(report.stats.total_sent(), 100);
        assert_eq!(report.stats.max_volume(), 100);
    }
}
