//! Per-rank and whole-machine accounting.

/// Communication and time accounting for one rank.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RankStats {
    /// Bytes sent (payload only).
    pub sent_bytes: u64,
    /// Bytes received.
    pub recv_bytes: u64,
    /// Messages sent.
    pub sent_msgs: u64,
    /// Messages received.
    pub recv_msgs: u64,
    /// Final simulated clock of the rank in seconds.
    pub sim_time: f64,
    /// Portion of the clock spent in charged compute.
    pub compute_time: f64,
}

impl RankStats {
    /// Total bytes moved through this rank (sent + received).
    pub fn volume(&self) -> u64 {
        self.sent_bytes + self.recv_bytes
    }
}

/// Accounting for a whole run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MachineStats {
    /// Per-rank breakdown, indexed by rank.
    pub ranks: Vec<RankStats>,
    /// Wall-clock seconds of the threaded execution (not simulated time).
    pub wall_seconds: f64,
}

impl MachineStats {
    /// The makespan of the simulated schedule: `max_r sim_time(r)`.
    pub fn sim_time(&self) -> f64 {
        self.ranks.iter().map(|r| r.sim_time).fold(0.0, f64::max)
    }

    /// The α-β *bandwidth cost*: largest per-rank communication volume
    /// (bytes), the quantity the paper's §6 bounds are about.
    pub fn max_volume(&self) -> u64 {
        self.ranks.iter().map(RankStats::volume).max().unwrap_or(0)
    }

    /// Total bytes sent across all ranks (each message counted once).
    pub fn total_sent(&self) -> u64 {
        self.ranks.iter().map(|r| r.sent_bytes).sum()
    }

    /// Per-rank communication volumes in rank order — the raw samples
    /// behind [`max_volume`](Self::max_volume), surfaced so an
    /// observability layer can feed a per-rank volume histogram without
    /// reaching into [`RankStats`].
    pub fn rank_volumes(&self) -> impl Iterator<Item = u64> + '_ {
        self.ranks.iter().map(RankStats::volume)
    }

    /// Largest per-rank message count.
    pub fn max_messages(&self) -> u64 {
        self.ranks
            .iter()
            .map(|r| r.sent_msgs + r.recv_msgs)
            .max()
            .unwrap_or(0)
    }

    /// Compute imbalance: max compute time / mean compute time (1.0 =
    /// perfectly balanced). Mirrors the GPU load imbalance discussion of
    /// §7.3.
    pub fn compute_imbalance(&self) -> f64 {
        if self.ranks.is_empty() {
            return 1.0;
        }
        let max = self
            .ranks
            .iter()
            .map(|r| r.compute_time)
            .fold(0.0, f64::max);
        let mean: f64 =
            self.ranks.iter().map(|r| r.compute_time).sum::<f64>() / self.ranks.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(pairs: &[(u64, u64, f64, f64)]) -> MachineStats {
        MachineStats {
            ranks: pairs
                .iter()
                .map(|&(s, r, t, c)| RankStats {
                    sent_bytes: s,
                    recv_bytes: r,
                    sent_msgs: 1,
                    recv_msgs: 1,
                    sim_time: t,
                    compute_time: c,
                })
                .collect(),
            wall_seconds: 0.0,
        }
    }

    #[test]
    fn aggregates() {
        let m = stats(&[(10, 20, 1.0, 0.5), (40, 5, 2.0, 1.5)]);
        assert_eq!(m.sim_time(), 2.0);
        assert_eq!(m.max_volume(), 45);
        assert_eq!(m.total_sent(), 50);
        assert_eq!(m.max_messages(), 2);
        assert_eq!(m.compute_imbalance(), 1.5);
    }

    #[test]
    fn empty_machine() {
        let m = MachineStats::default();
        assert_eq!(m.sim_time(), 0.0);
        assert_eq!(m.max_volume(), 0);
        assert_eq!(m.compute_imbalance(), 1.0);
    }

    #[test]
    fn zero_compute_imbalance_defined() {
        let m = stats(&[(0, 0, 0.0, 0.0)]);
        assert_eq!(m.compute_imbalance(), 1.0);
    }
}
