//! The α-β cost model parameters.

/// Cost parameters of the simulated machine.
///
/// Defaults approximate the paper's testbed (Piz Daint, Aries
/// interconnect, P100 GPUs): 1 µs message latency, ~10 GB/s effective
/// per-link bandwidth, ~5 GFLOP/s effective sparse-kernel throughput
/// (SpMM is memory bound, so this is far below peak).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Per-message latency α in seconds.
    pub alpha: f64,
    /// Per-byte transfer cost β in seconds (1 / bandwidth).
    pub beta: f64,
    /// Local compute throughput in flop/s used by
    /// [`compute_flops`](crate::RankCtx::compute_flops).
    pub compute_rate: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            alpha: 1e-6,
            beta: 1e-10,
            compute_rate: 5e9,
        }
    }
}

impl CostModel {
    /// Cost of transferring one message of `bytes` bytes.
    #[inline]
    pub fn transfer_time(&self, bytes: usize) -> f64 {
        self.alpha + self.beta * bytes as f64
    }

    /// Time charged for `flops` floating-point operations.
    #[inline]
    pub fn compute_time(&self, flops: f64) -> f64 {
        flops / self.compute_rate
    }

    /// A model with zero communication cost (isolates compute effects in
    /// ablations).
    pub fn free_communication() -> Self {
        Self {
            alpha: 0.0,
            beta: 0.0,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_is_affine() {
        let c = CostModel {
            alpha: 2.0,
            beta: 0.5,
            compute_rate: 1.0,
        };
        assert_eq!(c.transfer_time(0), 2.0);
        assert_eq!(c.transfer_time(10), 7.0);
    }

    #[test]
    fn compute_time_scales() {
        let c = CostModel {
            alpha: 0.0,
            beta: 0.0,
            compute_rate: 100.0,
        };
        assert_eq!(c.compute_time(500.0), 5.0);
    }

    #[test]
    fn defaults_are_sane() {
        let c = CostModel::default();
        assert!(c.alpha > 0.0 && c.beta > 0.0 && c.compute_rate > 0.0);
        // 1 MB at 10 GB/s ≈ 0.1 ms ≫ α.
        assert!(c.transfer_time(1_000_000) > 10.0 * c.alpha);
    }
}
