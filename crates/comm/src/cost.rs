//! The α-β cost model parameters.

/// Cost parameters of the simulated machine.
///
/// Defaults approximate the paper's testbed (Piz Daint, Aries
/// interconnect, P100 GPUs): 1 µs message latency, ~10 GB/s effective
/// per-link bandwidth, ~5 GFLOP/s effective sparse-kernel throughput
/// (SpMM is memory bound, so this is far below peak).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Per-message latency α in seconds.
    pub alpha: f64,
    /// Per-byte transfer cost β in seconds (1 / bandwidth).
    pub beta: f64,
    /// Local compute throughput in flop/s used by
    /// [`compute_flops`](crate::RankCtx::compute_flops).
    pub compute_rate: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            alpha: 1e-6,
            beta: 1e-10,
            compute_rate: 5e9,
        }
    }
}

impl CostModel {
    /// Cost of transferring one message of `bytes` bytes.
    #[inline]
    pub fn transfer_time(&self, bytes: usize) -> f64 {
        self.alpha + self.beta * bytes as f64
    }

    /// Time charged for `flops` floating-point operations.
    #[inline]
    pub fn compute_time(&self, flops: f64) -> f64 {
        flops / self.compute_rate
    }

    /// A model with zero communication cost (isolates compute effects in
    /// ablations).
    pub fn free_communication() -> Self {
        Self {
            alpha: 0.0,
            beta: 0.0,
            ..Default::default()
        }
    }

    /// Replaces β with a measured per-byte cost (see [`fit_beta`]) so
    /// planner predictions reflect the serving host instead of the
    /// paper's testbed defaults.
    pub fn with_measured_beta(mut self, beta: f64) -> Self {
        assert!(
            beta.is_finite() && beta > 0.0,
            "measured beta must be positive"
        );
        self.beta = beta;
        self
    }
}

/// Least-squares fit of wall time against communicated bytes.
///
/// Produced by [`fit_beta`] from `(bytes, seconds)` samples of real
/// runs; `beta` is the slope (seconds per byte — a drop-in replacement
/// for [`CostModel::beta`] via [`CostModel::with_measured_beta`]),
/// `intercept` absorbs per-run fixed cost (α-like latency plus
/// dispatch overhead), and `r` is the Pearson correlation between the
/// predictor and the measurement (how much of the wall time the volume
/// term alone explains).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BetaFit {
    /// Fitted per-byte cost in seconds (slope).
    pub beta: f64,
    /// Fixed per-run cost in seconds (intercept).
    pub intercept: f64,
    /// Pearson correlation coefficient of bytes vs seconds.
    pub r: f64,
}

/// Fits wall-clock seconds as an affine function of communicated bytes
/// over measured `(bytes, seconds)` samples. Returns `None` with fewer
/// than two distinct byte counts (the slope would be undefined).
pub fn fit_beta(samples: &[(f64, f64)]) -> Option<BetaFit> {
    let n = samples.len() as f64;
    if samples.len() < 2 {
        return None;
    }
    let mean_x = samples.iter().map(|&(x, _)| x).sum::<f64>() / n;
    let mean_y = samples.iter().map(|&(_, y)| y).sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    let mut sxy = 0.0;
    for &(x, y) in samples {
        sxx += (x - mean_x) * (x - mean_x);
        syy += (y - mean_y) * (y - mean_y);
        sxy += (x - mean_x) * (y - mean_y);
    }
    if sxx == 0.0 {
        return None;
    }
    let beta = sxy / sxx;
    let r = if syy == 0.0 {
        0.0
    } else {
        sxy / (sxx.sqrt() * syy.sqrt())
    };
    Some(BetaFit {
        beta,
        intercept: mean_y - beta * mean_x,
        r,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_is_affine() {
        let c = CostModel {
            alpha: 2.0,
            beta: 0.5,
            compute_rate: 1.0,
        };
        assert_eq!(c.transfer_time(0), 2.0);
        assert_eq!(c.transfer_time(10), 7.0);
    }

    #[test]
    fn compute_time_scales() {
        let c = CostModel {
            alpha: 0.0,
            beta: 0.0,
            compute_rate: 100.0,
        };
        assert_eq!(c.compute_time(500.0), 5.0);
    }

    #[test]
    fn fit_beta_recovers_slope_and_intercept() {
        // y = 3e-10 · x + 5e-5, exactly.
        let samples: Vec<(f64, f64)> = (1..=8)
            .map(|i| {
                let x = i as f64 * 1e6;
                (x, 3e-10 * x + 5e-5)
            })
            .collect();
        let fit = fit_beta(&samples).unwrap();
        assert!((fit.beta - 3e-10).abs() < 1e-16);
        assert!((fit.intercept - 5e-5).abs() < 1e-9);
        assert!((fit.r - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fit_beta_degenerate_inputs() {
        assert!(fit_beta(&[]).is_none());
        assert!(fit_beta(&[(1.0, 2.0)]).is_none());
        // All-equal byte counts: slope undefined.
        assert!(fit_beta(&[(5.0, 1.0), (5.0, 2.0), (5.0, 3.0)]).is_none());
    }

    #[test]
    fn with_measured_beta_replaces_beta_only() {
        let c = CostModel::default().with_measured_beta(7e-11);
        assert_eq!(c.beta, 7e-11);
        assert_eq!(c.alpha, CostModel::default().alpha);
        assert_eq!(c.compute_rate, CostModel::default().compute_rate);
    }

    #[test]
    fn defaults_are_sane() {
        let c = CostModel::default();
        assert!(c.alpha > 0.0 && c.beta > 0.0 && c.compute_rate > 0.0);
        // 1 MB at 10 GB/s ≈ 0.1 ms ≫ α.
        assert!(c.transfer_time(1_000_000) > 10.0 * c.alpha);
    }
}
