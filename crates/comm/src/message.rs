//! Message payloads and the in-flight packet representation.

use std::any::Any;

/// Types that can be sent between ranks.
///
/// `payload_bytes` is the number charged to the β term of the cost model —
/// the wire size of the payload, not of Rust bookkeeping.
pub trait Payload: Send + 'static {
    /// Wire size in bytes.
    fn payload_bytes(&self) -> usize;
}

impl Payload for () {
    fn payload_bytes(&self) -> usize {
        0
    }
}

impl Payload for f64 {
    fn payload_bytes(&self) -> usize {
        8
    }
}

impl Payload for u64 {
    fn payload_bytes(&self) -> usize {
        8
    }
}

impl Payload for u32 {
    fn payload_bytes(&self) -> usize {
        4
    }
}

impl Payload for Vec<f64> {
    fn payload_bytes(&self) -> usize {
        8 * self.len()
    }
}

impl Payload for Vec<f32> {
    fn payload_bytes(&self) -> usize {
        4 * self.len()
    }
}

impl Payload for Vec<u32> {
    fn payload_bytes(&self) -> usize {
        4 * self.len()
    }
}

impl Payload for Vec<u64> {
    fn payload_bytes(&self) -> usize {
        8 * self.len()
    }
}

impl<A: Payload, B: Payload> Payload for (A, B) {
    fn payload_bytes(&self) -> usize {
        self.0.payload_bytes() + self.1.payload_bytes()
    }
}

impl<A: Payload, B: Payload, C: Payload> Payload for (A, B, C) {
    fn payload_bytes(&self) -> usize {
        self.0.payload_bytes() + self.1.payload_bytes() + self.2.payload_bytes()
    }
}

/// A typed message in flight.
pub(crate) struct Packet {
    pub src: u32,
    pub tag: u64,
    pub bytes: usize,
    /// Sender's simulated clock at the start of the transmission.
    pub depart: f64,
    pub data: Box<dyn Any + Send>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_accounting() {
        assert_eq!(().payload_bytes(), 0);
        assert_eq!(1.5f64.payload_bytes(), 8);
        assert_eq!(vec![0u32; 5].payload_bytes(), 20);
        assert_eq!(vec![0.0f64; 3].payload_bytes(), 24);
        assert_eq!((vec![0u32; 2], vec![0.0f64; 2]).payload_bytes(), 24);
        assert_eq!((1u32, 2u64, vec![0.0f64; 1]).payload_bytes(), 20);
    }

    #[test]
    fn packet_roundtrips_through_any() {
        let p = Packet {
            src: 3,
            tag: 7,
            bytes: 16,
            depart: 0.5,
            data: Box::new(vec![1.0f64, 2.0]),
        };
        let v = p.data.downcast::<Vec<f64>>().unwrap();
        assert_eq!(*v, vec![1.0, 2.0]);
    }
}
