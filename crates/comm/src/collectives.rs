//! Collective operations over rank groups, built from point-to-point
//! messages with binomial trees (so `O(log p)` latency and the α-β costs
//! emerge from the model).
//!
//! Every member of a group must call the same sequence of collectives on
//! that group (SPMD discipline, as with an MPI communicator); a per-group
//! sequence number embedded in the message tags keeps concurrent
//! collectives on different groups from interfering.

use crate::message::Payload;
use crate::rank::RankCtx;

/// Top bit marks collective traffic; user tags must keep it clear.
const COLL_BIT: u64 = 1 << 63;

/// Number of copies the member with virtual (root-relative) rank `vr`
/// sends in [`Group::broadcast`]'s binomial tree over `s` members — and,
/// by symmetry, the number of partials it receives in
/// [`Group::reduce_sum`]. Mirrors the mask walk of the implementation
/// below and lives beside it so the two cannot drift; `predict_volume`
/// cost estimates in `amd_spmm` are built on it.
pub fn binomial_children(vr: usize, s: usize) -> usize {
    let mut mask = 1usize;
    while mask < s {
        if vr & mask != 0 {
            break;
        }
        mask <<= 1;
    }
    mask >>= 1;
    let mut children = 0;
    while mask > 0 {
        if vr & (mask - 1) == 0 && vr & mask == 0 && vr + mask < s {
            children += 1;
        }
        mask >>= 1;
    }
    children
}

/// A communicator: an ordered list of machine ranks.
///
/// Cheap to clone; identified by a hash of its member list, which the
/// tag scheme uses to isolate concurrent collectives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Group {
    members: Vec<u32>,
    my_idx: usize,
    gid: u64,
}

impl Group {
    /// Builds the group view for the calling rank. All members must build
    /// the group with an identical `members` list (order matters).
    pub fn new(ctx: &RankCtx, members: Vec<u32>) -> Self {
        assert!(!members.is_empty(), "group must be non-empty");
        let my_idx = members
            .iter()
            .position(|&m| m == ctx.rank())
            .unwrap_or_else(|| panic!("rank {} not in group {members:?}", ctx.rank()));
        let gid = fnv1a(&members);
        Self {
            members,
            my_idx,
            gid,
        }
    }

    /// The whole machine as one group.
    pub fn world(ctx: &RankCtx) -> Self {
        Self::new(ctx, (0..ctx.p()).collect())
    }

    /// Number of members.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// This rank's index within the group.
    pub fn my_idx(&self) -> usize {
        self.my_idx
    }

    /// Global rank of member `idx`.
    pub fn member(&self, idx: usize) -> u32 {
        self.members[idx]
    }

    /// The member list.
    pub fn members(&self) -> &[u32] {
        &self.members
    }

    fn next_tag(&self, ctx: &mut RankCtx) -> u64 {
        let seq = ctx.coll_seq.entry(self.gid).or_insert(0);
        let tag = COLL_BIT | ((self.gid & 0xFFFF_FFFF) << 24) | (*seq & 0xFF_FFFF);
        *seq += 1;
        tag
    }

    /// Binomial-tree broadcast from `root_idx`. The root passes
    /// `Some(data)`, everyone else `None`; all members return the value.
    pub fn broadcast<T: Payload + Clone>(
        &self,
        ctx: &mut RankCtx,
        root_idx: usize,
        data: Option<T>,
    ) -> T {
        let s = self.size();
        let tag = self.next_tag(ctx);
        let vr = (self.my_idx + s - root_idx) % s;
        let mut value = if vr == 0 {
            Some(data.expect("broadcast root must supply the data"))
        } else {
            None
        };
        let mut mask = 1usize;
        while mask < s {
            if vr & mask != 0 {
                let src = self.abs(vr - mask, root_idx);
                value = Some(ctx.recv::<T>(src, tag));
                break;
            }
            mask <<= 1;
        }
        mask >>= 1;
        while mask > 0 {
            if vr & (mask - 1) == 0 && vr & mask == 0 && vr + mask < s {
                let dst = self.abs(vr + mask, root_idx);
                ctx.send(
                    dst,
                    tag,
                    value
                        .as_ref()
                        .expect("binomial order guarantees data")
                        .clone(),
                );
            }
            mask >>= 1;
        }
        value.expect("every member obtains the broadcast value")
    }

    /// Binomial-tree sum-reduction of `f64` vectors to `root_idx`; the
    /// root returns `Some(total)`, everyone else `None`. All vectors must
    /// have equal length.
    pub fn reduce_sum(
        &self,
        ctx: &mut RankCtx,
        root_idx: usize,
        data: Vec<f64>,
    ) -> Option<Vec<f64>> {
        let s = self.size();
        let tag = self.next_tag(ctx);
        let vr = (self.my_idx + s - root_idx) % s;
        let mut acc = data;
        let mut mask = 1usize;
        while mask < s {
            if vr & mask == 0 {
                let src_vr = vr + mask;
                if src_vr < s {
                    let other: Vec<f64> = ctx.recv(self.abs(src_vr, root_idx), tag);
                    assert_eq!(other.len(), acc.len(), "reduce length mismatch");
                    for (a, b) in acc.iter_mut().zip(&other) {
                        *a += b;
                    }
                }
            } else {
                let dst = self.abs(vr - mask, root_idx);
                ctx.send(dst, tag, acc);
                return None;
            }
            mask <<= 1;
        }
        Some(acc)
    }

    /// All-reduce (sum) of `f64` vectors: reduce to member 0 + broadcast.
    pub fn allreduce_sum(&self, ctx: &mut RankCtx, data: Vec<f64>) -> Vec<f64> {
        let reduced = self.reduce_sum(ctx, 0, data);
        self.broadcast(ctx, 0, reduced)
    }

    /// Bandwidth-optimal ring all-reduce (reduce-scatter + all-gather):
    /// per-member volume `2·s·(g−1)/g` bytes for a payload of `s` bytes,
    /// at `2(g−1)` messages of latency. This is the variant the 1.5D
    /// algorithm's `O(β·nkc/p)` term assumes.
    pub fn allreduce_sum_ring(&self, ctx: &mut RankCtx, data: Vec<f64>) -> Vec<f64> {
        self.allreduce_sum_ring_aligned(ctx, data, 1)
    }

    /// [`allreduce_sum_ring`](Group::allreduce_sum_ring) with chunk
    /// boundaries rounded to multiples of `stride` (`data.len()` must be
    /// a multiple of `stride`).
    ///
    /// For a row-major `rows × stride` buffer this pins every row to one
    /// chunk, which makes the per-element summation order independent of
    /// `stride` — the property the serving engine relies on for
    /// multi-RHS batches to bit-match single-column runs.
    ///
    /// Empty payloads return immediately with no messages; as with the
    /// equal-length requirement, emptiness must agree across members.
    pub fn allreduce_sum_ring_aligned(
        &self,
        ctx: &mut RankCtx,
        mut data: Vec<f64>,
        stride: usize,
    ) -> Vec<f64> {
        let g = self.size();
        if g == 1 || data.is_empty() {
            return data;
        }
        assert!(stride >= 1, "stride must be positive");
        let len = data.len();
        assert!(
            len.is_multiple_of(stride),
            "payload length {len} is not a multiple of the stride {stride}"
        );
        let tag = self.next_tag(ctx);
        // Chunk boundaries: chunk c covers [bounds[c], bounds[c+1]),
        // aligned to whole rows of `stride` elements.
        let rows = len / stride;
        let bounds: Vec<usize> = (0..=g).map(|c| (c * rows / g) * stride).collect();
        let me = self.my_idx;
        let right = self.members[(me + 1) % g];
        let left = self.members[(me + g - 1) % g];
        // Reduce-scatter: in step t, send chunk (me − t) and accumulate
        // chunk (me − t − 1) from the left neighbour.
        for t in 0..(g - 1) {
            let send_c = (me + g - t) % g;
            let recv_c = (me + g - t - 1) % g;
            let chunk = data[bounds[send_c]..bounds[send_c + 1]].to_vec();
            ctx.send(right, tag, chunk);
            let incoming: Vec<f64> = ctx.recv(left, tag);
            let dst = &mut data[bounds[recv_c]..bounds[recv_c + 1]];
            assert_eq!(incoming.len(), dst.len());
            for (d, s) in dst.iter_mut().zip(&incoming) {
                *d += s;
            }
        }
        // All-gather: circulate the fully reduced chunks.
        for t in 0..(g - 1) {
            let send_c = (me + 1 + g - t) % g;
            let recv_c = (me + g - t) % g;
            let chunk = data[bounds[send_c]..bounds[send_c + 1]].to_vec();
            ctx.send(right, tag, chunk);
            let incoming: Vec<f64> = ctx.recv(left, tag);
            data[bounds[recv_c]..bounds[recv_c + 1]].copy_from_slice(&incoming);
        }
        data
    }

    /// Gathers one payload per member at `root_idx` (returned in member
    /// order); non-roots return `None`.
    pub fn gather<T: Payload>(
        &self,
        ctx: &mut RankCtx,
        root_idx: usize,
        data: T,
    ) -> Option<Vec<T>> {
        let tag = self.next_tag(ctx);
        if self.my_idx == root_idx {
            let mut out: Vec<Option<T>> = (0..self.size()).map(|_| None).collect();
            out[root_idx] = Some(data);
            #[allow(clippy::needless_range_loop)] // root slot is skipped by index
            for idx in 0..self.size() {
                if idx != root_idx {
                    out[idx] = Some(ctx.recv::<T>(self.members[idx], tag));
                }
            }
            Some(
                out.into_iter()
                    .map(|o| o.expect("gathered every member"))
                    .collect(),
            )
        } else {
            ctx.send(self.members[root_idx], tag, data);
            None
        }
    }

    /// Scatters `items[idx]` to member `idx` from `root_idx`; every member
    /// returns its item. The root passes `Some(items)` with
    /// `items.len() == size()`.
    pub fn scatter<T: Payload>(
        &self,
        ctx: &mut RankCtx,
        root_idx: usize,
        items: Option<Vec<T>>,
    ) -> T {
        let tag = self.next_tag(ctx);
        if self.my_idx == root_idx {
            let items = items.expect("scatter root must supply the items");
            assert_eq!(items.len(), self.size(), "scatter item count mismatch");
            let mut own = None;
            for (idx, item) in items.into_iter().enumerate() {
                if idx == root_idx {
                    own = Some(item);
                } else {
                    ctx.send(self.members[idx], tag, item);
                }
            }
            own.expect("root keeps its own item")
        } else {
            ctx.recv::<T>(self.members[root_idx], tag)
        }
    }

    /// Personalised all-to-all: member `i` receives `outgoing[i]` from
    /// every member, returned in member order (own item passes through a
    /// self-send so the cost model charges it symmetrically with MPI's
    /// local copy being free — self messages cost `α`, a negligible
    /// overcount).
    pub fn alltoall<T: Payload>(&self, ctx: &mut RankCtx, outgoing: Vec<T>) -> Vec<T> {
        assert_eq!(outgoing.len(), self.size(), "alltoall item count mismatch");
        let tag = self.next_tag(ctx);
        for (idx, item) in outgoing.into_iter().enumerate() {
            ctx.send(self.members[idx], tag, item);
        }
        (0..self.size())
            .map(|idx| ctx.recv::<T>(self.members[idx], tag))
            .collect()
    }

    /// Barrier: gather + broadcast of unit payloads.
    pub fn barrier(&self, ctx: &mut RankCtx) {
        let gathered = self.gather(ctx, 0, ());
        self.broadcast(ctx, 0, gathered.map(|_| ()));
    }

    /// Absolute member rank of a virtual (root-relative) index.
    fn abs(&self, vr: usize, root_idx: usize) -> u32 {
        self.members[(vr + root_idx) % self.size()]
    }
}

fn fnv1a(members: &[u32]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &m in members {
        for byte in m.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::machine::Machine;

    #[test]
    fn broadcast_reaches_all_ranks() {
        for p in [1u32, 2, 3, 5, 8, 13] {
            let report = Machine::new(p).run(|ctx| {
                let g = Group::world(ctx);
                let data = if g.my_idx() == 0 {
                    Some(vec![1.0f64, 2.0, 3.0])
                } else {
                    None
                };
                g.broadcast(ctx, 0, data)
            });
            for r in report.results {
                assert_eq!(r, vec![1.0, 2.0, 3.0], "p = {p}");
            }
        }
    }

    #[test]
    fn broadcast_from_nonzero_root() {
        let report = Machine::new(6).run(|ctx| {
            let g = Group::world(ctx);
            let data = if g.my_idx() == 4 { Some(7.5f64) } else { None };
            g.broadcast(ctx, 4, data)
        });
        assert!(report.results.iter().all(|&v| v == 7.5));
    }

    #[test]
    fn broadcast_latency_is_logarithmic() {
        // One broadcast of a unit payload on p ranks: critical path must be
        // ⌈log2 p⌉ · α, not p · α.
        let cost = CostModel {
            alpha: 1.0,
            beta: 0.0,
            compute_rate: 1.0,
        };
        let report = Machine::new(16).with_cost(cost).run(|ctx| {
            let g = Group::world(ctx);
            let data = if g.my_idx() == 0 { Some(()) } else { None };
            g.broadcast(ctx, 0, data);
            ctx.sim_time()
        });
        let max = report.results.iter().fold(0.0f64, |a, &b| a.max(b));
        assert!(max <= 4.0 + 1e-9, "critical path {max} > log2(16) = 4");
        assert!(max >= 4.0 - 1e-9);
    }

    #[test]
    fn binomial_children_matches_actual_broadcast_sends() {
        // Lockstep guard: the closed-form count must equal the number of
        // messages each rank really sends in a broadcast, for every tree
        // size and root. If the tree shape ever changes, this fails.
        for p in [1u32, 2, 3, 5, 8, 13, 16] {
            for root in [0usize, (p as usize - 1) / 2] {
                let report = Machine::new(p).run(move |ctx| {
                    let g = Group::world(ctx);
                    let data = if g.my_idx() == root { Some(0u64) } else { None };
                    g.broadcast(ctx, root, data);
                });
                for (rank, stats) in report.stats.ranks.iter().enumerate() {
                    let vr = (rank + p as usize - root) % p as usize;
                    assert_eq!(
                        stats.sent_msgs as usize,
                        binomial_children(vr, p as usize),
                        "p={p} root={root} rank={rank}"
                    );
                }
            }
        }
    }

    #[test]
    fn reduce_sums_vectors() {
        for p in [1u32, 2, 4, 7] {
            let report = Machine::new(p).run(|ctx| {
                let g = Group::world(ctx);
                g.reduce_sum(ctx, 0, vec![ctx.rank() as f64, 1.0])
            });
            let expected: f64 = (0..p).map(|r| r as f64).sum();
            assert_eq!(report.results[0], Some(vec![expected, p as f64]));
            for r in 1..p as usize {
                assert!(report.results[r].is_none());
            }
        }
    }

    #[test]
    fn ring_allreduce_matches_tree_allreduce() {
        for p in [1u32, 2, 3, 4, 7, 8] {
            let report = Machine::new(p).run(|ctx| {
                let g = Group::world(ctx);
                let data: Vec<f64> = (0..10).map(|i| (ctx.rank() as f64) + i as f64).collect();
                let ring = g.allreduce_sum_ring(ctx, data.clone());
                let tree = g.allreduce_sum(ctx, data);
                (ring, tree)
            });
            for (ring, tree) in report.results {
                assert_eq!(ring, tree, "p = {p}");
            }
        }
    }

    #[test]
    fn ring_allreduce_volume_is_bandwidth_optimal() {
        // Per-rank volume must be ≈ 2·s·(g−1)/g, not s·log g.
        let p = 8u32;
        let len = 800usize;
        let report = Machine::new(p).run(|ctx| {
            let g = Group::world(ctx);
            g.allreduce_sum_ring(ctx, vec![1.0f64; len]);
        });
        let bytes = 8 * len as u64;
        let expected = 2 * bytes * (p as u64 - 1) / p as u64;
        for r in &report.stats.ranks {
            assert!(
                r.sent_bytes <= expected + 64,
                "sent {} > ring bound {expected}",
                r.sent_bytes
            );
        }
    }

    #[test]
    fn ring_allreduce_short_vector() {
        // len < g: some chunks are empty.
        let report = Machine::new(6).run(|ctx| {
            let g = Group::world(ctx);
            g.allreduce_sum_ring(ctx, vec![1.0f64, 2.0])
        });
        for r in report.results {
            assert_eq!(r, vec![6.0, 12.0]);
        }
    }

    #[test]
    fn allreduce_everyone_gets_total() {
        let report = Machine::new(5).run(|ctx| {
            let g = Group::world(ctx);
            g.allreduce_sum(ctx, vec![1.0f64])
        });
        for r in report.results {
            assert_eq!(r, vec![5.0]);
        }
    }

    #[test]
    fn gather_in_member_order() {
        let report = Machine::new(4).run(|ctx| {
            let g = Group::world(ctx);
            g.gather(ctx, 2, ctx.rank() as u64 * 10)
        });
        assert_eq!(report.results[2], Some(vec![0, 10, 20, 30]));
        assert_eq!(report.results[0], None);
    }

    #[test]
    fn scatter_distributes_items() {
        let report = Machine::new(3).run(|ctx| {
            let g = Group::world(ctx);
            let items = if g.my_idx() == 0 {
                Some(vec![vec![0.0f64], vec![1.0], vec![2.0]])
            } else {
                None
            };
            g.scatter(ctx, 0, items)
        });
        for (r, v) in report.results.iter().enumerate() {
            assert_eq!(v, &vec![r as f64]);
        }
    }

    #[test]
    fn alltoall_personalised() {
        let report = Machine::new(3).run(|ctx| {
            let g = Group::world(ctx);
            let outgoing: Vec<u64> = (0..3)
                .map(|d| (ctx.rank() as u64) * 10 + d as u64)
                .collect();
            g.alltoall(ctx, outgoing)
        });
        // Member r receives [0r, 1r, 2r].
        for (r, v) in report.results.iter().enumerate() {
            assert_eq!(v, &vec![r as u64, 10 + r as u64, 20 + r as u64]);
        }
    }

    #[test]
    fn subgroups_do_not_interfere() {
        // Two disjoint groups run different collectives concurrently.
        let report = Machine::new(6).run(|ctx| {
            let r = ctx.rank();
            let members: Vec<u32> = if r < 3 { vec![0, 1, 2] } else { vec![3, 4, 5] };
            let g = Group::new(ctx, members);
            let base = if r < 3 { 100.0 } else { 200.0 };
            let total = g.allreduce_sum(ctx, vec![base]);
            g.barrier(ctx);
            total
        });
        for r in 0..3 {
            assert_eq!(report.results[r], vec![300.0]);
        }
        for r in 3..6 {
            assert_eq!(report.results[r], vec![600.0]);
        }
    }

    #[test]
    fn nested_group_membership() {
        // A rank participating in world and in a subgroup keeps sequence
        // numbers separate.
        let report = Machine::new(4).run(|ctx| {
            let world = Group::world(ctx);
            let all = world.allreduce_sum(ctx, vec![1.0]);
            let sub_total = if ctx.rank() < 2 {
                let s = Group::new(ctx, vec![0, 1]);
                s.allreduce_sum(ctx, vec![10.0])[0]
            } else {
                0.0
            };
            (all[0], sub_total)
        });
        assert_eq!(report.results[0], (4.0, 20.0));
        assert_eq!(report.results[3], (4.0, 0.0));
    }

    #[test]
    fn world_group_basics() {
        let report = Machine::new(3).run(|ctx| {
            let g = Group::world(ctx);
            (g.size(), g.my_idx(), g.member(0), g.members().len())
        });
        assert_eq!(report.results[1], (3, 1, 0, 3));
    }

    #[test]
    #[should_panic(expected = "not in group")]
    fn wrong_membership_panics() {
        Machine::new(2).run(|ctx| {
            if ctx.rank() == 1 {
                let _ = Group::new(ctx, vec![0]);
            }
        });
    }
}
