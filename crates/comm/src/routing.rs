//! Low-latency destination routing (the Theorem 2 machinery).
//!
//! The aggregation step of the paper's Algorithm 2 must deliver rows from
//! one level's ranks to another's without a naive all-to-all. Theorem 2
//! does this by pre-sorting rows by destination and scheduling the
//! exchanges through a sorting network of depth `O(log² p)`. This module
//! provides the equivalent primitive with hypercube dimension-order
//! routing: `O(log p)` rounds, each item forwarded at most `log p` times,
//! with every rank sending/receiving exactly one (possibly empty) message
//! per round — the same latency/bandwidth envelope Theorem 2 needs
//! (`O(α log p + β·V·log p)` for per-rank item volume `V`).
//!
//! For non-power-of-two groups the router falls back to a direct
//! personalised exchange (one message per destination), which preserves
//! volume at a latency of `O(α·p)`.

use crate::collectives::Group;
use crate::rank::RankCtx;

/// An item in flight: destination member index plus an opaque payload.
/// The `tag` travels with the payload so callers can demultiplex (e.g.
/// encode a row id).
#[derive(Debug, Clone, PartialEq)]
pub struct RoutedItem {
    /// Destination member index within the group.
    pub dest: u32,
    /// Caller-defined discriminator (row id, level id, …).
    pub tag: u64,
    /// Payload rows.
    pub data: Vec<f64>,
}

impl Group {
    /// Delivers every item to the rank named by its `dest` member index.
    ///
    /// Returns the items destined to the calling rank (order unspecified
    /// across sources, stable per source). All members must call
    /// collectively.
    pub fn route_by_destination(
        &self,
        ctx: &mut RankCtx,
        items: Vec<RoutedItem>,
    ) -> Vec<RoutedItem> {
        let s = self.size();
        for it in &items {
            assert!(
                (it.dest as usize) < s,
                "destination {} out of group",
                it.dest
            );
        }
        if s == 1 {
            return items;
        }
        if s.is_power_of_two() {
            self.route_hypercube(ctx, items)
        } else {
            self.route_direct(ctx, items)
        }
    }

    /// Hypercube dimension-order routing; `s` must be a power of two.
    fn route_hypercube(&self, ctx: &mut RankCtx, mut items: Vec<RoutedItem>) -> Vec<RoutedItem> {
        let s = self.size();
        let me = self.my_idx() as u32;
        let dims = s.trailing_zeros();
        let base = self.routing_tag(ctx);
        for t in (0..dims).rev() {
            let bit = 1u32 << t;
            let partner = (me ^ bit) as usize;
            // Ship items whose destination disagrees with my bit t.
            let (ship, keep): (Vec<RoutedItem>, Vec<RoutedItem>) = items
                .into_iter()
                .partition(|it| (it.dest & bit) != (me & bit));
            items = keep;
            ctx.send(self.member(partner), base | t as u64, pack(&ship));
            let incoming: Vec<f64> = ctx.recv(self.member(partner), base | t as u64);
            items.extend(unpack(&incoming));
        }
        debug_assert!(items.iter().all(|it| it.dest == me));
        items
    }

    /// Direct personalised exchange for irregular group sizes.
    fn route_direct(&self, ctx: &mut RankCtx, items: Vec<RoutedItem>) -> Vec<RoutedItem> {
        let s = self.size();
        let base = self.routing_tag(ctx);
        let mut per_dest: Vec<Vec<RoutedItem>> = vec![Vec::new(); s];
        for it in items {
            per_dest[it.dest as usize].push(it);
        }
        for (d, batch) in per_dest.into_iter().enumerate() {
            ctx.send(self.member(d), base, pack(&batch));
        }
        let mut out = Vec::new();
        for src in 0..s {
            let incoming: Vec<f64> = ctx.recv(self.member(src), base);
            out.extend(unpack(&incoming));
        }
        out
    }

    fn routing_tag(&self, ctx: &mut RankCtx) -> u64 {
        // Reuse the collective tag space (top bit) with a routing marker.
        let seq = ctx.coll_seq.entry(self.routing_gid()).or_insert(0);
        let tag = (1u64 << 63)
            | (1 << 62)
            | ((self.routing_gid() & 0xFFFF_FFFF) << 16)
            | (*seq & 0xFFF) << 4;
        *seq += 1;
        tag
    }

    fn routing_gid(&self) -> u64 {
        // Distinct stream from collectives: fold the member list again.
        self.members()
            .iter()
            .fold(0x9e37_79b9_7f4a_7c15u64, |h, &m| {
                (h ^ m as u64).wrapping_mul(0xff51_afd7_ed55_8ccd)
            })
    }
}

/// Flat wire encoding: [count, (dest, tag, len, data…)*] as f64 words —
/// keeps the payload type within the `Vec<f64>` Payload impl.
fn pack(items: &[RoutedItem]) -> Vec<f64> {
    let total: usize = items.iter().map(|i| 3 + i.data.len()).sum();
    let mut buf = Vec::with_capacity(1 + total);
    buf.push(items.len() as f64);
    for it in items {
        buf.push(it.dest as f64);
        buf.push(it.tag as f64);
        buf.push(it.data.len() as f64);
        buf.extend_from_slice(&it.data);
    }
    buf
}

fn unpack(buf: &[f64]) -> Vec<RoutedItem> {
    let mut out = Vec::new();
    if buf.is_empty() {
        return out;
    }
    let count = buf[0] as usize;
    let mut pos = 1usize;
    for _ in 0..count {
        let dest = buf[pos] as u32;
        let tag = buf[pos + 1] as u64;
        let len = buf[pos + 2] as usize;
        pos += 3;
        out.push(RoutedItem {
            dest,
            tag,
            data: buf[pos..pos + len].to_vec(),
        });
        pos += len;
    }
    debug_assert_eq!(pos, buf.len());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;

    fn run_routing(p: u32, items_per_rank: usize) -> bool {
        let report = Machine::new(p).run(|ctx| {
            let g = Group::world(ctx);
            let me = g.my_idx() as u32;
            // Each rank sends one item to every destination (round-robin
            // extras), tagged with (source, sequence).
            let items: Vec<RoutedItem> = (0..items_per_rank)
                .map(|i| RoutedItem {
                    dest: (me + i as u32) % p,
                    tag: ((me as u64) << 32) | i as u64,
                    data: vec![me as f64, i as f64],
                })
                .collect();
            let received = g.route_by_destination(ctx, items);
            // All items must be addressed to me and intact.
            received.iter().all(|it| {
                let src = (it.tag >> 32) as u32;
                let seq = (it.tag & 0xFFFF_FFFF) as usize;
                it.dest == me
                    && it.data == vec![src as f64, seq as f64]
                    && (src + seq as u32) % p == me
            }) && received.len() == items_per_rank
        });
        report.results.into_iter().all(|ok| ok)
    }

    #[test]
    fn hypercube_routing_power_of_two() {
        for p in [2u32, 4, 8, 16] {
            assert!(run_routing(p, p as usize), "p = {p}");
        }
    }

    #[test]
    fn direct_routing_irregular_sizes() {
        for p in [3u32, 5, 7, 12] {
            assert!(run_routing(p, p as usize), "p = {p}");
        }
    }

    #[test]
    fn single_rank_short_circuit() {
        assert!(run_routing(1, 3));
    }

    #[test]
    fn empty_item_lists() {
        let report = Machine::new(4).run(|ctx| {
            let g = Group::world(ctx);
            g.route_by_destination(ctx, Vec::new()).len()
        });
        assert!(report.results.iter().all(|&n| n == 0));
    }

    #[test]
    fn hypercube_latency_is_logarithmic() {
        // log2(16) = 4 rounds of α-cost messages, far below the 15 a
        // direct exchange would need.
        let cost = crate::cost::CostModel {
            alpha: 1.0,
            beta: 0.0,
            compute_rate: 1.0,
        };
        let report = Machine::new(16).with_cost(cost).run(|ctx| {
            let g = Group::world(ctx);
            let me = g.my_idx() as u32;
            let items = vec![RoutedItem {
                dest: (me + 1) % 16,
                tag: 0,
                data: vec![],
            }];
            g.route_by_destination(ctx, items);
            ctx.sim_time()
        });
        let max = report.results.iter().fold(0.0f64, |a, &b| a.max(b));
        // 4 rounds, each round: one send (α) + one recv arriving ≥ α later;
        // allow a small constant factor for pipelining.
        assert!(max <= 9.0, "hypercube routing critical path {max}");
    }

    #[test]
    fn skewed_destinations_all_to_one() {
        // Everyone routes to member 0 (the aggregation hot-spot pattern).
        let report = Machine::new(8).run(|ctx| {
            let g = Group::world(ctx);
            let me = g.my_idx() as u32;
            let items = vec![RoutedItem {
                dest: 0,
                tag: me as u64,
                data: vec![me as f64; 4],
            }];
            let got = g.route_by_destination(ctx, items);
            (g.my_idx(), got.len())
        });
        for &(idx, n) in &report.results {
            assert_eq!(n, if idx == 0 { 8 } else { 0 });
        }
    }

    #[test]
    fn wire_format_roundtrip() {
        let items = vec![
            RoutedItem {
                dest: 3,
                tag: 42,
                data: vec![1.0, 2.0],
            },
            RoutedItem {
                dest: 0,
                tag: 7,
                data: vec![],
            },
        ];
        assert_eq!(unpack(&pack(&items)), items);
        assert_eq!(unpack(&pack(&[])), Vec::<RoutedItem>::new());
    }
}
