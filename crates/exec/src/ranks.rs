//! Rank slots: cached persistent threads for *blocking* SPMD rank
//! programs.
//!
//! A machine rank parks inside `crossbeam_channel::recv` mid-protocol
//! waiting for a peer, so it must own a thread — running ranks as
//! work-stealing jobs would deadlock whenever `p` exceeds the worker
//! count. Instead the pool keeps a cache of parked threads, each
//! waiting on its own mpsc channel; a run acquires `p` of them, sends
//! one erased job per rank, blocks until all report done, and parks the
//! threads again.

use crate::pool::Job;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Parked rank threads beyond this many are dropped instead of cached.
const MAX_CACHED: usize = 512;

struct RankThread {
    tx: mpsc::Sender<Job>,
    handle: Option<JoinHandle<()>>,
}

impl RankThread {
    fn spawn(ordinal: u64) -> Self {
        let (tx, rx) = mpsc::channel::<Job>();
        let handle = std::thread::Builder::new()
            .name(format!("amd-exec-rank-{ordinal}"))
            .spawn(move || {
                // Jobs are wrappers that catch their own panics, so
                // this loop only exits when the sender is dropped.
                while let Ok(job) = rx.recv() {
                    job();
                }
            })
            .expect("rank thread spawns");
        Self {
            tx,
            handle: Some(handle),
        }
    }
}

impl Drop for RankThread {
    fn drop(&mut self) {
        // Closing the channel ends the thread's recv loop.
        let (dead_tx, _) = mpsc::channel();
        drop(std::mem::replace(&mut self.tx, dead_tx));
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

pub(crate) struct RankSlots {
    idle: Mutex<Vec<RankThread>>,
    spawned: AtomicU64,
    reused: AtomicU64,
    runs: AtomicU64,
}

impl RankSlots {
    pub(crate) fn new() -> Self {
        Self {
            idle: Mutex::new(Vec::new()),
            spawned: AtomicU64::new(0),
            reused: AtomicU64::new(0),
            runs: AtomicU64::new(0),
        }
    }

    /// `(runs, spawned, reused)` lifetime counters.
    pub(crate) fn stats(&self) -> (u64, u64, u64) {
        (
            self.runs.load(Ordering::Relaxed),
            self.spawned.load(Ordering::Relaxed),
            self.reused.load(Ordering::Relaxed),
        )
    }

    fn acquire(&self, p: usize) -> Vec<RankThread> {
        let mut slots = {
            let mut idle = self.idle.lock().unwrap();
            let take = idle.len().min(p);
            let at = idle.len() - take;
            idle.split_off(at)
        };
        self.reused.fetch_add(slots.len() as u64, Ordering::Relaxed);
        while slots.len() < p {
            let ordinal = self.spawned.fetch_add(1, Ordering::Relaxed);
            slots.push(RankThread::spawn(ordinal));
        }
        slots
    }

    fn release(&self, slots: Vec<RankThread>) {
        let mut idle = self.idle.lock().unwrap();
        for slot in slots {
            if idle.len() < MAX_CACHED {
                idle.push(slot);
            }
            // Excess slots drop here: channel closes, thread joins.
        }
    }

    /// Runs one blocking task per rank on cached slot threads and
    /// returns their results in rank order. Panics come back as
    /// `Err(payload)`; the slot threads always survive and return to
    /// the cache.
    pub(crate) fn run_tasks<'env, T: Send + 'env>(
        &self,
        tasks: Vec<Box<dyn FnOnce() -> T + Send + 'env>>,
    ) -> Vec<std::thread::Result<T>> {
        let p = tasks.len();
        if p == 0 {
            return Vec::new();
        }
        self.runs.fetch_add(1, Ordering::Relaxed);
        let results: Vec<Mutex<Option<std::thread::Result<T>>>> =
            (0..p).map(|_| Mutex::new(None)).collect();
        let pending = AtomicUsize::new(p);
        let done = Mutex::new(());
        let done_cv = Condvar::new();

        let mut slots = self.acquire(p);
        for (r, task) in tasks.into_iter().enumerate() {
            let result_slot = &results[r];
            let pending_ref = &pending;
            let done_ref = &done;
            let cv_ref = &done_cv;
            let wrapped: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                let out = catch_unwind(AssertUnwindSafe(task));
                *result_slot.lock().unwrap() = Some(out);
                if pending_ref.fetch_sub(1, Ordering::AcqRel) == 1 {
                    let _guard = done_ref.lock().unwrap();
                    cv_ref.notify_all();
                }
            });
            // SAFETY: only the lifetime bound is erased; this function
            // blocks below until `pending` hits zero — i.e. until every
            // job has finished — before any borrowed data can go away.
            let mut job: Job = unsafe { erase_job(wrapped) };
            // A closed channel means the slot thread died (it never
            // does in normal operation); replace the slot rather than
            // run inline, which could deadlock a blocking protocol.
            loop {
                match slots[r].tx.send(job) {
                    Ok(()) => break,
                    Err(mpsc::SendError(returned)) => {
                        job = returned;
                        let ordinal = self.spawned.fetch_add(1, Ordering::Relaxed);
                        slots[r] = RankThread::spawn(ordinal);
                    }
                }
            }
        }

        let mut guard = done.lock().unwrap();
        while pending.load(Ordering::Acquire) > 0 {
            let (g, _) = done_cv
                .wait_timeout(guard, Duration::from_millis(100))
                .unwrap();
            guard = g;
        }
        drop(guard);
        self.release(slots);

        results
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap()
                    .expect("every rank job writes its result before finishing")
            })
            .collect()
    }
}

/// Erases the borrow lifetime of a boxed job. Callers must guarantee
/// the job finishes before any borrowed data it captures goes away.
unsafe fn erase_job<'a>(job: Box<dyn FnOnce() + Send + 'a>) -> Job {
    std::mem::transmute(job)
}

impl Drop for RankSlots {
    fn drop(&mut self) {
        // Each RankThread's Drop closes its channel and joins.
        self.idle.lock().unwrap().clear();
    }
}
