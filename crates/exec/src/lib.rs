//! # amd-exec — the persistent work-stealing executor
//!
//! One shared thread pool for everything the serving stack runs in
//! parallel: simulated machine ranks, data-parallel kernel chunks (via
//! the vendored `rayon` facade), and the refresh worker's decompose.
//! Before this crate existed, every [`Machine::run`] spawned and joined
//! `p` fresh OS threads *per query* and every `par_chunks_mut` call
//! spawned a scoped thread per core — so a serving stack answering
//! millions of small queries paid thread-creation latency on its
//! hottest path.
//!
//! The pool has two kinds of threads, both persistent:
//!
//! * **Compute workers** execute short, non-blocking jobs — kernel
//!   chunks, scope tasks — with per-worker LIFO deques, a global FIFO
//!   injector, random-victim stealing, and condvar parking when idle.
//!   See [`ExecPool::scope`], [`ExecPool::for_each_index`], and
//!   [`ExecPool::for_each_take`].
//! * **Rank slots** execute *blocking* SPMD rank programs (a rank
//!   parks inside `crossbeam_channel::recv` mid-protocol, so it must
//!   own a thread). Slots are parked threads cached between runs:
//!   [`ExecPool::run_tasks`] acquires `p` of them, reusing parked
//!   threads and spawning only when the cache is short. A panicking
//!   rank is caught on its slot thread, reported to the caller, and
//!   the thread returns to the cache — one bad query never poisons the
//!   pool.
//!
//! Scoped execution ([`Scope`]) lets tasks borrow stack data without
//! `'static` bounds: the scope blocks (and *helps* — it steals and runs
//! queued jobs while waiting) until every spawned task has finished, so
//! borrows stay valid. Task panics are caught, the first one is
//! re-thrown at the end of the scope, and the worker thread survives.
//!
//! ## The global pool
//!
//! [`global()`] returns the process-wide pool every layer shares;
//! it is built lazily, sized by [`configure_global_threads`] (the CLI's
//! `--threads N`), else the `AMD_EXEC_THREADS` environment variable,
//! else `std::thread::available_parallelism`. Determinism note: none of
//! the results computed on the pool depend on its size — machine ranks
//! keep their own mailboxes and simulated clocks, and kernel chunks
//! write disjoint output rows — so `--threads` trades wall time only.
//!
//! [`Machine::run`]: https://docs.rs/amd-comm

mod pool;
mod ranks;

pub use pool::{ExecPool, ExecStats, Scope};

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

static GLOBAL: OnceLock<ExecPool> = OnceLock::new();
/// Thread count requested before the global pool was built (0 = unset).
static REQUESTED: AtomicUsize = AtomicUsize::new(0);

/// The process-wide shared pool (built lazily on first use).
pub fn global() -> ExecPool {
    GLOBAL
        .get_or_init(|| ExecPool::new(requested_threads()))
        .clone()
}

/// Requests `threads` compute workers for the global pool. Returns
/// `true` when the request took effect — i.e. the global pool had not
/// been built yet. Call it once at startup (the CLI's `--threads N`)
/// before anything touches [`global()`].
pub fn configure_global_threads(threads: usize) -> bool {
    REQUESTED.store(threads.max(1), Ordering::SeqCst);
    if GLOBAL.get().is_some() {
        return GLOBAL.get().map(|p| p.threads()) == Some(threads.max(1));
    }
    true
}

/// The compute-worker count the global pool has (or will be built
/// with): the configured request, else `AMD_EXEC_THREADS`, else
/// `available_parallelism`.
pub fn requested_threads() -> usize {
    if let Some(p) = GLOBAL.get() {
        return p.threads();
    }
    let req = REQUESTED.load(Ordering::SeqCst);
    if req > 0 {
        return req;
    }
    if let Some(n) = std::env::var("AMD_EXEC_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}
