//! The compute-worker half of the pool: per-worker LIFO deques, a
//! global FIFO injector, random-victim stealing, condvar parking, and
//! scoped fork-join on top.

use crate::ranks::RankSlots;
use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// A type-erased unit of work. Lifetimes are erased at the [`Scope`]
/// boundary; soundness comes from the scope blocking until every task
/// it spawned has finished.
pub(crate) type Job = Box<dyn FnOnce() + Send>;

thread_local! {
    /// `(pool identity, worker index)` when the current thread is a
    /// compute worker — lets [`Shared::push_job`] target the worker's
    /// own deque (LIFO locality) instead of the injector.
    static WORKER: Cell<Option<(usize, usize)>> = const { Cell::new(None) };
}

/// Shared state between the pool handle and its worker threads.
pub(crate) struct Shared {
    /// Global FIFO queue: jobs submitted from outside the pool.
    injector: Mutex<VecDeque<Job>>,
    /// Per-worker deques: owners pop LIFO from the back, thieves steal
    /// FIFO from the front.
    deques: Vec<Mutex<VecDeque<Job>>>,
    /// Parking lot for idle workers. `push_job` takes this lock before
    /// notifying so a worker can never miss a wakeup between its
    /// empty-queue check and its wait.
    idle: Mutex<()>,
    wake: Condvar,
    shutdown: AtomicBool,
    jobs_executed: AtomicU64,
}

impl Shared {
    fn new(threads: usize) -> Self {
        Self {
            injector: Mutex::new(VecDeque::new()),
            deques: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            idle: Mutex::new(()),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
            jobs_executed: AtomicU64::new(0),
        }
    }

    fn identity(self: &Arc<Self>) -> usize {
        Arc::as_ptr(self) as usize
    }

    /// Enqueues a job: onto the submitting worker's own deque when the
    /// caller is a worker of this pool, else onto the injector.
    fn push_job(self: &Arc<Self>, job: Job) {
        let own = WORKER
            .with(|w| w.get())
            .filter(|&(id, _)| id == self.identity());
        match own {
            Some((_, idx)) => self.deques[idx].lock().unwrap().push_back(job),
            None => self.injector.lock().unwrap().push_back(job),
        }
        // Lock-fence + notify: a parked worker is either inside `wait`
        // (the lock acquisition below can only succeed once it is, so
        // the notify lands) or has not checked the queues yet (it will
        // see the job).
        drop(self.idle.lock().unwrap());
        self.wake.notify_one();
    }

    /// Pops the next runnable job: own deque (LIFO), injector (FIFO),
    /// then a random-victim rotation over the other workers' deques
    /// (stealing from the front, so thieves take the oldest work).
    fn find_job(&self, own: Option<usize>, rng: &mut u64) -> Option<Job> {
        if let Some(idx) = own {
            if let Some(job) = self.deques[idx].lock().unwrap().pop_back() {
                return Some(job);
            }
        }
        if let Some(job) = self.injector.lock().unwrap().pop_front() {
            return Some(job);
        }
        let n = self.deques.len();
        if n == 0 {
            return None;
        }
        *rng ^= *rng << 13;
        *rng ^= *rng >> 7;
        *rng ^= *rng << 17;
        let start = (*rng % n as u64) as usize;
        for i in 0..n {
            let victim = (start + i) % n;
            if Some(victim) == own {
                continue;
            }
            if let Some(job) = self.deques[victim].lock().unwrap().pop_front() {
                return Some(job);
            }
        }
        None
    }

    fn any_queued(&self) -> bool {
        if !self.injector.lock().unwrap().is_empty() {
            return true;
        }
        self.deques.iter().any(|d| !d.lock().unwrap().is_empty())
    }

    fn run_job(&self, job: Job) {
        self.jobs_executed.fetch_add(1, Ordering::Relaxed);
        // Every job is a scope/rank wrapper that catches its own
        // panics; this outer catch is the backstop that keeps a worker
        // thread alive even if that invariant is ever broken.
        let _ = catch_unwind(AssertUnwindSafe(job));
    }
}

fn worker_main(shared: Arc<Shared>, index: usize) {
    WORKER.with(|w| w.set(Some((shared.identity(), index))));
    let mut rng = 0x9E37_79B9_7F4A_7C15u64 ^ ((index as u64 + 1) * 0xA24B_AED4_963E_E407);
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        if let Some(job) = shared.find_job(Some(index), &mut rng) {
            shared.run_job(job);
            continue;
        }
        let guard = shared.idle.lock().unwrap();
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        if shared.any_queued() {
            continue;
        }
        // The timeout is belt-and-braces only; the push_job lock-fence
        // makes wakeups reliable.
        let _ = shared.wake.wait_timeout(guard, Duration::from_millis(100));
    }
}

/// Counters describing what a pool has executed — used by the
/// determinism/supervision tests and the calibration bench to prove
/// threads are reused, not respawned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecStats {
    /// Jobs executed by compute workers (scope tasks, kernel chunks).
    pub compute_jobs: u64,
    /// SPMD runs served by [`ExecPool::run_tasks`].
    pub rank_runs: u64,
    /// Rank-slot threads spawned over the pool's lifetime.
    pub rank_threads_spawned: u64,
    /// Rank-slot acquisitions satisfied by a parked (cached) thread.
    pub rank_threads_reused: u64,
}

struct Inner {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    ranks: RankSlots,
    threads: usize,
}

impl Drop for Inner {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            drop(self.shared.idle.lock().unwrap());
            self.shared.wake.notify_all();
        }
        for handle in self.workers.lock().unwrap().drain(..) {
            let _ = handle.join();
        }
        // Rank slots are joined by `RankSlots::drop`.
    }
}

/// A persistent work-stealing executor. Cheap to clone (an `Arc`
/// handle); all clones share the same worker threads and rank-slot
/// cache. See the [crate docs](crate) for the execution model and
/// [`crate::global`] for the process-wide instance.
#[derive(Clone)]
pub struct ExecPool {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for ExecPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecPool")
            .field("threads", &self.inner.threads)
            .finish_non_exhaustive()
    }
}

impl ExecPool {
    /// A private pool with `threads` compute workers (at least one).
    /// Rank slots are cached on demand and do not count against
    /// `threads`.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared::new(threads));
        let workers = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("amd-exec-worker-{i}"))
                    .spawn(move || worker_main(shared, i))
                    .expect("worker thread spawns")
            })
            .collect();
        Self {
            inner: Arc::new(Inner {
                shared,
                workers: Mutex::new(workers),
                ranks: RankSlots::new(),
                threads,
            }),
        }
    }

    /// Number of compute workers.
    pub fn threads(&self) -> usize {
        self.inner.threads
    }

    /// Lifetime execution counters.
    pub fn stats(&self) -> ExecStats {
        let (rank_runs, rank_threads_spawned, rank_threads_reused) = self.inner.ranks.stats();
        ExecStats {
            compute_jobs: self.inner.shared.jobs_executed.load(Ordering::Relaxed),
            rank_runs,
            rank_threads_spawned,
            rank_threads_reused,
        }
    }

    /// Runs `f` with a [`Scope`] on which tasks borrowing non-`'static`
    /// data can be spawned. Blocks until every spawned task has
    /// finished — helping with queued work while it waits — then
    /// re-throws the first task panic (or `f`'s own panic).
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: FnOnce(&Scope<'_, 'env>) -> R,
    {
        let state = Arc::new(ScopeState::default());
        let scope = Scope {
            pool: self,
            state: Arc::clone(&state),
            _env: PhantomData,
        };
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        // Wait even when `f` panicked: tasks borrow `'env` data that
        // must outlive them.
        self.wait_scope(&state);
        match result {
            Err(payload) => resume_unwind(payload),
            Ok(value) => {
                if let Some(payload) = state.panic.lock().unwrap().take() {
                    resume_unwind(payload);
                }
                value
            }
        }
    }

    fn wait_scope(&self, state: &ScopeState) {
        let shared = &self.inner.shared;
        let own = WORKER
            .with(|w| w.get())
            .filter(|&(id, _)| id == shared.identity())
            .map(|(_, idx)| idx);
        let mut rng = (state as *const ScopeState as u64) | 1;
        loop {
            if state.pending.load(Ordering::Acquire) == 0 {
                return;
            }
            // Help: run queued jobs (possibly from other scopes) so a
            // scope waiting inside a worker can never deadlock the
            // pool.
            if let Some(job) = shared.find_job(own, &mut rng) {
                shared.run_job(job);
                continue;
            }
            let guard = state.done.lock().unwrap();
            if state.pending.load(Ordering::Acquire) == 0 {
                return;
            }
            // Short timeout: a new *helpable* job does not signal
            // `done_cv`, so re-poll the queues at a modest cadence.
            let _ = state
                .done_cv
                .wait_timeout(guard, Duration::from_micros(200));
        }
    }

    /// Data-parallel loop over `0..count`, dynamically load-balanced:
    /// up to `threads()` runner tasks (the caller is one of them) pull
    /// indices from a shared atomic counter. Serial fallthrough when
    /// `count <= 1` or the pool has a single worker — no task is
    /// spawned and no allocation happens.
    pub fn for_each_index<F>(&self, count: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        if count == 0 {
            return;
        }
        if count == 1 || self.threads() <= 1 {
            for i in 0..count {
                f(i);
            }
            return;
        }
        let next = AtomicUsize::new(0);
        let runners = self.threads().min(count);
        let f = &f;
        let next_ref = &next;
        self.scope(|s| {
            for _ in 1..runners {
                s.spawn(move || run_indices(next_ref, count, f));
            }
            run_indices(next_ref, count, f);
        });
    }

    /// Like [`for_each_index`](Self::for_each_index) but moves each
    /// element of `items` into `f` exactly once (the vendored rayon
    /// facade's chunk dispatch). Serial fallthrough when `items.len()
    /// <= 1` or the pool has a single worker.
    ///
    /// If `f` panics, elements not yet claimed may be leaked (never
    /// dropped) — acceptable for the facade's `&mut` chunk items, which
    /// have no drop glue; the panic itself propagates to the caller.
    pub fn for_each_take<I, F>(&self, mut items: Vec<I>, f: F)
    where
        I: Send,
        F: Fn(usize, I) + Sync,
    {
        let count = items.len();
        if count == 0 {
            return;
        }
        if count == 1 || self.threads() <= 1 {
            for (i, item) in items.into_iter().enumerate() {
                f(i, item);
            }
            return;
        }
        let base = SendPtr(items.as_mut_ptr());
        // Claimed elements are moved out by `ptr::read`; emptying the
        // vec *first* means a panic can never double-drop them.
        // SAFETY: capacity is untouched and len 0 is always valid.
        unsafe { items.set_len(0) };
        let next = AtomicUsize::new(0);
        let runners = self.threads().min(count);
        let f = &f;
        let next_ref = &next;
        let base_ref = &base;
        self.scope(|s| {
            let run = move || loop {
                let i = next_ref.fetch_add(1, Ordering::Relaxed);
                if i >= count {
                    return;
                }
                // SAFETY: `i` was claimed exactly once by the atomic
                // counter, is in-bounds, and the allocation outlives
                // the scope (the caller still owns `items`).
                let item = unsafe { std::ptr::read(base_ref.0.add(i)) };
                f(i, item);
            };
            for _ in 1..runners {
                s.spawn(run);
            }
            run();
        });
    }

    /// Runs `tasks` — one blocking SPMD rank program each — on cached
    /// rank-slot threads, reusing parked threads from earlier runs and
    /// spawning only when the cache is short. Blocks until all have
    /// finished and returns their results in order; a panicking task
    /// comes back as `Err(payload)` and its slot thread survives.
    pub fn run_tasks<'env, T: Send + 'env>(
        &self,
        tasks: Vec<Box<dyn FnOnce() -> T + Send + 'env>>,
    ) -> Vec<std::thread::Result<T>> {
        self.inner.ranks.run_tasks(tasks)
    }

    /// Convenience SPMD entry point: runs `f(0..p)` on `p` rank slots.
    pub fn run_ranks<T, F>(&self, p: usize, f: F) -> Vec<std::thread::Result<T>>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let f = &f;
        let tasks: Vec<Box<dyn FnOnce() -> T + Send + '_>> = (0..p)
            .map(|r| Box::new(move || f(r)) as Box<dyn FnOnce() -> T + Send + '_>)
            .collect();
        self.run_tasks(tasks)
    }

    pub(crate) fn push_erased(&self, job: Job) {
        self.inner.shared.push_job(job);
    }
}

fn run_indices(next: &AtomicUsize, count: usize, f: &(impl Fn(usize) + Sync)) {
    loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= count {
            return;
        }
        f(i);
    }
}

/// Raw pointer wrapper so runner closures capturing it stay `Send`;
/// disjoint-index access is guaranteed by the claiming counter.
struct SendPtr<I>(*mut I);
unsafe impl<I: Send> Send for SendPtr<I> {}
unsafe impl<I: Send> Sync for SendPtr<I> {}

#[derive(Default)]
struct ScopeState {
    pending: AtomicUsize,
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
    done: Mutex<()>,
    done_cv: Condvar,
}

/// A fork-join scope: tasks spawned on it may borrow anything that
/// outlives the [`ExecPool::scope`] call. The first task panic is
/// re-thrown when the scope ends.
pub struct Scope<'pool, 'env> {
    pool: &'pool ExecPool,
    state: Arc<ScopeState>,
    _env: PhantomData<&'env mut &'env ()>,
}

impl<'pool, 'env> Scope<'pool, 'env> {
    /// Spawns `task` onto the pool. Panics inside `task` are caught,
    /// stored, and re-thrown by the enclosing `scope` call.
    pub fn spawn<F>(&self, task: F)
    where
        F: FnOnce() + Send + 'env,
    {
        let state = Arc::clone(&self.state);
        state.pending.fetch_add(1, Ordering::AcqRel);
        let wrapped: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(task)) {
                let mut slot = state.panic.lock().unwrap();
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
            if state.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                let _guard = state.done.lock().unwrap();
                state.done_cv.notify_all();
            }
        });
        // SAFETY: the transmute only erases the `'env` lifetime bound.
        // `ExecPool::scope` blocks until `pending` returns to zero —
        // i.e. until this wrapper has run to completion — before any
        // `'env` borrow can end, so the job never outlives its data.
        let job: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Box<dyn FnOnce() + Send>>(
                wrapped,
            )
        };
        self.pool.push_erased(job);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn scope_runs_borrowing_tasks() {
        let pool = ExecPool::new(4);
        let mut data = vec![0u64; 64];
        {
            let slots: Vec<&mut u64> = data.iter_mut().collect();
            pool.scope(|s| {
                for (i, slot) in slots.into_iter().enumerate() {
                    s.spawn(move || *slot = i as u64 + 1);
                }
            });
        }
        assert_eq!(data, (1..=64).collect::<Vec<u64>>());
    }

    #[test]
    fn for_each_index_covers_every_index_once() {
        let pool = ExecPool::new(3);
        let hits: Vec<AtomicU64> = (0..1000).map(|_| AtomicU64::new(0)).collect();
        pool.for_each_index(1000, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn for_each_take_moves_every_item_once() {
        let pool = ExecPool::new(4);
        let items: Vec<(usize, String)> = (0..257).map(|i| (i, format!("v{i}"))).collect();
        let seen: Vec<Mutex<Option<String>>> = (0..257).map(|_| Mutex::new(None)).collect();
        pool.for_each_take(items, |_, (i, v)| {
            let prev = seen[i].lock().unwrap().replace(v);
            assert!(prev.is_none(), "item {i} dispatched twice");
        });
        for (i, slot) in seen.iter().enumerate() {
            assert_eq!(
                slot.lock().unwrap().as_deref(),
                Some(format!("v{i}").as_str())
            );
        }
    }

    #[test]
    fn scope_panic_propagates_but_pool_survives() {
        let pool = ExecPool::new(2);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|| panic!("task exploded"));
                s.spawn(|| ());
            });
        }));
        assert!(caught.is_err());
        // The pool still executes work afterwards.
        let counter = AtomicU64::new(0);
        pool.for_each_index(100, |_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn nested_scopes_do_not_deadlock() {
        let pool = ExecPool::new(2);
        let total = AtomicU64::new(0);
        pool.scope(|s| {
            for _ in 0..8 {
                let total = &total;
                let pool2 = pool.clone();
                s.spawn(move || {
                    pool2.for_each_index(16, |_| {
                        total.fetch_add(1, Ordering::Relaxed);
                    });
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 8 * 16);
    }

    #[test]
    fn run_ranks_returns_in_order_and_reuses_threads() {
        let pool = ExecPool::new(1);
        let out: Vec<u32> = pool
            .run_ranks(8, |r| r as u32 * 10)
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(out, (0..8).map(|r| r * 10).collect::<Vec<u32>>());
        let first = pool.stats();
        assert_eq!(first.rank_threads_spawned, 8);
        // Second run reuses every parked slot.
        pool.run_ranks(8, |r| r).into_iter().for_each(|r| {
            r.unwrap();
        });
        let second = pool.stats();
        assert_eq!(second.rank_threads_spawned, 8);
        assert_eq!(second.rank_threads_reused, 8);
        assert_eq!(second.rank_runs, 2);
    }

    #[test]
    fn rank_panic_comes_back_as_err_and_slot_survives() {
        let pool = ExecPool::new(1);
        let results = pool.run_ranks(4, |r| {
            if r == 2 {
                panic!("rank 2 down");
            }
            r
        });
        assert!(results[2].is_err());
        assert_eq!(*results[0].as_ref().unwrap(), 0);
        // The pool is not poisoned: the same slots serve the next run.
        let ok = pool.run_ranks(4, |r| r + 100);
        assert!(ok.iter().all(|r| r.is_ok()));
        let stats = pool.stats();
        assert_eq!(stats.rank_threads_spawned, 4, "panicked slot was respawned");
    }

    #[test]
    fn pool_drop_joins_all_threads() {
        let pool = ExecPool::new(3);
        pool.run_ranks(5, |r| r).into_iter().for_each(|r| {
            r.unwrap();
        });
        drop(pool); // must not hang
    }

    #[test]
    fn serial_fallthrough_paths() {
        let pool = ExecPool::new(4);
        pool.for_each_index(0, |_| panic!("must not run"));
        let one = AtomicU64::new(0);
        pool.for_each_index(1, |i| {
            assert_eq!(i, 0);
            one.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(one.load(Ordering::Relaxed), 1);
        pool.for_each_take(Vec::<u8>::new(), |_, _| panic!("must not run"));
        let single = Mutex::new(0u8);
        pool.for_each_take(vec![7u8], |i, v| {
            assert_eq!(i, 0);
            *single.lock().unwrap() = v;
        });
        assert_eq!(*single.lock().unwrap(), 7);
    }
}
