//! Dtype acceptance properties across all four distributed algorithms:
//! at `f64` every algorithm must bit-match the serial iterated reference
//! (the fused serving path changes nothing), and at `f32` the answers
//! stay bit-exact on integer data (small integers round-trip `f32`
//! narrowing losslessly and products accumulate in `f64`). The `f32`
//! wire format must also halve every algorithm's predicted volume
//! relative to `f64` — the whole point of serving at half bandwidth.

use amd_partition::{hype_partition, HypeConfig};
use amd_sparse::{spmm, CsrMatrix, DenseMatrix, Dtype};
use amd_spmm::{A15dSpmm, A2dSpmm, ArrowSpmm, DistSpmm, Hp1dSpmm};
use arrow_core::{decompose_snapshot, DecomposeConfig};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Random tree plus ring chords with small integer weights.
fn base_graph(n: u32, seed: u64) -> CsrMatrix<f64> {
    let g = amd_graph::generators::random::random_tree(n, &mut ChaCha8Rng::seed_from_u64(seed));
    let mut coo = g.to_adjacency::<f64>().to_coo();
    for v in 0..n {
        coo.push_sym(v, (v + 1) % n, ((v % 3) + 1) as f64).unwrap();
    }
    coo.to_csr()
}

/// Integer probe operand (exact in both precisions at these magnitudes).
fn probe(n: u32, k: u32) -> DenseMatrix<f64> {
    DenseMatrix::from_fn(n, k, |r, c| (((5 * r + 3 * c) % 9) as f64) - 4.0)
}

/// All four algorithms over `a`, boxed behind the common trait.
fn algorithms(a: &CsrMatrix<f64>, seed: u64) -> Vec<Box<dyn DistSpmm>> {
    let d = decompose_snapshot(a, &DecomposeConfig::with_width(8), seed).unwrap();
    let g = amd_graph::Graph::from_matrix_structure(a);
    let part = hype_partition(
        &g,
        4,
        &HypeConfig::default(),
        &mut ChaCha8Rng::seed_from_u64(seed),
    );
    vec![
        Box::new(ArrowSpmm::new(&d).unwrap()),
        Box::new(A15dSpmm::new(a, 8, 2).unwrap()),
        Box::new(A2dSpmm::new(a, 4).unwrap()),
        Box::new(Hp1dSpmm::new(a, &part).unwrap()),
    ]
}

/// Rebuilds the same algorithm set at a chosen serving dtype.
fn algorithms_with_dtype(a: &CsrMatrix<f64>, seed: u64, dtype: Dtype) -> Vec<Box<dyn DistSpmm>> {
    let d = decompose_snapshot(a, &DecomposeConfig::with_width(8), seed).unwrap();
    let g = amd_graph::Graph::from_matrix_structure(a);
    let part = hype_partition(
        &g,
        4,
        &HypeConfig::default(),
        &mut ChaCha8Rng::seed_from_u64(seed),
    );
    vec![
        Box::new(ArrowSpmm::new(&d).unwrap().with_dtype(dtype)),
        Box::new(A15dSpmm::new(a, 8, 2).unwrap().with_dtype(dtype)),
        Box::new(A2dSpmm::new(a, 4).unwrap().with_dtype(dtype)),
        Box::new(Hp1dSpmm::new(a, &part).unwrap().with_dtype(dtype)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// f64 serving is the pre-fusion reference, bit for bit, for every
    /// algorithm; f32 serving matches it exactly on integer data.
    #[test]
    fn all_algorithms_bit_match_reference_at_both_dtypes(
        n in 60u32..140,
        seed in 0u64..300,
        k in 1u32..5,
    ) {
        let a = base_graph(n, seed);
        let x = probe(n, k);
        let iters = 2;
        let mut want = x.clone();
        for _ in 0..iters {
            want = spmm::spmm(&a, &want).unwrap();
        }
        for alg in algorithms(&a, seed) {
            let run = alg.run(&x, iters).unwrap();
            prop_assert_eq!(&run.y, &want, "{} (f64) != serial reference", alg.name());
        }
        for alg in algorithms_with_dtype(&a, seed, Dtype::F32) {
            let run = alg.run(&x, iters).unwrap();
            prop_assert_eq!(
                &run.y, &want,
                "{} (f32) must stay exact on integer data", alg.name()
            );
        }
    }

    /// Narrowing the wire format halves (or better) each algorithm's
    /// predicted communication volume.
    #[test]
    fn f32_halves_predicted_volume_for_every_algorithm(
        n in 60u32..140,
        seed in 0u64..300,
        k in 1u32..9,
    ) {
        let a = base_graph(n, seed);
        let wide = algorithms_with_dtype(&a, seed, Dtype::F64);
        let narrow = algorithms_with_dtype(&a, seed, Dtype::F32);
        for (w, s) in wide.iter().zip(&narrow) {
            let bw = w.predict_volume(k).max_rank_bytes;
            let bs = s.predict_volume(k).max_rank_bytes;
            if bw == 0.0 {
                prop_assert_eq!(bs, 0.0);
                continue;
            }
            prop_assert!(
                bs <= 0.5 * bw + 1e-9,
                "{}: f32 predicted {bs:.0} B vs f64 {bw:.0} B", w.name()
            );
        }
    }
}
