//! Pooled-execution determinism: running every distributed SpMM
//! algorithm on the shared `amd-exec` pool must be *bit-identical* to
//! spawning a fresh thread per rank — same `Y` bits, same per-rank
//! simulated clocks, same byte/message accounting. The simulation is
//! purely logical (clocks advance by the cost model, never by wall
//! time), so which OS thread runs a rank can never leak into results;
//! these tests pin that guarantee across the whole algorithm zoo.

use amd_comm::MachineExec;
use amd_graph::generators::rmat;
use amd_graph::Graph;
use amd_partition::{hype_partition, HypeConfig};
use amd_sparse::{CsrMatrix, DenseMatrix};
use amd_spmm::{best_c, A15dSpmm, A2dSpmm, ArrowSpmm, DistSpmm, Hp1dSpmm};
use arrow_core::{la_decompose, DecomposeConfig, RandomForestLa};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const SEED: u64 = 0x9E37_79B9;

fn test_matrix() -> CsrMatrix<f64> {
    let mut rng = ChaCha8Rng::seed_from_u64(SEED);
    rmat::rmat(8, 8, rmat::RmatParams::graph500(), &mut rng).to_adjacency()
}

/// Builds all four algorithms for `a` at `p` ranks.
fn algorithms(a: &CsrMatrix<f64>, p: u32) -> Vec<Box<dyn DistSpmm>> {
    let d = la_decompose(
        a,
        &DecomposeConfig::with_width(16),
        &mut RandomForestLa::new(SEED),
    )
    .unwrap();
    let g = Graph::from_matrix_structure(a);
    let mut rng = ChaCha8Rng::seed_from_u64(SEED ^ 1);
    let part = hype_partition(&g, p, &HypeConfig::default(), &mut rng);
    vec![
        Box::new(ArrowSpmm::new(&d).unwrap()),
        Box::new(A15dSpmm::new(a, p, best_c(p)).unwrap()),
        // 2D A-stationary needs a square rank count.
        Box::new(A2dSpmm::new(a, 9).unwrap()),
        Box::new(Hp1dSpmm::new(a, &part).unwrap()),
    ]
}

/// Every algorithm, pooled vs spawn-per-run: identical output bits,
/// identical per-rank sim clocks, identical traffic accounting.
#[test]
fn pooled_matches_spawn_per_run_bit_for_bit() {
    let a = test_matrix();
    let n = a.rows();
    let x = DenseMatrix::from_fn(n, 4, |r, c| (((r * 7 + c * 3) % 13) as f64) - 6.0);
    for mut alg in algorithms(&a, 8) {
        let name = alg.name();
        alg.set_exec(MachineExec::Global);
        let pooled = alg.run(&x, 3).unwrap();
        alg.set_exec(MachineExec::SpawnPerRun);
        let spawned = alg.run(&x, 3).unwrap();
        assert_eq!(
            pooled.y.data(),
            spawned.y.data(),
            "{name}: pooled Y must bit-match spawn-per-run"
        );
        assert_eq!(
            pooled.stats.ranks.len(),
            spawned.stats.ranks.len(),
            "{name}: rank count"
        );
        for (r, (p, s)) in pooled
            .stats
            .ranks
            .iter()
            .zip(&spawned.stats.ranks)
            .enumerate()
        {
            assert_eq!(
                p.sim_time.to_bits(),
                s.sim_time.to_bits(),
                "{name}: rank {r} sim clock"
            );
            assert_eq!(
                p.compute_time.to_bits(),
                s.compute_time.to_bits(),
                "{name}: rank {r} compute clock"
            );
            assert_eq!(
                (p.sent_bytes, p.recv_bytes, p.sent_msgs, p.recv_msgs),
                (s.sent_bytes, s.recv_bytes, s.sent_msgs, s.recv_msgs),
                "{name}: rank {r} traffic"
            );
        }
    }
}

/// Back-to-back pooled runs reuse the warm rank slots and still
/// reproduce themselves exactly (no state bleeds between runs).
#[test]
fn repeated_pooled_runs_are_self_identical() {
    let a = test_matrix();
    let n = a.rows();
    let x = DenseMatrix::from_fn(n, 2, |r, c| (((r * 5 + c) % 9) as f64) - 4.0);
    for alg in algorithms(&a, 8) {
        let first = alg.run(&x, 2).unwrap();
        for _ in 0..3 {
            let again = alg.run(&x, 2).unwrap();
            assert_eq!(first.y.data(), again.y.data(), "{}", alg.name());
            for (p, s) in first.stats.ranks.iter().zip(&again.stats.ranks) {
                assert_eq!(p.sim_time.to_bits(), s.sim_time.to_bits());
                assert_eq!(p.volume(), s.volume());
            }
        }
    }
}
