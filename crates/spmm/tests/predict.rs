//! Calibration tests: `predict_volume` must track the simulator's
//! measured per-rank volumes within a small constant factor — the
//! property the serving engine's planner relies on to rank algorithms.

use amd_graph::generators::{basic, datasets};
use amd_partition::{hype_partition, HypeConfig};
use amd_sparse::{CsrMatrix, DenseMatrix};
use amd_spmm::{A15dSpmm, A2dSpmm, ArrowSpmm, DistSpmm, Hp1dSpmm};
use arrow_core::{la_decompose, DecomposeConfig, RandomForestLa};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Measured max per-rank volume per iteration vs the prediction.
fn check(alg: &dyn DistSpmm, a: &CsrMatrix<f64>, k: u32, lo: f64, hi: f64) {
    let x = DenseMatrix::from_fn(a.rows(), k, |r, c| (((r + c) % 7) as f64) - 3.0);
    let iters = 2;
    let run = alg.run(&x, iters).unwrap();
    let measured = run.volume_per_iter();
    let predicted = alg.predict_volume(k).max_rank_bytes;
    if measured == 0.0 {
        assert_eq!(
            predicted,
            0.0,
            "{}: predicted traffic on a silent run",
            alg.name()
        );
        return;
    }
    let ratio = predicted / measured;
    assert!(
        (lo..hi).contains(&ratio),
        "{}: predicted {predicted:.0} B vs measured {measured:.0} B (ratio {ratio:.2})",
        alg.name()
    );
}

fn dataset(n: u32) -> CsrMatrix<f64> {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    datasets::DatasetKind::GenBank
        .generate(n, &mut rng)
        .to_adjacency()
}

#[test]
fn arrow_prediction_tracks_measurement() {
    let a = dataset(900);
    let d = la_decompose(
        &a,
        &DecomposeConfig::with_width(64),
        &mut RandomForestLa::new(5),
    )
    .unwrap();
    let alg = ArrowSpmm::new(&d).unwrap();
    check(&alg, &a, 8, 0.5, 4.0);
}

#[test]
fn a15d_prediction_tracks_measurement() {
    let a = dataset(800);
    for (p, c) in [(8u32, 2u32), (16, 4), (6, 1)] {
        let alg = A15dSpmm::new(&a, p, c).unwrap();
        check(&alg, &a, 8, 0.5, 4.0);
    }
}

#[test]
fn a2d_prediction_tracks_measurement() {
    let a = dataset(800);
    for p in [4u32, 16] {
        let alg = A2dSpmm::new(&a, p).unwrap();
        check(&alg, &a, 8, 0.5, 4.0);
    }
}

#[test]
fn hp1d_prediction_is_exact() {
    let g = basic::grid_2d(25, 25);
    let a: CsrMatrix<f64> = g.to_adjacency();
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let part = hype_partition(&g, 4, &HypeConfig::default(), &mut rng);
    let alg = Hp1dSpmm::new(&a, &part).unwrap();
    // Pure point-to-point: the plan-derived count is exact.
    check(&alg, &a, 8, 0.999, 1.001);
}
