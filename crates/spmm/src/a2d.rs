//! The 2D A-stationary algorithm (§3 of the paper, after Selvitopi et
//! al.).
//!
//! Unlike 1.5D, the feature matrix is sliced along *both* dimensions: on
//! a `√p × √p` grid, processor `(r, c)` owns the stationary tile `A(r, c)`
//! and the feature tile `X(r, c)` (row block `r`, feature-column block
//! `c`). The product is computed in `√p` phases; phase `f` produces the
//! `f`-th column block of `Y`:
//!
//! 1. **route** — the owner `(j, f)` of `X(j, f)` sends it to the diagonal
//!    processor `(j, j)` of grid column `j`,
//! 2. **broadcast** — `(j, j)` broadcasts the tile down grid column `j`
//!    (static groups, binomial tree),
//! 3. **multiply** — each `(r, c)` computes the partial `A(r, c)·X(c, f)`,
//! 4. **reduce** — grid row `r` sum-reduces onto `(r, f)`, which stores
//!    `Y(r, f)` — the same layout as the input, so iterations chain.
//!
//! Compared to 1.5D with `c = √p`, storage drops by `√p` but latency grows
//! by `Θ(√p)` and bandwidth by `Θ(log p)` (§3) — the trade-off the paper
//! cites for preferring 1.5D on skinny feature matrices, which this
//! implementation makes measurable.

use crate::layout::{block_range, even_ranges};
use crate::traits::{apply_sigma, binomial_children, CommEstimate, DistSpmm, Sigma, SpmmRun};
use amd_comm::{CostModel, Group, Machine, MachineExec};
use amd_sparse::{spmm, CsrMatrix, DenseMatrix, Dtype, SparseError, SparseResult};

/// 2D A-stationary SpMM bound to a matrix.
pub struct A2dSpmm {
    n: u32,
    p: u32,
    /// Grid side `q = √p`.
    q: u32,
    /// Row/column block height `⌈n/q⌉`.
    rb: u32,
    /// `tiles[rank]` = the stationary tile `A(r, c)` of rank `r·q + c`.
    tiles: Vec<CsrMatrix<f64>>,
    cost: CostModel,
    dtype: Dtype,
    exec: MachineExec,
}

impl A2dSpmm {
    /// Prepares the distribution on `p` ranks; `p` must be a perfect
    /// square.
    pub fn new(a: &CsrMatrix<f64>, p: u32) -> SparseResult<Self> {
        if a.rows() != a.cols() {
            return Err(SparseError::ShapeMismatch {
                left: (a.rows(), a.cols()),
                right: (a.cols(), a.rows()),
            });
        }
        let q = (p as f64).sqrt().round() as u32;
        assert!(
            q * q == p,
            "2D A-stationary needs a square rank count, got {p}"
        );
        let n = a.rows();
        let rb = n.div_ceil(q).max(1);
        let mut tiles = Vec::with_capacity(p as usize);
        for rank in 0..p {
            let (r, c) = (rank / q, rank % q);
            let (r0, r1) = block_range(n, rb, r);
            let (c0, c1) = block_range(n, rb, c);
            tiles.push(a.submatrix(r0, r1, c0, c1));
        }
        Ok(Self {
            n,
            p,
            q,
            rb,
            tiles,
            cost: CostModel::default(),
            dtype: Dtype::default(),
            exec: MachineExec::default(),
        })
    }

    /// Overrides the cost model.
    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Selects how machine ranks obtain threads (shared pool default).
    pub fn with_exec(mut self, exec: MachineExec) -> Self {
        self.exec = exec;
        self
    }

    /// Selects the serving precision: local tile multiplies run at
    /// `dtype` ([`spmm::spmm_acc_dtype`]) and [`predict_volume`] charges
    /// `dtype` bytes per value moved.
    ///
    /// The simulated machine still ships `f64` buffers (the narrowing is
    /// emulated value-wise), so at [`Dtype::F32`] the *accounted* volume
    /// reads ~2× the prediction — the prediction reflects what a real
    /// narrowed wire costs.
    ///
    /// [`predict_volume`]: DistSpmm::predict_volume
    pub fn with_dtype(mut self, dtype: Dtype) -> Self {
        self.dtype = dtype;
        self
    }
}

impl DistSpmm for A2dSpmm {
    fn set_exec(&mut self, exec: MachineExec) {
        self.exec = exec;
    }

    fn name(&self) -> String {
        format!("2D p={}", self.p)
    }

    fn ranks(&self) -> u32 {
        self.p
    }

    fn run_sigma(
        &self,
        x: &DenseMatrix<f64>,
        iters: u32,
        sigma: Option<Sigma>,
    ) -> SparseResult<SpmmRun> {
        if x.rows() != self.n {
            return Err(SparseError::ShapeMismatch {
                left: (self.n, self.n),
                right: (x.rows(), x.cols()),
            });
        }
        let k = x.cols();
        let q = self.q;
        let col_ranges = even_ranges(k, q);
        let machine = Machine::new(self.p)
            .with_cost(self.cost)
            .with_exec_mode(self.exec.clone());
        let report = machine.run(|ctx| {
            let rank = ctx.rank();
            let (r, c) = (rank / q, rank % q);
            // Static groups: member index = grid row (column group) or
            // grid column (row group).
            let col_group = Group::new(ctx, (0..q).map(|i| i * q + c).collect());
            let row_group = Group::new(ctx, (0..q).map(|j| r * q + j).collect());
            let (r0, r1) = block_range(self.n, self.rb, r);
            let my_rows = (r1 - r0) as usize;
            let (k0, k1) = col_ranges[c as usize];
            // X(r, c): row block r, feature columns [k0, k1).
            let mut x_cur: Vec<f64> = {
                let mut buf = Vec::with_capacity(my_rows * (k1 - k0) as usize);
                for row in r0..r1 {
                    buf.extend_from_slice(&x.row(row)[k0 as usize..k1 as usize]);
                }
                buf
            };
            let a_tile = &self.tiles[rank as usize];
            let (ac0, ac1) = block_range(self.n, self.rb, c);
            for iter in 0..iters {
                let mut y_mine: Vec<f64> = Vec::new();
                for f in 0..q {
                    let (f0, f1) = col_ranges[f as usize];
                    let fk = f1 - f0;
                    let tag = ((iter as u64) << 8) | f as u64;
                    // 1. Route X(r, f) (if I own it) to the diagonal of
                    //    grid column r; receive on the diagonal.
                    if c == f && r != c {
                        ctx.send(r * q + r, tag, x_cur.clone());
                    }
                    let bcast_payload: Option<Vec<f64>> = if r == c {
                        if c == f {
                            Some(x_cur.clone())
                        } else {
                            Some(ctx.recv::<Vec<f64>>(r * q + f, tag))
                        }
                    } else {
                        None
                    };
                    // 2. Broadcast X(c, f) down grid column c from the
                    //    diagonal member (index c).
                    let xt = col_group.broadcast(ctx, c as usize, bcast_payload);
                    // 3. Partial product A(r, c) · X(c, f).
                    let partial = if my_rows > 0 && !xt.is_empty() && fk > 0 {
                        let xd = DenseMatrix::from_vec(ac1 - ac0, fk, xt)
                            .expect("broadcast tile has block shape");
                        ctx.compute_flops(spmm::spmm_flops(a_tile, fk));
                        spmm::spmm_dtype(a_tile, &xd, self.dtype)
                            .expect("2D tile shapes align")
                            .into_vec()
                    } else {
                        vec![0.0; my_rows * fk as usize]
                    };
                    // 4. Reduce across the grid row onto member f.
                    let reduced = row_group.reduce_sum(ctx, f as usize, partial);
                    if c == f {
                        y_mine = reduced.expect("member f holds the phase result");
                    }
                }
                x_cur = y_mine;
                apply_sigma(&mut x_cur, sigma);
            }
            x_cur
        });
        // Assemble Y from the (r, c) tiles.
        let mut y = DenseMatrix::zeros(self.n, k);
        for rank in 0..self.p {
            let (r, c) = (rank / q, rank % q);
            let (r0, r1) = block_range(self.n, self.rb, r);
            let (k0, k1) = col_ranges[c as usize];
            let w = (k1 - k0) as usize;
            let block = &report.results[rank as usize];
            debug_assert_eq!(block.len(), (r1 - r0) as usize * w);
            for (i, row) in (r0..r1).enumerate() {
                y.row_mut(row)[k0 as usize..k1 as usize]
                    .copy_from_slice(&block[i * w..(i + 1) * w]);
            }
        }
        Ok(SpmmRun {
            y,
            stats: report.stats,
            iters,
        })
    }

    fn predict_volume(&self, k: u32) -> CommEstimate {
        let q = self.q;
        let qs = q as usize;
        let col_ranges = even_ranges(k, q);
        let mut est = CommEstimate::default();
        for rank in 0..self.p {
            let (r, c) = (rank / q, rank % q);
            let (r0, r1) = block_range(self.n, self.rb, r);
            let my_rows = (r1 - r0) as f64;
            let (ac0, ac1) = block_range(self.n, self.rb, c);
            let bcast_rows = (ac1 - ac0) as f64;
            let mut bytes = 0.0;
            let mut msgs = 0.0;
            let mut flops = 0.0;
            for f in 0..q {
                let (f0, f1) = col_ranges[f as usize];
                let fkb = self.dtype.bytes() as f64 * (f1 - f0) as f64;
                // 1. Route X(r, f) to the diagonal of grid column r.
                if c == f && r != c {
                    bytes += my_rows * fkb;
                    msgs += 1.0;
                }
                if r == c && c != f {
                    bytes += my_rows * fkb;
                    msgs += 1.0;
                }
                // 2. Broadcast X(c, f) down grid column c from the
                //    diagonal member (group index c).
                let vr = ((r + q - c) % q) as usize;
                let children = binomial_children(vr, qs) as f64;
                bytes += children * bcast_rows * fkb;
                msgs += children;
                if vr != 0 {
                    bytes += bcast_rows * fkb;
                    msgs += 1.0;
                }
                // 3. Partial product A(r, c) · X(c, f).
                flops += spmm::spmm_flops(&self.tiles[rank as usize], f1 - f0);
                // 4. Reduce across the grid row onto member f.
                let rvr = ((c + q - f) % q) as usize;
                let rchildren = binomial_children(rvr, qs) as f64;
                bytes += rchildren * my_rows * fkb;
                msgs += rchildren;
                if rvr != 0 {
                    bytes += my_rows * fkb;
                    msgs += 1.0;
                }
            }
            est.envelope(bytes, msgs, flops);
        }
        est
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::iterated_spmm;
    use amd_graph::generators::{basic, random};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn check(a: &CsrMatrix<f64>, p: u32, k: u32, iters: u32) {
        let alg = A2dSpmm::new(a, p).unwrap();
        let x = DenseMatrix::from_fn(a.rows(), k, |r, c| (((r * 11 + c * 3) % 13) as f64) - 6.0);
        let run = alg.run(&x, iters).unwrap();
        let expected = iterated_spmm(a, &x, iters).unwrap();
        let err = run.y.max_abs_diff(&expected).unwrap();
        assert!(err < 1e-6, "p={p} k={k} iters={iters}: err {err}");
    }

    #[test]
    fn matches_reference_on_grid() {
        let a: CsrMatrix<f64> = basic::grid_2d(7, 7).to_adjacency();
        check(&a, 4, 4, 1);
        check(&a, 9, 6, 2);
        check(&a, 16, 8, 1);
    }

    #[test]
    fn matches_reference_on_random_tree() {
        let mut rng = ChaCha8Rng::seed_from_u64(23);
        let a: CsrMatrix<f64> = random::random_tree(60, &mut rng).to_adjacency();
        check(&a, 4, 5, 2);
        check(&a, 9, 3, 1);
    }

    #[test]
    fn single_rank() {
        let a: CsrMatrix<f64> = basic::cycle(10).to_adjacency();
        check(&a, 1, 3, 2);
    }

    #[test]
    fn k_smaller_than_grid_side() {
        // Feature blocks become ragged/empty: q = 4 but k = 2.
        let a: CsrMatrix<f64> = basic::path(20).to_adjacency();
        check(&a, 16, 2, 1);
    }

    #[test]
    fn storage_is_smaller_than_15d_fully_replicated() {
        // The §3 comparison: 2D holds X once; 1.5D with c = √p holds √p
        // copies. Verified through per-rank received volume: the 2D
        // broadcast moves nk/√p per rank per iteration (+log factors) vs
        // 1.5D's nk/c.
        let a: CsrMatrix<f64> = basic::grid_2d(12, 12).to_adjacency();
        let x = DenseMatrix::from_fn(144, 16, |r, _| r as f64);
        let r2 = A2dSpmm::new(&a, 16).unwrap().run(&x, 1).unwrap();
        // Just assert it ran and accounted volume; the comparative claim
        // is exercised by the ablation bench.
        assert!(r2.stats.max_volume() > 0);
    }

    #[test]
    #[should_panic(expected = "square rank count")]
    fn non_square_p_rejected() {
        let a: CsrMatrix<f64> = basic::path(4).to_adjacency();
        let _ = A2dSpmm::new(&a, 6);
    }
}
