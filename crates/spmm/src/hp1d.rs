//! HP-1D: the 1D hypergraph-partitioning baseline (§7.1, after Kaya et
//! al.'s PETSc-style SpMV variant lifted to SpMM).
//!
//! The matrix is symmetrically permuted so that each part's rows are
//! contiguous, then split row-wise. One iteration per rank:
//!
//! 1. send the locally-owned X rows other ranks need (precomputed lists),
//! 2. compute the *local* SpMM (columns within the own range) — this
//!    overlaps with the incoming transfers,
//! 3. receive the remote rows and compute the *non-local* SpMM.
//!
//! The fetched row set of a part is exactly the partition's "external
//! rows" metric; on star-heavy graphs it degenerates to nearly all of `X`
//! for the hub's part, which is the scaling failure the paper reports.

use crate::traits::{apply_sigma, CommEstimate, DistSpmm, Sigma, SpmmRun};
use amd_comm::{CostModel, Machine, MachineExec};
use amd_partition::Partition;
use amd_sparse::{
    spmm, CooMatrix, CsrMatrix, DenseMatrix, Dtype, Permutation, SparseError, SparseResult,
};

/// HP-1D SpMM bound to a matrix and a partition.
pub struct Hp1dSpmm {
    n: u32,
    p: u32,
    /// Permutation sorting vertices by part.
    pi: Permutation,
    /// Part row ranges in permuted coordinates: rank i owns `[starts[i], starts[i+1])`.
    starts: Vec<u32>,
    /// Local submatrix per rank (columns inside the own range, shifted).
    a_local: Vec<CsrMatrix<f64>>,
    /// External submatrix per rank (columns renumbered to the fetch list).
    a_ext: Vec<CsrMatrix<f64>>,
    /// Per rank: `(owner, rows)` to fetch, ascending owner; `rows` are
    /// permuted row ids owned by `owner`, ascending.
    fetches: Vec<Vec<(u32, Vec<u32>)>>,
    /// Per rank: `(requester, rows)` to send, mirror of `fetches`.
    serves: Vec<Vec<(u32, Vec<u32>)>>,
    cost: CostModel,
    dtype: Dtype,
    exec: MachineExec,
}

impl Hp1dSpmm {
    /// Prepares the distribution of `a` over the parts of `partition`
    /// (one rank per part).
    pub fn new(a: &CsrMatrix<f64>, partition: &Partition) -> SparseResult<Self> {
        if a.rows() != a.cols() {
            return Err(SparseError::ShapeMismatch {
                left: (a.rows(), a.cols()),
                right: (a.cols(), a.rows()),
            });
        }
        assert_eq!(
            partition.n(),
            a.rows(),
            "partition size must match the matrix"
        );
        let n = a.rows();
        let p = partition.parts;
        let pi = partition.to_permutation();
        let ap = pi.apply_symmetric(a)?;
        let sizes = partition.sizes();
        let mut starts = Vec::with_capacity(p as usize + 1);
        starts.push(0u32);
        for s in &sizes {
            starts.push(starts.last().unwrap() + s);
        }
        let owner_of = |row: u32| -> u32 { (starts.partition_point(|&s| s <= row) - 1) as u32 };
        let mut a_local = Vec::with_capacity(p as usize);
        let mut a_ext = Vec::with_capacity(p as usize);
        let mut fetches: Vec<Vec<(u32, Vec<u32>)>> = Vec::with_capacity(p as usize);
        let mut serves: Vec<Vec<(u32, Vec<u32>)>> = vec![Vec::new(); p as usize];
        for rank in 0..p {
            let (s, e) = (starts[rank as usize], starts[rank as usize + 1]);
            // Distinct external columns, ascending (= grouped by owner,
            // because parts are contiguous in permuted coordinates).
            let mut ext_cols: Vec<u32> = Vec::new();
            for r in s..e {
                for &c in ap.row_indices(r) {
                    if !(s..e).contains(&c) {
                        ext_cols.push(c);
                    }
                }
            }
            ext_cols.sort_unstable();
            ext_cols.dedup();
            let col_index = |c: u32| -> u32 {
                ext_cols
                    .binary_search(&c)
                    .expect("external column collected") as u32
            };
            let mut local = CooMatrix::new(e - s, e - s);
            let mut ext = CooMatrix::new(e - s, ext_cols.len().max(1) as u32);
            for r in s..e {
                for (&c, &v) in ap.row_indices(r).iter().zip(ap.row_values(r)) {
                    if (s..e).contains(&c) {
                        local.push(r - s, c - s, v)?;
                    } else {
                        ext.push(r - s, col_index(c), v)?;
                    }
                }
            }
            a_local.push(local.to_csr());
            a_ext.push(ext.to_csr());
            // Group the fetch list by owner.
            let mut by_owner: Vec<(u32, Vec<u32>)> = Vec::new();
            for &c in &ext_cols {
                let o = owner_of(c);
                match by_owner.last_mut() {
                    Some((last, rows)) if *last == o => rows.push(c),
                    _ => by_owner.push((o, vec![c])),
                }
            }
            for (o, rows) in &by_owner {
                serves[*o as usize].push((rank, rows.clone()));
            }
            fetches.push(by_owner);
        }
        Ok(Self {
            n,
            p,
            pi,
            starts,
            a_local,
            a_ext,
            fetches,
            serves,
            cost: CostModel::default(),
            dtype: Dtype::default(),
            exec: MachineExec::default(),
        })
    }

    /// Overrides the cost model.
    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Selects how machine ranks obtain threads (shared pool default).
    pub fn with_exec(mut self, exec: MachineExec) -> Self {
        self.exec = exec;
        self
    }

    /// Selects the serving precision: local tile multiplies run at
    /// `dtype` ([`spmm::spmm_acc_dtype`]) and [`predict_volume`] charges
    /// `dtype` bytes per value moved.
    ///
    /// The simulated machine still ships `f64` buffers (the narrowing is
    /// emulated value-wise), so at [`Dtype::F32`] the *accounted* volume
    /// reads ~2× the prediction — the prediction reflects what a real
    /// narrowed wire costs.
    ///
    /// [`predict_volume`]: DistSpmm::predict_volume
    pub fn with_dtype(mut self, dtype: Dtype) -> Self {
        self.dtype = dtype;
        self
    }

    /// Largest per-rank external fetch (rows of X), the partition-quality
    /// bottleneck.
    pub fn max_external_rows(&self) -> usize {
        self.fetches
            .iter()
            .map(|f| f.iter().map(|(_, rows)| rows.len()).sum::<usize>())
            .max()
            .unwrap_or(0)
    }
}

impl DistSpmm for Hp1dSpmm {
    fn set_exec(&mut self, exec: MachineExec) {
        self.exec = exec;
    }

    fn name(&self) -> String {
        format!("HP-1D p={}", self.p)
    }

    fn ranks(&self) -> u32 {
        self.p
    }

    fn run_sigma(
        &self,
        x: &DenseMatrix<f64>,
        iters: u32,
        sigma: Option<Sigma>,
    ) -> SparseResult<SpmmRun> {
        if x.rows() != self.n {
            return Err(SparseError::ShapeMismatch {
                left: (self.n, self.n),
                right: (x.rows(), x.cols()),
            });
        }
        let k = x.cols();
        let machine = Machine::new(self.p)
            .with_cost(self.cost)
            .with_exec_mode(self.exec.clone());
        let report = machine.run(|ctx| {
            let rank = ctx.rank();
            let (s, e) = (self.starts[rank as usize], self.starts[rank as usize + 1]);
            let rows = (e - s) as usize;
            // Own X rows in permuted order (initial layout, free).
            let mut x_cur: Vec<f64> = Vec::with_capacity(rows * k as usize);
            for q in s..e {
                x_cur.extend_from_slice(x.row(self.pi.vertex_at(q)));
            }
            for iter in 0..iters {
                let tag = iter as u64;
                // 1. Serve remote requests first (sends never block).
                for (requester, req_rows) in &self.serves[rank as usize] {
                    let mut buf = Vec::with_capacity(req_rows.len() * k as usize);
                    for &q in req_rows {
                        let local = (q - s) as usize;
                        buf.extend_from_slice(&x_cur[local * k as usize..(local + 1) * k as usize]);
                    }
                    ctx.send(*requester, tag, buf);
                }
                // 2. Local SpMM overlaps with the transfers.
                let xd = DenseMatrix::from_vec(e - s, k, x_cur.clone()).expect("own block shape");
                let mut partial = spmm::spmm_dtype(&self.a_local[rank as usize], &xd, self.dtype)
                    .expect("local tile shapes align");
                ctx.compute_flops(spmm::spmm_flops(&self.a_local[rank as usize], k));
                // 3. Receive external rows (ascending owner = ascending
                //    compact index) and run the non-local SpMM.
                let mut ext_x: Vec<f64> = Vec::new();
                for (owner, req_rows) in &self.fetches[rank as usize] {
                    let buf: Vec<f64> = ctx.recv(*owner, tag);
                    debug_assert_eq!(buf.len(), req_rows.len() * k as usize);
                    ext_x.extend_from_slice(&buf);
                }
                let a_ext = &self.a_ext[rank as usize];
                if !ext_x.is_empty() {
                    let ed = DenseMatrix::from_vec(a_ext.cols(), k, ext_x)
                        .expect("external block shape");
                    spmm::spmm_acc_dtype(a_ext, &ed, &mut partial, self.dtype)
                        .expect("external tile shapes align");
                    ctx.compute_flops(spmm::spmm_flops(a_ext, k));
                }
                x_cur = partial.into_vec();
                apply_sigma(&mut x_cur, sigma);
            }
            x_cur
        });
        // Assemble in original row order.
        let mut y = DenseMatrix::zeros(self.n, k);
        for rank in 0..self.p {
            let (s, e) = (self.starts[rank as usize], self.starts[rank as usize + 1]);
            let block = &report.results[rank as usize];
            for (offset, q) in (s..e).enumerate() {
                let v = self.pi.vertex_at(q);
                y.row_mut(v)
                    .copy_from_slice(&block[offset * k as usize..(offset + 1) * k as usize]);
            }
        }
        Ok(SpmmRun {
            y,
            stats: report.stats,
            iters,
        })
    }

    fn predict_volume(&self, k: u32) -> CommEstimate {
        let kb = self.dtype.bytes() as f64 * k as f64;
        let mut est = CommEstimate::default();
        for rank in 0..self.p as usize {
            // Point-to-point fetch/serve lists: exact byte and message
            // counts straight from the plan.
            let mut bytes = 0.0;
            let mut msgs = 0.0;
            for (_, rows) in &self.serves[rank] {
                bytes += rows.len() as f64 * kb;
                msgs += 1.0;
            }
            for (_, rows) in &self.fetches[rank] {
                bytes += rows.len() as f64 * kb;
                msgs += 1.0;
            }
            let flops =
                spmm::spmm_flops(&self.a_local[rank], k) + spmm::spmm_flops(&self.a_ext[rank], k);
            est.envelope(bytes, msgs, flops);
        }
        est
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::iterated_spmm;
    use amd_graph::generators::{basic, datasets};
    use amd_partition::{block_partition, hype_partition, HypeConfig};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn check(a: &CsrMatrix<f64>, partition: &Partition, k: u32, iters: u32) {
        let alg = Hp1dSpmm::new(a, partition).unwrap();
        let x = DenseMatrix::from_fn(a.rows(), k, |r, c| (((r + c) % 5) as f64) - 2.0);
        let run = alg.run(&x, iters).unwrap();
        let expected = iterated_spmm(a, &x, iters).unwrap();
        let err = run.y.max_abs_diff(&expected).unwrap();
        assert!(err < 1e-6, "err {err}");
    }

    #[test]
    fn matches_reference_with_block_partition() {
        let a: CsrMatrix<f64> = basic::grid_2d(6, 6).to_adjacency();
        check(&a, &block_partition(36, 4), 3, 1);
        check(&a, &block_partition(36, 5), 2, 2);
    }

    #[test]
    fn matches_reference_with_hype_partition() {
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let g = datasets::genbank_like(400, &mut rng);
        let a: CsrMatrix<f64> = g.to_adjacency();
        let part = hype_partition(&g, 6, &HypeConfig::default(), &mut rng);
        check(&a, &part, 4, 2);
    }

    #[test]
    fn single_part() {
        let a: CsrMatrix<f64> = basic::cycle(12).to_adjacency();
        check(&a, &block_partition(12, 1), 2, 2);
    }

    #[test]
    fn star_graph_fetch_bottleneck() {
        // The hub's part must fetch (or serve) nearly everything.
        let g = basic::star(128);
        let a: CsrMatrix<f64> = g.to_adjacency();
        let part = block_partition(128, 4);
        let alg = Hp1dSpmm::new(&a, &part).unwrap();
        assert!(
            alg.max_external_rows() >= 96,
            "external rows {} below star bound",
            alg.max_external_rows()
        );
        check(&a, &part, 2, 1);
    }

    #[test]
    fn good_partition_beats_random_partition_volume() {
        let g = basic::grid_2d(16, 16);
        let a: CsrMatrix<f64> = g.to_adjacency();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let hype = hype_partition(&g, 8, &HypeConfig::default(), &mut rng);
        let rand = amd_partition::random_partition(256, 8, &mut rng);
        let x = DenseMatrix::from_fn(256, 4, |r, _| r as f64);
        let vh = Hp1dSpmm::new(&a, &hype).unwrap().run(&x, 1).unwrap();
        let vr = Hp1dSpmm::new(&a, &rand).unwrap().run(&x, 1).unwrap();
        assert!(
            vh.stats.max_volume() < vr.stats.max_volume(),
            "hype volume {} !< random volume {}",
            vh.stats.max_volume(),
            vr.stats.max_volume()
        );
    }

    #[test]
    fn empty_part_handled() {
        // A partition where one part gets no vertices.
        let assign = vec![0, 0, 2, 2, 2, 0];
        let part = Partition::new(assign, 3);
        let a: CsrMatrix<f64> = basic::path(6).to_adjacency();
        check(&a, &part, 2, 1);
    }
}
