//! Verification helpers: run an algorithm against the serial reference.

use crate::reference::iterated_spmm;
use crate::traits::DistSpmm;
use amd_sparse::{CsrMatrix, DenseMatrix, SparseResult};

/// Runs `alg` for `iters` iterations on a deterministic feature matrix and
/// returns the maximum absolute deviation from the serial reference.
pub fn deviation_from_reference(
    alg: &dyn DistSpmm,
    a: &CsrMatrix<f64>,
    k: u32,
    iters: u32,
) -> SparseResult<f64> {
    let x = DenseMatrix::from_fn(a.rows(), k, |r, c| (((r * 31 + c * 17) % 13) as f64) - 6.0);
    let run = alg.run(&x, iters)?;
    let expected = iterated_spmm(a, &x, iters)?;
    run.y.max_abs_diff(&expected)
}

/// Asserts the algorithm matches the reference within `tol`.
pub fn assert_matches_reference(
    alg: &dyn DistSpmm,
    a: &CsrMatrix<f64>,
    k: u32,
    iters: u32,
    tol: f64,
) {
    let err = deviation_from_reference(alg, a, k, iters)
        .unwrap_or_else(|e| panic!("{} failed: {e}", alg.name()));
    assert!(
        err <= tol,
        "{} deviates from reference by {err}",
        alg.name()
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::a15d::A15dSpmm;
    use amd_graph::generators::basic;

    #[test]
    fn verifier_accepts_correct_algorithm() {
        let a: CsrMatrix<f64> = basic::cycle(24).to_adjacency();
        let alg = A15dSpmm::new(&a, 4, 2).unwrap();
        assert_matches_reference(&alg, &a, 3, 2, 1e-9);
        assert!(deviation_from_reference(&alg, &a, 2, 1).unwrap() < 1e-9);
    }
}
