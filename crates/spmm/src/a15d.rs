//! The 1.5D A-stationary algorithm (§3 of the paper, after Selvitopi et
//! al. and Tripathy et al.), with the 1D algorithm as the `c = 1` special
//! case.
//!
//! Processors form a `p/c × c` grid. `A` is tiled into `p/c` row blocks ×
//! `c` column blocks, one tile per processor (stationary). `X` is split
//! into `p/c` row tiles, tile `i` replicated on the `c` processors of grid
//! row `i`. Each grid column `j` needs the `⌈(p/c)/c⌉` X-tiles covering
//! its column block; these are broadcast down the column one round at a
//! time, each processor accumulating `A(i,j)·X_t`. A ring all-reduce
//! across each grid row then produces `Y_i` replicated exactly like the
//! input — so iterations chain without data movement.

use crate::layout::block_range;
use crate::traits::{apply_sigma, binomial_children, CommEstimate, DistSpmm, Sigma, SpmmRun};
use amd_comm::{CostModel, Group, Machine, MachineExec};
use amd_sparse::{spmm, CsrMatrix, DenseMatrix, Dtype, SparseError, SparseResult};

/// The paper's replication choice for the 1.5D baseline: the largest
/// divisor of `p` that is at most `⌊√p⌋` ("we use c = ⌊√p⌋ in our
/// experiments", rounded to a divisor). Shared by the bench harness and
/// the serving planner so benchmarked and served configurations match.
pub fn best_c(p: u32) -> u32 {
    let target = (p as f64).sqrt().floor() as u32;
    (1..=target.max(1))
        .rev()
        .find(|c| p.is_multiple_of(*c))
        .unwrap_or(1)
}

/// 1.5D A-stationary SpMM bound to a matrix.
pub struct A15dSpmm {
    n: u32,
    p: u32,
    c: u32,
    /// Grid rows `R = p/c`.
    grid_rows: u32,
    /// Row-block height `⌈n/R⌉` (also the X tile height).
    rb: u32,
    /// X tiles per column block `⌈R/c⌉` = rounds per iteration.
    tiles_per_col: u32,
    /// `tiles[rank]` = per-round submatrices `(tile index t, A(i, cols of t))`.
    tiles: Vec<Vec<(u32, CsrMatrix<f64>)>>,
    cost: CostModel,
    dtype: Dtype,
    exec: MachineExec,
}

impl A15dSpmm {
    /// Prepares the stationary distribution of `a` on `p` ranks with
    /// replication factor `c` (`c` must divide `p`).
    pub fn new(a: &CsrMatrix<f64>, p: u32, c: u32) -> SparseResult<Self> {
        if a.rows() != a.cols() {
            return Err(SparseError::ShapeMismatch {
                left: (a.rows(), a.cols()),
                right: (a.cols(), a.rows()),
            });
        }
        assert!(p >= 1 && c >= 1, "need p, c >= 1");
        assert!(
            p.is_multiple_of(c),
            "replication factor c = {c} must divide p = {p}"
        );
        let n = a.rows();
        let grid_rows = p / c;
        let rb = n.div_ceil(grid_rows).max(1);
        let tiles_per_col = grid_rows.div_ceil(c);
        let mut tiles = Vec::with_capacity(p as usize);
        for rank in 0..p {
            let (i, j) = (rank / c, rank % c);
            let (r0, r1) = block_range(n, rb, i);
            let mut mine = Vec::new();
            for t in (j * tiles_per_col)..((j + 1) * tiles_per_col).min(grid_rows) {
                let (c0, c1) = block_range(n, rb, t);
                if r0 < r1 && c0 < c1 {
                    mine.push((t, a.submatrix(r0, r1, c0, c1)));
                }
            }
            tiles.push(mine);
        }
        Ok(Self {
            n,
            p,
            c,
            grid_rows,
            rb,
            tiles_per_col,
            tiles,
            cost: CostModel::default(),
            dtype: Dtype::default(),
            exec: MachineExec::default(),
        })
    }

    /// Overrides the cost model.
    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Selects how machine ranks obtain threads (shared pool default).
    pub fn with_exec(mut self, exec: MachineExec) -> Self {
        self.exec = exec;
        self
    }

    /// Selects the serving precision: local tile multiplies run at
    /// `dtype` ([`spmm::spmm_acc_dtype`]) and [`predict_volume`] charges
    /// `dtype` bytes per value moved.
    ///
    /// The simulated machine still ships `f64` buffers (the narrowing is
    /// emulated value-wise), so at [`Dtype::F32`] the *accounted* volume
    /// reads ~2× the prediction — the prediction reflects what a real
    /// narrowed wire costs.
    ///
    /// [`predict_volume`]: DistSpmm::predict_volume
    pub fn with_dtype(mut self, dtype: Dtype) -> Self {
        self.dtype = dtype;
        self
    }

    /// The replication factor.
    pub fn c(&self) -> u32 {
        self.c
    }
}

impl DistSpmm for A15dSpmm {
    fn set_exec(&mut self, exec: MachineExec) {
        self.exec = exec;
    }

    fn name(&self) -> String {
        if self.c == 1 {
            format!("1D p={}", self.p)
        } else {
            format!("1.5D p={} c={}", self.p, self.c)
        }
    }

    fn ranks(&self) -> u32 {
        self.p
    }

    fn run_sigma(
        &self,
        x: &DenseMatrix<f64>,
        iters: u32,
        sigma: Option<Sigma>,
    ) -> SparseResult<SpmmRun> {
        if x.rows() != self.n {
            return Err(SparseError::ShapeMismatch {
                left: (self.n, self.n),
                right: (x.rows(), x.cols()),
            });
        }
        let k = x.cols();
        let machine = Machine::new(self.p)
            .with_cost(self.cost)
            .with_exec_mode(self.exec.clone());
        let report = machine.run(|ctx| {
            let rank = ctx.rank();
            let (i, j) = (rank / self.c, rank % self.c);
            let col_group =
                Group::new(ctx, (0..self.grid_rows).map(|gi| gi * self.c + j).collect());
            let row_group = Group::new(ctx, (0..self.c).map(|gj| i * self.c + gj).collect());
            // X tile i, replicated across grid row i (initial layout, free).
            let (r0, r1) = block_range(self.n, self.rb, i);
            let mut x_cur: Vec<f64> = x.rows_slice(r0, r1).to_vec();
            let my_rows = (r1 - r0) as usize;
            for _ in 0..iters {
                let mut partial = vec![0.0f64; my_rows * k as usize];
                let mut tile_iter = self.tiles[rank as usize].iter();
                for t in
                    (j * self.tiles_per_col)..((j + 1) * self.tiles_per_col).min(self.grid_rows)
                {
                    // Broadcast X tile t down grid column j from grid row t.
                    let payload = if i == t { Some(x_cur.clone()) } else { None };
                    let xt = col_group.broadcast(ctx, t as usize, payload);
                    // Multiply the matching stationary submatrix.
                    if let Some((tt, sub)) = tile_iter.as_slice().first() {
                        if *tt == t && !xt.is_empty() && my_rows > 0 {
                            tile_iter.next();
                            let (c0, c1) = block_range(self.n, self.rb, t);
                            let xd = DenseMatrix::from_vec(c1 - c0, k, xt)
                                .expect("broadcast tile has block shape");
                            let mut pd = DenseMatrix::from_vec(r1 - r0, k, partial)
                                .expect("partial buffer sized to block");
                            spmm::spmm_acc_dtype(sub, &xd, &mut pd, self.dtype)
                                .expect("stationary tile shapes align");
                            ctx.compute_flops(spmm::spmm_flops(sub, k));
                            partial = pd.into_vec();
                        }
                    }
                }
                // Row-wise ring all-reduce leaves Y_i replicated like X
                // was. Row-aligned chunks keep the reduction order
                // independent of k, so batched multi-RHS runs bit-match
                // single-column runs.
                x_cur = row_group.allreduce_sum_ring_aligned(ctx, partial, k as usize);
                apply_sigma(&mut x_cur, sigma);
            }
            // Grid column 0 returns the final blocks for host assembly.
            if j == 0 {
                x_cur
            } else {
                Vec::new()
            }
        });
        // Assemble Y from grid column 0.
        let mut y = DenseMatrix::zeros(self.n, k);
        for i in 0..self.grid_rows {
            let (r0, r1) = block_range(self.n, self.rb, i);
            let block = &report.results[(i * self.c) as usize];
            debug_assert_eq!(block.len(), ((r1 - r0) * k) as usize);
            y.data_mut()[(r0 * k) as usize..(r1 * k) as usize].copy_from_slice(block);
        }
        Ok(SpmmRun {
            y,
            stats: report.stats,
            iters,
        })
    }

    fn predict_volume(&self, k: u32) -> CommEstimate {
        let kb = self.dtype.bytes() as f64 * k as f64;
        let g = self.grid_rows as usize;
        let mut est = CommEstimate::default();
        for rank in 0..self.p {
            let (i, j) = (rank / self.c, rank % self.c);
            let (r0, r1) = block_range(self.n, self.rb, i);
            let my_bytes = (r1 - r0) as f64 * kb;
            let mut bytes = 0.0;
            let mut msgs = 0.0;
            // Per-round broadcast of X tile t down grid column j from grid
            // row t (binomial over the grid_rows members).
            for t in (j * self.tiles_per_col)..((j + 1) * self.tiles_per_col).min(self.grid_rows) {
                let (t0, t1) = block_range(self.n, self.rb, t);
                let tile_bytes = (t1 - t0) as f64 * kb;
                let vr = ((i + self.grid_rows - t) % self.grid_rows) as usize;
                let children = binomial_children(vr, g) as f64;
                bytes += children * tile_bytes;
                msgs += children;
                if vr != 0 {
                    bytes += tile_bytes;
                    msgs += 1.0;
                }
            }
            // Ring all-reduce across the c-member grid row: each member
            // sends and receives 2·(c−1)/c of the payload in 2·(c−1)
            // messages each way.
            if self.c > 1 {
                let frac = 2.0 * (self.c - 1) as f64 / self.c as f64;
                bytes += 2.0 * frac * my_bytes;
                msgs += 4.0 * (self.c - 1) as f64;
            }
            let flops: f64 = self.tiles[rank as usize]
                .iter()
                .map(|(_, sub)| spmm::spmm_flops(sub, k))
                .sum();
            est.envelope(bytes, msgs, flops);
        }
        est
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::iterated_spmm;
    use amd_graph::generators::{basic, random};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn check(a: &CsrMatrix<f64>, p: u32, c: u32, k: u32, iters: u32) {
        let alg = A15dSpmm::new(a, p, c).unwrap();
        let x = DenseMatrix::from_fn(a.rows(), k, |r, cc| (((r * 13 + cc * 7) % 11) as f64) - 5.0);
        let run = alg.run(&x, iters).unwrap();
        let expected = iterated_spmm(a, &x, iters).unwrap();
        let err = run.y.max_abs_diff(&expected).unwrap();
        assert!(err < 1e-6, "p={p} c={c} k={k} iters={iters}: err {err}");
    }

    #[test]
    fn matches_reference_on_grid() {
        let a: CsrMatrix<f64> = basic::grid_2d(8, 8).to_adjacency();
        check(&a, 4, 1, 3, 1);
        check(&a, 4, 2, 3, 1);
        check(&a, 8, 2, 2, 2);
        check(&a, 16, 4, 1, 1);
    }

    #[test]
    fn matches_reference_on_random_tree() {
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        let a: CsrMatrix<f64> = random::random_tree(100, &mut rng).to_adjacency();
        check(&a, 6, 2, 4, 2);
        check(&a, 9, 3, 2, 1);
    }

    #[test]
    fn zero_column_operand_returns_empty_result() {
        // k = 0 means empty ring payloads on every rank; the run must
        // return an empty Y, not panic in the aligned all-reduce.
        let a: CsrMatrix<f64> = basic::grid_2d(6, 6).to_adjacency();
        let alg = A15dSpmm::new(&a, 4, 2).unwrap();
        let run = alg.run(&DenseMatrix::zeros(36, 0), 1).unwrap();
        assert_eq!(run.y.rows(), 36);
        assert_eq!(run.y.cols(), 0);
    }

    #[test]
    fn single_rank_degenerate() {
        let a: CsrMatrix<f64> = basic::path(10).to_adjacency();
        check(&a, 1, 1, 2, 3);
    }

    #[test]
    fn ragged_blocks() {
        // n = 13 not divisible by grid rows.
        let a: CsrMatrix<f64> = basic::cycle(13).to_adjacency();
        check(&a, 4, 2, 2, 1);
        check(&a, 8, 4, 1, 2);
    }

    #[test]
    fn more_ranks_than_rows() {
        let a: CsrMatrix<f64> = basic::path(5).to_adjacency();
        check(&a, 8, 2, 2, 1);
    }

    #[test]
    fn replication_reduces_broadcast_volume() {
        // Higher c → fewer broadcast rounds per column → less received
        // broadcast volume per rank (the O(β·nk/c) term).
        let a: CsrMatrix<f64> = basic::grid_2d(16, 16).to_adjacency();
        let x = DenseMatrix::from_fn(256, 8, |r, _| r as f64);
        let v1 = A15dSpmm::new(&a, 16, 1).unwrap().run(&x, 1).unwrap();
        let v4 = A15dSpmm::new(&a, 16, 4).unwrap().run(&x, 1).unwrap();
        assert!(
            v4.stats.max_volume() < v1.stats.max_volume(),
            "c=4 volume {} !< c=1 volume {}",
            v4.stats.max_volume(),
            v1.stats.max_volume()
        );
    }

    #[test]
    fn c_must_divide_p() {
        let a: CsrMatrix<f64> = basic::path(4).to_adjacency();
        let result = std::panic::catch_unwind(|| A15dSpmm::new(&a, 6, 4));
        assert!(result.is_err());
    }

    #[test]
    fn shape_mismatch_rejected() {
        let a: CsrMatrix<f64> = basic::path(4).to_adjacency();
        let alg = A15dSpmm::new(&a, 2, 1).unwrap();
        let x = DenseMatrix::<f64>::zeros(5, 2);
        assert!(alg.run(&x, 1).is_err());
    }
}
