//! Storage accounting (§6.2 of the paper, Lemma 7).
//!
//! The arrow decomposition's second headline claim (besides bandwidth) is
//! memory: a `c`-replicated 1.5D decomposition stores `c` copies of the
//! feature matrix, while the arrow layout stores `X` once —
//! `m + O(nk)` total (Lemma 7), a `Θ(√p)` saving at full replication.
//! This module computes per-rank and total storage for each algorithm so
//! the claim is checkable mechanically, using the paper's accounting: CSR
//! costs `nnz` values + `nnz` indices + row offsets, dense blocks cost
//! `rows · k` values (unit = one stored word).

use crate::layout::{block_count, block_range};
use amd_sparse::CsrMatrix;
use arrow_core::ArrowDecomposition;

/// Storage words of a CSR block: values + column indices + row offsets.
pub fn csr_words(m: &CsrMatrix<f64>) -> u64 {
    2 * m.nnz() as u64 + m.rows() as u64 + 1
}

/// Per-algorithm storage summary (in stored words).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StorageReport {
    /// Sparse-matrix words summed over all ranks.
    pub sparse_total: u64,
    /// Dense (feature + output) words summed over all ranks.
    pub dense_total: u64,
    /// Largest per-rank total.
    pub max_per_rank: u64,
}

impl StorageReport {
    /// Total words across the machine.
    pub fn total(&self) -> u64 {
        self.sparse_total + self.dense_total
    }
}

/// Storage of the arrow layout (Figure 2): rank `i` of each level holds
/// three tiles plus one `b × k` slice of `D` and one of `C`.
pub fn arrow_storage(d: &ArrowDecomposition, k: u32) -> StorageReport {
    let b = d.b();
    let (mut sparse_total, mut dense_total, mut max_per_rank) = (0u64, 0u64, 0u64);
    for level in d.levels() {
        let arrow = level.to_arrow(b).expect("valid decomposition");
        let nb = block_count(level.active_n, b);
        for i in 0..nb {
            let (r0, r1) = block_range(level.active_n, b, i);
            let mut s = csr_words(arrow.row_tile(i));
            if i > 0 {
                s += csr_words(arrow.col_tile(i)) + csr_words(arrow.diag_tile(i));
            }
            // D(i) and C(i); rank 0 additionally aggregates C(0) (already
            // its own block) and holds the broadcast D(0) copy.
            let mut dense = 2 * (r1 - r0) as u64 * k as u64;
            if i > 0 {
                let (z0, z1) = block_range(level.active_n, b, 0);
                dense += (z1 - z0) as u64 * k as u64; // received D(0)
            }
            sparse_total += s;
            dense_total += dense;
            max_per_rank = max_per_rank.max(s + dense);
        }
    }
    StorageReport {
        sparse_total,
        dense_total,
        max_per_rank,
    }
}

/// Storage of the 1.5D A-stationary layout: each rank holds its `A` tile,
/// its replicated X tile, the in-flight broadcast tile, and the partial Y.
pub fn a15d_storage(a: &CsrMatrix<f64>, p: u32, c: u32, k: u32) -> StorageReport {
    assert!(p.is_multiple_of(c));
    let n = a.rows();
    let grid_rows = p / c;
    let rb = n.div_ceil(grid_rows).max(1);
    let (mut sparse_total, mut dense_total, mut max_per_rank) = (0u64, 0u64, 0u64);
    for rank in 0..p {
        let (i, j) = (rank / c, rank % c);
        let (r0, r1) = block_range(n, rb, i);
        let (c0, c1) = block_range(n, rb.saturating_mul(grid_rows.div_ceil(c)), j);
        let tile = a.submatrix(r0, r1, c0.min(n), c1.min(n));
        let s = csr_words(&tile);
        // X tile (replicated copy), one broadcast buffer, partial Y.
        let dense = 3 * (r1 - r0) as u64 * k as u64;
        sparse_total += s;
        dense_total += dense;
        max_per_rank = max_per_rank.max(s + dense);
    }
    StorageReport {
        sparse_total,
        dense_total,
        max_per_rank,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amd_graph::generators::datasets;
    use arrow_core::{la_decompose, DecomposeConfig, RandomForestLa};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn mawi(n: u32) -> CsrMatrix<f64> {
        let mut rng = ChaCha8Rng::seed_from_u64(44);
        datasets::mawi_like(n, &mut rng).to_adjacency()
    }

    #[test]
    fn csr_word_counting() {
        let a = CsrMatrix::<f64>::identity(5);
        assert_eq!(csr_words(&a), 2 * 5 + 6);
        let z = CsrMatrix::<f64>::zeros(3, 3);
        assert_eq!(csr_words(&z), 4);
    }

    #[test]
    fn lemma7_arrow_dense_storage_is_near_nk() {
        // Lemma 7: total storage m + O(nk) — dense words must be a small
        // multiple of nk, independent of p.
        let n = 8192u32;
        let k = 16u32;
        let a = mawi(n);
        for b in [512u32, 1024, 2048] {
            let d = la_decompose(
                &a,
                &DecomposeConfig::with_width(b),
                &mut RandomForestLa::new(2),
            )
            .unwrap();
            let rep = arrow_storage(&d, k);
            let nk = n as u64 * k as u64;
            assert!(
                rep.dense_total <= 4 * nk,
                "b={b}: dense {} > 4·nk = {}",
                rep.dense_total,
                4 * nk
            );
            // Sparse side: every entry stored exactly once (values+indices)
            // plus offsets.
            assert!(rep.sparse_total >= 2 * a.nnz() as u64);
        }
    }

    #[test]
    fn replication_blows_up_15d_dense_storage() {
        // §6.2: 1.5D with replication c stores Θ(c · nk) dense words; the
        // arrow layout stays Θ(nk) — a factor-c gap.
        let n = 8192u32;
        let k = 16u32;
        let p = 16u32;
        let a = mawi(n);
        let nk = n as u64 * k as u64;
        let low = a15d_storage(&a, p, 1, k);
        let high = a15d_storage(&a, p, 4, k);
        assert!(
            high.dense_total >= 3 * low.dense_total,
            "c=4 dense {} not ≫ c=1 dense {}",
            high.dense_total,
            low.dense_total
        );
        let d = la_decompose(
            &a,
            &DecomposeConfig::with_width(n / p),
            &mut RandomForestLa::new(3),
        )
        .unwrap();
        let arrow = arrow_storage(&d, k);
        assert!(
            arrow.dense_total < high.dense_total,
            "arrow dense {} not below replicated 1.5D {}",
            arrow.dense_total,
            high.dense_total
        );
        assert!(arrow.dense_total <= 4 * nk);
    }

    #[test]
    fn max_per_rank_bounded_by_total() {
        let a = mawi(4096);
        let d = la_decompose(
            &a,
            &DecomposeConfig::with_width(512),
            &mut RandomForestLa::new(1),
        )
        .unwrap();
        let rep = arrow_storage(&d, 8);
        assert!(rep.max_per_rank <= rep.total());
        assert!(rep.max_per_rank > 0);
    }
}
