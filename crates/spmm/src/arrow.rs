//! Distributed SpMM through an arrow matrix decomposition
//! (§4.1, Algorithms 1 and 2 of the paper).
//!
//! Ranks are grouped per arrow matrix: level `j` with `active_n_j` active
//! positions gets `⌈active_n_j / b⌉` consecutive ranks; rank `i` of a
//! level holds the tiles `B(0,i)`, `B(i,0)`, `B(i,i)` and the feature
//! block `D(i)` (Figure 2). One multiply iteration:
//!
//! 1. **Forward propagation** — level `j` ships its X rows to level `j+1`
//!    through the permutation `π_{j+1} ∘ π_j⁻¹`, chained down the levels
//!    (only the shrinking active prefix travels),
//! 2. **Arrow multiply** (Algorithm 1) per level: broadcast `D(0)` within
//!    the level, reduce the row-arm partials `B(0,i)·D(i)` to the level's
//!    rank 0, and compute `C(i) = B(i,0)·D(0) + B(i,i)·D(i)` locally,
//! 3. **Backward aggregation** — partial results flow back `j → j−1`,
//!    summed into the coarser level's blocks, leaving `Y` distributed on
//!    level 0 exactly like the input X (§6.1: the iterate stays in `π₀`
//!    order, so iterations chain with no extra movement).

use crate::layout::{block_count, block_range};
use crate::traits::{apply_sigma, binomial_children, CommEstimate, DistSpmm, Sigma, SpmmRun};
use amd_comm::{CostModel, Group, Machine, MachineExec, RankCtx};
use amd_sparse::{spmm, DenseMatrix, Dtype, SparseError, SparseResult};
use arrow_core::{ArrowDecomposition, ArrowMatrix};

/// Route table entry: rows this rank ships to (or accepts from) one peer.
/// Sender and receiver hold mirrored routes built from the same position
/// pairs, so `local_rows` orders agree on both sides.
#[derive(Debug, Clone, Default)]
struct Route {
    /// Destination (forward) or source (backward) machine rank.
    peer: u32,
    /// Local row indices within this rank's block, in transfer order.
    local_rows: Vec<u32>,
}

/// Per-rank plan for one level.
#[derive(Debug, Clone, Default)]
struct RankPlan {
    /// Forward X sends to the next level.
    fwd_sends: Vec<Route>,
    /// Forward X receives from the previous level (peer = source).
    fwd_recvs: Vec<Route>,
    /// Backward Y sends to the previous level.
    bwd_sends: Vec<Route>,
    /// Backward Y receives from the next level.
    bwd_recvs: Vec<Route>,
}

/// Static description of one level's rank block.
#[derive(Debug, Clone)]
struct LevelPlan {
    /// First machine rank of the level.
    offset: u32,
    /// Number of ranks (= block rows) of the level.
    nb: u32,
    /// Active positions of the level.
    active_n: u32,
    /// The level's tiled arrow matrix.
    arrow: ArrowMatrix,
    /// Per local rank: routing tables.
    rank_plans: Vec<RankPlan>,
}

/// Arrow decomposition SpMM bound to a decomposition.
pub struct ArrowSpmm {
    n: u32,
    b: u32,
    total_ranks: u32,
    levels: Vec<LevelPlan>,
    /// Vertex at position `p` of level 0 (`π₀⁻¹`), for X scatter/Y gather.
    level0_vertices: Vec<u32>,
    cost: CostModel,
    dtype: Dtype,
    exec: MachineExec,
}

impl ArrowSpmm {
    /// Plans the distribution of a decomposition (rank counts, tiles,
    /// routing tables).
    pub fn new(d: &ArrowDecomposition) -> SparseResult<Self> {
        let n = d.n();
        let b = d.b();
        if d.order() == 0 {
            return Err(SparseError::InvalidCsr(
                "cannot distribute an empty decomposition".into(),
            ));
        }
        // Rank ranges per level.
        let mut levels: Vec<LevelPlan> = Vec::with_capacity(d.order());
        let mut offset = 0u32;
        for level in d.levels() {
            let nb = block_count(level.active_n, b);
            levels.push(LevelPlan {
                offset,
                nb,
                active_n: level.active_n,
                arrow: level.to_arrow(b)?,
                rank_plans: vec![RankPlan::default(); nb as usize],
            });
            offset += nb;
        }
        let total_ranks = offset;

        // Routing tables: active position q of level t (vertex v) draws
        // its X from — and returns its Y through — the *deepest earlier
        // level where v is still active*. In a nested decomposition
        // (LA-Decompose output, whose active sets shrink monotonically)
        // that is always level t-1, the chained §6.1 layout. A spliced
        // decomposition ([`decompose_snapshot_incremental`]) is not
        // nested: the re-decomposed region is lifted to the deepest
        // levels, so a vertex can re-enter the active prefix after
        // leaving it, and its X must be routed from further up the
        // chain. Route content, not level adjacency, drives the
        // send/recv loops, so the cross-level hops need no special
        // casing there.
        //
        // [`decompose_snapshot_incremental`]: arrow_core::incremental::decompose_snapshot_incremental
        for t in 1..d.order() {
            let pi_t = &d.levels()[t].perm;
            let (active_t, off_t) = (levels[t].active_n, levels[t].offset);
            // (src_level, src_rank, dst_rank, src_row, dst_row).
            let mut pairs: Vec<(usize, u32, u32, u32, u32)> = Vec::new();
            for q in 0..active_t {
                let v = pi_t.vertex_at(q);
                let Some(s) = (0..t)
                    .rev()
                    .find(|&lv| d.levels()[lv].perm.position(v) < levels[lv].active_n)
                else {
                    return Err(SparseError::InvalidCsr(format!(
                        "vertex {v} is active at level {t} but at no earlier \
                         level; the decomposition cannot be distributed"
                    )));
                };
                let p = d.levels()[s].perm.position(v);
                let src = levels[s].offset + p / b;
                let dst = off_t + q / b;
                pairs.push((s, src, dst, p % b, q % b));
            }
            pairs.sort_unstable_by_key(|&(_, src, dst, sr, dr)| (src, dst, sr, dr));
            let mut idx = 0;
            while idx < pairs.len() {
                let (s, src, dst, _, _) = pairs[idx];
                let off_s = levels[s].offset;
                let mut local_rows = Vec::new();
                let mut peer_rows = Vec::new();
                while idx < pairs.len() && pairs[idx].1 == src && pairs[idx].2 == dst {
                    local_rows.push(pairs[idx].3);
                    peer_rows.push(pairs[idx].4);
                    idx += 1;
                }
                // Forward: src (level s) sends to dst (level t).
                levels[s].rank_plans[(src - off_s) as usize]
                    .fwd_sends
                    .push(Route {
                        peer: dst,
                        local_rows: local_rows.clone(),
                    });
                levels[t].rank_plans[(dst - off_t) as usize]
                    .fwd_recvs
                    .push(Route {
                        peer: src,
                        local_rows: peer_rows.clone(),
                    });
                // Backward: dst (level t) sends Y back to src (level s).
                levels[t].rank_plans[(dst - off_t) as usize]
                    .bwd_sends
                    .push(Route {
                        peer: src,
                        local_rows: peer_rows,
                    });
                levels[s].rank_plans[(src - off_s) as usize]
                    .bwd_recvs
                    .push(Route {
                        peer: dst,
                        local_rows,
                    });
            }
        }
        let level0_vertices: Vec<u32> = (0..n).map(|p| d.levels()[0].perm.vertex_at(p)).collect();
        Ok(Self {
            n,
            b,
            total_ranks,
            levels,
            level0_vertices,
            cost: CostModel::default(),
            dtype: Dtype::default(),
            exec: MachineExec::default(),
        })
    }

    /// Overrides the cost model.
    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Selects how machine ranks obtain threads (shared pool default).
    pub fn with_exec(mut self, exec: MachineExec) -> Self {
        self.exec = exec;
        self
    }

    /// Selects the serving precision: local tile multiplies run at
    /// `dtype` ([`spmm::spmm_acc_dtype`]) and [`predict_volume`] charges
    /// `dtype` bytes per value moved.
    ///
    /// The simulated machine still ships `f64` buffers (the narrowing is
    /// emulated value-wise), so at [`Dtype::F32`] the *accounted* volume
    /// reads ~2× the prediction — the prediction reflects what a real
    /// narrowed wire costs.
    ///
    /// [`predict_volume`]: DistSpmm::predict_volume
    pub fn with_dtype(mut self, dtype: Dtype) -> Self {
        self.dtype = dtype;
        self
    }

    /// Arrow width.
    pub fn b(&self) -> u32 {
        self.b
    }

    /// Locates the level and local index of a machine rank.
    fn locate(&self, rank: u32) -> (usize, u32) {
        for (j, l) in self.levels.iter().enumerate() {
            if rank < l.offset + l.nb {
                return (j, rank - l.offset);
            }
        }
        unreachable!("rank {rank} beyond total {}", self.total_ranks)
    }
}

/// One level's Algorithm 1: multiply the arrow matrix with the
/// block-distributed `D`, returning this rank's `C(i)` block.
fn arrow_multiply(
    ctx: &mut RankCtx,
    level: &LevelPlan,
    my_i: u32,
    d_block: &[f64],
    k: u32,
    dtype: Dtype,
) -> Vec<f64> {
    let group = Group::new(ctx, (level.offset..level.offset + level.nb).collect());
    let (r0, r1) = block_range(level.active_n, level.arrow.b(), my_i);
    let my_rows = (r1 - r0) as usize;
    debug_assert_eq!(d_block.len(), my_rows * k as usize);

    // Broadcast D(0) from the level's first rank (Algorithm 1, line 1).
    let d0 = group.broadcast(
        ctx,
        0,
        if my_i == 0 {
            Some(d_block.to_vec())
        } else {
            None
        },
    );
    let (z0, z1) = block_range(level.active_n, level.arrow.b(), 0);
    let d0_rows = z1 - z0;
    let d0_mat = DenseMatrix::from_vec(d0_rows, k, d0).expect("D(0) has block shape");

    // Row-arm partial B(0,i) · D(i), reduced to rank 0 (lines 2–3).
    let row_tile = level.arrow.row_tile(my_i);
    let partial0 = if my_rows > 0 {
        let d_mat = DenseMatrix::from_vec(r1 - r0, k, d_block.to_vec()).expect("block shape");
        ctx.compute_flops(spmm::spmm_flops(row_tile, k));
        spmm::spmm_dtype(row_tile, &d_mat, dtype)
            .expect("row tile shapes align")
            .into_vec()
    } else {
        vec![0.0; (d0_rows * k) as usize]
    };
    let reduced = group.reduce_sum(ctx, 0, partial0);

    // C(i) (lines 4–6).
    if my_i == 0 {
        reduced.expect("rank 0 of the level holds the reduction")
    } else {
        let mut c = DenseMatrix::zeros(r1 - r0, k);
        let col_tile = level.arrow.col_tile(my_i);
        ctx.compute_flops(spmm::spmm_flops(col_tile, k));
        spmm::spmm_acc_dtype(col_tile, &d0_mat, &mut c, dtype).expect("column tile shapes align");
        let diag_tile = level.arrow.diag_tile(my_i);
        let d_mat = DenseMatrix::from_vec(r1 - r0, k, d_block.to_vec()).expect("block shape");
        ctx.compute_flops(spmm::spmm_flops(diag_tile, k));
        spmm::spmm_acc_dtype(diag_tile, &d_mat, &mut c, dtype).expect("diagonal tile shapes align");
        c.into_vec()
    }
}

impl DistSpmm for ArrowSpmm {
    fn set_exec(&mut self, exec: MachineExec) {
        self.exec = exec;
    }

    fn name(&self) -> String {
        format!("Arrow b={} l={}", self.b, self.levels.len())
    }

    fn ranks(&self) -> u32 {
        self.total_ranks
    }

    fn run_sigma(
        &self,
        x: &DenseMatrix<f64>,
        iters: u32,
        sigma: Option<Sigma>,
    ) -> SparseResult<SpmmRun> {
        if x.rows() != self.n {
            return Err(SparseError::ShapeMismatch {
                left: (self.n, self.n),
                right: (x.rows(), x.cols()),
            });
        }
        let k = x.cols();
        let kk = k as usize;
        let l = self.levels.len();
        let machine = Machine::new(self.total_ranks)
            .with_cost(self.cost)
            .with_exec_mode(self.exec.clone());
        let report = machine.run(|ctx| {
            let rank = ctx.rank();
            let (j, my_i) = self.locate(rank);
            let level = &self.levels[j];
            let plan = &level.rank_plans[my_i as usize];
            let (r0, r1) = block_range(level.active_n, self.b, my_i);
            let my_rows = (r1 - r0) as usize;
            // Level 0 starts with its X block (initial layout, free);
            // other levels start empty and are filled by propagation.
            let mut x_block: Vec<f64> = if j == 0 {
                let mut buf = Vec::with_capacity(my_rows * kk);
                for p in r0..r1 {
                    buf.extend_from_slice(x.row(self.level0_vertices[p as usize]));
                }
                buf
            } else {
                vec![0.0; my_rows * kk]
            };
            for iter in 0..iters {
                let base_tag = (iter as u64) << 8;
                // 1. Forward propagation j → j+1 (Algorithm 2, lines 1–5).
                if j > 0 {
                    for route in &plan.fwd_recvs {
                        let buf: Vec<f64> = ctx.recv(route.peer, base_tag | 1);
                        for (idx, &row) in route.local_rows.iter().enumerate() {
                            x_block[row as usize * kk..(row as usize + 1) * kk]
                                .copy_from_slice(&buf[idx * kk..(idx + 1) * kk]);
                        }
                    }
                }
                if j + 1 < l {
                    for route in &plan.fwd_sends {
                        let mut buf = Vec::with_capacity(route.local_rows.len() * kk);
                        for &row in &route.local_rows {
                            buf.extend_from_slice(
                                &x_block[row as usize * kk..(row as usize + 1) * kk],
                            );
                        }
                        ctx.send(route.peer, base_tag | 1, buf);
                    }
                }
                // 2. Per-level arrow multiply (Algorithm 1).
                let mut y_block = arrow_multiply(ctx, level, my_i, &x_block, k, self.dtype);
                // 3. Backward aggregation j+1 → j (Algorithm 2, lines 7–12).
                if j + 1 < l {
                    for route in &plan.bwd_recvs {
                        let buf: Vec<f64> = ctx.recv(route.peer, base_tag | 2);
                        for (idx, &row) in route.local_rows.iter().enumerate() {
                            for col in 0..kk {
                                y_block[row as usize * kk + col] += buf[idx * kk + col];
                            }
                        }
                    }
                }
                if j > 0 {
                    for route in &plan.bwd_sends {
                        let mut buf = Vec::with_capacity(route.local_rows.len() * kk);
                        for &row in &route.local_rows {
                            buf.extend_from_slice(
                                &y_block[row as usize * kk..(row as usize + 1) * kk],
                            );
                        }
                        ctx.send(route.peer, base_tag | 2, buf);
                    }
                }
                x_block = y_block;
                // σ acts on the complete Y, which lives on level 0 after
                // aggregation; deeper levels are overwritten by the next
                // forward propagation.
                if j == 0 {
                    apply_sigma(&mut x_block, sigma);
                }
            }
            if j == 0 {
                x_block
            } else {
                Vec::new()
            }
        });
        // Assemble Y: level 0 blocks hold positions 0..active_0; rows of
        // vertices isolated in A are zero.
        let mut y = DenseMatrix::zeros(self.n, k);
        let level0 = &self.levels[0];
        for i in 0..level0.nb {
            let (r0, r1) = block_range(level0.active_n, self.b, i);
            let block = &report.results[(level0.offset + i) as usize];
            for (offset, p) in (r0..r1).enumerate() {
                let v = self.level0_vertices[p as usize];
                y.row_mut(v)
                    .copy_from_slice(&block[offset * kk..(offset + 1) * kk]);
            }
        }
        Ok(SpmmRun {
            y,
            stats: report.stats,
            iters,
        })
    }

    fn predict_volume(&self, k: u32) -> CommEstimate {
        let kb = self.dtype.bytes() as f64 * k as f64;
        let mut est = CommEstimate::default();
        for level in &self.levels {
            let nb = level.nb as usize;
            // D(0) block height: the payload of the level's broadcast and
            // reduction (Algorithm 1).
            let (z0, z1) = block_range(level.active_n, self.b, 0);
            let d0_bytes = (z1 - z0) as f64 * kb;
            for (i, plan) in level.rank_plans.iter().enumerate() {
                let mut bytes = 0.0;
                let mut msgs = 0.0;
                // Point-to-point propagation/aggregation routes: exact.
                for route in plan
                    .fwd_sends
                    .iter()
                    .chain(&plan.fwd_recvs)
                    .chain(&plan.bwd_sends)
                    .chain(&plan.bwd_recvs)
                {
                    bytes += route.local_rows.len() as f64 * kb;
                    msgs += 1.0;
                }
                // Broadcast of D(0): member i relays `children` copies and
                // receives one (none for the root).
                let children = binomial_children(i, nb) as f64;
                bytes += children * d0_bytes;
                msgs += children;
                if i > 0 {
                    bytes += d0_bytes;
                    msgs += 1.0;
                }
                // Reduction of the row-arm partials to the level root:
                // mirrored tree — receive `children` partials, send one.
                bytes += children * d0_bytes;
                msgs += children;
                if i > 0 {
                    bytes += d0_bytes;
                    msgs += 1.0;
                }
                // Local tile multiplies (Algorithm 1, lines 2–6).
                let mut flops = spmm::spmm_flops(level.arrow.row_tile(i as u32), k);
                if i > 0 {
                    flops += spmm::spmm_flops(level.arrow.col_tile(i as u32), k);
                    flops += spmm::spmm_flops(level.arrow.diag_tile(i as u32), k);
                }
                est.envelope(bytes, msgs, flops);
            }
        }
        est
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::iterated_spmm;
    use amd_graph::generators::{basic, datasets, random};
    use amd_sparse::CsrMatrix;
    use arrow_core::{la_decompose, DecomposeConfig, RandomForestLa};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn decompose(a: &CsrMatrix<f64>, b: u32, seed: u64) -> ArrowDecomposition {
        la_decompose(
            a,
            &DecomposeConfig::with_width(b),
            &mut RandomForestLa::new(seed),
        )
        .unwrap()
    }

    fn check(a: &CsrMatrix<f64>, b: u32, k: u32, iters: u32) -> SpmmRun {
        let d = decompose(a, b, 42);
        assert_eq!(d.validate(a).unwrap(), 0.0);
        let alg = ArrowSpmm::new(&d).unwrap();
        let x = DenseMatrix::from_fn(a.rows(), k, |r, c| (((r * 5 + c * 3) % 9) as f64) - 4.0);
        let run = alg.run(&x, iters).unwrap();
        let expected = iterated_spmm(a, &x, iters).unwrap();
        let err = run.y.max_abs_diff(&expected).unwrap();
        assert!(err < 1e-6, "b={b} k={k} iters={iters}: err {err}");
        run
    }

    /// Regression: a *spliced* decomposition (incremental refresh) is
    /// not nested — the lifted region levels sit below prior levels
    /// whose active prefix already dropped the region's vertices, so
    /// their X must route from further up the chain than level t-1.
    /// The old adjacent-level-only routing silently served wrong
    /// answers here (the operator sum validates exactly either way).
    #[test]
    fn spliced_non_nested_decomposition_stays_exact() {
        use arrow_core::decompose_snapshot;
        use arrow_core::incremental::{decompose_snapshot_incremental, IncrementalPolicy};
        let n = 64u32;
        let mut coo = amd_sparse::CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0).unwrap();
            coo.push(i, (i + 1) % n, 1.0).unwrap();
            coo.push((i + 1) % n, i, 1.0).unwrap();
        }
        for (r, c) in [
            (62u32, 16u32),
            (31, 23),
            (4, 20),
            (8, 53),
            (1, 33),
            (13, 25),
        ] {
            coo.push(r, c, 1.0).unwrap();
        }
        let a = coo.to_csr();
        let cfg = DecomposeConfig::with_width(16);
        let prior = decompose_snapshot(&a, &cfg, 42).unwrap();
        let mut patch = amd_sparse::CooMatrix::new(n, n);
        patch.push(4, 13, 1.0).unwrap();
        let merged = amd_sparse::ops::apply_delta(&a, &patch.to_csr()).unwrap();
        let (d, outcome) = decompose_snapshot_incremental(
            &merged,
            &cfg,
            42,
            Some(&prior),
            Some(&[4, 13]),
            &IncrementalPolicy::default(),
        )
        .unwrap();
        assert!(outcome.incremental, "delta must take the splice path");
        assert_eq!(d.validate(&merged).unwrap(), 0.0);
        // The spliced chain must genuinely be non-nested, or this test
        // no longer regression-covers the cross-level routes.
        let non_nested = (1..d.order()).any(|t| {
            let lvl = &d.levels()[t];
            let prev = &d.levels()[t - 1];
            (0..lvl.active_n)
                .map(|q| lvl.perm.vertex_at(q))
                .any(|v| prev.perm.position(v) >= prev.active_n)
        });
        assert!(non_nested, "splice produced a nested chain; repro decayed");
        let alg = ArrowSpmm::new(&d).unwrap();
        let x = DenseMatrix::from_fn(n, 1, |r, _| (((3 * r) % 11) as f64) - 5.0);
        let run = alg.run(&x, 2).unwrap();
        let want = iterated_spmm(&merged, &x, 2).unwrap();
        assert_eq!(
            run.y.max_abs_diff(&want).unwrap(),
            0.0,
            "distributed multiply on the spliced decomposition must be exact"
        );
    }

    #[test]
    fn star_single_level() {
        let a: CsrMatrix<f64> = basic::star(60).to_adjacency();
        let run = check(&a, 8, 3, 1);
        assert!(run.ranks_used() >= 1);
    }

    #[test]
    fn path_multi_block() {
        let a: CsrMatrix<f64> = basic::path(50).to_adjacency();
        check(&a, 8, 2, 2);
    }

    #[test]
    fn random_tree_multi_level() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let a: CsrMatrix<f64> = random::random_tree(400, &mut rng).to_adjacency();
        let run = check(&a, 32, 4, 2);
        assert!(run.stats.ranks.len() >= 4, "expected several ranks");
    }

    #[test]
    fn dataset_graphs_match_reference() {
        let mut rng = ChaCha8Rng::seed_from_u64(31);
        for kind in [datasets::DatasetKind::Mawi, datasets::DatasetKind::GenBank] {
            let g = kind.generate(800, &mut rng);
            let a: CsrMatrix<f64> = g.to_adjacency();
            check(&a, 64, 2, 2);
        }
    }

    #[test]
    fn values_and_diagonal_preserved() {
        let mut coo = amd_sparse::CooMatrix::new(30, 30);
        for v in 0..30u32 {
            coo.push(v, v, 0.5 + v as f64).unwrap();
        }
        for v in 1..30u32 {
            coo.push_sym(0, v, 1.0 / v as f64).unwrap();
        }
        coo.push_sym(7, 8, 3.0).unwrap();
        let a = coo.to_csr();
        check(&a, 4, 3, 2);
    }

    #[test]
    fn iterates_chain_correctly() {
        // 3 iterations through a multi-level decomposition.
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let g = datasets::genbank_like(500, &mut rng);
        let a: CsrMatrix<f64> = g.to_adjacency();
        check(&a, 32, 2, 3);
    }

    #[test]
    fn k1_vector_case() {
        let a: CsrMatrix<f64> = basic::cycle(40).to_adjacency();
        check(&a, 8, 1, 2);
    }

    #[test]
    fn f32_dtype_halves_predicted_bytes_and_stays_exact_on_integers() {
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        let a: CsrMatrix<f64> = random::random_tree(300, &mut rng).to_adjacency();
        let d = decompose(&a, 16, 42);
        let alg64 = ArrowSpmm::new(&d).unwrap();
        let alg32 = ArrowSpmm::new(&d)
            .unwrap()
            .with_dtype(amd_sparse::Dtype::F32);
        let est64 = alg64.predict_volume(4);
        let est32 = alg32.predict_volume(4);
        assert_eq!(est32.max_rank_bytes, est64.max_rank_bytes / 2.0);
        assert_eq!(est32.max_rank_messages, est64.max_rank_messages);
        // Integer data inside the f32 mantissa: the emulated f32 local
        // multiplies are exact, so both precisions agree bit-for-bit.
        let x = DenseMatrix::from_fn(300, 4, |r, c| (((r * 5 + c * 3) % 9) as f64) - 4.0);
        let y64 = alg64.run(&x, 2).unwrap().y;
        let y32 = alg32.run(&x, 2).unwrap().y;
        assert_eq!(y64, y32);
    }

    #[test]
    fn empty_decomposition_rejected() {
        let a = CsrMatrix::<f64>::zeros(4, 4);
        let d = la_decompose(
            &a,
            &DecomposeConfig::with_width(2),
            &mut RandomForestLa::new(1),
        )
        .unwrap();
        assert!(ArrowSpmm::new(&d).is_err());
    }

    impl SpmmRun {
        fn ranks_used(&self) -> usize {
            self.stats.ranks.len()
        }
    }
}
