//! Serial reference SpMM used for verification.

use amd_sparse::{spmm, CsrMatrix, DenseMatrix, SparseResult};

/// `A^iters · X` computed serially.
pub fn iterated_spmm(
    a: &CsrMatrix<f64>,
    x: &DenseMatrix<f64>,
    iters: u32,
) -> SparseResult<DenseMatrix<f64>> {
    let mut cur = x.clone();
    for _ in 0..iters {
        cur = spmm::spmm(a, &cur)?;
    }
    Ok(cur)
}

#[cfg(test)]
mod tests {
    use super::*;
    use amd_sparse::CooMatrix;

    #[test]
    fn zero_iterations_is_identity() {
        let a = CsrMatrix::<f64>::identity(3);
        let x = DenseMatrix::from_fn(3, 2, |r, c| (r + c) as f64);
        assert_eq!(iterated_spmm(&a, &x, 0).unwrap(), x);
    }

    #[test]
    fn powers_of_a_scaling_matrix() {
        // A = 2·I → A³X = 8X.
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 2.0).unwrap();
        coo.push(1, 1, 2.0).unwrap();
        let a = coo.to_csr();
        let x = DenseMatrix::from_fn(2, 1, |r, _| (r + 1) as f64);
        let y = iterated_spmm(&a, &x, 3).unwrap();
        assert_eq!(y.data(), &[8.0, 16.0]);
    }
}
