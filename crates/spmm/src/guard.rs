//! Splice-aware serving-cost guard: when does re-compaction beat serving
//! deep splices?
//!
//! Incremental refresh keeps serving cheap by splicing tiny extra levels
//! onto a prior decomposition instead of re-running LA-Decompose — but
//! every splice deepens the level structure, and a deep enough stack of
//! spliced levels eventually costs more to serve (extra per-level
//! propagation hops and broadcasts) than a freshly compacted
//! decomposition would. The policy knobs of
//! [`arrow_core::IncrementalPolicy`] bound the splice *construction*
//! (affected-region size, order); this guard bounds the splice *serving
//! cost*, using the same `predict_volume` machinery the planner ranks
//! algorithms with — costed over the actual spliced level structure,
//! since [`ArrowSpmm::predict_volume`] walks per-level active prefixes.
//!
//! Usage: call [`observe_cold`](ServingCostGuard::observe_cold) whenever a
//! decomposition is built cold (bind, fallback refresh) to set the
//! baseline, and [`splice_verdict`](ServingCostGuard::splice_verdict)
//! after each spliced refresh. A [`SpliceVerdict`] with
//! [`recompact`](SpliceVerdict::recompact) set means the predicted
//! per-iteration serving time of the spliced decomposition exceeds the
//! cold baseline by more than the configured slowdown factor, and the
//! caller should re-compact (rebuild cold) rather than keep serving the
//! splice.

use crate::arrow::ArrowSpmm;
use crate::traits::DistSpmm;
use amd_comm::CostModel;
use amd_sparse::SparseResult;
use arrow_core::ArrowDecomposition;

/// Default tolerated slowdown of a spliced decomposition's predicted
/// serving time over the cold baseline before re-compaction is advised.
pub const DEFAULT_MAX_SLICE_SLOWDOWN: f64 = 1.5;

/// Decision record of one spliced-refresh cost check.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpliceVerdict {
    /// Predicted per-iteration serving seconds of the spliced
    /// decomposition.
    pub predicted_seconds: f64,
    /// Baseline seconds recorded at the last cold build.
    pub baseline_seconds: f64,
    /// `true` when the splice is predicted to serve more than
    /// `max_slowdown ×` slower than the baseline — re-compact.
    pub recompact: bool,
}

/// Serving-cost guard over a stream of cold and spliced rebuilds.
#[derive(Debug, Clone)]
pub struct ServingCostGuard {
    cost: CostModel,
    k_hint: u32,
    max_slowdown: f64,
    baseline_seconds: Option<f64>,
}

impl ServingCostGuard {
    /// A guard predicting with `cost` for `k_hint`-column operands,
    /// tolerating up to `max_slowdown ×` the cold baseline.
    pub fn new(cost: CostModel, k_hint: u32, max_slowdown: f64) -> Self {
        Self {
            cost,
            k_hint: k_hint.max(1),
            max_slowdown: max_slowdown.max(1.0),
            baseline_seconds: None,
        }
    }

    /// Seeds the cold baseline directly (a holder restoring guard state
    /// recorded elsewhere — e.g. carried across an engine refresh).
    pub fn with_baseline(mut self, seconds: f64) -> Self {
        self.baseline_seconds = Some(seconds);
        self
    }

    /// Predicted per-iteration serving seconds of `d` under this guard's
    /// cost model — the arrow algorithm's `predict_volume` over the
    /// decomposition's actual (possibly spliced) level structure.
    pub fn predicted_seconds(&self, d: &ArrowDecomposition) -> SparseResult<f64> {
        let alg = ArrowSpmm::new(d)?;
        Ok(alg
            .predict_volume(self.k_hint)
            .predicted_seconds(&self.cost))
    }

    /// Records `d` as the new cold baseline; returns its predicted
    /// seconds.
    pub fn observe_cold(&mut self, d: &ArrowDecomposition) -> SparseResult<f64> {
        let s = self.predicted_seconds(d)?;
        self.baseline_seconds = Some(s);
        Ok(s)
    }

    /// Checks a freshly spliced decomposition against the cold baseline.
    ///
    /// Without a recorded baseline (the prior came from a catalog reload,
    /// say) the spliced prediction itself becomes the baseline and the
    /// verdict never asks for re-compaction.
    pub fn splice_verdict(&mut self, d: &ArrowDecomposition) -> SparseResult<SpliceVerdict> {
        let predicted = self.predicted_seconds(d)?;
        let baseline = match self.baseline_seconds {
            Some(b) => b,
            None => {
                self.baseline_seconds = Some(predicted);
                predicted
            }
        };
        Ok(SpliceVerdict {
            predicted_seconds: predicted,
            baseline_seconds: baseline,
            recompact: predicted > baseline * self.max_slowdown,
        })
    }

    /// The recorded cold baseline, if any.
    pub fn baseline_seconds(&self) -> Option<f64> {
        self.baseline_seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amd_graph::generators::random;
    use amd_sparse::CsrMatrix;
    use arrow_core::incremental::decompose_snapshot_incremental;
    use arrow_core::{DecomposeConfig, IncrementalPolicy};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn tree(n: u32, seed: u64) -> CsrMatrix<f64> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        random::random_tree(n, &mut rng).to_adjacency()
    }

    #[test]
    fn cold_baseline_accepts_itself() {
        let a = tree(300, 3);
        let cfg = DecomposeConfig::with_width(16);
        let (d, _) =
            decompose_snapshot_incremental(&a, &cfg, 7, None, None, &IncrementalPolicy::default())
                .unwrap();
        let mut guard = ServingCostGuard::new(CostModel::default(), 8, 1.5);
        let base = guard.observe_cold(&d).unwrap();
        assert!(base > 0.0);
        // The unspliced decomposition trivially passes its own budget.
        let v = guard.splice_verdict(&d).unwrap();
        assert!(!v.recompact);
        assert_eq!(v.baseline_seconds, base);
    }

    #[test]
    fn repeated_splices_eventually_exceed_a_tight_budget() {
        // Splice the same decomposition over and over; each splice deepens
        // the level stack, so with a slowdown budget of exactly 1.0 the
        // predicted cost must eventually exceed the cold baseline.
        let a = tree(400, 11);
        let cfg = DecomposeConfig::with_width(16);
        let policy = IncrementalPolicy {
            max_affected_fraction: 1.0,
            max_order: 64,
            ..Default::default()
        };
        let (mut d, _) = decompose_snapshot_incremental(&a, &cfg, 7, None, None, &policy).unwrap();
        let mut guard = ServingCostGuard::new(CostModel::default(), 8, 1.0);
        guard.observe_cold(&d).unwrap();
        let mut tripped = false;
        for round in 0..6u64 {
            let touched: Vec<u32> = (0..20).map(|i| (round * 13 + i) as u32 % 400).collect();
            let (next, outcome) =
                decompose_snapshot_incremental(&a, &cfg, 7, Some(&d), Some(&touched), &policy)
                    .unwrap();
            d = next;
            if !outcome.incremental {
                continue;
            }
            let v = guard.splice_verdict(&d).unwrap();
            assert!(v.predicted_seconds >= 0.0);
            if v.recompact {
                tripped = true;
                break;
            }
        }
        assert!(tripped, "deepening splices never exceeded a 1.0× budget");
    }

    #[test]
    fn missing_baseline_self_seeds() {
        let a = tree(200, 5);
        let (d, _) = decompose_snapshot_incremental(
            &a,
            &DecomposeConfig::with_width(16),
            3,
            None,
            None,
            &IncrementalPolicy::default(),
        )
        .unwrap();
        let mut guard = ServingCostGuard::new(CostModel::default(), 4, 1.2);
        let v = guard.splice_verdict(&d).unwrap();
        assert!(!v.recompact);
        assert_eq!(guard.baseline_seconds(), Some(v.predicted_seconds));
    }
}
