//! The common interface of the distributed SpMM algorithms.

use amd_comm::{CostModel, MachineExec, MachineStats};
use amd_sparse::{DenseMatrix, SparseResult};

/// Result of a distributed run.
#[derive(Debug, Clone)]
pub struct SpmmRun {
    /// Final iterate `A^iters · X` in the *original* row order.
    pub y: DenseMatrix<f64>,
    /// Communication/time accounting over all iterations (initial operand
    /// distribution and final assembly excluded).
    pub stats: MachineStats,
    /// Number of multiply iterations performed.
    pub iters: u32,
}

impl SpmmRun {
    /// Per-iteration maximum per-rank volume in bytes — the α-β bandwidth
    /// cost the paper's §6 analyses, normalised per multiply.
    pub fn volume_per_iter(&self) -> f64 {
        self.stats.max_volume() as f64 / self.iters.max(1) as f64
    }

    /// Per-iteration simulated runtime in seconds.
    pub fn sim_time_per_iter(&self) -> f64 {
        self.stats.sim_time() / self.iters.max(1) as f64
    }

    /// Per-iteration maximum per-rank message count — the accounted
    /// counterpart of [`CommEstimate::max_rank_messages`], normalised
    /// per multiply so a cost-attribution layer can compare the
    /// machine's accounting against the planner's prediction
    /// term-by-term.
    pub fn messages_per_iter(&self) -> f64 {
        self.stats.max_messages() as f64 / self.iters.max(1) as f64
    }
}

/// Element-wise activation `σ` applied between iterations (§2 of the
/// paper: `X_{t+1} = σ(A·X_t)`). A plain function pointer keeps the trait
/// object-safe and the closure `Send`-free.
pub type Sigma = fn(f64) -> f64;

/// Predicted per-iteration cost of one multiply iteration, derived from
/// an algorithm's *planned* distribution without running it.
///
/// Components are per-rank envelopes: each field is the maximum over
/// ranks, taken independently (so the triple is an upper envelope — the
/// byte maximum and the message maximum may be attained by different
/// ranks). The serving engine's planner ranks algorithms by
/// [`predicted_seconds`](CommEstimate::predicted_seconds) under a
/// [`CostModel`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CommEstimate {
    /// Largest per-rank communication volume (sent + received bytes).
    pub max_rank_bytes: f64,
    /// Largest per-rank message count (sent + received).
    pub max_rank_messages: f64,
    /// Largest per-rank floating-point work.
    pub max_rank_flops: f64,
}

impl CommEstimate {
    /// α-β-γ prediction: `α·messages + β·bytes + flops/rate`.
    pub fn predicted_seconds(&self, cost: &CostModel) -> f64 {
        cost.alpha * self.max_rank_messages
            + cost.beta * self.max_rank_bytes
            + cost.compute_time(self.max_rank_flops)
    }

    /// Accumulates another rank's totals into the envelope.
    pub fn envelope(&mut self, bytes: f64, messages: f64, flops: f64) {
        self.max_rank_bytes = self.max_rank_bytes.max(bytes);
        self.max_rank_messages = self.max_rank_messages.max(messages);
        self.max_rank_flops = self.max_rank_flops.max(flops);
    }
}

pub use amd_comm::binomial_children;

/// A distributed SpMM algorithm bound to a fixed sparse matrix.
pub trait DistSpmm {
    /// Algorithm label for reports (e.g. `"arrow b=1024"`).
    fn name(&self) -> String;

    /// Number of machine ranks the algorithm uses.
    fn ranks(&self) -> u32;

    /// Runs `iters` iterations `X ← σ(A·X)` starting from `x`; `None`
    /// means the identity (plain matrix powers). `σ` is applied locally to
    /// each rank's output block — element-wise functions need no
    /// communication, so the accounting is unchanged.
    fn run_sigma(
        &self,
        x: &DenseMatrix<f64>,
        iters: u32,
        sigma: Option<Sigma>,
    ) -> SparseResult<SpmmRun>;

    /// Runs `iters` multiply iterations `X ← A·X` starting from `x`,
    /// returning the final iterate and accounting.
    fn run(&self, x: &DenseMatrix<f64>, iters: u32) -> SparseResult<SpmmRun> {
        self.run_sigma(x, iters, None)
    }

    /// Predicts the per-iteration communication and compute of `run` with
    /// a `k`-column operand, from the planned distribution alone (no
    /// machine is spun up). Point-to-point routes are counted exactly;
    /// collective traffic follows the binomial-tree / ring shapes of
    /// `amd_comm::Group`.
    fn predict_volume(&self, k: u32) -> CommEstimate;

    /// Selects how the algorithm's machine obtains rank threads (the
    /// shared pool by default). The default body ignores the request so
    /// the trait stays object-safe and simple test doubles need not
    /// care.
    fn set_exec(&mut self, _exec: MachineExec) {}
}

/// Applies an optional σ in place to a block buffer.
#[inline]
pub fn apply_sigma(block: &mut [f64], sigma: Option<Sigma>) {
    if let Some(f) = sigma {
        for v in block {
            *v = f(*v);
        }
    }
}
