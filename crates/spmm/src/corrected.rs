//! The delta-corrected multiply path of the streaming subsystem.
//!
//! A served matrix that mutates between queries is represented as
//! `A = A₀ + ΔA`: a decomposed base plus a sparse COO/CSR patch. Instead
//! of re-decomposing after every update, [`DeltaSpmm`] answers iterated
//! multiplies as the *base* algorithm on `A₀` with a per-iteration delta
//! correction:
//!
//! ```text
//! X_{t+1} = σ( base(A₀, X_t)  +  ΔA · X_t )
//! ```
//!
//! The correction must be applied inside every iteration (not once at the
//! end): `(A₀ + ΔA)² ≠ A₀² + ΔA²`, and σ is non-linear. The reduction
//! order is **fixed**: the base contribution is computed first, then the
//! delta product (row-major, ascending columns — the same order as the
//! serial reference kernel) is added element-wise. For exactly
//! representable data (integer-valued matrices and operands, the common
//! case for adjacency-backed workloads) the result is bit-identical to a
//! cold decompose-and-multiply of the rebuilt matrix `A₀ + ΔA`; for
//! general floats it agrees to rounding, deterministically.
//!
//! Cost accounting models the correction as a **broadcast-replicated
//! post-pass**: each iteration, the delta (16 bytes per entry: two `u32`
//! coordinates + one `f64` value) is broadcast along a binomial tree to
//! all ranks of the base plan, and every rank corrects its own output
//! rows. This is the honest upper envelope for a wrapper that cannot see
//! the base algorithm's row ownership; it makes the predicted cost grow
//! linearly with delta density, which is exactly the signal the staleness
//! budget and the planner need.
//!
//! The correction always runs in `f64`, even when the wrapped base serves
//! at `f32` half bandwidth: the delta product is the exactness-critical
//! path (its fixed reduction order is what makes corrected answers
//! bit-identical to a cold rebuild on integer data), and a delta is tiny
//! relative to the base, so narrowing it would save nothing measurable.

use crate::traits::{apply_sigma, CommEstimate, DistSpmm, Sigma, SpmmRun};
use amd_comm::CostModel;
use amd_sparse::{spmm, CsrMatrix, DenseMatrix, SparseError, SparseResult};

/// Bytes on the wire per delta entry (row `u32` + col `u32` + value `f64`).
const DELTA_ENTRY_BYTES: f64 = 16.0;

/// A [`DistSpmm`] decorator that serves `A₀ + ΔA` as the wrapped base
/// algorithm plus a per-iteration delta correction. See the
/// [module docs](self) for semantics and accounting.
pub struct DeltaSpmm<'a> {
    base: &'a (dyn DistSpmm + Send + Sync),
    delta: &'a CsrMatrix<f64>,
    cost: CostModel,
}

impl<'a> DeltaSpmm<'a> {
    /// Wraps `base` (bound to the `n × n` base matrix `A₀`) with the
    /// correction `delta`, which must also be `n × n`.
    pub fn new(
        base: &'a (dyn DistSpmm + Send + Sync),
        delta: &'a CsrMatrix<f64>,
    ) -> SparseResult<Self> {
        if delta.rows() != delta.cols() {
            return Err(SparseError::ShapeMismatch {
                left: (delta.rows(), delta.cols()),
                right: (delta.cols(), delta.rows()),
            });
        }
        Ok(Self {
            base,
            delta,
            cost: CostModel::default(),
        })
    }

    /// Overrides the cost model used to charge the correction.
    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Stored entries of the correction.
    pub fn delta_nnz(&self) -> usize {
        self.delta.nnz()
    }

    fn broadcast_hops(&self) -> f64 {
        (self.base.ranks().max(1) as f64).log2().ceil()
    }

    /// Per-iteration α-β-γ charge of the correction for a `k`-column
    /// operand (see the [module docs](self) for the model).
    fn correction_cost(&self, k: u32) -> (f64, f64, f64) {
        if self.delta.nnz() == 0 {
            return (0.0, 0.0, 0.0);
        }
        let payload = self.delta.nnz() as f64 * DELTA_ENTRY_BYTES;
        let hops = self.broadcast_hops();
        // Envelope: the broadcast root relays `hops` copies; every other
        // rank receives one. Correction work is replicated.
        let bytes = (hops + 1.0) * payload;
        let msgs = hops + 1.0;
        let flops = spmm::spmm_flops(self.delta, k);
        (bytes, msgs, flops)
    }
}

impl DistSpmm for DeltaSpmm<'_> {
    fn name(&self) -> String {
        format!("{} + Δ(nnz={})", self.base.name(), self.delta.nnz())
    }

    fn ranks(&self) -> u32 {
        self.base.ranks()
    }

    fn run_sigma(
        &self,
        x: &DenseMatrix<f64>,
        iters: u32,
        sigma: Option<Sigma>,
    ) -> SparseResult<SpmmRun> {
        if self.delta.rows() != x.rows() {
            return Err(SparseError::ShapeMismatch {
                left: (self.delta.rows(), self.delta.cols()),
                right: (x.rows(), x.cols()),
            });
        }
        if self.delta.nnz() == 0 {
            // Nothing pending: the base path (including its internal σ
            // handling) answers directly.
            return self.base.run_sigma(x, iters, sigma);
        }
        let (c_bytes, c_msgs, c_flops) = self.correction_cost(x.cols());
        let c_time =
            self.cost.alpha * c_msgs + self.cost.beta * c_bytes + self.cost.compute_time(c_flops);
        let mut cur = x.clone();
        let mut stats = amd_comm::MachineStats::default();
        for _ in 0..iters {
            // Base contribution first (σ deferred: the activation must see
            // the corrected sum).
            let step = self.base.run(&cur, 1)?;
            let mut y = step.y;
            // Fixed reduction order: delta product in row-major, ascending
            // column order (the serial reference order), then element-wise
            // addition onto the base result.
            let dy = spmm::spmm(self.delta, &cur)?;
            y.add_assign(&dy)?;
            apply_sigma(y.data_mut(), sigma);
            // Accumulate base accounting, then charge the correction.
            if stats.ranks.is_empty() {
                stats.ranks = step.stats.ranks.clone();
            } else {
                for (acc, r) in stats.ranks.iter_mut().zip(&step.stats.ranks) {
                    acc.sent_bytes += r.sent_bytes;
                    acc.recv_bytes += r.recv_bytes;
                    acc.sent_msgs += r.sent_msgs;
                    acc.recv_msgs += r.recv_msgs;
                    acc.sim_time += r.sim_time;
                    acc.compute_time += r.compute_time;
                }
            }
            stats.wall_seconds += step.stats.wall_seconds;
            for r in stats.ranks.iter_mut() {
                r.sim_time += c_time;
            }
            cur = y;
        }
        Ok(SpmmRun {
            y: cur,
            stats,
            iters,
        })
    }

    fn predict_volume(&self, k: u32) -> CommEstimate {
        let mut est = self.base.predict_volume(k);
        let (bytes, msgs, flops) = self.correction_cost(k);
        est.max_rank_bytes += bytes;
        est.max_rank_messages += msgs;
        est.max_rank_flops += flops;
        est
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrow::ArrowSpmm;
    use crate::reference::iterated_spmm;
    use amd_graph::generators::basic;
    use amd_sparse::{ops, CooMatrix};
    use arrow_core::{la_decompose, DecomposeConfig, RandomForestLa};

    fn base_setup(n: u32) -> (CsrMatrix<f64>, ArrowSpmm) {
        let a: CsrMatrix<f64> = basic::cycle(n).to_adjacency();
        let d = la_decompose(
            &a,
            &DecomposeConfig::with_width(8),
            &mut RandomForestLa::new(11),
        )
        .unwrap();
        let alg = ArrowSpmm::new(&d).unwrap();
        (a, alg)
    }

    fn delta(n: u32) -> CsrMatrix<f64> {
        // Integer-valued: adds a chord, removes a cycle edge, perturbs one.
        let mut coo = CooMatrix::new(n, n);
        coo.push_sym(0, n / 2, 2.0).unwrap();
        coo.push_sym(0, 1, -1.0).unwrap(); // cancels the cycle edge
        coo.push_sym(2, 3, 3.0).unwrap();
        coo.to_csr()
    }

    #[test]
    fn corrected_run_bit_matches_rebuilt_matrix() {
        let n = 48;
        let (a, alg) = base_setup(n);
        let dm = delta(n);
        let corrected = DeltaSpmm::new(&alg, &dm).unwrap();
        let x = DenseMatrix::from_fn(n, 3, |r, c| ((r * 5 + c) % 7) as f64 - 3.0);
        let merged = ops::apply_delta(&a, &dm).unwrap();
        for iters in [1u32, 2, 3] {
            let got = corrected.run(&x, iters).unwrap();
            let want = iterated_spmm(&merged, &x, iters).unwrap();
            // Integer data ⇒ all reduction orders produce the exact result.
            assert_eq!(got.y, want, "iters = {iters}");
        }
    }

    #[test]
    fn sigma_is_applied_after_correction() {
        let n = 32;
        let (a, alg) = base_setup(n);
        let dm = delta(n);
        let corrected = DeltaSpmm::new(&alg, &dm).unwrap();
        let relu: Sigma = |v| v.max(0.0);
        let x = DenseMatrix::from_fn(n, 2, |r, c| ((r + c) % 5) as f64 - 2.0);
        let merged = ops::apply_delta(&a, &dm).unwrap();
        let mut want = x.clone();
        for _ in 0..3 {
            want = spmm::spmm(&merged, &want).unwrap();
            want.map_inplace(|v| v.max(0.0));
        }
        let got = corrected.run_sigma(&x, 3, Some(relu)).unwrap();
        assert_eq!(got.y, want);
    }

    #[test]
    fn empty_delta_defers_to_base() {
        let n = 40;
        let (_, alg) = base_setup(n);
        let empty = CsrMatrix::<f64>::zeros(n, n);
        let corrected = DeltaSpmm::new(&alg, &empty).unwrap();
        let x = DenseMatrix::from_fn(n, 2, |r, c| (r + c) as f64);
        let base_run = alg.run(&x, 2).unwrap();
        let corrected_run = corrected.run(&x, 2).unwrap();
        assert_eq!(base_run.y, corrected_run.y);
        assert_eq!(corrected.predict_volume(4), alg.predict_volume(4));
    }

    #[test]
    fn prediction_grows_with_delta_density() {
        let n = 48;
        let (_, alg) = base_setup(n);
        let sparse_delta = delta(n);
        let mut dense_coo = CooMatrix::new(n, n);
        for i in 0..n {
            for j in 0..4u32 {
                dense_coo.push(i, (i + j + 1) % n, 1.0).unwrap();
            }
        }
        let dense_delta = dense_coo.to_csr();
        let small = DeltaSpmm::new(&alg, &sparse_delta)
            .unwrap()
            .predict_volume(8);
        let big = DeltaSpmm::new(&alg, &dense_delta)
            .unwrap()
            .predict_volume(8);
        let base = alg.predict_volume(8);
        assert!(small.max_rank_bytes > base.max_rank_bytes);
        assert!(big.max_rank_bytes > small.max_rank_bytes);
        assert!(big.max_rank_flops > small.max_rank_flops);
    }

    #[test]
    fn shape_mismatches_rejected() {
        let (_, alg) = base_setup(24);
        let rect = CsrMatrix::<f64>::zeros(24, 25);
        assert!(DeltaSpmm::new(&alg, &rect).is_err());
        let wrong_n = CsrMatrix::<f64>::zeros(10, 10);
        let corrected = DeltaSpmm::new(&alg, &wrong_n).unwrap();
        let x = DenseMatrix::zeros(24, 2);
        assert!(corrected.run(&x, 1).is_err());
    }

    #[test]
    fn zero_iterations_returns_operand() {
        let n = 24;
        let (_, alg) = base_setup(n);
        let dm = delta(n);
        let corrected = DeltaSpmm::new(&alg, &dm).unwrap();
        let x = DenseMatrix::from_fn(n, 2, |r, c| (r * 2 + c) as f64);
        let run = corrected.run(&x, 0).unwrap();
        assert_eq!(run.y, x);
        assert_eq!(run.iters, 0);
    }
}
