//! Row-block layout helpers shared by the distributed algorithms.

/// The half-open row range `[start, end)` of block `i` when `n` rows are
/// split into blocks of height `h` (last block ragged).
pub fn block_range(n: u32, h: u32, i: u32) -> (u32, u32) {
    let start = (i * h).min(n);
    let end = ((i + 1) * h).min(n);
    (start, end)
}

/// Number of height-`h` blocks covering `n` rows (≥ 1 even for `n = 0`).
pub fn block_count(n: u32, h: u32) -> u32 {
    n.div_ceil(h).max(1)
}

/// The block holding row `r`.
pub fn block_of(r: u32, h: u32) -> u32 {
    r / h
}

/// Splits `0..n` into `parts` nearly equal contiguous ranges.
pub fn even_ranges(n: u32, parts: u32) -> Vec<(u32, u32)> {
    (0..parts)
        .map(|i| {
            let start = (i as u64 * n as u64 / parts as u64) as u32;
            let end = ((i as u64 + 1) * n as u64 / parts as u64) as u32;
            (start, end)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_cover_rows() {
        assert_eq!(block_range(10, 4, 0), (0, 4));
        assert_eq!(block_range(10, 4, 2), (8, 10));
        assert_eq!(block_range(10, 4, 3), (10, 10)); // out-of-range is empty
        assert_eq!(block_count(10, 4), 3);
        assert_eq!(block_count(8, 4), 2);
        assert_eq!(block_count(0, 4), 1);
        assert_eq!(block_of(9, 4), 2);
    }

    #[test]
    fn even_ranges_partition() {
        let r = even_ranges(10, 3);
        assert_eq!(r, vec![(0, 3), (3, 6), (6, 10)]);
        let total: u32 = r.iter().map(|(a, b)| b - a).sum();
        assert_eq!(total, 10);
        assert_eq!(even_ranges(2, 4).iter().filter(|(a, b)| a != b).count(), 2);
    }
}
