//! Distributed SpMM algorithms on the α-β machine.
//!
//! Implements the paper's algorithm (§4.1) and the baselines it is
//! evaluated against (§3, §7):
//!
//! * [`ArrowSpmm`] — Algorithms 1 & 2: per-level arrow-matrix multiplies
//!   with forward X propagation and backward Y aggregation,
//! * [`A15dSpmm`] — the 1.5D A-stationary algorithm with replication
//!   factor `c` (the `c = 1` case is the 1D algorithm),
//! * [`A2dSpmm`] — the 2D A-stationary algorithm (feature matrix sliced
//!   along both dimensions, `√p` phases),
//! * [`Hp1dSpmm`] — the PETSc-style 1D hypergraph-partitioning baseline
//!   with local/non-local overlap,
//! * [`DeltaSpmm`] — the streaming layer's corrected path: any of the
//!   above on a decomposed base `A₀` plus a per-iteration sparse-delta
//!   correction, serving `A₀ + ΔA` without re-decomposing,
//! * [`mod@reference`] — the serial reference every algorithm is verified
//!   against,
//! * [`ServingCostGuard`] — splice-aware cost re-ranking: predicts the
//!   serving cost of a spliced decomposition over its actual level
//!   structure and decides when re-compaction beats serving deep splices.
//!
//! Every algorithm accepts a serving [`amd_sparse::Dtype`] via
//! `with_dtype`: `f32` halves the bytes charged per value moved and runs
//! local tile multiplies at emulated f32 precision (f64 accumulation, the
//! machine's wire format), `f64` is the exact default.
//!
//! All algorithms implement [`DistSpmm`]: a `run(x, iters)` producing the
//! final iterate (in original row order) and the machine's communication
//! accounting. The initial operand distribution is not charged (all three
//! algorithms start from their natural layout, as in the paper), and the
//! result stays distributed between iterations — the returned `Y` is
//! assembled host-side from the per-rank return values, so the stats
//! contain exactly the steady-state communication.

pub mod a15d;
pub mod a2d;
pub mod arrow;
pub mod corrected;
pub mod guard;
pub mod hp1d;
pub mod layout;
pub mod reference;
pub mod storage;
pub mod traits;
pub mod verify;

pub use a15d::{best_c, A15dSpmm};
pub use a2d::A2dSpmm;
pub use arrow::ArrowSpmm;
pub use corrected::DeltaSpmm;
pub use guard::{ServingCostGuard, SpliceVerdict, DEFAULT_MAX_SLICE_SLOWDOWN};
pub use hp1d::Hp1dSpmm;
pub use traits::{CommEstimate, DistSpmm, SpmmRun};
